// The reproduction registry: completeness (every paper figure 2-20 has a
// spec with at least one shape assertion), structural sanity (unique ids
// and labels, engine specs the factory accepts, assertion metrics that a
// run actually records), the assertion evaluator itself, and the seeded
// workload generators' determinism (same seed -> byte-identical queries).
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "harness/engine_factory.h"
#include "repro/registry.h"
#include "repro/runner.h"
#include "workload/workload.h"

namespace scrack {
namespace repro {
namespace {

TEST(RegistryTest, CoversEveryPaperFigure) {
  const std::vector<int> covered = CoveredFigures();
  const std::set<int> set(covered.begin(), covered.end());
  for (int figure = 2; figure <= 20; ++figure) {
    EXPECT_TRUE(set.count(figure)) << "no spec covers paper figure "
                                   << figure;
  }
}

TEST(RegistryTest, EverySpecHasAssertionsAndUniqueIds) {
  std::set<std::string> ids;
  for (const FigureSpec& spec : Registry()) {
    EXPECT_TRUE(ids.insert(spec.id).second) << "duplicate id " << spec.id;
    EXPECT_FALSE(spec.assertions.empty()) << spec.id;
    EXPECT_FALSE(spec.title.empty()) << spec.id;
    EXPECT_FALSE(spec.claim.empty()) << spec.id;
    EXPECT_GT(spec.quick_n, 0) << spec.id;
    EXPECT_GT(spec.quick_q, 0) << spec.id;
    // Quick scale must not exceed full scale — CI runs --quick.
    EXPECT_LE(spec.quick_n, spec.default_n) << spec.id;
    EXPECT_LE(spec.quick_q, spec.default_q) << spec.id;
    std::set<std::string> labels;
    std::set<std::string> assertion_names;
    for (const RunDecl& decl : spec.runs) {
      EXPECT_TRUE(labels.insert(decl.label).second)
          << spec.id << ": duplicate label " << decl.label;
    }
    for (const ShapeAssertion& assertion : spec.assertions) {
      EXPECT_TRUE(assertion_names.insert(assertion.name).second)
          << spec.id << ": duplicate assertion " << assertion.name;
      EXPECT_FALSE(assertion.description.empty())
          << spec.id << "." << assertion.name;
    }
  }
}

TEST(RegistryTest, EveryEngineSpecParses) {
  const Column base = Column::UniquePermutation(64, 1);
  const EngineConfig config;
  for (const FigureSpec& spec : Registry()) {
    for (const RunDecl& decl : spec.runs) {
      std::unique_ptr<SelectEngine> engine;
      EXPECT_TRUE(CreateEngine(decl.engine, &base, config, &engine).ok())
          << spec.id << ": bad engine spec '" << decl.engine << "'";
    }
  }
}

TEST(RegistryTest, SelectorsResolve) {
  std::string error;
  EXPECT_EQ(SelectSpecs("all", &error).size(), Registry().size());
  ASSERT_EQ(SelectSpecs("fig09", &error).size(), 1u);
  EXPECT_EQ(SelectSpecs("fig09", &error)[0]->id, "fig09");
  // Bare figure numbers resolve to the covering spec.
  ASSERT_EQ(SelectSpecs("9", &error).size(), 1u);
  EXPECT_EQ(SelectSpecs("9", &error)[0]->id, "fig09");
  ASSERT_EQ(SelectSpecs("8", &error).size(), 1u);
  EXPECT_EQ(SelectSpecs("8", &error)[0]->id, "fig08");
  EXPECT_TRUE(SelectSpecs("nope", &error).empty());
  EXPECT_FALSE(error.empty());
}

// Every spec runs end-to-end at micro scale and records every metric its
// assertions reference — no assertion can dangle on a typo'd metric name.
// (Verdicts are not checked here: micro scale is far below the separation
// the shapes need; CI's repro-gate checks verdicts at --quick scale.)
TEST(RegistryTest, AssertionMetricsExistAfterARun) {
  for (const FigureSpec& spec : Registry()) {
    ReproOptions options;
    options.n_override = 3000;
    options.q_override = 60;
    FigureResult result;
    ASSERT_TRUE(RunFigure(spec, options, &result).ok()) << spec.id;
    for (const ShapeAssertion& assertion : spec.assertions) {
      for (const std::string& metric : assertion.chain) {
        EXPECT_TRUE(result.metrics.count(metric))
            << spec.id << "." << assertion.name << ": missing " << metric;
      }
      if (!assertion.left.empty()) {
        EXPECT_TRUE(result.metrics.count(assertion.left))
            << spec.id << "." << assertion.name << ": missing "
            << assertion.left;
      }
      if (!assertion.right.empty()) {
        EXPECT_TRUE(result.metrics.count(assertion.right))
            << spec.id << "." << assertion.name << ": missing "
            << assertion.right;
      }
    }
    EXPECT_EQ(result.assertions.size(), spec.assertions.size()) << spec.id;
  }
}

// ------------------------------------------------- assertion evaluator ----

TEST(EvaluateTest, LessAndGreater) {
  std::map<std::string, double> metrics{{"a", 10}, {"b", 100}};
  ShapeAssertion less;
  less.kind = ShapeAssertion::Kind::kLess;
  less.left = "a";
  less.factor = 0.5;
  less.right = "b";
  EXPECT_TRUE(Evaluate(less, metrics).ok);  // 10 < 50
  less.factor = 0.05;
  EXPECT_FALSE(Evaluate(less, metrics).ok);  // 10 !< 5

  ShapeAssertion greater;
  greater.kind = ShapeAssertion::Kind::kGreater;
  greater.left = "b";
  greater.factor = 5;
  greater.right = "a";
  EXPECT_TRUE(Evaluate(greater, metrics).ok);  // 100 > 50
  greater.factor = 20;
  EXPECT_FALSE(Evaluate(greater, metrics).ok);  // 100 !> 200
}

TEST(EvaluateTest, ConstantBoundWhenRightIsEmpty) {
  std::map<std::string, double> metrics{{"violations", 0}};
  ShapeAssertion assertion;
  assertion.kind = ShapeAssertion::Kind::kLess;
  assertion.left = "violations";
  assertion.factor = 1;
  EXPECT_TRUE(Evaluate(assertion, metrics).ok);
  metrics["violations"] = 2;
  EXPECT_FALSE(Evaluate(assertion, metrics).ok);
}

TEST(EvaluateTest, EqualIsExact) {
  std::map<std::string, double> metrics{{"a", 12345}, {"b", 12345},
                                        {"c", 12346}};
  ShapeAssertion assertion;
  assertion.kind = ShapeAssertion::Kind::kEqual;
  assertion.left = "a";
  assertion.right = "b";
  EXPECT_TRUE(Evaluate(assertion, metrics).ok);
  assertion.right = "c";
  EXPECT_FALSE(Evaluate(assertion, metrics).ok);
}

TEST(EvaluateTest, ChainAllowsSlack) {
  std::map<std::string, double> metrics{{"a", 100}, {"b", 98}, {"c", 200}};
  ShapeAssertion assertion;
  assertion.kind = ShapeAssertion::Kind::kChain;
  assertion.chain = {"a", "b", "c"};
  assertion.slack = 0.05;  // b >= a*(0.95) holds
  EXPECT_TRUE(Evaluate(assertion, metrics).ok);
  assertion.slack = 0.0;  // 98 >= 100 fails
  EXPECT_FALSE(Evaluate(assertion, metrics).ok);
}

TEST(EvaluateTest, MissingMetricFailsLoudly) {
  std::map<std::string, double> metrics{{"a", 1}};
  ShapeAssertion assertion;
  assertion.kind = ShapeAssertion::Kind::kLess;
  assertion.left = "ghost";
  assertion.factor = 1;
  const AssertionResult result = Evaluate(assertion, metrics);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.measured.find("not recorded"), std::string::npos);
}

// ---------------------------------------------- workload determinism ----

std::vector<WorkloadKind> AllKinds() {
  auto kinds = Fig17SyntheticKinds();
  kinds.push_back(WorkloadKind::kMixed);
  kinds.push_back(WorkloadKind::kSkyServer);
  return kinds;
}

TEST(WorkloadDeterminismTest, SameSeedIsByteIdentical) {
  WorkloadParams params;
  params.n = 50'000;
  params.num_queries = 300;
  params.seed = 1234;
  for (const WorkloadKind kind : AllKinds()) {
    const auto a = MakeWorkload(kind, params);
    const auto b = MakeWorkload(kind, params);
    ASSERT_EQ(a.size(), b.size()) << WorkloadName(kind);
    ASSERT_FALSE(a.empty()) << WorkloadName(kind);
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(RangeQuery)),
              0)
        << WorkloadName(kind) << ": same seed must give byte-identical "
        << "query sequences";
  }
}

TEST(WorkloadDeterminismTest, RunnerWorkloadIsDeterministicToo) {
  // The driver's own workload construction (including the random-width
  // rewrite of Fig. 11's "Rand" column) is a pure function of the seed.
  RunDecl decl;
  decl.workload = WorkloadKind::kRandom;
  decl.selectivity_percent = -1;  // random widths
  const auto a = BuildWorkload(decl, 50'000, 300, /*seed=*/9);
  const auto b = BuildWorkload(decl, 50'000, 300, /*seed=*/9);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(
      std::memcmp(a.data(), b.data(), a.size() * sizeof(RangeQuery)), 0);
  const auto c = BuildWorkload(decl, 50'000, 300, /*seed=*/10);
  EXPECT_NE(
      std::memcmp(a.data(), c.data(), a.size() * sizeof(RangeQuery)), 0);
}

TEST(WorkloadDeterminismTest, DifferentSeedsDiffer) {
  WorkloadParams a_params;
  a_params.n = 50'000;
  a_params.num_queries = 300;
  a_params.seed = 1;
  WorkloadParams b_params = a_params;
  b_params.seed = 2;
  const auto a = MakeWorkload(WorkloadKind::kRandom, a_params);
  const auto b = MakeWorkload(WorkloadKind::kRandom, b_params);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(
      std::memcmp(a.data(), b.data(), a.size() * sizeof(RangeQuery)), 0);
}

}  // namespace
}  // namespace repro
}  // namespace scrack
