// Differential correctness: every engine must return exactly the reference
// answer (count and sum checksum) for every query of every workload shape,
// while keeping its internal structures valid after every query.
//
// This is the load-bearing suite: the engines share kernels but differ in
// end-piece handling, so each (engine × workload) pair exercises distinct
// crack/materialize/view assembly paths.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "test_util.h"
#include "workload/workload.h"

namespace scrack {
namespace {

using ::scrack::testing::ReferenceSelect;

constexpr Index kN = 2000;
constexpr QueryId kQ = 150;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 77;
  // Small thresholds so the stochastic recursion/progressive paths engage
  // at test scale.
  config.crack_threshold_values = 64;
  config.progressive_min_values = 128;
  config.hybrid_partition_values = 256;
  return config;
}

class EngineWorkloadSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(EngineWorkloadSweep, MatchesReferenceOnUniqueData) {
  const auto& [spec, workload_name] = GetParam();
  const Column base = Column::UniquePermutation(kN, 11);

  WorkloadKind kind;
  ASSERT_TRUE(ParseWorkloadKind(workload_name, &kind));
  WorkloadParams params;
  params.n = kN;
  params.num_queries = kQ;
  params.selectivity = 20;
  params.seed = 13;
  const auto queries = MakeWorkload(kind, params);

  auto engine = CreateEngineOrDie(spec, &base, TestConfig());
  for (const RangeQuery& q : queries) {
    QueryResult result;
    ASSERT_TRUE(engine->Select(q.low, q.high, &result).ok());
    const auto ref = ReferenceSelect(base.values(), q.low, q.high);
    ASSERT_EQ(result.count(), ref.count)
        << spec << " on " << workload_name << " [" << q.low << "," << q.high
        << ")";
    ASSERT_EQ(result.Sum(), ref.sum)
        << spec << " on " << workload_name << " [" << q.low << "," << q.high
        << ")";
    const Status valid = engine->Validate();
    ASSERT_TRUE(valid.ok()) << valid.ToString();
  }
}

TEST_P(EngineWorkloadSweep, MatchesReferenceOnDuplicateHeavyData) {
  const auto& [spec, workload_name] = GetParam();
  const Column base = ::scrack::testing::DuplicateHeavyColumn(kN, 17);

  WorkloadKind kind;
  ASSERT_TRUE(ParseWorkloadKind(workload_name, &kind));
  WorkloadParams params;
  params.n = kN / 8;  // the duplicate domain
  params.num_queries = kQ;
  params.selectivity = 5;
  params.seed = 19;
  const auto queries = MakeWorkload(kind, params);

  auto engine = CreateEngineOrDie(spec, &base, TestConfig());
  for (const RangeQuery& q : queries) {
    QueryResult result;
    ASSERT_TRUE(engine->Select(q.low, q.high, &result).ok());
    const auto ref = ReferenceSelect(base.values(), q.low, q.high);
    ASSERT_EQ(result.count(), ref.count)
        << spec << " on " << workload_name;
    ASSERT_EQ(result.Sum(), ref.sum) << spec << " on " << workload_name;
    const Status valid = engine->Validate();
    ASSERT_TRUE(valid.ok()) << valid.ToString();
  }
}

const std::string kEngineSpecs[] = {
    "scan",      "sort",       "crack",       "ddc",     "ddr",
    "dd1c",      "dd1r",       "mdd1r",       "pmdd1r:1", "pmdd1r:10",
    "pmdd1r:100", "fiftyfifty", "flipcoin",   "sizesel", "everyx:4",
    "scrackmon:3", "r2crack",  "aicc",        "aics",    "aicc1r",
    "aics1r",    "aisc",      "aiss",        "auto",
    "threadsafe:crack",
};

const std::string kWorkloads[] = {
    "Random", "Sequential", "ZoomIn", "Periodic", "SkyServer", "ZoomOutAlt",
};

INSTANTIATE_TEST_SUITE_P(
    AllEnginesAllWorkloads, EngineWorkloadSweep,
    ::testing::Combine(::testing::ValuesIn(kEngineSpecs),
                       ::testing::ValuesIn(kWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Degenerate inputs every engine must survive.
class EngineEdgeCases : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEdgeCases, EmptyColumn) {
  const Column base;
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  QueryResult result;
  ASSERT_TRUE(engine->Select(0, 100, &result).ok());
  EXPECT_EQ(result.count(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST_P(EngineEdgeCases, SingleElementColumn) {
  const Column base(std::vector<Value>{42});
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  EXPECT_EQ(engine->SelectOrDie(0, 100).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(0, 42).count(), 0);
  EXPECT_EQ(engine->SelectOrDie(42, 43).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(43, 100).count(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST_P(EngineEdgeCases, EmptyRangeReturnsNothing) {
  const Column base = Column::UniquePermutation(100, 3);
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  EXPECT_EQ(engine->SelectOrDie(50, 50).count(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST_P(EngineEdgeCases, InvertedRangeIsInvalidArgument) {
  const Column base = Column::UniquePermutation(100, 3);
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  QueryResult result;
  EXPECT_EQ(engine->Select(60, 40, &result).code(),
            StatusCode::kInvalidArgument);
}

TEST_P(EngineEdgeCases, OutOfDomainBounds) {
  const Column base = Column::UniquePermutation(100, 3);
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  EXPECT_EQ(engine->SelectOrDie(-1000, 1000).count(), 100);
  EXPECT_EQ(engine->SelectOrDie(-1000, -500).count(), 0);
  EXPECT_EQ(engine->SelectOrDie(500, 1000).count(), 0);
  EXPECT_EQ(engine->SelectOrDie(-1000, 50).count(), 50);
  EXPECT_EQ(engine->SelectOrDie(50, 1000).count(), 50);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST_P(EngineEdgeCases, FullDomainQuery) {
  const Column base = Column::UniquePermutation(256, 5);
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  const QueryResult result = engine->SelectOrDie(0, 256);
  EXPECT_EQ(result.count(), 256);
  EXPECT_EQ(result.Sum(), 255 * 256 / 2);
}

TEST_P(EngineEdgeCases, RepeatedIdenticalQueriesStayCorrect) {
  const Column base = Column::UniquePermutation(512, 7);
  auto engine = CreateEngineOrDie(GetParam(), &base, TestConfig());
  for (int i = 0; i < 10; ++i) {
    const QueryResult result = engine->SelectOrDie(100, 200);
    EXPECT_EQ(result.count(), 100);
    EXPECT_TRUE(engine->Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineEdgeCases,
                         ::testing::ValuesIn(kEngineSpecs),
                         [](const ::testing::TestParamInfo<std::string>&
                                info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace scrack
