// Tests for the from-scratch Introselect (util/introselect.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "test_util.h"
#include "util/introselect.h"
#include "util/rng.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

// Verifies the three-way partition postcondition of IntroselectPartition.
void ExpectPartitioned(const std::vector<Value>& data, Index lo, Index hi,
                       const SelectionResult& result) {
  ASSERT_LE(lo, result.eq_begin);
  ASSERT_LT(result.eq_begin, result.eq_end);
  ASSERT_LE(result.eq_end, hi);
  for (Index i = lo; i < result.eq_begin; ++i) {
    EXPECT_LT(data[static_cast<size_t>(i)], result.value) << "at " << i;
  }
  for (Index i = result.eq_begin; i < result.eq_end; ++i) {
    EXPECT_EQ(data[static_cast<size_t>(i)], result.value) << "at " << i;
  }
  for (Index i = result.eq_end; i < hi; ++i) {
    EXPECT_GT(data[static_cast<size_t>(i)], result.value) << "at " << i;
  }
}

TEST(IntroselectTest, SingleElement) {
  std::vector<Value> data = {42};
  EXPECT_EQ(SelectNth(data.data(), 1, 0), 42);
}

TEST(IntroselectTest, TwoElements) {
  std::vector<Value> data = {9, 3};
  EXPECT_EQ(SelectNth(data.data(), 2, 0), 3);
  data = {9, 3};
  EXPECT_EQ(SelectNth(data.data(), 2, 1), 9);
}

TEST(IntroselectTest, MedianOfSmallArray) {
  std::vector<Value> data = {5, 1, 4, 2, 3};
  EXPECT_EQ(SelectNth(data.data(), 5, 2), 3);
}

TEST(IntroselectTest, PreservesMultiset) {
  Rng rng(31);
  std::vector<Value> data(500);
  for (auto& v : data) v = rng.UniformValue(0, 100);
  const std::vector<Value> before = Sorted(data);
  SelectNth(data.data(), 500, 250);
  EXPECT_EQ(Sorted(data), before);
}

TEST(IntroselectTest, PartitionPostconditionWithDuplicates) {
  Rng rng(37);
  std::vector<Value> data(300);
  for (auto& v : data) v = rng.UniformValue(0, 10);  // heavy duplicates
  const auto result =
      IntroselectPartition(data.data(), 0, 300, 150);
  ExpectPartitioned(data, 0, 300, result);
}

TEST(IntroselectTest, AllEqualValues) {
  std::vector<Value> data(100, 7);
  const auto result = IntroselectPartition(data.data(), 0, 100, 50);
  EXPECT_EQ(result.value, 7);
  EXPECT_EQ(result.eq_begin, 0);
  EXPECT_EQ(result.eq_end, 100);
}

TEST(IntroselectTest, SubrangeSelection) {
  // Only [lo, hi) may be rearranged.
  std::vector<Value> data = {100, 200, 5, 3, 9, 1, 7, 300, 400};
  const auto result = IntroselectPartition(data.data(), 2, 7, 4);
  EXPECT_EQ(data[0], 100);
  EXPECT_EQ(data[1], 200);
  EXPECT_EQ(data[7], 300);
  EXPECT_EQ(data[8], 400);
  // Rank 4 (global index) within [2,7) = {5,3,9,1,7} sorted {1,3,5,7,9}:
  // index 4 is the 3rd of the subrange -> 5.
  EXPECT_EQ(result.value, 5);
  ExpectPartitioned(data, 2, 7, result);
}

// Parameterized sweep: every k on several distributions and sizes must
// match std::nth_element's value.
struct SelectCase {
  const char* name;
  Index n;
  int distribution;  // 0 random, 1 sorted, 2 reverse, 3 duplicates, 4 organ
};

class IntroselectSweep : public ::testing::TestWithParam<SelectCase> {};

std::vector<Value> MakeData(const SelectCase& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> data(static_cast<size_t>(c.n));
  switch (c.distribution) {
    case 0:
      for (auto& v : data) v = rng.UniformValue(0, 1'000'000);
      break;
    case 1:
      std::iota(data.begin(), data.end(), 0);
      break;
    case 2:
      std::iota(data.rbegin(), data.rend(), 0);
      break;
    case 3:
      for (auto& v : data) v = rng.UniformValue(0, 5);
      break;
    case 4:  // organ pipe: ascending then descending
      for (Index i = 0; i < c.n; ++i) {
        data[static_cast<size_t>(i)] = std::min(i, c.n - i);
      }
      break;
  }
  return data;
}

TEST_P(IntroselectSweep, MatchesNthElementForEveryK) {
  const SelectCase c = GetParam();
  const std::vector<Value> base = MakeData(c, 1234);
  // Stride over k to keep runtime sane for the bigger sizes.
  const Index stride = std::max<Index>(1, c.n / 64);
  for (Index k = 0; k < c.n; k += stride) {
    std::vector<Value> ours = base;
    std::vector<Value> ref = base;
    const auto result = IntroselectPartition(ours.data(), 0, c.n, k);
    std::nth_element(ref.begin(), ref.begin() + k, ref.end());
    EXPECT_EQ(result.value, ref[static_cast<size_t>(k)]) << "k=" << k;
    ExpectPartitioned(ours, 0, c.n, result);
    EXPECT_EQ(Sorted(ours), Sorted(ref)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, IntroselectSweep,
    ::testing::Values(SelectCase{"random_small", 64, 0},
                      SelectCase{"random_large", 3000, 0},
                      SelectCase{"sorted", 1000, 1},
                      SelectCase{"reverse", 1000, 2},
                      SelectCase{"duplicates", 1000, 3},
                      SelectCase{"organ_pipe", 1000, 4}),
    [](const ::testing::TestParamInfo<SelectCase>& info) {
      return info.param.name;
    });

TEST(IntroselectTest, WorstCaseInputStaysLinearish) {
  // A large already-sorted array exercises the depth budget; correctness is
  // what we check here (the BFPRT fallback guarantees termination).
  const Index n = 200'000;
  std::vector<Value> data(static_cast<size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  EXPECT_EQ(SelectNth(data.data(), n, n / 2), n / 2);
}

}  // namespace
}  // namespace scrack
