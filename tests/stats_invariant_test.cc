// Cross-engine invariants on the EngineStats accounting — the counters the
// harness and the paper's cost analysis rely on must be internally
// consistent for every engine on every workload.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "test_util.h"
#include "workload/workload.h"

namespace scrack {
namespace {

class StatsSweep
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(StatsSweep, CountersAreConsistent) {
  const auto& [spec, workload_name] = GetParam();
  const Index n = 5000;
  const Column base = Column::UniquePermutation(n, 31);

  WorkloadKind kind;
  ASSERT_TRUE(ParseWorkloadKind(workload_name, &kind));
  WorkloadParams params;
  params.n = n;
  params.num_queries = 100;
  params.seed = 37;

  EngineConfig config;
  config.seed = 41;
  config.crack_threshold_values = 64;
  config.progressive_min_values = 256;
  config.hybrid_partition_values = 512;
  auto engine = CreateEngineOrDie(spec, &base, config);

  int64_t prev_queries = 0;
  int64_t prev_touched = 0;
  for (const RangeQuery& q : MakeWorkload(kind, params)) {
    QueryResult result;
    ASSERT_TRUE(engine->Select(q.low, q.high, &result).ok());
    const EngineStats& s = engine->stats();
    // Monotone counters.
    ASSERT_EQ(s.queries, prev_queries + 1);
    ASSERT_GE(s.tuples_touched, prev_touched);
    prev_queries = s.queries;
    prev_touched = s.tuples_touched;
    // Non-negative everything.
    ASSERT_GE(s.swaps, 0);
    ASSERT_GE(s.cracks, 0);
    ASSERT_GE(s.materialized, 0);
    ASSERT_GE(s.random_pivots, 0);
  }
  const EngineStats& s = engine->stats();
  // A swap moves two elements that must have been touched; over a whole
  // run, swaps can never exceed total touches.
  EXPECT_LE(s.swaps, s.tuples_touched);
  // Materialized tuples were produced by queries; bounded by touches plus
  // result sizes (loose but catches unit errors like counting bytes).
  EXPECT_LE(s.materialized, 2 * s.tuples_touched + 1);
}

const std::string kSpecs[] = {
    "scan", "sort",  "crack",  "ddc",       "dd1r",
    "mdd1r", "pmdd1r:10", "scrackmon:2", "aicc", "aiss",
};
const std::string kWorkloads[] = {"Random", "Sequential", "ZoomInAlt"};

INSTANTIATE_TEST_SUITE_P(
    Engines, StatsSweep,
    ::testing::Combine(::testing::ValuesIn(kSpecs),
                       ::testing::ValuesIn(kWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, std::string>>&
           info) {
      std::string name =
          std::get<0>(info.param) + "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// The touched counter drives the harness's per-query deltas; verify the
// deltas reconstruct the total.
TEST(StatsTest, HarnessDeltasSumToEngineTotal) {
  const Column base = Column::UniquePermutation(2000, 3);
  EngineConfig config;
  config.seed = 5;
  auto engine = CreateEngineOrDie("crack", &base, config);
  WorkloadParams params;
  params.n = 2000;
  params.num_queries = 50;
  params.seed = 7;
  const RunResult run = RunQueries(
      engine.get(), MakeWorkload(WorkloadKind::kRandom, params));
  EXPECT_EQ(run.CumulativeTouched(), engine->stats().tuples_touched);
}

}  // namespace
}  // namespace scrack
