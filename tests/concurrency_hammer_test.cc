// Multi-threaded hammer tests for the two concurrency-safe engines:
// ThreadSafeEngine (exclusive lock + materialize, paper §6) and
// ShardedEngine (per-shard locks + thread-pool fan-out).
//
// N threads fire M random range queries each at one shared engine; every
// query's count/sum checksum is compared against a single-threaded
// reference computed from the raw data. Any torn reorganization, lost
// update, or dangling view shows up as a checksum mismatch (or as a race
// under the sanitizer CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "harness/engine_factory.h"
#include "parallel/sharded_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

constexpr int kThreads = 4;
constexpr int kQueriesPerThread = 150;

// Hammers `spec` over duplicate-heavy data and reports mismatches. gtest
// assertions stay on the main thread; workers only count failures.
void HammerSpec(const std::string& spec) {
  const Index n = 8192;
  const Value domain = n / 8;  // duplicate-heavy: ~8 copies per value
  const Column base = Column::UniformRandom(n, 0, domain, 61);
  auto engine = CreateEngineOrDie(spec, &base, EngineConfig{});

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto range = RandomRange(&rng, domain);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const ReferenceAnswer want =
            ReferenceSelect(base.values(), range.first, range.second);
        if (result.count() != want.count || result.Sum() != want.sum) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0) << spec;
  EXPECT_EQ(mismatches.load(), 0) << spec;
  EXPECT_TRUE(engine->Validate().ok()) << spec;
  EXPECT_EQ(engine->stats().queries, 0)
      << "wrapper engines do not count queries on the outer stats_";
}

TEST(ThreadSafeHammerTest, ConcurrentQueriesOnCrack) {
  HammerSpec("threadsafe:crack");
}

TEST(ThreadSafeHammerTest, ConcurrentQueriesOnMdd1r) {
  HammerSpec("threadsafe:mdd1r");
}

TEST(ThreadSafeHammerTest, MaterializedResultsOutliveReorganization) {
  const Column base = Column::UniquePermutation(4096, 67);
  auto engine = CreateEngineOrDie("threadsafe:crack", &base, EngineConfig{});
  const QueryResult first = engine->SelectOrDie(1000, 3000);
  EXPECT_TRUE(first.materialized());
  Rng rng(71);
  for (int i = 0; i < 50; ++i) {
    const auto range = RandomRange(&rng, base.size());
    engine->SelectOrDie(range.first, range.second);
  }
  const ReferenceAnswer want = ReferenceSelect(base.values(), 1000, 3000);
  EXPECT_EQ(first.count(), want.count);
  EXPECT_EQ(first.Sum(), want.sum);
}

class ShardedHammerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedHammerTest, ConcurrentQueriesMatchReference) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 73);
  auto engine = CreateEngineOrDie(GetParam(), &base, EngineConfig{});
  auto* sharded = dynamic_cast<ShardedEngine*>(engine.get());
  ASSERT_NE(sharded, nullptr);

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::atomic<bool> done{false};
  // A monitoring thread polls StatsSnapshot while the hammer runs — the
  // dashboard pattern the locked snapshot accessor exists for. Counters
  // must never run backwards.
  std::thread monitor([&] {
    int64_t last_queries = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const EngineStats snapshot = sharded->StatsSnapshot();
      if (snapshot.queries < last_queries) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      last_queries = snapshot.queries;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(2000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto range = RandomRange(&rng, domain);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const ReferenceAnswer want =
            ReferenceSelect(base.values(), range.first, range.second);
        if (result.count() != want.count || result.Sum() != want.sum) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  done.store(true, std::memory_order_relaxed);
  monitor.join();

  EXPECT_EQ(errors.load(), 0) << GetParam();
  EXPECT_EQ(mismatches.load(), 0) << GetParam();
  EXPECT_TRUE(engine->Validate().ok()) << GetParam();
  EXPECT_EQ(sharded->StatsSnapshot().queries, kThreads * kQueriesPerThread)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Specs, ShardedHammerTest,
                         ::testing::Values("sharded(4,crack)",
                                           "sharded(3,mdd1r)",
                                           "sharded(8,ddc)",
                                           "sharded(1,crack)"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// Concurrent aggregate execution: workers interleave single Execute calls
// and small ExecuteBatch calls in every aggregate mode. Aggregate outputs
// are plain scalars, so unlike views they must be correct regardless of
// concurrent reorganization by other threads.
class AggregateHammerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AggregateHammerTest, ConcurrentAggregatesMatchReference) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 83);
  auto engine = CreateEngineOrDie(GetParam(), &base, EngineConfig{});

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(4000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const auto range = RandomRange(&rng, domain);
        const ReferenceAnswer want =
            ReferenceSelect(base.values(), range.first, range.second);
        if (i % 3 == 0) {
          // Small batch: count + sum + exists over the same range.
          const std::vector<Query> batch = {
              Query{range.first, range.second, OutputMode::kCount, 1},
              Query{range.first, range.second, OutputMode::kSum, 1},
              Query{range.first, range.second, OutputMode::kExists, 2},
          };
          std::vector<QueryOutput> outputs;
          if (!engine->ExecuteBatch(batch, &outputs).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (outputs[0].count != want.count ||
              outputs[1].sum != want.sum ||
              outputs[2].exists != (want.count >= 2)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          QueryOutput output;
          if (!engine
                   ->Execute(Query{range.first, range.second,
                                   OutputMode::kSum, 1},
                             &output)
                   .ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          if (output.count != want.count || output.sum != want.sum) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0) << GetParam();
  EXPECT_EQ(mismatches.load(), 0) << GetParam();
  EXPECT_TRUE(engine->Validate().ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Specs, AggregateHammerTest,
                         ::testing::Values("threadsafe:crack",
                                           "sharded(4,crack)",
                                           "sharded(3,mdd1r)"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

TEST(ShardedHammerTest, ConcurrentInsertsAndQueries) {
  const Index n = 4096;
  const Value domain = n;
  const Column base = Column::UniquePermutation(n, 79);
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});

  // Two writers stage disjoint value sets while two readers query; after
  // the join, one full-domain select must see every insert exactly once.
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (Value v = w; v < 400; v += 2) {
        if (!engine->StageInsert(v * 10).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(3000 + static_cast<uint64_t>(r));
      for (int i = 0; i < 100; ++i) {
        const auto range = RandomRange(&rng, domain);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  ASSERT_EQ(errors.load(), 0);

  std::vector<Value> expected = base.values();
  for (Value v = 0; v < 400; ++v) expected.push_back(v * 10);
  const ReferenceAnswer want =
      ReferenceSelect(expected, 0, domain * 10 + 1);
  const QueryResult got = engine->SelectOrDie(0, domain * 10 + 1);
  EXPECT_EQ(got.count(), want.count);
  EXPECT_EQ(got.Sum(), want.sum);
  EXPECT_TRUE(engine->Validate().ok());
}

}  // namespace
}  // namespace scrack
