// Tests for the future-work extensions: AutoEngine (dynamic strategy
// selection, paper §6) and ThreadSafeEngine (concurrency control).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "cracking/auto_engine.h"
#include "cracking/crack_engine.h"
#include "cracking/threadsafe_engine.h"
#include "harness/engine_factory.h"
#include "test_util.h"
#include "workload/workload.h"

namespace scrack {
namespace {

using ::scrack::testing::ReferenceSelect;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 53;
  config.crack_threshold_values = 64;
  return config;
}

// -------------------------------------------------------------- AutoEngine --

TEST(AutoEngineTest, CostParityWithCrackOnRandomWorkload) {
  // On random workloads stochastic actions cost about the same as original
  // cracking (Fig. 10), so whatever the detector decides, Auto must stay
  // within a small factor of Crack's total touched count.
  const Index n = 50'000;
  const Column base = Column::UniquePermutation(n, 3);
  AutoEngine aut(&base, TestConfig());
  CrackEngine crack(&base, TestConfig());
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Value a = rng.UniformValue(0, n - 10);
    aut.SelectOrDie(a, a + 10);
    crack.SelectOrDie(a, a + 10);
  }
  EXPECT_LT(aut.stats().tuples_touched, 2 * crack.stats().tuples_touched);
}

TEST(AutoEngineTest, FallsBackToOriginalOnceConverged) {
  // After enough random queries the column is finely cracked, touched
  // counts are tiny, and the detector must stop firing: the tail of the
  // run should be answered almost entirely by original cracking.
  const Index n = 50'000;
  const Column base = Column::UniquePermutation(n, 3);
  AutoEngine engine(&base, TestConfig());
  Rng rng(5);
  int64_t stochastic_at_half = 0;
  for (int i = 0; i < 2000; ++i) {
    const Value a = rng.UniformValue(0, n - 10);
    engine.SelectOrDie(a, a + 10);
    if (i == 999) stochastic_at_half = engine.stochastic_queries();
  }
  const int64_t tail_stochastic =
      engine.stochastic_queries() - stochastic_at_half;
  EXPECT_LT(tail_stochastic, 50);  // < 5% of the last 1000 queries
}

TEST(AutoEngineTest, SwitchesToStochasticOnSequentialWorkload) {
  const Index n = 50'000;
  const Column base = Column::UniquePermutation(n, 3);
  AutoEngine engine(&base, TestConfig());
  for (int i = 0; i < 100; ++i) {
    engine.SelectOrDie(i * 10, i * 10 + 10);
  }
  // Stochastic bursts must fire; once the random cracks have broken the
  // hammered region the engine may legitimately fall back to original
  // cracking, so the expectation is bursts, not permanence.
  EXPECT_GT(engine.stochastic_queries(), 8);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(AutoEngineTest, BeatsCrackOnSequentialTouches) {
  const Index n = 100'000;
  const Column base = Column::UniquePermutation(n, 3);
  AutoEngine aut(&base, TestConfig());
  CrackEngine crack(&base, TestConfig());
  for (int i = 0; i < 200; ++i) {
    aut.SelectOrDie(i * 20, i * 20 + 10);
    crack.SelectOrDie(i * 20, i * 20 + 10);
  }
  EXPECT_LT(aut.stats().tuples_touched, crack.stats().tuples_touched / 2);
}

TEST(AutoEngineTest, CorrectOnAllWorkloads) {
  const Index n = 2000;
  const Column base = Column::UniquePermutation(n, 7);
  for (const WorkloadKind kind :
       {WorkloadKind::kRandom, WorkloadKind::kSequential,
        WorkloadKind::kZoomInAlt, WorkloadKind::kSkyServer}) {
    AutoEngine engine(&base, TestConfig());
    WorkloadParams params;
    params.n = n;
    params.num_queries = 100;
    params.seed = 9;
    for (const RangeQuery& q : MakeWorkload(kind, params)) {
      QueryResult result;
      ASSERT_TRUE(engine.Select(q.low, q.high, &result).ok());
      const auto ref = ReferenceSelect(base.values(), q.low, q.high);
      ASSERT_EQ(result.count(), ref.count) << WorkloadName(kind);
      ASSERT_EQ(result.Sum(), ref.sum) << WorkloadName(kind);
      ASSERT_TRUE(engine.Validate().ok());
    }
  }
}

TEST(AutoEngineTest, FactorySpecWorks) {
  const Column base = Column::UniquePermutation(100, 1);
  auto engine = CreateEngineOrDie("auto", &base, TestConfig());
  EXPECT_EQ(engine->name(), "auto");
  EXPECT_EQ(engine->SelectOrDie(10, 20).count(), 10);
}

// -------------------------------------------------------- ThreadSafeEngine --

TEST(ThreadSafeEngineTest, WrapsAndMaterializes) {
  const Column base = Column::UniquePermutation(1000, 1);
  auto engine =
      CreateEngineOrDie("threadsafe:crack", &base, TestConfig());
  EXPECT_EQ(engine->name(), "threadsafe(crack)");
  const QueryResult result = engine->SelectOrDie(100, 200);
  EXPECT_EQ(result.count(), 100);
  EXPECT_TRUE(result.materialized());  // views are copied out
}

TEST(ThreadSafeEngineTest, NestedSpecParsing) {
  const Column base = Column::UniquePermutation(100, 1);
  auto engine =
      CreateEngineOrDie("threadsafe:pmdd1r:10", &base, TestConfig());
  EXPECT_EQ(engine->name(), "threadsafe(pmdd1r(10%))");
  std::unique_ptr<SelectEngine> bad;
  EXPECT_FALSE(CreateEngine("threadsafe", &base, TestConfig(), &bad).ok());
  EXPECT_FALSE(
      CreateEngine("threadsafe:nope", &base, TestConfig(), &bad).ok());
}

TEST(ThreadSafeEngineTest, ConcurrentQueriesAndUpdatesStayConsistent) {
  const Index n = 20'000;
  const Column base = Column::UniquePermutation(n, 3);
  ThreadSafeEngine engine(
      CreateEngineOrDie("mdd1r", &base, TestConfig()));

  std::atomic<bool> failed{false};
  std::atomic<int64_t> inserted{0};

  // Reader threads: full-domain counts must always equal base size plus
  // the inserts merged so far (inserts use fresh values above the domain,
  // so the count over the original domain is invariant).
  auto reader = [&]() {
    for (int i = 0; i < 50 && !failed; ++i) {
      QueryResult result;
      if (!engine.Select(0, n, &result).ok() || result.count() != n) {
        failed = true;
      }
      QueryResult narrow;
      if (!engine.Select(1000, 2000, &narrow).ok() ||
          narrow.count() != 1000) {
        failed = true;
      }
    }
  };
  auto writer = [&]() {
    for (int i = 0; i < 100 && !failed; ++i) {
      const Value v = n + inserted.fetch_add(1);
      if (!engine.StageInsert(v).ok()) failed = true;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(reader);
  threads.emplace_back(reader);
  threads.emplace_back(writer);
  threads.emplace_back(reader);
  for (auto& t : threads) t.join();

  ASSERT_FALSE(failed);
  // Drain everything; total must be n + all inserts.
  QueryResult all;
  ASSERT_TRUE(engine.Select(0, 10 * n, &all).ok());
  EXPECT_EQ(all.count(), n + inserted.load());
  EXPECT_TRUE(engine.Validate().ok());
}

}  // namespace
}  // namespace scrack
