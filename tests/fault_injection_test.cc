// Fault-injected degradation tests.
//
// Strategy: run the same deterministic workload twice — once clean to get
// reference answers, once with a fault injected at every reachable point
// in turn (countdown 1, 2, 3, ... until a query crosses no more points).
// After each injected abort the column must still satisfy every audited
// invariant (the audit wrapper runs with fail_fast, so a violated
// invariant fails the query that exposed it), and the retried query must
// return exactly the clean answer. This proves the exception-safety
// contract stated in util/fault.h for every SCRACK_FAULT_POINT site, not
// just the ones a random schedule happens to hit.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "audit/audit_engine.h"
#include "harness/engine_factory.h"
#include "progressive/chaos_engine.h"
#include "test_util.h"
#include "util/fault.h"

namespace scrack {
namespace {

using testing::DuplicateHeavyColumn;
using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

constexpr Index kN = 20 * 1000;
constexpr int kQueries = 60;

TEST(FaultPrimitiveTest, CountdownFiresOnExactCrossing) {
  fault::Disarm();
  fault::ResetPointsCrossed();
  EXPECT_FALSE(fault::Armed());
  SCRACK_FAULT_POINT("free");  // disarmed crossings are free
  EXPECT_EQ(fault::PointsCrossed(), 1);

  fault::ArmCountdown(2);
  EXPECT_TRUE(fault::Armed());
  SCRACK_FAULT_POINT("first");  // countdown 2 -> 1, no throw
  bool thrown = false;
  try {
    SCRACK_FAULT_POINT("second");
  } catch (const fault::InjectedFault& f) {
    thrown = true;
    EXPECT_STREQ(f.point(), "second");
  }
  EXPECT_TRUE(thrown);
  EXPECT_FALSE(fault::Armed());  // firing consumes the arm
  SCRACK_FAULT_POINT("after");   // free again
  EXPECT_EQ(fault::PointsCrossed(), 4);
  fault::ResetPointsCrossed();
  EXPECT_EQ(fault::PointsCrossed(), 0);
}

TEST(FaultPrimitiveTest, DisarmCancelsPendingCountdown) {
  fault::ArmCountdown(1);
  fault::Disarm();
  SCRACK_FAULT_POINT("x");  // must not throw
  SUCCEED();
}

/// Shared workload: every 7th step stages an insert (so MergePendingIn and
/// its "merge" point are on the injected path), then a random range query.
struct Step {
  bool insert = false;
  Value insert_value = 0;
  Value low = 0;
  Value high = 0;
};

std::vector<Step> MakeSteps(uint64_t seed) {
  Rng rng(seed);
  std::vector<Step> steps;
  steps.reserve(kQueries);
  // Bounds and inserts stay inside DuplicateHeavyColumn's value domain
  // [0, kN/8) so queries exercise the real cracking paths (PartitionThree
  // and AddCrack) rather than resolving trivially against min/max.
  const Value domain = kN / 8;
  for (int i = 0; i < kQueries; ++i) {
    Step step;
    step.insert = i % 7 == 3;
    step.insert_value = rng.UniformValue(0, domain);
    const auto range = RandomRange(&rng, domain);
    step.low = range.first;
    step.high = range.second;
    steps.push_back(step);
  }
  return steps;
}

/// Calls Select, converting an InjectedFault unwind into (*faulted, point)
/// so the sweep can assert on the post-abort state from test scope.
Status GuardedSelect(SelectEngine* engine, Value low, Value high,
                     QueryResult* result, bool* faulted,
                     std::string* point) {
  try {
    return engine->Select(low, high, result);
  } catch (const fault::InjectedFault& f) {
    *faulted = true;
    *point = f.point();
    return Status::OK();
  }
}

/// Exhaustive per-point sweep over `spec` (which must include the audit
/// wrapper so every surviving state is invariant-checked): for every query
/// of the stream and every fault-point crossing that query makes, arm that
/// exact crossing, let the abort unwind, audit the column, retry, and
/// require the clean run's exact answer. A countdown that never fires
/// (the retry shifted the path) is tolerated — the state assertions run
/// either way. Records the distinct points that fired.
void SweepSpec(const std::string& spec, std::set<std::string>* fired) {
  const Column base = DuplicateHeavyColumn(kN, 61);
  EngineConfig config;
  config.crack_threshold_values = 1024;
  const std::vector<Step> steps = MakeSteps(67);

  std::vector<ReferenceAnswer> expected;
  std::vector<int64_t> crossings;
  {
    auto engine = CreateEngineOrDie(spec, &base, config);
    std::vector<Value> live = base.values();
    for (const Step& step : steps) {
      if (step.insert) {
        ASSERT_TRUE(engine->StageInsert(step.insert_value).ok());
        live.push_back(step.insert_value);
      }
      fault::ResetPointsCrossed();
      QueryResult result;
      ASSERT_TRUE(engine->Select(step.low, step.high, &result).ok());
      crossings.push_back(fault::PointsCrossed());
      expected.push_back(ReferenceSelect(live, step.low, step.high));
    }
  }

  // One engine per target step; inside it every countdown for that step
  // runs against the same instance (retry-then-continue), which both
  // bounds the test cost and mimics a server surviving repeated faults.
  int64_t injections = 0;
  for (size_t target = 0; target < steps.size(); ++target) {
    if (crossings[target] == 0) continue;
    auto engine = CreateEngineOrDie(spec, &base, config);
    auto* audit = dynamic_cast<AuditEngine*>(engine.get());
    ASSERT_NE(audit, nullptr) << "sweep requires an audit(...) spec";
    // Clean prefix.
    for (size_t i = 0; i < target; ++i) {
      if (steps[i].insert) {
        ASSERT_TRUE(engine->StageInsert(steps[i].insert_value).ok());
      }
      QueryResult result;
      ASSERT_TRUE(engine->Select(steps[i].low, steps[i].high, &result).ok());
    }
    if (steps[target].insert) {
      ASSERT_TRUE(engine->StageInsert(steps[target].insert_value).ok());
    }
    // Every countdown against the target query. After the first success
    // the query's work is done, so later countdowns mostly cross fewer
    // points and fire earlier paths — still a valid abort site.
    for (int64_t nth = 1; nth <= crossings[target]; ++nth) {
      fault::ArmCountdown(nth);
      bool faulted = false;
      std::string point;
      QueryResult result;
      Status status = GuardedSelect(engine.get(), steps[target].low,
                                    steps[target].high, &result, &faulted,
                                    &point);
      fault::Disarm();
      if (faulted) {
        ++injections;
        fired->insert(point);
        ASSERT_TRUE(audit->AuditNow().ok())
            << spec << " step " << target << " countdown " << nth
            << " point " << point;
        result = QueryResult{};
        status = engine->Select(steps[target].low, steps[target].high,
                                &result);
      }
      ASSERT_TRUE(status.ok()) << spec << " countdown " << nth;
      ASSERT_EQ(result.count(), expected[target].count)
          << spec << " step " << target << " countdown " << nth;
      ASSERT_EQ(result.Sum(), expected[target].sum)
          << spec << " step " << target << " countdown " << nth;
    }
    EXPECT_TRUE(audit->findings().empty()) << spec;
    EXPECT_TRUE(engine->Validate().ok()) << spec;
  }
  EXPECT_GT(injections, 0) << spec;
}

TEST(FaultInjectionTest, AuditedCrackSurvivesEveryFaultPoint) {
  std::set<std::string> fired;
  SweepSpec("audit(crack)", &fired);
  // The crack path must expose at least the allocation, partition and
  // index-registration sites; "merge" needs a staged insert (provided by
  // the stream) and "slice" only runs on the budgeted path.
  EXPECT_TRUE(fired.count("alloc") == 1 || fired.count("partition") == 1)
      << "no early-path fault fired";
  EXPECT_EQ(fired.count("register"), 1u);
  EXPECT_EQ(fired.count("merge"), 1u);
}

TEST(FaultInjectionTest, AuditedProgSurvivesEveryFaultPoint) {
  std::set<std::string> fired;
  SweepSpec("audit(prog(800,crack))", &fired);
  EXPECT_EQ(fired.count("slice"), 1u) << "budgeted partition never aborted";
  EXPECT_EQ(fired.count("register"), 1u);
  EXPECT_EQ(fired.count("merge"), 1u);
}

// ------------------------------------------------------------- chaos ----

TEST(ChaosEngineTest, RetriesMatchCleanAnswers) {
  const Column base = DuplicateHeavyColumn(kN, 71);
  EngineConfig config;
  config.crack_threshold_values = 1024;
  const std::vector<Step> steps = MakeSteps(73);

  auto inner = CreateEngineOrDie("audit(prog(800,crack))", &base, config);
  ChaosOptions options;
  options.period = 2;  // inject aggressively
  options.seed = 99;
  ChaosEngine engine(std::move(inner), options);

  std::vector<Value> live = base.values();
  for (size_t i = 0; i < steps.size(); ++i) {
    const Step& step = steps[i];
    if (step.insert) {
      ASSERT_TRUE(engine.StageInsert(step.insert_value).ok());
      live.push_back(step.insert_value);
    }
    const ReferenceAnswer expected =
        ReferenceSelect(live, step.low, step.high);
    QueryResult result;
    ASSERT_TRUE(engine.Select(step.low, step.high, &result).ok())
        << "query " << i;
    EXPECT_EQ(result.count(), expected.count) << "query " << i;
    EXPECT_EQ(result.Sum(), expected.sum) << "query " << i;
  }
  EXPECT_GT(engine.faults_injected(), 0);
  EXPECT_EQ(engine.retries(), engine.faults_injected());
  EXPECT_FALSE(engine.last_fault_point().empty());
  EXPECT_TRUE(engine.Validate().ok());
  auto* audit = dynamic_cast<AuditEngine*>(engine.inner());
  ASSERT_NE(audit, nullptr);
  EXPECT_TRUE(audit->findings().empty());
  EXPECT_EQ(engine.name(), "chaos(audit(prog(800,crack)))");
}

TEST(ChaosEngineTest, AggregatesRetryToo) {
  const Column base = DuplicateHeavyColumn(kN, 79);
  EngineConfig config;
  config.crack_threshold_values = 1024;
  auto inner = CreateEngineOrDie("audit(crack)", &base, config);
  ChaosOptions options;
  options.period = 2;
  options.seed = 7;
  ChaosEngine engine(std::move(inner), options);
  Rng rng(83);
  for (int i = 0; i < kQueries; ++i) {
    const auto range = RandomRange(&rng, kN);
    const ReferenceAnswer expected =
        ReferenceSelect(base.values(), range.first, range.second);
    Query query;
    query.low = range.first;
    query.high = range.second;
    query.mode = OutputMode::kSum;
    QueryOutput output;
    ASSERT_TRUE(engine.Execute(query, &output).ok()) << "query " << i;
    EXPECT_EQ(output.sum, expected.sum) << "query " << i;
    EXPECT_EQ(output.count, expected.count) << "query " << i;
  }
  EXPECT_GT(engine.faults_injected(), 0);
}

TEST(ChaosEngineTest, PeriodZeroNeverInjects) {
  const Column base = DuplicateHeavyColumn(4096, 5);
  auto inner = CreateEngineOrDie("crack", &base, EngineConfig{});
  ChaosOptions options;
  options.period = 0;
  ChaosEngine engine(std::move(inner), options);
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    const auto range = RandomRange(&rng, 4096);
    QueryResult result;
    ASSERT_TRUE(engine.Select(range.first, range.second, &result).ok());
  }
  EXPECT_EQ(engine.faults_injected(), 0);
  EXPECT_EQ(engine.retries(), 0);
}

}  // namespace
}  // namespace scrack
