// Tests for CrackerIndex (index/cracker_index.h): piece lookup, crack
// registration, metadata inheritance, position maintenance, validation.
#include <gtest/gtest.h>

#include <vector>

#include "index/cracker_index.h"

namespace scrack {
namespace {

TEST(CrackerIndexTest, UncrackedColumnIsOnePiece) {
  CrackerIndex index(100);
  const Piece piece = index.FindPiece(42);
  EXPECT_EQ(piece.begin, 0);
  EXPECT_EQ(piece.end, 100);
  EXPECT_FALSE(piece.has_lower);
  EXPECT_FALSE(piece.has_upper);
  EXPECT_EQ(piece.meta_key, CrackerIndex::kHeadKey);
  EXPECT_EQ(piece.size(), 100);
  EXPECT_EQ(index.num_cracks(), 0u);
}

TEST(CrackerIndexTest, FindPieceRespectsCrackSemantics) {
  CrackerIndex index(100);
  // Crack (50, 40): values < 50 at [0, 40), values >= 50 at [40, 100).
  EXPECT_TRUE(index.AddCrack(50, 40));

  const Piece below = index.FindPiece(10);
  EXPECT_EQ(below.begin, 0);
  EXPECT_EQ(below.end, 40);
  EXPECT_TRUE(below.has_upper);
  EXPECT_EQ(below.upper, 50);

  // v == crack value belongs to the upper piece (values >= 50 live there).
  const Piece at = index.FindPiece(50);
  EXPECT_EQ(at.begin, 40);
  EXPECT_EQ(at.end, 100);
  EXPECT_TRUE(at.has_lower);
  EXPECT_EQ(at.lower, 50);
  EXPECT_EQ(at.meta_key, 50);

  const Piece above = index.FindPiece(99);
  EXPECT_EQ(above.begin, 40);
  EXPECT_EQ(above.end, 100);
}

TEST(CrackerIndexTest, DuplicateCrackRejected) {
  CrackerIndex index(10);
  EXPECT_TRUE(index.AddCrack(5, 3));
  EXPECT_FALSE(index.AddCrack(5, 7));
  EXPECT_EQ(index.num_cracks(), 1u);
  EXPECT_EQ(index.CrackPosition(5), 3);
}

TEST(CrackerIndexTest, HasCrackAndPosition) {
  CrackerIndex index(10);
  index.AddCrack(4, 2);
  EXPECT_TRUE(index.HasCrack(4));
  EXPECT_FALSE(index.HasCrack(5));
  EXPECT_EQ(index.CrackPosition(4), 2);
}

TEST(CrackerIndexTest, MetadataInheritanceOnSplit) {
  CrackerIndex index(100);
  index.MetaFor(CrackerIndex::kHeadKey).crack_count = 7;
  index.AddCrack(50, 40);
  // The new upper piece inherits the parent's counter (ScrackMon rule).
  EXPECT_EQ(index.FindMeta(50)->crack_count, 7);
  EXPECT_EQ(index.FindMeta(CrackerIndex::kHeadKey)->crack_count, 7);
  // Splitting the upper piece propagates again.
  index.AddCrack(70, 60);
  EXPECT_EQ(index.FindMeta(70)->crack_count, 7);
}

TEST(CrackerIndexTest, ForEachPieceCoversColumn) {
  CrackerIndex index(100);
  index.AddCrack(30, 25);
  index.AddCrack(60, 50);
  std::vector<Piece> pieces;
  index.ForEachPiece([&](const Piece& p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0].begin, 0);
  EXPECT_EQ(pieces[0].end, 25);
  EXPECT_EQ(pieces[1].begin, 25);
  EXPECT_EQ(pieces[1].end, 50);
  EXPECT_EQ(pieces[2].begin, 50);
  EXPECT_EQ(pieces[2].end, 100);
  EXPECT_FALSE(pieces[0].has_lower);
  EXPECT_TRUE(pieces[2].has_lower);
  EXPECT_FALSE(pieces[2].has_upper);
}

TEST(CrackerIndexTest, ValidateAcceptsConsistentColumn) {
  // data: [1,2,3 | 5,6 | 9] with cracks (5,3) and (9,5).
  std::vector<Value> data = {2, 1, 3, 6, 5, 9};
  CrackerIndex index(6);
  index.AddCrack(5, 3);
  index.AddCrack(9, 5);
  EXPECT_TRUE(index.Validate(data.data(), 6).ok());
}

TEST(CrackerIndexTest, ValidateRejectsElementBelowLowerBound) {
  std::vector<Value> data = {2, 1, 3, 4, 5, 9};  // 4 < crack value 5
  CrackerIndex index(6);
  index.AddCrack(5, 3);
  EXPECT_FALSE(index.Validate(data.data(), 6).ok());
}

TEST(CrackerIndexTest, ValidateRejectsElementAboveUpperBound) {
  std::vector<Value> data = {2, 9, 3, 6, 5, 7};  // 9 in piece < 5
  CrackerIndex index(6);
  index.AddCrack(5, 3);
  EXPECT_FALSE(index.Validate(data.data(), 6).ok());
}

TEST(CrackerIndexTest, ValidateRejectsSizeMismatch) {
  std::vector<Value> data = {1, 2, 3};
  CrackerIndex index(5);
  EXPECT_FALSE(index.Validate(data.data(), 3).ok());
}

TEST(CrackerIndexTest, ShiftAboveMovesUpperCracks) {
  CrackerIndex index(100);
  index.AddCrack(30, 25);
  index.AddCrack(60, 50);
  index.ShiftAbove(30, +1);  // insert of a value in [30, 60)
  EXPECT_EQ(index.CrackPosition(30), 25);  // not shifted (key == v)
  EXPECT_EQ(index.CrackPosition(60), 51);
  EXPECT_EQ(index.column_size(), 101);
  index.ShiftAbove(0, -1);
  EXPECT_EQ(index.CrackPosition(30), 24);
  EXPECT_EQ(index.CrackPosition(60), 50);
  EXPECT_EQ(index.column_size(), 100);
}

TEST(CrackerIndexTest, CracksAboveAscending) {
  CrackerIndex index(100);
  index.AddCrack(30, 25);
  index.AddCrack(60, 50);
  index.AddCrack(80, 75);
  const auto above = index.CracksAbove(30);
  ASSERT_EQ(above.size(), 2u);
  EXPECT_EQ(above[0].key, 60);
  EXPECT_EQ(above[1].key, 80);
  EXPECT_TRUE(index.CracksAbove(100).empty());
  EXPECT_EQ(index.CracksAbove(-1).size(), 3u);
}

TEST(CrackerIndexTest, CollapseRangeRemapsCracks) {
  // Pieces: [0,25):<30, [25,50):[30,60), [50,100):>=60. Remove [30,60)
  // (25 positions at [25,50)).
  CrackerIndex index(100);
  index.AddCrack(30, 25);
  index.AddCrack(60, 50);
  index.AddCrack(80, 75);
  index.CollapseRange(30, 60, 25, 25);
  EXPECT_EQ(index.column_size(), 75);
  EXPECT_EQ(index.CrackPosition(30), 25);  // key == low keeps its position
  EXPECT_EQ(index.CrackPosition(60), 25);  // collapsed onto the gap
  EXPECT_EQ(index.CrackPosition(80), 50);  // shifted down by 25
}

TEST(CrackerIndexTest, EmptyColumn) {
  CrackerIndex index(0);
  const Piece piece = index.FindPiece(5);
  EXPECT_EQ(piece.begin, 0);
  EXPECT_EQ(piece.end, 0);
  EXPECT_EQ(piece.size(), 0);
  std::vector<Value> none;
  EXPECT_TRUE(index.Validate(none.data(), 0).ok());
}

}  // namespace
}  // namespace scrack
