// The repro JSON model: build/dump/parse round-trips, parser edge cases,
// and the full BENCH_repro.json document schema produced by a real (tiny)
// driver run.
#include <gtest/gtest.h>

#include <cmath>

#include "repro/json.h"
#include "repro/registry.h"
#include "repro/repro_report.h"
#include "repro/runner.h"

namespace scrack {
namespace repro {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  for (const char* text : {"null", "true", "false", "0", "-12", "3.5",
                           "\"hello\"", "\"\"", "[]", "{}"}) {
    Json value;
    ASSERT_TRUE(Json::Parse(text, &value).ok()) << text;
    Json reparsed;
    ASSERT_TRUE(Json::Parse(value.Dump(), &reparsed).ok()) << text;
    EXPECT_EQ(value.Dump(), reparsed.Dump()) << text;
  }
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  Json doc;
  doc.Set("name", "fig02");
  doc.Set("ok", true);
  doc.Set("count", static_cast<int64_t>(12345));
  doc.Set("ratio", 0.125);
  Json runs(JsonArray{});
  Json run;
  run.Set("label", "crack.seq");
  run.Set("touched", static_cast<int64_t>(20325161));
  runs.Append(std::move(run));
  doc.Set("runs", std::move(runs));

  Json parsed;
  ASSERT_TRUE(Json::Parse(doc.Dump(), &parsed).ok());
  EXPECT_EQ(parsed.Dump(), doc.Dump());
  ASSERT_NE(parsed.Find("runs"), nullptr);
  ASSERT_TRUE(parsed.Find("runs")->is_array());
  const Json& first = parsed.Find("runs")->as_array()[0];
  ASSERT_NE(first.Find("label"), nullptr);
  EXPECT_EQ(first.Find("label")->as_string(), "crack.seq");
  EXPECT_EQ(first.Find("touched")->as_number(), 20325161.0);
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json doc;
  doc.Set("text", "a \"quoted\"\nline\twith\\slashes");
  Json parsed;
  ASSERT_TRUE(Json::Parse(doc.Dump(), &parsed).ok());
  EXPECT_EQ(parsed.Find("text")->as_string(),
            "a \"quoted\"\nline\twith\\slashes");
}

TEST(JsonTest, RejectsMalformedInput) {
  Json value;
  for (const char* text :
       {"", "{", "[1,", "{\"a\":}", "tru", "{\"a\" 1}", "[1] trailing",
        "{\"a\": 1,}"}) {
    EXPECT_FALSE(Json::Parse(text, &value).ok()) << "'" << text << "'";
  }
}

TEST(JsonTest, ObjectKeysKeepInsertionOrder) {
  Json doc;
  doc.Set("zebra", 1);
  doc.Set("alpha", 2);
  const std::string dumped = doc.Dump();
  EXPECT_LT(dumped.find("zebra"), dumped.find("alpha"));
}

// The real report document, produced by a tiny fig02 run, parses back and
// carries every schema field the CI consumers (perf_diff.py, artifact
// readers) rely on.
TEST(ReportSchemaTest, ReportRoundTripsThroughParser) {
  const FigureSpec* spec = FindSpec("fig02");
  ASSERT_NE(spec, nullptr);
  ReproOptions options;
  options.n_override = 3000;
  options.q_override = 60;
  FigureResult result;
  ASSERT_TRUE(RunFigure(*spec, options, &result).ok());

  const Json report = BuildReport({spec}, {result}, options);
  Json parsed;
  ASSERT_TRUE(Json::Parse(report.Dump(), &parsed).ok());
  EXPECT_EQ(parsed.Dump(), report.Dump());

  ASSERT_NE(parsed.Find("meta"), nullptr);
  EXPECT_EQ(parsed.Find("meta")->Find("tool")->as_string(), "scrack_repro");
  ASSERT_NE(parsed.Find("ok"), nullptr);
  ASSERT_NE(parsed.Find("assertions_total"), nullptr);
  EXPECT_GT(parsed.Find("assertions_total")->as_number(), 0);

  const Json* figures = parsed.Find("figures");
  ASSERT_NE(figures, nullptr);
  ASSERT_EQ(figures->as_array().size(), 1u);
  const Json& figure = figures->as_array()[0];
  EXPECT_EQ(figure.Find("id")->as_string(), "fig02");
  EXPECT_EQ(figure.Find("n")->as_number(), 3000);
  EXPECT_EQ(figure.Find("q")->as_number(), 60);

  const Json* runs = figure.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->as_array().size(), spec->runs.size());
  for (const Json& run : runs->as_array()) {
    ASSERT_NE(run.Find("label"), nullptr);
    ASSERT_NE(run.Find("engine"), nullptr);
    ASSERT_NE(run.Find("points"), nullptr);
    EXPECT_FALSE(run.Find("points")->as_array().empty());
    const Json& last = run.Find("points")->as_array().back();
    EXPECT_EQ(last.Find("query")->as_number(), 60);
  }

  // Per-run throughput metrics exist (what the perf-trajectory diff reads).
  const Json* metrics = figure.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  for (const RunDecl& decl : spec->runs) {
    EXPECT_NE(metrics->Find(decl.label + ".touched_per_sec"), nullptr)
        << decl.label;
  }

  const Json* assertions = figure.Find("assertions");
  ASSERT_NE(assertions, nullptr);
  ASSERT_EQ(assertions->as_array().size(), spec->assertions.size());
  for (const Json& assertion : assertions->as_array()) {
    ASSERT_NE(assertion.Find("name"), nullptr);
    ASSERT_NE(assertion.Find("ok"), nullptr);
    ASSERT_NE(assertion.Find("kind"), nullptr);
    ASSERT_NE(assertion.Find("measured"), nullptr);
  }
}

TEST(ReportSchemaTest, MarkdownRowsCoverEverySpec) {
  const FigureSpec* spec = FindSpec("fig02");
  ASSERT_NE(spec, nullptr);
  ReproOptions options;
  options.n_override = 3000;
  options.q_override = 60;
  FigureResult result;
  ASSERT_TRUE(RunFigure(*spec, options, &result).ok());
  const std::string rows = MarkdownRows({spec}, {result});
  EXPECT_NE(rows.find("| Fig. 2 |"), std::string::npos);
  EXPECT_NE(rows.find("scrack_repro --figure=fig02"), std::string::npos);
  EXPECT_NE(rows.find("shape assertions pass"), std::string::npos);
}

}  // namespace
}  // namespace repro
}  // namespace scrack
