// Shared helpers for the scrack test suite.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "util/common.h"
#include "util/rng.h"

namespace scrack {
namespace testing {

/// Reference answer for a range query over raw data: (count, sum).
struct ReferenceAnswer {
  Index count = 0;
  int64_t sum = 0;
};

inline ReferenceAnswer ReferenceSelect(const std::vector<Value>& data,
                                       Value low, Value high) {
  ReferenceAnswer answer;
  for (Value v : data) {
    if (low <= v && v < high) {
      ++answer.count;
      answer.sum += v;
    }
  }
  return answer;
}

/// Sorted copy (for multiset comparisons).
inline std::vector<Value> Sorted(std::vector<Value> data) {
  std::sort(data.begin(), data.end());
  return data;
}

/// A duplicate-heavy dataset: n values drawn from a domain of n/8 distinct
/// values.
inline Column DuplicateHeavyColumn(Index n, uint64_t seed) {
  return Column::UniformRandom(n, 0, std::max<Value>(2, n / 8), seed);
}

/// Random query bounds within [0, domain), low <= high.
inline std::pair<Value, Value> RandomRange(Rng* rng, Value domain) {
  Value a = rng->UniformValue(0, domain);
  Value b = rng->UniformValue(0, domain + 1);
  if (a > b) std::swap(a, b);
  return {a, b};
}

}  // namespace testing
}  // namespace scrack
