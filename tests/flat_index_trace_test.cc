// Equivalence test for the flat sorted-vector CrackerIndex against an
// ordered-map reference model, over recorded operation traces.
//
// The reference model is the obvious std::map implementation of the crack
// bookkeeping (what the AVL/map-backed index computed); the trace replays
// every mutation on both structures and cross-checks every query after
// each step, so any divergence pinpoints the operation that introduced it.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "index/cracker_index.h"
#include "util/rng.h"

namespace scrack {
namespace {

/// Ordered-map reference model of the crack index (no metadata).
class MapIndexModel {
 public:
  explicit MapIndexModel(Index column_size) : column_size_(column_size) {}

  bool AddCrack(Value v, Index pos) {
    if (cracks_.count(v) > 0) return false;
    cracks_[v] = pos;
    return true;
  }

  bool HasCrack(Value v) const { return cracks_.count(v) > 0; }
  Index CrackPosition(Value v) const { return cracks_.at(v); }
  size_t num_cracks() const { return cracks_.size(); }

  Piece FindPiece(Value v) const {
    Piece piece;
    auto hi = cracks_.upper_bound(v);  // first key > v
    if (hi == cracks_.begin()) {
      piece.begin = 0;
      piece.has_lower = false;
      piece.meta_key = CrackerIndex::kHeadKey;
    } else {
      auto lo = std::prev(hi);
      piece.begin = lo->second;
      piece.has_lower = true;
      piece.lower = lo->first;
      piece.meta_key = lo->first;
    }
    if (hi == cracks_.end()) {
      piece.end = column_size_;
      piece.has_upper = false;
    } else {
      piece.end = hi->second;
      piece.has_upper = true;
      piece.upper = hi->first;
    }
    return piece;
  }

  void ShiftAbove(Value v, Index delta) {
    for (auto it = cracks_.upper_bound(v); it != cracks_.end(); ++it) {
      it->second += delta;
    }
    column_size_ += delta;
  }

  void CollapseRange(Value lo, Value hi, Index pos, Index count) {
    for (auto& [key, position] : cracks_) {
      if (key > lo && key <= hi) {
        position = pos;
      } else if (key > hi) {
        position -= count;
      }
    }
    column_size_ -= count;
  }

  std::vector<CrackerIndex::Entry> CracksAbove(Value v) const {
    std::vector<CrackerIndex::Entry> out;
    for (auto it = cracks_.upper_bound(v); it != cracks_.end(); ++it) {
      out.push_back(CrackerIndex::Entry{it->first, it->second});
    }
    return out;
  }

  Index column_size() const { return column_size_; }

 private:
  std::map<Value, Index> cracks_;
  Index column_size_;
};

void ExpectSamePiece(const Piece& a, const Piece& b, Value probe) {
  ASSERT_EQ(a.begin, b.begin) << "probe " << probe;
  ASSERT_EQ(a.end, b.end) << "probe " << probe;
  ASSERT_EQ(a.meta_key, b.meta_key) << "probe " << probe;
  ASSERT_EQ(a.has_lower, b.has_lower) << "probe " << probe;
  ASSERT_EQ(a.has_upper, b.has_upper) << "probe " << probe;
  if (a.has_lower) ASSERT_EQ(a.lower, b.lower) << "probe " << probe;
  if (a.has_upper) ASSERT_EQ(a.upper, b.upper) << "probe " << probe;
}

void CrossCheck(const CrackerIndex& flat, const MapIndexModel& model,
                Rng* rng) {
  ASSERT_EQ(flat.num_cracks(), model.num_cracks());
  ASSERT_EQ(flat.column_size(), model.column_size());
  for (int probe = 0; probe < 32; ++probe) {
    const Value v = rng->UniformValue(-50, 1050);
    ASSERT_EQ(flat.HasCrack(v), model.HasCrack(v));
    if (model.HasCrack(v)) {
      ASSERT_EQ(flat.CrackPosition(v), model.CrackPosition(v));
    }
    Piece flat_piece = flat.FindPiece(v);
    Piece model_piece = model.FindPiece(v);
    ExpectSamePiece(flat_piece, model_piece, v);
    const auto flat_above = flat.CracksAbove(v);
    const auto model_above = model.CracksAbove(v);
    ASSERT_EQ(flat_above.size(), model_above.size());
    for (size_t i = 0; i < flat_above.size(); ++i) {
      ASSERT_EQ(flat_above[i].key, model_above[i].key);
      ASSERT_EQ(flat_above[i].pos, model_above[i].pos);
    }
  }
}

TEST(FlatIndexTraceTest, RandomOperationTracesMatchMapModel) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(1000 + seed);
    Index column_size = 1000;
    CrackerIndex flat(column_size);
    MapIndexModel model(column_size);
    // Positions must stay monotone in key order for the trace to describe a
    // real cracked column: derive each crack position from the piece the
    // key falls in, exactly like the engines do.
    for (int op = 0; op < 400; ++op) {
      const int kind = static_cast<int>(rng.UniformIndex(0, 9));
      if (kind <= 5) {  // AddCrack
        const Value v = rng.UniformValue(0, 1000);
        const Piece piece = model.FindPiece(v);
        const Index pos =
            piece.begin + rng.UniformIndex(0, piece.end - piece.begin);
        ASSERT_EQ(flat.AddCrack(v, pos), model.AddCrack(v, pos))
            << "op " << op;
      } else if (kind <= 7) {  // ShiftAbove (Ripple insert/delete)
        const Value v = rng.UniformValue(0, 1000);
        const bool insert = rng.UniformIndex(0, 1) == 0;
        // Mirror the engine preconditions: an insert always shifts up; a
        // delete shifts down only after removing an element from v's piece,
        // so the piece must be non-empty.
        if (!insert && model.FindPiece(v).size() == 0) continue;
        flat.ShiftAbove(v, insert ? 1 : -1);
        model.ShiftAbove(v, insert ? 1 : -1);
      } else if (kind == 8) {  // CollapseRange (hybrid extract)
        // The hybrid engines collapse between two *existing* cracks after
        // physically removing the values in [lo, hi); replay that shape.
        const auto cracks = model.CracksAbove(CrackerIndex::kHeadKey);
        if (cracks.size() < 2) continue;
        const size_t a = rng.UniformIndex(0, cracks.size() - 2);
        const size_t b = a + 1 + rng.UniformIndex(0, cracks.size() - 2 - a);
        const Value lo = cracks[a].key;
        const Value hi = cracks[b].key;
        const Index pos = cracks[a].pos;
        const Index count = cracks[b].pos - pos;
        flat.CollapseRange(lo, hi, pos, count);
        model.CollapseRange(lo, hi, pos, count);
      } else {  // metadata round-trip on a real piece
        const Value v = rng.UniformValue(0, 1000);
        const Piece piece = flat.FindPiece(v);
        PieceMeta& meta = flat.MetaFor(piece.meta_key);
        ++meta.crack_count;
        const PieceMeta* found = flat.FindMeta(piece.meta_key);
        ASSERT_NE(found, nullptr);
        ASSERT_EQ(found->crack_count, meta.crack_count);
      }
      CrossCheck(flat, model, &rng);
    }
  }
}

TEST(FlatIndexTraceTest, MetaInheritanceMatchesMapSemantics) {
  CrackerIndex index(100);
  index.MetaFor(CrackerIndex::kHeadKey).crack_count = 7;
  ASSERT_TRUE(index.AddCrack(50, 40));
  // New upper piece inherits the parent's counter.
  EXPECT_EQ(index.FindMeta(50)->crack_count, 7);
  EXPECT_EQ(index.FindMeta(CrackerIndex::kHeadKey)->crack_count, 7);
  index.MetaFor(50).crack_count = 11;
  ASSERT_TRUE(index.AddCrack(70, 60));
  EXPECT_EQ(index.FindMeta(70)->crack_count, 11);
  EXPECT_EQ(index.FindMeta(CrackerIndex::kHeadKey)->crack_count, 7);
  // Unknown keys have no metadata.
  EXPECT_EQ(index.FindMeta(33), nullptr);
}

TEST(FlatIndexTraceTest, ForEachPieceMatchesModelPieces) {
  Rng rng(77);
  CrackerIndex flat(500);
  MapIndexModel model(500);
  for (int i = 0; i < 40; ++i) {
    const Value v = rng.UniformValue(0, 500);
    const Piece piece = model.FindPiece(v);
    const Index pos =
        piece.begin + rng.UniformIndex(0, piece.end - piece.begin);
    flat.AddCrack(v, pos);
    model.AddCrack(v, pos);
  }
  std::vector<Piece> flat_pieces;
  flat.ForEachPiece([&](const Piece& p) { flat_pieces.push_back(p); });
  // Pieces must tile [0, column_size) in order, consistent with the model.
  ASSERT_EQ(flat_pieces.size(), model.num_cracks() + 1);
  Index expected_begin = 0;
  for (const Piece& p : flat_pieces) {
    ASSERT_EQ(p.begin, expected_begin);
    expected_begin = p.end;
    if (p.has_lower) {
      ASSERT_EQ(model.CrackPosition(p.lower), p.begin);
    }
  }
  ASSERT_EQ(expected_begin, 500);
}

}  // namespace
}  // namespace scrack
