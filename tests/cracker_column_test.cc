// Direct unit tests for CrackerColumn's primitives — the shared machinery
// all engines are policies over — plus the CSV export utilities.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cracking/cracker_column.h"
#include "harness/csv.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 61;
  config.crack_threshold_values = 32;
  config.progressive_min_values = 128;
  return config;
}

TEST(CrackerColumnTest, LazyInitialization) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackerColumn column(&base, TestConfig());
  EXPECT_FALSE(column.initialized());
  EngineStats stats;
  column.EnsureInitialized(&stats);
  EXPECT_TRUE(column.initialized());
  EXPECT_EQ(column.size(), 100);
  EXPECT_EQ(stats.tuples_touched, 100);  // the copy is charged
  EXPECT_EQ(column.min_value(), 0);
  EXPECT_EQ(column.max_value(), 99);
  // Idempotent.
  column.EnsureInitialized(&stats);
  EXPECT_EQ(stats.tuples_touched, 100);
}

TEST(CrackerColumnTest, CrackBoundRegistersAndReuses) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  const Index pos = column.CrackBound(500, &stats);
  EXPECT_EQ(pos, 500);  // permutation of [0,1000): rank == value
  EXPECT_TRUE(column.index().HasCrack(500));
  const int64_t touched = stats.tuples_touched;
  EXPECT_EQ(column.CrackBound(500, &stats), 500);
  EXPECT_EQ(stats.tuples_touched, touched);  // second call is free
  EXPECT_TRUE(column.Validate().ok());
}

TEST(CrackerColumnTest, StochasticCrackBoundShortcutsOutOfDomain) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  EXPECT_EQ(column.StochasticCrackBound(-5, false, true, &stats), 0);
  EXPECT_EQ(column.StochasticCrackBound(0, false, true, &stats), 0);
  EXPECT_EQ(column.StochasticCrackBound(5000, false, true, &stats), 1000);
  // Out-of-domain bounds add no cracks.
  EXPECT_EQ(column.index().num_cracks(), 0u);
}

TEST(CrackerColumnTest, StochasticCrackBoundSubdividesUntilThreshold) {
  const Column base = Column::UniquePermutation(4096, 1);
  CrackerColumn column(&base, TestConfig());  // threshold 32
  EngineStats stats;
  column.StochasticCrackBound(2000, /*center_pivot=*/true,
                              /*recursive=*/true, &stats);
  const Piece piece = column.index().FindPiece(2000);
  EXPECT_LE(piece.size(), 33);
  EXPECT_TRUE(column.Validate().ok());
}

TEST(CrackerColumnTest, ExtractRangeRemovesExactlyTheRange) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  // Pre-crack somewhere above so CollapseRange has cracks to shift.
  column.CrackBound(800, &stats);
  std::vector<Value> out;
  column.ExtractRange(200, 400, &out, &stats);
  EXPECT_EQ(out.size(), 200u);
  EXPECT_EQ(column.size(), 800);
  std::vector<Value> expected;
  for (Value v = 200; v < 400; ++v) expected.push_back(v);
  EXPECT_EQ(Sorted(out), expected);
  EXPECT_TRUE(column.Validate().ok());
  // The shifted crack at 800 must still be correct.
  EXPECT_EQ(column.index().CrackPosition(800), 600);
  // Extracting again yields nothing.
  std::vector<Value> again;
  column.ExtractRange(200, 400, &again, &stats);
  EXPECT_TRUE(again.empty());
}

TEST(CrackerColumnTest, ExtractRangeWholeColumn) {
  const Column base = Column::UniquePermutation(500, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  std::vector<Value> out;
  column.ExtractRange(-100, 10'000, &out, &stats);
  EXPECT_EQ(out.size(), 500u);
  EXPECT_EQ(column.size(), 0);
  EXPECT_TRUE(column.Validate().ok());
}

TEST(CrackerColumnTest, SelectWithPolicyHonorsPerPieceDecisions) {
  const Column base = Column::UniquePermutation(10'000, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  // Policy: crack pieces in the lower half of the domain, split-materialize
  // elsewhere (an arbitrary piece-dependent mixture).
  BoundPolicy policy = [](const Piece& piece) {
    return (piece.has_upper && piece.upper < 5000) ? EndPieceMode::kCrack
                                                   : EndPieceMode::kSplitMat;
  };
  for (int i = 0; i < 50; ++i) {
    const Value lo = (i * 997) % 9000;
    QueryResult result;
    ASSERT_TRUE(
        column.SelectWithPolicy(lo, lo + 500, policy, &result, &stats).ok());
    ASSERT_EQ(result.count(), 500);
    ASSERT_TRUE(column.Validate().ok());
  }
}

TEST(CrackerColumnTest, ValidateCatchesCorruption) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackerColumn column(&base, TestConfig());
  EngineStats stats;
  column.CrackBound(50, &stats);
  ASSERT_TRUE(column.Validate().ok());
  // Corrupt: put a large value into the < 50 piece.
  column.data()[0] = 99;
  EXPECT_FALSE(column.Validate().ok());
}

// -------------------------------------------------------------- CSV export --

TEST(CsvTest, SanitizeFileName) {
  EXPECT_EQ(SanitizeFileName("pmdd1r(10%)"), "pmdd1r_10__");
  EXPECT_EQ(SanitizeFileName("crack"), "crack");
  EXPECT_EQ(SanitizeFileName("a b/c"), "a_b_c");
}

TEST(CsvTest, WriteRunCsvRoundTrips) {
  RunResult run;
  run.engine_name = "crack";
  run.records.push_back({/*seconds=*/0.5, /*touched=*/100, /*swaps=*/7,
                         /*result_count=*/10, /*result_sum=*/55});
  run.records.push_back({/*seconds=*/0.25, /*touched=*/50, /*swaps=*/3,
                         /*result_count=*/5, /*result_sum=*/15});
  const std::string path = ::testing::TempDir() + "/scrack_csv_test.csv";
  ASSERT_TRUE(WriteRunCsv(run, path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header, line1, line2;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_EQ(header,
            "query,seconds,cum_seconds,touched,cum_touched,swaps,"
            "result_count,result_sum");
  EXPECT_EQ(line1, "1,0.500000000,0.500000000,100,100,7,10,55");
  EXPECT_EQ(line2, "2,0.250000000,0.750000000,50,150,3,5,15");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteRunsCsvCreatesDirAndFiles) {
  RunResult run;
  run.engine_name = "dd1r";
  run.records.push_back({/*seconds=*/0.1, /*touched=*/10, /*swaps=*/0,
                         /*result_count=*/1, /*result_sum=*/1});
  const std::string dir = ::testing::TempDir() + "/scrack_csv_dir";
  ASSERT_TRUE(WriteRunsCsv({std::move(run)}, dir, "fig 9(a)").ok());
  std::ifstream in(dir + "/fig_9_a__dd1r.csv");
  EXPECT_TRUE(in.good());
  std::remove((dir + "/fig_9_a__dd1r.csv").c_str());
}

TEST(CsvTest, EmptyDirIsNoOp) {
  EXPECT_TRUE(WriteRunsCsv({}, "", "x").ok());
}

TEST(CsvTest, UnwritablePathFails) {
  RunResult run;
  run.engine_name = "x";
  EXPECT_FALSE(WriteRunCsv(run, "/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace scrack
