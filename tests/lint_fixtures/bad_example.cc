// Deliberately broken translation unit for tools/scrack_lint.py's self-test.
// Every line below trips exactly the rule named in the trailing comment; the
// self-test asserts each rule id appears in the lint output for this file.
// This directory is excluded from the normal tree scan.

#include <immintrin.h>  // avx2-confinement

#include <cassert>
#include <cstdlib>
#include <mutex>  // mutex-confinement
#include <random>
#include <sys/socket.h>  // socket-confinement

#include "../util/common.h"  // include-hygiene

int UseAvx2() {
  __m256i v = _mm256_setzero_si256();  // avx2-confinement
  return _mm256_extract_epi32(v, 0);   // avx2-confinement
}

int UseRand() {
  std::mt19937 gen(std::rand());  // determinism (twice over)
  return static_cast<int>(gen());
}

int UseAssert(int x) {
  assert(x > 0);  // check-macros
  return x;
}

int* UseNew() {
  int* p = new int(42);  // naked-new
  delete p;              // naked-new
  return nullptr;
}

int UseAdHocLock() {
  static std::mutex ad_hoc_lock;  // mutex-confinement
  std::lock_guard<std::mutex> guard(ad_hoc_lock);  // mutex-confinement
  return 0;
}

int UseRawSocket() {
  const int fd = ::socket(2, 1, 0);            // socket-confinement
  (void)setsockopt(fd, 0, 0, nullptr, 0);      // socket-confinement
  return ::connect(fd, nullptr, 0);            // socket-confinement
}
