// Seeded clang-tidy violation for the static-analysis CI gate. The gate runs
// clang-tidy over this file and must exit nonzero (bugprone-integer-division:
// the quotient truncates before the implicit float conversion). Not part of
// any build target.

double Half(int n) { return n / 2; }

int main() { return Half(5) == 2.5 ? 0 : 1; }
