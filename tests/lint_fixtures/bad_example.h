// Header deliberately missing its include guard: include-hygiene fixture for
// the lint self-test. Never included by real code.

inline int FixtureHeaderValue() { return 7; }
