// Companion to bad_example.cc: the same violations, each carrying an inline
// suppression. The lint self-test asserts this file produces ZERO findings,
// which exercises every suppression form the lint supports.

// lint:allow-file(include-hygiene)

#include <immintrin.h>  // lint:allow(avx2-confinement)

#include <cassert>
#include <cstdlib>
#include <mutex>  // lint:allow(mutex-confinement)
#include <random>
#include <sys/socket.h>  // lint:allow(socket-confinement)

#include "../util/common.h"

int UseAvx2() {
  // lint:allow(avx2-confinement)
  __m256i v = _mm256_setzero_si256();
  return _mm256_extract_epi32(v, 0);  // lint:allow(avx2-confinement)
}

int UseRand() {
  std::mt19937 gen(std::rand());  // lint:allow(determinism)
  return static_cast<int>(gen());
}

int UseAssert(int x) {
  assert(x > 0);  // lint:allow(check-macros)
  return x;
}

int* UseNew() {
  // lint:allow(*)
  int* p = new int(42);
  delete p;  // lint:allow(naked-new)
  return nullptr;
}

int UseAdHocLock() {
  static std::mutex ad_hoc_lock;  // lint:allow(mutex-confinement)
  // lint:allow(mutex-confinement)
  std::lock_guard<std::mutex> guard(ad_hoc_lock);
  return 0;
}

int UseRawSocket() {
  const int fd = ::socket(2, 1, 0);  // lint:allow(socket-confinement)
  // lint:allow(socket-confinement)
  (void)setsockopt(fd, 0, 0, nullptr, 0);
  return ::connect(fd, nullptr, 0);  // lint:allow(*)
}
