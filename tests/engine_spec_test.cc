// Tests for the EngineSpec AST behind the textual engine-spec grammar:
// Parse/ToString round-trips, canonicalization of case and whitespace,
// structural forms (name / colon / call), structured parse errors, and the
// AST-based WrapSpecInAudit transform.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/engine_factory.h"
#include "harness/engine_spec.h"
#include "storage/column.h"

namespace scrack {
namespace {

EngineSpec ParseOrDie(const std::string& text) {
  EngineSpec spec;
  const Status status = EngineSpec::Parse(text, &spec);
  EXPECT_TRUE(status.ok()) << text << ": " << status.ToString();
  return spec;
}

// ------------------------------------------------------------ structure --

TEST(EngineSpecTest, ParsesBareName) {
  const EngineSpec spec = ParseOrDie("crack");
  EXPECT_EQ(spec.form, EngineSpec::Form::kName);
  EXPECT_EQ(spec.head, "crack");
  EXPECT_TRUE(spec.children.empty());
}

TEST(EngineSpecTest, ParsesColonArgument) {
  const EngineSpec spec = ParseOrDie("pmdd1r:10");
  EXPECT_EQ(spec.form, EngineSpec::Form::kColon);
  EXPECT_EQ(spec.head, "pmdd1r");
  ASSERT_EQ(spec.children.size(), 1u);
  EXPECT_EQ(spec.children[0].head, "10");
}

TEST(EngineSpecTest, ParsesCallWithScalarAndSpec) {
  const EngineSpec spec = ParseOrDie("coord(4,epoch(prog(5000,crack)))");
  EXPECT_EQ(spec.form, EngineSpec::Form::kCall);
  EXPECT_EQ(spec.head, "coord");
  ASSERT_EQ(spec.children.size(), 2u);
  EXPECT_EQ(spec.children[0].head, "4");
  EXPECT_EQ(spec.children[1].head, "epoch");
  ASSERT_EQ(spec.children[1].children.size(), 1u);
  const EngineSpec& prog = spec.children[1].children[0];
  EXPECT_EQ(prog.head, "prog");
  ASSERT_EQ(prog.children.size(), 2u);
  EXPECT_EQ(prog.children[0].head, "5000");
  EXPECT_EQ(prog.children[1].head, "crack");
}

TEST(EngineSpecTest, ColonBindsBeforeParens) {
  // "threadsafe:audit(crack)" is a colon node whose child is a call — not
  // a call with a colon in its head.
  const EngineSpec spec = ParseOrDie("threadsafe:audit(crack)");
  EXPECT_EQ(spec.form, EngineSpec::Form::kColon);
  EXPECT_EQ(spec.head, "threadsafe");
  ASSERT_EQ(spec.children.size(), 1u);
  EXPECT_EQ(spec.children[0].form, EngineSpec::Form::kCall);
  EXPECT_EQ(spec.children[0].head, "audit");
}

// ------------------------------------------------------------ rendering --

TEST(EngineSpecTest, ToStringRoundTrips) {
  for (const std::string& text :
       {"crack", "crack-p4", "pmdd1r:10", "threadsafe:mdd1r",
        "sharded(4,mdd1r)", "audit(crack)", "epoch(prog(5000,crack-p))",
        "chaos(audit(prog(5000,crack)))", "coord(4,crack)",
        "coord(4,epoch(prog(5000,crack)))", "threadsafe:audit(mdd1r)"}) {
    const std::string rendered = ParseOrDie(text).ToString();
    EXPECT_EQ(rendered, text) << text;
    EXPECT_EQ(ParseOrDie(rendered).ToString(), rendered) << text;
  }
}

TEST(EngineSpecTest, CanonicalizesCaseAndWhitespace) {
  EXPECT_EQ(ParseOrDie("SHARDED(2, Crack)").ToString(), "sharded(2,crack)");
  EXPECT_EQ(ParseOrDie("  coord( 4 , epoch( crack ) ) ").ToString(),
            "coord(4,epoch(crack))");
  EXPECT_EQ(ParseOrDie("MDD1R").ToString(), "mdd1r");
}

TEST(EngineSpecTest, EveryKnownSpecRoundTrips) {
  for (const std::string& text : KnownEngineSpecs()) {
    const std::string rendered = ParseOrDie(text).ToString();
    EXPECT_EQ(ParseOrDie(rendered).ToString(), rendered) << text;
  }
}

// --------------------------------------------------------------- errors --

TEST(EngineSpecTest, RejectsUnbalancedParens) {
  EngineSpec spec;
  for (const std::string& text :
       {"sharded(4", "coord(4,crack))", ")", "epoch(crack", "a(b))("}) {
    const Status status = EngineSpec::Parse(text, &spec);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(status.message().find("unbalanced"), std::string::npos) << text;
  }
}

TEST(EngineSpecTest, RejectsTextAfterClosingParen) {
  EngineSpec spec;
  for (const std::string& text : {"a(b)c", "a(b)(c)", "epoch(crack)x"}) {
    const Status status = EngineSpec::Parse(text, &spec);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << text;
    EXPECT_NE(status.message().find("malformed"), std::string::npos) << text;
  }
}

TEST(EngineSpecTest, EmptyElementsParseAndBuildersDiagnose) {
  // Structurally valid but semantically empty forms parse fine; the factory
  // turns them into structured errors.
  EXPECT_EQ(ParseOrDie("sharded(4,)").children.size(), 2u);
  EXPECT_EQ(ParseOrDie("chaos()").children.size(), 0u);
  const Column base = Column::UniquePermutation(64, 1);
  std::unique_ptr<SelectEngine> engine;
  for (const std::string& text :
       {"sharded(4,)", "chaos()", "coord(,crack)", "prog(,crack)"}) {
    EXPECT_EQ(CreateEngine(text, &base, EngineConfig{}, &engine).code(),
              StatusCode::kInvalidArgument)
        << text;
  }
}

// ------------------------------------------------------ audit transform --

TEST(EngineSpecTest, WrapSpecInAuditPushesInsideWrappers) {
  EXPECT_EQ(WrapSpecInAudit("crack"), "audit(crack)");
  EXPECT_EQ(WrapSpecInAudit("sharded(4,mdd1r)"), "sharded(4,audit(mdd1r))");
  EXPECT_EQ(WrapSpecInAudit("coord(2,crack)"), "coord(2,audit(crack))");
  EXPECT_EQ(WrapSpecInAudit("coord(2,epoch(crack))"),
            "coord(2,epoch(audit(crack)))");
  EXPECT_EQ(WrapSpecInAudit("threadsafe:mdd1r"), "threadsafe:audit(mdd1r)");
  EXPECT_EQ(WrapSpecInAudit("epoch(crack)"), "epoch(audit(crack))");
  EXPECT_EQ(WrapSpecInAudit("chaos(crack)"), "chaos(audit(crack))");
  EXPECT_EQ(WrapSpecInAudit("prog(5000,crack)"), "audit(prog(5000,crack))");
}

TEST(EngineSpecTest, WrapSpecInAuditIsIdempotent) {
  for (const std::string& text :
       {"audit(crack)", "sharded(2,audit(ddc))", "coord(2,audit(crack))",
        "threadsafe:audit(mdd1r)"}) {
    EXPECT_EQ(WrapSpecInAudit(text), text) << text;
  }
  EXPECT_EQ(WrapSpecInAudit(WrapSpecInAudit("coord(2,epoch(crack))")),
            WrapSpecInAudit("coord(2,epoch(crack))"));
}

TEST(EngineSpecTest, WrappedSpecsStillBuild) {
  const Column base = Column::UniquePermutation(256, 1);
  for (const std::string& text :
       {"crack", "sharded(2,mdd1r)", "coord(2,crack)", "epoch(crack)",
        "coord(2,epoch(crack))", "threadsafe:mdd1r", "prog(5000,crack)"}) {
    std::unique_ptr<SelectEngine> engine;
    const Status status =
        CreateEngine(WrapSpecInAudit(text), &base, EngineConfig{}, &engine);
    ASSERT_TRUE(status.ok()) << text << ": " << status.ToString();
    EXPECT_EQ(engine->SelectOrDie(16, 32).count(), 16) << text;
  }
}

}  // namespace
}  // namespace scrack
