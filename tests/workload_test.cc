// Tests for the workload generators (workload/workload.h, skyserver.h):
// every pattern must stay in-domain and show its defining shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/skyserver.h"
#include "workload/workload.h"

namespace scrack {
namespace {

WorkloadParams TestParams() {
  WorkloadParams params;
  params.n = 100'000;
  params.num_queries = 4000;
  params.selectivity = 10;
  params.seed = 3;
  return params;
}

class AllWorkloads : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(AllWorkloads, BoundsAreValidAndInDomain) {
  const WorkloadParams params = TestParams();
  const auto queries = MakeWorkload(GetParam(), params);
  ASSERT_EQ(queries.size(), static_cast<size_t>(params.num_queries));
  for (const RangeQuery& q : queries) {
    ASSERT_GE(q.low, 0);
    ASSERT_LT(q.low, q.high);
    ASSERT_LE(q.high, params.n);
  }
}

TEST_P(AllWorkloads, DeterministicPerSeed) {
  const WorkloadParams params = TestParams();
  const auto a = MakeWorkload(GetParam(), params);
  const auto b = MakeWorkload(GetParam(), params);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].low, b[i].low);
    ASSERT_EQ(a[i].high, b[i].high);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllWorkloads,
    ::testing::Values(
        WorkloadKind::kRandom, WorkloadKind::kSkew, WorkloadKind::kSeqRandom,
        WorkloadKind::kSeqZoomIn, WorkloadKind::kPeriodic,
        WorkloadKind::kZoomIn, WorkloadKind::kSequential,
        WorkloadKind::kZoomOutAlt, WorkloadKind::kZoomInAlt,
        WorkloadKind::kSeqReverse, WorkloadKind::kZoomOut,
        WorkloadKind::kSeqZoomOut, WorkloadKind::kSkewZoomOutAlt,
        WorkloadKind::kMixed, WorkloadKind::kSkyServer),
    [](const ::testing::TestParamInfo<WorkloadKind>& info) {
      return WorkloadName(info.param);
    });

TEST(WorkloadShapeTest, SequentialIsMonotonicallyIncreasing) {
  const auto queries = MakeWorkload(WorkloadKind::kSequential, TestParams());
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(queries[i].low, queries[i - 1].low);
  }
  // Spans most of the domain.
  EXPECT_GT(queries.back().low, 90'000);
}

TEST(WorkloadShapeTest, SeqReverseIsSequentialBackwards) {
  const auto fwd = MakeWorkload(WorkloadKind::kSequential, TestParams());
  const auto rev = MakeWorkload(WorkloadKind::kSeqReverse, TestParams());
  ASSERT_EQ(fwd.size(), rev.size());
  for (size_t i = 0; i < fwd.size(); ++i) {
    EXPECT_EQ(fwd[i].low, rev[rev.size() - 1 - i].low);
  }
}

TEST(WorkloadShapeTest, ZoomInNarrowsAroundCenter) {
  const auto queries = MakeWorkload(WorkloadKind::kZoomIn, TestParams());
  // Widths must shrink monotonically.
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_LE(queries[i].high - queries[i].low,
              queries[i - 1].high - queries[i - 1].low);
  }
  EXPECT_GT(queries.front().high - queries.front().low, 50'000);
}

TEST(WorkloadShapeTest, PeriodicWrapsAround) {
  const auto queries = MakeWorkload(WorkloadKind::kPeriodic, TestParams());
  int wraps = 0;
  for (size_t i = 1; i < queries.size(); ++i) {
    if (queries[i].low < queries[i - 1].low) ++wraps;
  }
  EXPECT_GE(wraps, 5);  // derived J gives ~10 sweeps
}

TEST(WorkloadShapeTest, SkewConcentratesEarlyQueriesLow) {
  const WorkloadParams params = TestParams();
  const auto queries = MakeWorkload(WorkloadKind::kSkew, params);
  const QueryId q = params.num_queries;
  for (QueryId i = 0; i < q * 8 / 10; ++i) {
    EXPECT_LT(queries[static_cast<size_t>(i)].low, params.n * 8 / 10);
  }
  for (QueryId i = q * 8 / 10; i < q; ++i) {
    EXPECT_GE(queries[static_cast<size_t>(i)].low, params.n * 8 / 10);
  }
}

TEST(WorkloadShapeTest, ZoomInAltAlternatesEnds) {
  const auto queries = MakeWorkload(WorkloadKind::kZoomInAlt, TestParams());
  // Even queries start low and climb; odd queries start high and descend.
  EXPECT_LT(queries[0].low, 1000);
  EXPECT_GT(queries[1].low, 90'000);
  EXPECT_LT(queries[2].low, queries[4].low + 1);
  EXPECT_GT(queries[1].low, queries[3].low - 1);
}

TEST(WorkloadShapeTest, ZoomOutAltExpandsFromCenter) {
  const WorkloadParams params = TestParams();
  const auto queries = MakeWorkload(WorkloadKind::kZoomOutAlt, params);
  EXPECT_NEAR(static_cast<double>(queries[0].low),
              static_cast<double>(params.n / 2), 10.0);
  // Later even queries drift up, odd drift down.
  EXPECT_GT(queries[100].low, params.n / 2 - 1);
  EXPECT_LT(queries[101].low, params.n / 2 + 1);
}

TEST(WorkloadShapeTest, SkewZoomOutAltCentersAtNinety) {
  const WorkloadParams params = TestParams();
  const auto queries =
      MakeWorkload(WorkloadKind::kSkewZoomOutAlt, params);
  EXPECT_NEAR(static_cast<double>(queries[0].low),
              static_cast<double>(params.n) * 0.9, 10.0);
}

TEST(WorkloadShapeTest, SeqRandomLowsAdvance) {
  const auto queries = MakeWorkload(WorkloadKind::kSeqRandom, TestParams());
  for (size_t i = 1; i < queries.size(); ++i) {
    EXPECT_GE(queries[i].low, queries[i - 1].low);
  }
}

TEST(WorkloadShapeTest, SeqZoomInHasWindowedStructure) {
  const WorkloadParams params = TestParams();  // 4000 queries -> 4 windows
  const auto queries = MakeWorkload(WorkloadKind::kSeqZoomIn, params);
  // Query 0 and query 1000 live in different windows.
  EXPECT_LT(queries[0].low, queries[1000].low);
  // Within a window, width narrows.
  EXPECT_GT(queries[0].high - queries[0].low,
            queries[999].high - queries[999].low);
}

TEST(WorkloadShapeTest, MixedSwitchesPatterns) {
  const WorkloadParams params = TestParams();
  const auto queries = MakeWorkload(WorkloadKind::kMixed, params);
  ASSERT_EQ(queries.size(), 4000u);
  // Consecutive blocks should differ in character; weak but useful check:
  // the set of lows in block 0 and block 1 are not identical.
  std::set<Value> block0, block1;
  for (int i = 0; i < 1000; ++i) block0.insert(queries[i].low);
  for (int i = 1000; i < 2000; ++i) block1.insert(queries[i].low);
  EXPECT_NE(block0, block1);
}

TEST(SkyServerTest, DwellsInNarrowRegions) {
  WorkloadParams params = TestParams();
  params.num_queries = 8000;
  const auto queries = MakeSkyServerWorkload(params);
  ASSERT_EQ(queries.size(), 8000u);
  // Consecutive queries are near each other within a phase: the median
  // step must be far smaller than the domain.
  std::vector<Value> steps;
  for (size_t i = 1; i < queries.size(); ++i) {
    steps.push_back(std::abs(queries[i].low - queries[i - 1].low));
  }
  std::nth_element(steps.begin(), steps.begin() + steps.size() / 2,
                   steps.end());
  EXPECT_LT(steps[steps.size() / 2], params.n / 100);
  // But jumps exist (phase changes).
  EXPECT_GT(*std::max_element(steps.begin(), steps.end()), params.n / 10);
}

TEST(SkyServerTest, CoversMultipleRegions) {
  WorkloadParams params = TestParams();
  params.num_queries = 8000;
  const auto queries = MakeSkyServerWorkload(params);
  std::set<Value> buckets;
  for (const RangeQuery& q : queries) buckets.insert(q.low / (params.n / 20));
  EXPECT_GE(buckets.size(), 4u);  // several distinct sky regions
}

TEST(WorkloadTest, ParseWorkloadKindRoundTrips) {
  for (WorkloadKind k : Fig17SyntheticKinds()) {
    WorkloadKind parsed;
    ASSERT_TRUE(ParseWorkloadKind(WorkloadName(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  WorkloadKind parsed;
  EXPECT_TRUE(ParseWorkloadKind("skyserver", &parsed));
  EXPECT_EQ(parsed, WorkloadKind::kSkyServer);
  EXPECT_FALSE(ParseWorkloadKind("nonsense", &parsed));
}

TEST(WorkloadTest, Fig17ListHasThirteenDistinctKinds) {
  const auto kinds = Fig17SyntheticKinds();
  EXPECT_EQ(kinds.size(), 13u);
  std::set<WorkloadKind> unique(kinds.begin(), kinds.end());
  EXPECT_EQ(unique.size(), 13u);
}

TEST(WorkloadTest, ExplicitJumpOverridesDefault) {
  WorkloadParams params = TestParams();
  params.jump = 5;
  const auto queries = MakeWorkload(WorkloadKind::kSequential, params);
  EXPECT_EQ(queries[1].low - queries[0].low, 5);
}

}  // namespace
}  // namespace scrack
