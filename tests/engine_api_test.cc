// Tests for the public-API extensions: SelectInterval (general interval
// bounds) and CrackerColumn::DescribePieces.
#include <gtest/gtest.h>

#include <limits>

#include "cracking/crack_engine.h"
#include "harness/engine_factory.h"
#include "test_util.h"

namespace scrack {
namespace {

TEST(SelectIntervalTest, AllFourBoundCombinations) {
  // Data: 0..99. Interval arithmetic on integers.
  const Column base = Column::UniquePermutation(100, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;

  QueryResult closed_closed;  // [10, 20] -> 11 values
  ASSERT_TRUE(engine
                  ->SelectInterval(10, B::kInclusive, 20, B::kInclusive,
                                   &closed_closed)
                  .ok());
  EXPECT_EQ(closed_closed.count(), 11);

  QueryResult open_open;  // (10, 20) -> 9 values
  ASSERT_TRUE(engine
                  ->SelectInterval(10, B::kExclusive, 20, B::kExclusive,
                                   &open_open)
                  .ok());
  EXPECT_EQ(open_open.count(), 9);

  QueryResult closed_open;  // [10, 20) -> 10 values
  ASSERT_TRUE(engine
                  ->SelectInterval(10, B::kInclusive, 20, B::kExclusive,
                                   &closed_open)
                  .ok());
  EXPECT_EQ(closed_open.count(), 10);

  QueryResult open_closed;  // (10, 20] -> 10 values
  ASSERT_TRUE(engine
                  ->SelectInterval(10, B::kExclusive, 20, B::kInclusive,
                                   &open_closed)
                  .ok());
  EXPECT_EQ(open_closed.count(), 10);
}

TEST(SelectIntervalTest, PaperFigureOnePredicates) {
  // Fig. 1: Q1 is "A > 10 and A < 14", Q2 is "A > 7 and A <= 16".
  const Column base(
      std::vector<Value>{13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6});
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;

  QueryResult q1;
  ASSERT_TRUE(
      engine->SelectInterval(10, B::kExclusive, 14, B::kExclusive, &q1).ok());
  EXPECT_EQ(q1.count(), 3);  // {13, 12, 11}
  EXPECT_EQ(q1.Sum(), 36);

  QueryResult q2;
  ASSERT_TRUE(
      engine->SelectInterval(7, B::kExclusive, 16, B::kInclusive, &q2).ok());
  EXPECT_EQ(q2.count(), 7);  // {13, 16, 9, 12, 14, 11, 8}
  EXPECT_EQ(q2.Sum(), 13 + 16 + 9 + 12 + 14 + 11 + 8);
}

TEST(SelectIntervalTest, EmptyIntegerIntervals) {
  const Column base = Column::UniquePermutation(100, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;
  QueryResult r;
  // (5, 6) contains no integer.
  ASSERT_TRUE(engine->SelectInterval(5, B::kExclusive, 6, B::kExclusive, &r)
                  .ok());
  EXPECT_EQ(r.count(), 0);
  // (5, 5] is empty too.
  ASSERT_TRUE(engine->SelectInterval(5, B::kExclusive, 5, B::kInclusive, &r)
                  .ok());
  EXPECT_EQ(r.count(), 0);
  // [5, 5] is the point query.
  ASSERT_TRUE(engine->SelectInterval(5, B::kInclusive, 5, B::kInclusive, &r)
                  .ok());
  EXPECT_EQ(r.count(), 1);
}

TEST(SelectIntervalTest, ValueMaxEdges) {
  constexpr Value kMax = std::numeric_limits<Value>::max();
  const Column base = Column::UniquePermutation(10, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;
  QueryResult r;
  // Exclusive lower bound at MAX is empty, not UB.
  ASSERT_TRUE(
      engine->SelectInterval(kMax, B::kExclusive, kMax, B::kExclusive, &r)
          .ok());
  EXPECT_EQ(r.count(), 0);
  // Inclusive upper bound at MAX is not representable half-open.
  EXPECT_EQ(engine->SelectInterval(0, B::kInclusive, kMax, B::kInclusive, &r)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectIntervalTest, EmptyOpenIntervalsAcrossTheDomain) {
  // (v, v+1) contains no integer for any v — the canonicalization must
  // yield an empty result everywhere, not just at small values.
  const Column base = Column::UniquePermutation(1000, 2);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;
  for (Value v : {0, 1, 499, 998}) {
    QueryResult r;
    ASSERT_TRUE(
        engine->SelectInterval(v, B::kExclusive, v + 1, B::kExclusive, &r)
            .ok())
        << v;
    EXPECT_EQ(r.count(), 0) << v;
  }
  // The engine state stays sound after the degenerate queries.
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(SelectIntervalTest, MaxAdjacentBounds) {
  constexpr Value kMax = std::numeric_limits<Value>::max();
  const Column base = Column::UniquePermutation(10, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;
  QueryResult r;
  // (MAX-1, MAX): lower canonicalizes to MAX, upper stays MAX — empty.
  ASSERT_TRUE(
      engine->SelectInterval(kMax - 1, B::kExclusive, kMax, B::kExclusive, &r)
          .ok());
  EXPECT_EQ(r.count(), 0);
  // [MAX, MAX): empty without overflow.
  ASSERT_TRUE(
      engine->SelectInterval(kMax, B::kInclusive, kMax, B::kExclusive, &r)
          .ok());
  EXPECT_EQ(r.count(), 0);
  // (MAX-1, MAX]: the inclusive-MAX upper bound is the one unrepresentable
  // case, surfaced as InvalidArgument rather than a wrapped bound.
  EXPECT_EQ(engine
                ->SelectInterval(kMax - 1, B::kExclusive, kMax, B::kInclusive,
                                 &r)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SelectIntervalTest, MaxValuedTupleIsReachableOnlyExclusively) {
  // A column that actually holds MAX: [lo, MAX) excludes it, and the
  // inclusive form that would cover it is rejected — the documented
  // half-open-domain limitation, pinned here so it fails loudly if the
  // canonicalization ever changes.
  constexpr Value kMax = std::numeric_limits<Value>::max();
  const Column base(std::vector<Value>{1, 5, kMax - 1, kMax});
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  using B = SelectEngine::Bound;
  QueryResult r;
  ASSERT_TRUE(
      engine->SelectInterval(5, B::kInclusive, kMax, B::kExclusive, &r).ok());
  EXPECT_EQ(r.count(), 2);  // {5, MAX-1}; MAX itself excluded
  EXPECT_EQ(engine->SelectInterval(5, B::kInclusive, kMax, B::kInclusive, &r)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DescribePiecesTest, UninitializedColumnIsEmpty) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackEngine engine(&base, EngineConfig{});
  const auto dist = engine.column().DescribePieces();
  EXPECT_EQ(dist.num_pieces, 0u);
}

TEST(DescribePiecesTest, TracksCracks) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, EngineConfig{});
  engine.SelectOrDie(250, 500);  // cracks at 250 and 500
  const auto dist = engine.column().DescribePieces();
  EXPECT_EQ(dist.num_pieces, 3u);
  EXPECT_EQ(dist.min_size, 250);
  EXPECT_EQ(dist.median_size, 250);
  EXPECT_EQ(dist.max_size, 500);
  EXPECT_DOUBLE_EQ(dist.mean_size, 1000.0 / 3.0);
}

TEST(DescribePiecesTest, MeanTimesCountEqualsColumnSize) {
  const Column base = Column::UniquePermutation(5000, 3);
  auto engine = CreateEngineOrDie("dd1r", &base, EngineConfig{});
  // Access the underlying column through a typed engine.
  CrackEngine typed(&base, EngineConfig{});
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const Value a = rng.UniformValue(0, 4900);
    typed.SelectOrDie(a, a + 50);
    const auto dist = typed.column().DescribePieces();
    ASSERT_NEAR(dist.mean_size * static_cast<double>(dist.num_pieces),
                5000.0, 1e-6);
  }
}

}  // namespace
}  // namespace scrack
