// Differential tests for the parallel partition kernels against the
// sequential dispatched kernels, plus the adaptive cutover wiring.
//
// Contract under test (cracking/kernel_parallel.h):
//   * every parallel kernel is **thread-count-invariant**: byte-identical
//     outputs at 1/2/3/7/8 threads and through the inline (null-pool)
//     path;
//   * ParallelCrackInThree is bit-identical to the sequential dispatched
//     CrackInThree — layout, splits, and counters;
//   * ParallelCrackInTwo (both variants) matches the sequential kernel's
//     split, multiset, touched, and partition invariant (its out-of-place
//     layout contract differs from the in-place blocked kernel's, like
//     the other out-of-place kernels');
//   * ParallelFilterInto and the parallel folds return exactly the
//     sequential results;
//   * CrackerColumn's cutover: pieces below parallel_min_values stay on
//     the sequential kernels (parallel_cracks == 0), pieces at or above
//     it fan out, and either way a crack-p engine's answers and piece
//     layouts equal the sequential engine's query for query.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <numeric>
#include <thread>
#include <vector>

#include "cracking/crack_engine.h"
#include "cracking/kernel.h"
#include "cracking/kernel_parallel.h"
#include "harness/engine_factory.h"
#include "parallel/thread_pool.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

constexpr Value kValueMin = std::numeric_limits<Value>::min();
constexpr Value kValueMax = std::numeric_limits<Value>::max();

const int kThreadCounts[] = {1, 2, 3, 7, 8};

ParallelContext Ctx(int threads) {
  ParallelContext ctx;
  ctx.pool = &ThreadPool::Shared();
  ctx.max_concurrency = threads;
  return ctx;
}

struct ParallelCase {
  const char* name;
  Index n;
  int distribution;  // 0 random, 1 sorted, 2 reverse, 3 duplicates,
                     // 4 all-equal, 5 empty
};

std::vector<Value> MakeData(const ParallelCase& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> data(static_cast<size_t>(c.n));
  switch (c.distribution) {
    case 0:
      for (auto& v : data) v = rng.UniformValue(-500, 1000);
      break;
    case 1:
      std::iota(data.begin(), data.end(), 0);
      break;
    case 2:
      std::iota(data.rbegin(), data.rend(), 0);
      break;
    case 3:
      for (auto& v : data) v = rng.UniformValue(0, 4);
      break;
    case 4:
      std::fill(data.begin(), data.end(), 7);
      break;
    case 5:
      break;  // n == 0
  }
  return data;
}

std::vector<Value> Pivots(uint64_t seed) {
  Rng rng(seed);
  return {kValueMin, kValueMax, 0, 7, rng.UniformValue(-600, 1100)};
}

// Sizes straddle the chunk geometry: sub-chunk, one chunk plus a tail, and
// several chunks (kParallelChunkValues == 64 Ki).
const ParallelCase kCases[] = {
    {"empty", 0, 5},
    {"one", 1, 0},
    {"two", 2, 0},
    {"tiny", 5, 0},
    {"small_random", 1000, 0},
    {"subchunk_random", 50000, 0},
    {"chunk_plus_tail", (Index{1} << 16) + 999, 0},
    {"multichunk_random", 4 * (Index{1} << 16) + 12345, 0},
    {"multichunk_sorted", 3 * (Index{1} << 16), 1},
    {"multichunk_reverse", 3 * (Index{1} << 16), 2},
    {"multichunk_duplicates", 3 * (Index{1} << 16) + 77, 3},
    {"multichunk_all_equal", 2 * (Index{1} << 16) + 1, 4},
};

class ParallelSweep : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelSweep, CrackInTwoMatchesSequential) {
  const ParallelCase c = GetParam();
  const std::vector<Value> original = MakeData(c, 100);
  for (Value pivot : Pivots(200)) {
    std::vector<Value> ref = original;
    KernelCounters ref_c;
    const Index ref_split =
        CrackInTwo(ref.data(), 0, c.n, pivot, &ref_c);

    std::vector<Value> first;  // 1-thread layout, the invariance reference
    for (int threads : kThreadCounts) {
      std::vector<Value> work = original;
      KernelCounters par_c;
      const Index split = ParallelCrackInTwo(work.data(), 0, c.n, pivot,
                                             Ctx(threads), &par_c);
      ASSERT_EQ(split, ref_split) << c.name << " pivot=" << pivot
                                  << " threads=" << threads;
      ASSERT_EQ(par_c.touched, ref_c.touched);
      EXPECT_EQ(Sorted(work), Sorted(ref));
      for (Index i = 0; i < c.n; ++i) {
        ASSERT_EQ(work[static_cast<size_t>(i)] < pivot, i < split)
            << c.name << " position " << i;
      }
      if (first.empty() && threads == 1) {
        first = work;
      } else {
        EXPECT_EQ(work, first) << c.name << " layout varies with threads="
                               << threads;
      }
    }

    // The inline (null-pool) path produces the same bytes again.
    std::vector<Value> inline_work = original;
    KernelCounters inline_c;
    const Index inline_split = ParallelCrackInTwo(
        inline_work.data(), 0, c.n, pivot, ParallelContext{}, &inline_c);
    EXPECT_EQ(inline_split, ref_split);
    EXPECT_EQ(inline_work, first);
  }
}

TEST_P(ParallelSweep, CrackInTwoInPlaceMatchesSequential) {
  const ParallelCase c = GetParam();
  const std::vector<Value> original = MakeData(c, 300);
  for (Value pivot : Pivots(400)) {
    std::vector<Value> ref = original;
    KernelCounters ref_c;
    const Index ref_split = CrackInTwo(ref.data(), 0, c.n, pivot, &ref_c);

    std::vector<Value> first;
    for (int threads : kThreadCounts) {
      std::vector<Value> work = original;
      KernelCounters par_c;
      const Index split = ParallelCrackInTwoInPlace(
          work.data(), 0, c.n, pivot, Ctx(threads), &par_c);
      ASSERT_EQ(split, ref_split) << c.name << " pivot=" << pivot;
      ASSERT_EQ(par_c.touched, ref_c.touched);
      EXPECT_EQ(Sorted(work), Sorted(ref));
      for (Index i = 0; i < c.n; ++i) {
        ASSERT_EQ(work[static_cast<size_t>(i)] < pivot, i < split);
      }
      if (first.empty() && threads == 1) {
        first = work;
      } else {
        EXPECT_EQ(work, first) << c.name << " threads=" << threads;
      }
    }
  }
}

TEST_P(ParallelSweep, CrackInThreeBitIdenticalToSequential) {
  const ParallelCase c = GetParam();
  const std::vector<Value> original = MakeData(c, 500);
  Rng rng(600);
  const std::pair<Value, Value> bounds[] = {
      {0, 7},
      {kValueMin, kValueMax},
      {-100, 500},
      {7, 7},
      testing::RandomRange(&rng, 1000),
  };
  for (const auto& [lo, hi] : bounds) {
    std::vector<Value> ref = original;
    KernelCounters ref_c;
    const auto ref_split = CrackInThree(ref.data(), 0, c.n, lo, hi, &ref_c);

    for (int threads : kThreadCounts) {
      std::vector<Value> work = original;
      KernelCounters par_c;
      const auto split = ParallelCrackInThree(work.data(), 0, c.n, lo, hi,
                                              Ctx(threads), &par_c);
      ASSERT_EQ(split, ref_split) << c.name << " [" << lo << "," << hi
                                  << ") threads=" << threads;
      // Bit-identical: same layout, same touched, same Hoare-equivalent
      // swap count as the sequential out-of-place kernel.
      EXPECT_EQ(work, ref) << c.name << " threads=" << threads;
      EXPECT_EQ(par_c.touched, ref_c.touched);
      EXPECT_EQ(par_c.swaps, ref_c.swaps);
    }
  }
}

TEST_P(ParallelSweep, FilterIntoAndFoldsMatchSequential) {
  const ParallelCase c = GetParam();
  const std::vector<Value> original = MakeData(c, 700);
  Rng rng(800);
  for (int trial = 0; trial < 4; ++trial) {
    const auto [qlo, qhi] = testing::RandomRange(&rng, 1000);
    std::vector<Value> ref_out;
    KernelCounters ref_c;
    FilterIntoScalar(original.data(), 0, c.n, qlo, qhi, &ref_out, &ref_c);
    const Index ref_count =
        CountInRange(original.data(), 0, c.n, qlo, qhi);
    const RangeSum ref_sum = SumInRange(original.data(), 0, c.n, qlo, qhi);
    const RangeMinMax ref_mm =
        MinMaxInRange(original.data(), 0, c.n, qlo, qhi);

    for (int threads : kThreadCounts) {
      const ParallelContext ctx = Ctx(threads);
      std::vector<Value> out;
      KernelCounters par_c;
      ParallelFilterInto(original.data(), 0, c.n, qlo, qhi, &out, ctx,
                         &par_c);
      EXPECT_EQ(out, ref_out) << c.name << " threads=" << threads;
      EXPECT_EQ(par_c.touched, c.n);

      EXPECT_EQ(ParallelCountInRange(original.data(), 0, c.n, qlo, qhi, ctx),
                ref_count);
      const RangeSum sum =
          ParallelSumInRange(original.data(), 0, c.n, qlo, qhi, ctx);
      EXPECT_EQ(sum.count, ref_sum.count);
      EXPECT_EQ(sum.sum, ref_sum.sum);
      const RangeMinMax mm =
          ParallelMinMaxInRange(original.data(), 0, c.n, qlo, qhi, ctx);
      EXPECT_EQ(mm.count, ref_mm.count);
      if (mm.count > 0) {
        EXPECT_EQ(mm.min, ref_mm.min);
        EXPECT_EQ(mm.max, ref_mm.max);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ParallelSweep, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<ParallelCase>&
                                info) { return info.param.name; });

// The kernels only touch their subrange: neighbors stay byte-identical.
TEST(ParallelKernelTest, SubrangeIsolation) {
  const Index n = 3 * (Index{1} << 16);
  std::vector<Value> data(static_cast<size_t>(n));
  Rng rng(11);
  for (auto& v : data) v = rng.UniformValue(0, 1 << 20);
  const Index begin = 1000;
  const Index end = n - 1000;
  const std::vector<Value> original = data;

  KernelCounters c;
  ParallelCrackInTwo(data.data(), begin, end, 1 << 19, Ctx(8), &c);
  for (Index i = 0; i < begin; ++i) {
    ASSERT_EQ(data[static_cast<size_t>(i)], original[static_cast<size_t>(i)]);
  }
  for (Index i = end; i < n; ++i) {
    ASSERT_EQ(data[static_cast<size_t>(i)], original[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(Sorted(std::vector<Value>(data.begin() + begin,
                                      data.begin() + end)),
            Sorted(std::vector<Value>(original.begin() + begin,
                                      original.begin() + end)));
}

// ParallelFor executes every index exactly once, from any nesting depth.
TEST(ParallelKernelTest, ParallelForCoversAllIndices) {
  ThreadPool& pool = ThreadPool::Shared();
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(1000, 8, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Nested: a ParallelFor issued from a pool task runs inline and still
  // covers everything.
  std::atomic<int64_t> total{0};
  pool.ParallelFor(4, 4, [&](int64_t) {
    pool.ParallelFor(100, 8,
                     [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 400);
}

// ------------------------------------------------ adaptive cutover --------

// Pieces below the threshold stay sequential; at and above it they fan
// out. The first Select of a fresh crack engine three-way-cracks the whole
// column, so the column size *is* the piece size the cutover sees.
TEST(ParallelCutoverTest, ThresholdBoundary) {
  const Index threshold = 8192;
  for (const Index n : {threshold - 1, threshold, threshold + 1}) {
    const Column base = Column::UniquePermutation(n, 5);
    EngineConfig config;
    config.parallel_threads = 8;
    config.parallel_min_values = threshold;
    CrackEngine engine(&base, config);
    QueryResult result;
    ASSERT_TRUE(engine.Select(n / 3, 2 * n / 3, &result).ok());
    const bool expect_parallel = n >= threshold;
    EXPECT_EQ(engine.stats().parallel_cracks > 0, expect_parallel)
        << "n=" << n << " threshold=" << threshold;
    EXPECT_EQ(engine.column().UsesParallel(n), expect_parallel);
    EXPECT_TRUE(engine.Validate().ok());
  }
}

// parallel_threads <= 1 disables the parallel path no matter the size.
TEST(ParallelCutoverTest, SingleThreadConfigStaysSequential) {
  const Column base = Column::UniquePermutation(100000, 6);
  EngineConfig config;
  config.parallel_threads = 1;
  config.parallel_min_values = 1024;
  CrackEngine engine(&base, config);
  QueryResult result;
  ASSERT_TRUE(engine.Select(1000, 90000, &result).ok());
  EXPECT_EQ(engine.stats().parallel_cracks, 0);
  EXPECT_EQ(engine.stats().threads_used, 0);
}

// --------------------------------- convergence equivalence ----------------

// A crack-p engine must converge exactly like the sequential crack engine:
// identical answers for every one of 1000 queries and an identical piece
// layout (crack keys and positions) at the end. Original cracking's crack
// positions are value-determined, so this holds even though the parallel
// kernels order elements differently *within* pieces.
TEST(ParallelConvergenceTest, PieceLayoutsMatchSequentialAfter1kQueries) {
  const Index n = 200000;
  const Column base = Column::UniquePermutation(n, 9);

  EngineConfig seq_config;
  CrackEngine seq(&base, seq_config);

  EngineConfig par_config;
  par_config.parallel_threads = 8;
  par_config.parallel_min_values = 4096;
  CrackEngine par(&base, par_config);

  WorkloadParams params;
  params.n = n;
  params.num_queries = 1000;
  params.seed = 17;
  for (const RangeQuery& q : MakeWorkload(WorkloadKind::kRandom, params)) {
    QueryResult seq_result;
    QueryResult par_result;
    ASSERT_TRUE(seq.Select(q.low, q.high, &seq_result).ok());
    ASSERT_TRUE(par.Select(q.low, q.high, &par_result).ok());
    ASSERT_EQ(par_result.count(), seq_result.count())
        << "[" << q.low << "," << q.high << ")";
    ASSERT_EQ(Sorted(par_result.Collect()), Sorted(seq_result.Collect()));
  }
  EXPECT_GT(par.stats().parallel_cracks, 0);
  EXPECT_EQ(par.stats().tuples_touched, seq.stats().tuples_touched);
  EXPECT_EQ(par.stats().cracks, seq.stats().cracks);

  // Identical physical piece layout: same crack boundaries everywhere.
  std::vector<std::pair<Index, Index>> seq_pieces;
  std::vector<std::pair<Index, Index>> par_pieces;
  seq.column().index().ForEachPiece([&](const Piece& piece) {
    seq_pieces.emplace_back(piece.begin, piece.end);
  });
  par.column().index().ForEachPiece([&](const Piece& piece) {
    par_pieces.emplace_back(piece.begin, piece.end);
  });
  EXPECT_EQ(par_pieces, seq_pieces);
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_TRUE(par.Validate().ok());
}

// Concurrent callers over parallel-crack engines: the intra-query fan-out
// (shared pool) must compose with the wrapper engines' locking — threadsafe
// holds its lock across a fan-out, sharded runs crack-p inners from pool
// workers (where the nested fan-out runs inline). Checksums against a
// single-threaded reference; races surface under the TSan CI job.
void HammerParallelSpec(const std::string& spec) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 91);
  EngineConfig config;
  config.parallel_min_values = 256;  // force the cutover at test sizes
  auto engine = CreateEngineOrDie(spec, &base, config);

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(3000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 100; ++i) {
        const auto range = testing::RandomRange(&rng, domain);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const testing::ReferenceAnswer want =
            testing::ReferenceSelect(base.values(), range.first,
                                     range.second);
        if (result.count() != want.count || result.Sum() != want.sum) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0) << spec;
  EXPECT_EQ(mismatches.load(), 0) << spec;
  EXPECT_TRUE(engine->Validate().ok()) << spec;
}

TEST(ParallelCrackHammerTest, ThreadsafeOverParallelCrack) {
  HammerParallelSpec("threadsafe:crack-p4");
}

TEST(ParallelCrackHammerTest, ShardedOverParallelCrackInners) {
  HammerParallelSpec("sharded(3,crack-p2)");
}

// The factory's -p suffixes: spec parses, engine answers correctly, and
// invalid thread counts are rejected.
TEST(ParallelFactoryTest, ParallelSpecs) {
  const Column base = Column::UniquePermutation(4096, 3);
  for (const char* spec : {"crack-p", "crack-p1", "ddc-p4", "dd1r-p8",
                           "mdd1r-p2", "sharded(2,crack-p2)"}) {
    std::unique_ptr<SelectEngine> engine;
    ASSERT_TRUE(CreateEngine(spec, &base, EngineConfig{}, &engine).ok())
        << spec;
    EXPECT_EQ(engine->SelectOrDie(10, 30).count(), 20) << spec;
  }
  std::unique_ptr<SelectEngine> engine;
  EXPECT_FALSE(CreateEngine("crack-p0", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(
      CreateEngine("crack-p9999", &base, EngineConfig{}, &engine).ok());
}

}  // namespace
}  // namespace scrack
