// EpochEngine tests: the exact read/write classification probe, the
// escalation counter semantics, the concurrency hammer required by the
// serving milestone (result parity vs a single-threaded reference, shared
// readers genuinely overlapping, zero WriterTag findings), and the
// ThreadSafeEngine mixed-batch deep-copy rule the epoch layer shares.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cracking/cracker_column.h"
#include "harness/engine_factory.h"
#include "parallel/epoch_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

// ---------------------------------------------------------------- probe ---

TEST(CanAnswerWithoutReorgTest, LazyColumnOwesFirstTouchCopy) {
  const Column base = Column::UniquePermutation(1024, 3);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);
  EXPECT_FALSE(column->CanAnswerWithoutReorg(100, 200));
  // Degenerate ranges are free even before initialization only when they
  // select nothing from nothing; a non-empty base still needs the copy.
  EXPECT_FALSE(column->CanAnswerWithoutReorg(200, 100));
}

TEST(CanAnswerWithoutReorgTest, CrackedBoundsBecomeReadable) {
  const Column base = Column::UniquePermutation(4096, 5);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);

  engine->SelectOrDie(1000, 3000);
  EXPECT_TRUE(column->CanAnswerWithoutReorg(1000, 3000));
  // One resolved bound is not enough: the unresolved one would crack.
  EXPECT_FALSE(column->CanAnswerWithoutReorg(999, 3000));
  EXPECT_FALSE(column->CanAnswerWithoutReorg(1000, 3001));
  // Domain edges resolve without cracks.
  EXPECT_TRUE(column->CanAnswerWithoutReorg(0, 1000));
  EXPECT_TRUE(column->CanAnswerWithoutReorg(3000, 4096));
  // Empty and out-of-domain ranges reorganize nothing.
  EXPECT_TRUE(column->CanAnswerWithoutReorg(2000, 2000));
  EXPECT_TRUE(column->CanAnswerWithoutReorg(5000, 6000));
  EXPECT_TRUE(column->CanAnswerWithoutReorg(-100, 0));
}

TEST(CanAnswerWithoutReorgTest, StagedUpdateInRangeForcesEscalation) {
  const Column base = Column::UniquePermutation(4096, 7);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);

  engine->SelectOrDie(1000, 3000);
  ASSERT_TRUE(engine->StageInsert(2000).ok());
  EXPECT_FALSE(column->CanAnswerWithoutReorg(1000, 3000));
  // The staged value is outside this cracked range, so it stays readable.
  engine->SelectOrDie(3000, 3500);
  EXPECT_TRUE(column->CanAnswerWithoutReorg(3000, 3500));
  // Merging the update restores readability.
  engine->SelectOrDie(1000, 3000);
  EXPECT_TRUE(column->CanAnswerWithoutReorg(1000, 3000));
}

TEST(CanAnswerWithoutReorgTest, ReadRegionMatchesReference) {
  const Column base = Column::UniquePermutation(4096, 9);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);

  engine->SelectOrDie(512, 2048);
  ASSERT_TRUE(column->CanAnswerWithoutReorg(512, 2048));
  Index begin = 0;
  Index end = 0;
  column->ReadRegion(512, 2048, &begin, &end);
  const ReferenceAnswer want = ReferenceSelect(base.values(), 512, 2048);
  EXPECT_EQ(end - begin, want.count);
  int64_t sum = 0;
  for (Index i = begin; i < end; ++i) sum += column->data()[i];
  EXPECT_EQ(sum, want.sum);
}

// ------------------------------------------------------------- counters ---

TEST(EpochEngineTest, EscalationCounterSemantics) {
  const Column base = Column::UniquePermutation(4096, 11);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});

  // Cold query cracks -> exclusive.
  engine->SelectOrDie(1000, 3000);
  EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.shared_reads, 0);
  EXPECT_EQ(stats.exclusive_cracks, 1);
  EXPECT_EQ(stats.escalations, 1);
  EXPECT_EQ(stats.queries, 1);

  // Replay -> shared; no new escalation.
  engine->SelectOrDie(1000, 3000);
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.shared_reads, 1);
  EXPECT_EQ(stats.exclusive_cracks, 1);
  EXPECT_EQ(stats.escalations, 1);
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.shared_reads + stats.exclusive_cracks, stats.queries);

  // Aggregates over a readable range are shared too.
  Query count;
  count.low = 1000;
  count.high = 3000;
  count.mode = OutputMode::kCount;
  QueryOutput output;
  ASSERT_TRUE(engine->Execute(count, &output).ok());
  EXPECT_EQ(engine->CurrentStats().shared_reads, 2);

  // A staged update escalates without counting as a query; the next
  // covering query escalates to merge, then the range is readable again.
  ASSERT_TRUE(engine->StageInsert(2000).ok());
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.escalations, 2);
  EXPECT_EQ(stats.queries, 3);
  engine->SelectOrDie(1000, 3000);
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.exclusive_cracks, 2);
  EXPECT_EQ(stats.escalations, 3);
  engine->SelectOrDie(1000, 3000);
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.shared_reads, 3);
  EXPECT_EQ(stats.escalations, 3);
  EXPECT_EQ(stats.shared_reads + stats.exclusive_cracks, stats.queries);

  // Wrapper convention: the outer stats_ stays untouched.
  EXPECT_EQ(engine->stats().queries, 0);
}

TEST(EpochEngineTest, ParityOnColdAndConvergedAnswers) {
  const Index n = 8192;
  const Value domain = n / 8;  // duplicate-heavy
  const Column base = Column::UniformRandom(n, 0, domain, 13);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});
  for (int pass = 0; pass < 2; ++pass) {
    Rng replay(23);  // same ranges both passes: cold then converged
    for (int i = 0; i < 200; ++i) {
      const auto range = RandomRange(&replay, domain);
      const QueryResult result =
          engine->SelectOrDie(range.first, range.second);
      const ReferenceAnswer want =
          ReferenceSelect(base.values(), range.first, range.second);
      EXPECT_EQ(result.count(), want.count);
      EXPECT_EQ(result.Sum(), want.sum);
    }
  }
  const EngineStats stats = engine->CurrentStats();
  EXPECT_GT(stats.shared_reads, 0);
  EXPECT_EQ(stats.shared_reads + stats.exclusive_cracks, stats.queries);
  EXPECT_TRUE(engine->Validate().ok());
}

// --------------------------------------------------------------- hammer ---

// The serving-milestone hammer: converge single-threaded, then replay the
// identical streams from many threads. Asserts (a) every answer matches
// the single-threaded reference, (b) the concurrent-reader high-water mark
// exceeds 1 — the shared phase genuinely overlaps instead of serializing —
// and (c) the WriterTag saw zero violations (no reader reorganized, no two
// writers overlapped). Runs under the TSan CI leg at SCRACK_THREADS=8.
TEST(EpochHammerTest, ConvergedReplayOverlapsWithParity) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 29);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});
  auto* epoch = dynamic_cast<EpochEngine*>(engine.get());
  ASSERT_NE(epoch, nullptr);
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 200;

  // Converge: crack every bound each hammer thread will use.
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(3000 + static_cast<uint64_t>(t));
    for (int i = 0; i < kQueriesPerThread; ++i) {
      const auto range = RandomRange(&rng, domain);
      engine->SelectOrDie(range.first, range.second);
    }
  }
  const int64_t escalations_converged = engine->CurrentStats().escalations;

  // Replay rounds until overlap is observed (overlap is a scheduling
  // property; on a loaded single-core runner one round can serialize by
  // accident, so retry — parity must hold in every round regardless).
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  for (int round = 0; round < 20 && epoch->reader_high_water() <= 1;
       ++round) {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(3000 + static_cast<uint64_t>(t));
        for (int i = 0; i < kQueriesPerThread; ++i) {
          const auto range = RandomRange(&rng, domain);
          QueryResult result;
          if (!engine->Select(range.first, range.second, &result).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const ReferenceAnswer want =
              ReferenceSelect(base.values(), range.first, range.second);
          if (result.count() != want.count || result.Sum() != want.sum) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(epoch->reader_high_water(), 1)
      << "shared readers never overlapped across 20 replay rounds";
  // A converged replay escalates nothing.
  EXPECT_EQ(engine->CurrentStats().escalations, escalations_converged);
  EXPECT_EQ(column->writer_tag().violations(), 0);
  EXPECT_TRUE(engine->Validate().ok());
  EXPECT_EQ(engine->stats().queries, 0)
      << "wrapper engines do not count queries on the outer stats_";
}

// Cold-phase hammer: every thread cracks concurrently, so the adapter must
// serialize every query; the WriterTag proves it did.
TEST(EpochHammerTest, ColdPhaseSerializesWriters) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 31);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(5000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 150; ++i) {
        const auto range = RandomRange(&rng, domain);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const ReferenceAnswer want =
            ReferenceSelect(base.values(), range.first, range.second);
        if (result.count() != want.count || result.Sum() != want.sum) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);
  EXPECT_EQ(column->writer_tag().violations(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

// Readers concurrent with an update stream: staged inserts escalate, every
// covering query merges under the exclusive lock, and nothing tears.
TEST(EpochHammerTest, UpdateStreamInterleavesWithReaders) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 37);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});

  // Converge first so readers take the shared path between escalations.
  for (int t = 0; t < 4; ++t) {
    Rng rng(7000 + static_cast<uint64_t>(t));
    for (int i = 0; i < 150; ++i) {
      const auto range = RandomRange(&rng, domain);
      engine->SelectOrDie(range.first, range.second);
    }
  }

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(7000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 150; ++i) {
        const auto range = RandomRange(&rng, domain);
        QueryResult result;
        // Counts drift as inserts land, so parity against the static
        // reference is not checkable here; the final quiesced check below
        // is. Sanity: the answer can only grow vs the base reference.
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        const ReferenceAnswer want =
            ReferenceSelect(base.values(), range.first, range.second);
        if (result.count() < want.count) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  constexpr int kInserts = 64;
  threads.emplace_back([&] {
    Rng rng(41);
    for (int u = 0; u < kInserts; ++u) {
      if (!engine->StageInsert(rng.UniformValue(0, domain)).ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(errors.load(), 0);
  // Quiesced: one full-range query merges every remaining insert.
  const QueryResult all = engine->SelectOrDie(0, domain + 1);
  const ReferenceAnswer want = ReferenceSelect(base.values(), 0, domain + 1);
  EXPECT_EQ(all.count(), want.count + kInserts);
  const CrackerColumn* column = engine->audit_column();
  ASSERT_NE(column, nullptr);
  EXPECT_EQ(column->writer_tag().violations(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

// ------------------------------------------------- mixed batches (fix) ----

// ThreadSafeEngine used to degrade a mixed batch to one-query-at-a-time;
// now a cracker-column inner takes the inner batch path with one
// end-of-batch deep copy. Every materialize output must survive the later
// queries' reorganization with its full multiset.
void CheckMixedBatch(const std::string& spec) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 43);
  auto engine = CreateEngineOrDie(spec, &base, EngineConfig{});

  std::vector<Query> batch;
  Rng rng(47);
  for (int i = 0; i < 32; ++i) {
    Query query;
    const auto range = RandomRange(&rng, domain);
    query.low = range.first;
    query.high = range.second;
    switch (i % 3) {
      case 0: query.mode = OutputMode::kMaterialize; break;
      case 1: query.mode = OutputMode::kSum; break;
      default: query.mode = OutputMode::kCount; break;
    }
    batch.push_back(query);
  }

  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(engine->ExecuteBatch(batch, &outputs).ok()) << spec;
  ASSERT_EQ(outputs.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const ReferenceAnswer want =
        ReferenceSelect(base.values(), batch[i].low, batch[i].high);
    if (batch[i].mode == OutputMode::kMaterialize) {
      EXPECT_EQ(outputs[i].result.count(), want.count) << spec << " #" << i;
      EXPECT_EQ(outputs[i].result.Sum(), want.sum) << spec << " #" << i;
      EXPECT_TRUE(outputs[i].result.materialized()) << spec << " #" << i;
    } else {
      EXPECT_EQ(outputs[i].count, want.count) << spec << " #" << i;
      if (batch[i].mode == OutputMode::kSum) {
        EXPECT_EQ(outputs[i].sum, want.sum) << spec << " #" << i;
      }
    }
  }
  EXPECT_TRUE(engine->Validate().ok()) << spec;
}

TEST(MixedBatchTest, ThreadSafeCrackTakesInnerBatchPath) {
  CheckMixedBatch("threadsafe:crack");
}

TEST(MixedBatchTest, ThreadSafeMdd1r) { CheckMixedBatch("threadsafe:mdd1r"); }

// Hybrids report no cracker column (partitions move data across the merge
// boundary, so batch-end views are not multiset-stable): the conservative
// per-query fallback must still answer correctly.
TEST(MixedBatchTest, ThreadSafeHybridFallback) {
  CheckMixedBatch("threadsafe:aicc");
}

TEST(MixedBatchTest, EpochCrackColdBatchEscalates) {
  CheckMixedBatch("epoch(crack)");
}

TEST(MixedBatchTest, EpochSharedBatchAfterConvergence) {
  const Index n = 8192;
  const Value domain = n / 8;
  const Column base = Column::UniformRandom(n, 0, domain, 53);
  auto engine = CreateEngineOrDie("epoch(crack)", &base, EngineConfig{});

  std::vector<Query> batch;
  Rng rng(59);
  for (int i = 0; i < 16; ++i) {
    Query query;
    const auto range = RandomRange(&rng, domain);
    query.low = range.first;
    query.high = range.second;
    query.mode = i % 2 == 0 ? OutputMode::kMaterialize : OutputMode::kSum;
    batch.push_back(query);
    engine->SelectOrDie(query.low, query.high);  // converge the bounds
  }
  const int64_t escalations_before = engine->CurrentStats().escalations;

  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(engine->ExecuteBatch(batch, &outputs).ok());
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.escalations, escalations_before)
      << "a fully-readable batch must run entirely under the shared lock";
  for (size_t i = 0; i < batch.size(); ++i) {
    const ReferenceAnswer want =
        ReferenceSelect(base.values(), batch[i].low, batch[i].high);
    if (batch[i].mode == OutputMode::kMaterialize) {
      EXPECT_EQ(outputs[i].result.count(), want.count);
      EXPECT_EQ(outputs[i].result.Sum(), want.sum);
    } else {
      EXPECT_EQ(outputs[i].sum, want.sum);
    }
  }
}

}  // namespace
}  // namespace scrack
