// Query-mode (aggregate pushdown) and batched-execution tests.
//
// Execute(Query) must agree with a scan of the raw data in every output
// mode on every factory-constructible engine, and ExecuteBatch must answer
// exactly like issuing the same queries one by one — including on the
// sharded engine, whose batch path merges per-shard partial aggregates.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "cracking/crack_engine.h"
#include "cracking/stochastic_engine.h"
#include "harness/adaptive_store.h"
#include "harness/engine_factory.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::DuplicateHeavyColumn;
using ::scrack::testing::RandomRange;
using ::scrack::testing::ReferenceSelect;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 23;
  config.crack_threshold_values = 64;
  config.progressive_min_values = 256;
  config.hybrid_partition_values = 512;
  return config;
}

/// Reference min/max over raw data.
struct ReferenceMinMax {
  Value min = 0;
  Value max = 0;
  Index count = 0;
};

ReferenceMinMax ReferenceMinMaxOf(const std::vector<Value>& data, Value low,
                                  Value high) {
  ReferenceMinMax ref;
  for (Value v : data) {
    if (v < low || v >= high) continue;
    if (ref.count == 0 || v < ref.min) ref.min = v;
    if (ref.count == 0 || v > ref.max) ref.max = v;
    ++ref.count;
  }
  return ref;
}

/// The aggregate modes, cycled through by the sweeps below.
constexpr OutputMode kAggregateModes[] = {
    OutputMode::kCount, OutputMode::kSum, OutputMode::kMinMax,
    OutputMode::kExists};

/// Checks one aggregate output against the raw data.
void ExpectMatchesReference(const std::vector<Value>& data,
                            const Query& query, const QueryOutput& output) {
  const auto ref = ReferenceSelect(data, query.low, query.high);
  switch (query.mode) {
    case OutputMode::kMaterialize:
      FAIL() << "aggregate check called with kMaterialize";
      break;
    case OutputMode::kCount:
      EXPECT_EQ(output.count, ref.count);
      break;
    case OutputMode::kSum:
      EXPECT_EQ(output.count, ref.count);
      EXPECT_EQ(output.sum, ref.sum);
      break;
    case OutputMode::kMinMax: {
      const auto mm = ReferenceMinMaxOf(data, query.low, query.high);
      EXPECT_EQ(output.count, mm.count);
      if (mm.count > 0) {
        EXPECT_EQ(output.min, mm.min);
        EXPECT_EQ(output.max, mm.max);
      }
      break;
    }
    case OutputMode::kExists:
      EXPECT_EQ(output.exists, ref.count >= query.limit);
      EXPECT_EQ(output.count, std::min(ref.count, query.limit));
      break;
  }
}

class QueryModesSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(QueryModesSweep, AggregateModesMatchReference) {
  const std::string& spec = GetParam();
  const Index n = 3000;
  const Column base = DuplicateHeavyColumn(n, 11);
  const std::vector<Value> data = base.values();
  auto engine = CreateEngineOrDie(spec, &base, TestConfig());

  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    const auto [lo, hi] = RandomRange(&rng, n / 8);
    Query query;
    query.low = lo;
    query.high = hi;
    query.mode = kAggregateModes[i % 4];
    query.limit = 1 + i % 4;
    QueryOutput output;
    ASSERT_TRUE(engine->Execute(query, &output).ok()) << spec;
    ExpectMatchesReference(data, query, output);
    if (i % 10 == 9) ASSERT_TRUE(engine->Validate().ok()) << spec;
  }
}

TEST_P(QueryModesSweep, BatchMatchesSequentialExecution) {
  const std::string& spec = GetParam();
  const Index n = 3000;
  const Column base = DuplicateHeavyColumn(n, 13);
  auto sequential = CreateEngineOrDie(spec, &base, TestConfig());
  auto batched = CreateEngineOrDie(spec, &base, TestConfig());

  // Aggregate modes only: a batch's earlier kMaterialize views may be
  // invalidated by later reorganizing queries (documented contract), so
  // cross-checking them after the batch would read reorganized data.
  Rng rng(19);
  std::vector<Query> queries;
  for (int i = 0; i < 48; ++i) {
    const auto [lo, hi] = RandomRange(&rng, n / 8);
    queries.push_back(Query{lo, hi, kAggregateModes[i % 4], 1 + i % 3});
  }

  std::vector<QueryOutput> expected;
  for (const Query& query : queries) {
    QueryOutput output;
    ASSERT_TRUE(sequential->Execute(query, &output).ok()) << spec;
    expected.push_back(std::move(output));
  }

  // Four chunks, so the batch path runs repeatedly on a warming engine.
  std::vector<QueryOutput> actual;
  for (size_t begin = 0; begin < queries.size(); begin += 12) {
    const std::vector<Query> chunk(
        queries.begin() + static_cast<long>(begin),
        queries.begin() + static_cast<long>(begin + 12));
    std::vector<QueryOutput> outputs;
    ASSERT_TRUE(batched->ExecuteBatch(chunk, &outputs).ok()) << spec;
    for (QueryOutput& output : outputs) actual.push_back(std::move(output));
  }

  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].count, expected[i].count) << spec << " query " << i;
    EXPECT_EQ(actual[i].sum, expected[i].sum) << spec << " query " << i;
    EXPECT_EQ(actual[i].min, expected[i].min) << spec << " query " << i;
    EXPECT_EQ(actual[i].max, expected[i].max) << spec << " query " << i;
    EXPECT_EQ(actual[i].exists, expected[i].exists) << spec << " query " << i;
  }
  EXPECT_TRUE(batched->Validate().ok()) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, QueryModesSweep, ::testing::ValuesIn(KnownEngineSpecs()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Acceptance: ExecuteBatch on sharded(P,crack) answers exactly like the
// same queries issued one by one on a single-threaded crack reference —
// including kMaterialize, whose sharded outputs are deep copies and so are
// stable across the rest of the batch.
TEST(ShardedBatchTest, ChecksumsMatchSingleThreadedReference) {
  const Index n = 5000;
  const Column base = Column::UniquePermutation(n, 29);
  auto reference = CreateEngineOrDie("crack", &base, TestConfig());
  auto sharded = CreateEngineOrDie("sharded(3,crack)", &base, TestConfig());

  Rng rng(31);
  std::vector<Query> queries;
  for (int i = 0; i < 40; ++i) {
    const auto [lo, hi] = RandomRange(&rng, n);
    OutputMode mode;
    switch (i % 5) {
      case 0: mode = OutputMode::kMaterialize; break;
      case 1: mode = OutputMode::kCount; break;
      case 2: mode = OutputMode::kSum; break;
      case 3: mode = OutputMode::kMinMax; break;
      default: mode = OutputMode::kExists; break;
    }
    queries.push_back(Query{lo, hi, mode, 2});
  }

  // Reference checksums per query, taken immediately (the crack reference
  // reorganizes, so its views must be consumed before the next query).
  std::vector<std::pair<Index, int64_t>> ref_checksums;
  for (const Query& query : queries) {
    QueryOutput output;
    ASSERT_TRUE(reference->Execute(query, &output).ok());
    if (query.mode == OutputMode::kMaterialize) {
      ref_checksums.emplace_back(output.result.count(), output.result.Sum());
    } else {
      ref_checksums.emplace_back(output.count, output.sum);
    }
  }

  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(sharded->ExecuteBatch(queries, &outputs).ok());
  ASSERT_EQ(outputs.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].mode == OutputMode::kMaterialize) {
      EXPECT_EQ(outputs[i].result.count(), ref_checksums[i].first) << i;
      EXPECT_EQ(outputs[i].result.Sum(), ref_checksums[i].second) << i;
    } else {
      EXPECT_EQ(outputs[i].count, ref_checksums[i].first) << i;
      EXPECT_EQ(outputs[i].sum, ref_checksums[i].second) << i;
    }
  }
  EXPECT_TRUE(sharded->Validate().ok());
}

// Acceptance: aggregate queries on a cracked column allocate no owned
// result buffers — EngineStats::materialized stays 0 while the pushdown
// counter advances.
TEST(PushdownStatsTest, CrackAggregatesDoNotMaterialize) {
  for (const char* spec : {"crack", "ddc", "dd1r", "sort"}) {
    const Column base = Column::UniquePermutation(4000, 41);
    auto engine = CreateEngineOrDie(spec, &base, TestConfig());
    Rng rng(43);
    for (int i = 0; i < 30; ++i) {
      const auto [lo, hi] = RandomRange(&rng, 4000);
      for (OutputMode mode : kAggregateModes) {
        QueryOutput output;
        ASSERT_TRUE(engine->Execute(Query{lo, hi, mode, 1}, &output).ok())
            << spec;
      }
    }
    EXPECT_EQ(engine->stats().materialized, 0) << spec;
    EXPECT_EQ(engine->stats().aggregates_pushed, 120) << spec;
    EXPECT_TRUE(engine->Validate().ok()) << spec;
  }
}

// Once cracks exist at the bounds, kCount and kExists are pure index
// arithmetic: repeating the query touches no tuples at all.
TEST(PushdownStatsTest, CrackCountIsFreeOnceConverged) {
  const Column base = Column::UniquePermutation(4000, 47);
  CrackEngine engine(&base, TestConfig());
  QueryOutput output;
  ASSERT_TRUE(
      engine.Execute(Query{100, 900, OutputMode::kCount, 1}, &output).ok());
  EXPECT_EQ(output.count, 800);
  const int64_t touched_before = engine.stats().tuples_touched;
  ASSERT_TRUE(
      engine.Execute(Query{100, 900, OutputMode::kCount, 1}, &output).ok());
  EXPECT_EQ(output.count, 800);
  EXPECT_EQ(engine.stats().tuples_touched, touched_before);
}

// Scan's kExists stops at the limit-th hit instead of finishing the pass.
TEST(PushdownStatsTest, ScanExistsTerminatesEarly) {
  const Index n = 100000;
  const Column base = Column::UniquePermutation(n, 53);
  auto engine = CreateEngineOrDie("scan", &base, TestConfig());
  // Every tuple qualifies, so the probe is satisfied by the first element.
  QueryOutput output;
  const int64_t before = engine->stats().tuples_touched;
  ASSERT_TRUE(
      engine->Execute(Query{0, n, OutputMode::kExists, 1}, &output).ok());
  EXPECT_TRUE(output.exists);
  EXPECT_EQ(engine->stats().tuples_touched - before, 1);
  // A full kCount still pays the whole pass.
  const int64_t before_count = engine->stats().tuples_touched;
  ASSERT_TRUE(
      engine->Execute(Query{0, n, OutputMode::kCount, 1}, &output).ok());
  EXPECT_EQ(output.count, n);
  EXPECT_EQ(engine->stats().tuples_touched - before_count, n);
}

// Updates staged before a batch are visible to every query in it, and the
// batch's one hull pass drains the pending pool it covers.
TEST(BatchUpdatesTest, PreStagedUpdatesVisibleInBatch) {
  const Index n = 2000;
  const Column base = Column::UniquePermutation(n, 59);
  CrackEngine sequential(&base, TestConfig());
  CrackEngine batched(&base, TestConfig());
  for (Value v : {100, 700, 1500}) {
    ASSERT_TRUE(sequential.StageInsert(v).ok());
    ASSERT_TRUE(batched.StageInsert(v).ok());
  }
  ASSERT_TRUE(sequential.StageDelete(50).ok());
  ASSERT_TRUE(batched.StageDelete(50).ok());

  const std::vector<Query> queries = {
      Query{0, 200, OutputMode::kCount, 1},
      Query{600, 800, OutputMode::kSum, 1},
      Query{1400, 1600, OutputMode::kCount, 1},
  };
  std::vector<QueryOutput> expected;
  for (const Query& query : queries) {
    QueryOutput output;
    ASSERT_TRUE(sequential.Execute(query, &output).ok());
    expected.push_back(std::move(output));
  }
  std::vector<QueryOutput> actual;
  ASSERT_TRUE(batched.ExecuteBatch(queries, &actual).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(actual[i].count, expected[i].count) << i;
    EXPECT_EQ(actual[i].sum, expected[i].sum) << i;
  }
  // The batch hull [0, 1600) covered every staged update.
  EXPECT_TRUE(batched.column().pending().empty());
  EXPECT_TRUE(batched.Validate().ok());
}

// The batch hull pass surfaces a bad staged delete as soon as the hull
// covers it — documented divergence from one-by-one execution, where only
// a query range covering the value trips it.
TEST(BatchUpdatesTest, AbsentDeleteInsideHullFailsTheBatch) {
  const Column base = Column::UniquePermutation(1000, 83);
  CrackEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageDelete(5000).ok());  // value never existed
  const std::vector<Query> queries = {
      Query{0, 100, OutputMode::kCount, 1},
      Query{900, 8000, OutputMode::kCount, 1},  // hull now covers 5000
  };
  std::vector<QueryOutput> outputs;
  EXPECT_EQ(engine.ExecuteBatch(queries, &outputs).code(),
            StatusCode::kNotFound);
}

// An invalid batch is rejected before the hull merge runs: no pending
// update may be merged (no reorganization) by a rejected request, and the
// error is the validation error, not a merge error.
TEST(BatchUpdatesTest, InvalidBatchLeavesPendingUntouched) {
  const Column base = Column::UniquePermutation(1000, 89);
  CrackEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageInsert(50).ok());
  ASSERT_TRUE(engine.StageDelete(5000).ok());  // absent; merging would fail
  const std::vector<Query> queries = {
      Query{5, 3, OutputMode::kCount, 1},  // invalid: low > high
      Query{0, 8000, OutputMode::kCount, 1},
  };
  std::vector<QueryOutput> outputs;
  EXPECT_EQ(engine.ExecuteBatch(queries, &outputs).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.column().pending().num_pending_inserts(), 1);
  EXPECT_EQ(engine.column().pending().num_pending_deletes(), 1);
}

TEST(ExecuteContractTest, RejectsInvalidQueries) {
  const Column base = Column::UniquePermutation(100, 61);
  for (const char* spec : {"scan", "crack", "sharded(2,crack)"}) {
    auto engine = CreateEngineOrDie(spec, &base, TestConfig());
    QueryOutput output;
    EXPECT_EQ(engine
                  ->Execute(Query{50, 10, OutputMode::kCount, 1}, &output)
                  .code(),
              StatusCode::kInvalidArgument)
        << spec;
    EXPECT_EQ(engine
                  ->Execute(Query{10, 50, OutputMode::kExists, 0}, &output)
                  .code(),
              StatusCode::kInvalidArgument)
        << spec;
    EXPECT_EQ(
        engine->Execute(Query{10, 50, OutputMode::kCount, 1}, nullptr).code(),
        StatusCode::kInvalidArgument)
        << spec;
  }
}

TEST(ExecuteContractTest, OutputIsResetBetweenUses) {
  const Column base = Column::UniquePermutation(100, 67);
  auto engine = CreateEngineOrDie("crack", &base, TestConfig());
  QueryOutput output;
  ASSERT_TRUE(
      engine->Execute(Query{0, 100, OutputMode::kSum, 1}, &output).ok());
  EXPECT_EQ(output.count, 100);
  // Reusing the same output must not accumulate.
  ASSERT_TRUE(
      engine->Execute(Query{0, 10, OutputMode::kSum, 1}, &output).ok());
  EXPECT_EQ(output.count, 10);
  EXPECT_EQ(output.sum, 45);
}

// The threadsafe wrapper's batch path: mixed modes under one lock, with
// kMaterialize entries deep-copied per query so they stay valid.
TEST(ThreadSafeBatchTest, MixedModesAreStable) {
  const Index n = 2000;
  const Column base = Column::UniquePermutation(n, 71);
  const std::vector<Value> data = base.values();
  auto engine = CreateEngineOrDie("threadsafe:mdd1r", &base, TestConfig());

  std::vector<Query> queries;
  Rng rng(73);
  for (int i = 0; i < 20; ++i) {
    const auto [lo, hi] = RandomRange(&rng, n);
    queries.push_back(Query{lo, hi,
                            i % 2 == 0 ? OutputMode::kMaterialize
                                       : OutputMode::kSum,
                            1});
  }
  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(engine->ExecuteBatch(queries, &outputs).ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto ref = ReferenceSelect(data, queries[i].low, queries[i].high);
    if (queries[i].mode == OutputMode::kMaterialize) {
      EXPECT_EQ(outputs[i].result.count(), ref.count) << i;
      EXPECT_EQ(outputs[i].result.Sum(), ref.sum) << i;
      EXPECT_TRUE(outputs[i].result.materialized() ||
                  outputs[i].result.num_segments() == 0)
          << i;
    } else {
      EXPECT_EQ(outputs[i].count, ref.count) << i;
      EXPECT_EQ(outputs[i].sum, ref.sum) << i;
    }
  }
}

TEST(AdaptiveStoreQueryTest, ExecuteAndBatch) {
  AdaptiveStore store(TestConfig());
  ASSERT_TRUE(store
                  .AddColumn("price", Column::UniquePermutation(1000, 79),
                             "crack")
                  .ok());
  QueryOutput output;
  ASSERT_TRUE(
      store.Execute("price", Query{0, 500, OutputMode::kCount, 1}, &output)
          .ok());
  EXPECT_EQ(output.count, 500);
  EXPECT_EQ(store
                .Execute("absent", Query{0, 1, OutputMode::kCount, 1},
                         &output)
                .code(),
            StatusCode::kNotFound);

  const std::vector<Query> queries = {
      Query{0, 100, OutputMode::kCount, 1},
      Query{100, 300, OutputMode::kSum, 1},
  };
  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(store.ExecuteBatch("price", queries, &outputs).ok());
  ASSERT_EQ(outputs.size(), 2u);
  EXPECT_EQ(outputs[0].count, 100);
  EXPECT_EQ(outputs[1].count, 200);
}

}  // namespace
}  // namespace scrack
