// Tests for the sharded parallel engine and its sharded(P,<inner>) factory
// spec: parse errors, correctness against scan/reference answers on
// duplicate-heavy and skewed inputs, single-shard equivalence to the bare
// inner engine, and update routing.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/engine_factory.h"
#include "parallel/sharded_engine.h"
#include "test_util.h"
#include "workload/workload.h"

namespace scrack {
namespace {

using testing::DuplicateHeavyColumn;
using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

// ---------------------------------------------------------- spec parsing --

TEST(ShardedSpecTest, RejectsMalformedSpecs) {
  const Column base = Column::UniquePermutation(64, 1);
  const EngineConfig config;
  for (const std::string& spec : {
           "sharded",             // no parameter list
           "sharded()",           // empty parameter list
           "sharded(4",           // unbalanced parens
           "sharded(4)",          // missing inner spec
           "sharded(4,)",         // empty inner spec
           "sharded(,crack)",     // missing shard count
           "sharded(0,crack)",    // P = 0
           "sharded(-2,crack)",   // negative P
           "sharded(1.5,crack)",  // non-integer P
           "sharded(2000,crack)"  // P over the 1024 cap
       }) {
    std::unique_ptr<SelectEngine> engine;
    const Status status = CreateEngine(spec, &base, config, &engine);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
  // An unknown inner spec fails with the inner parser's error.
  std::unique_ptr<SelectEngine> engine;
  EXPECT_FALSE(CreateEngine("sharded(4,nope)", &base, config, &engine).ok());
}

TEST(ShardedSpecTest, AcceptsNestedAndSpacedSpecs) {
  const Column base = Column::UniquePermutation(256, 1);
  const EngineConfig config;
  for (const std::string& spec :
       {"sharded(4,crack)", "sharded(2, mdd1r)", "sharded(3,pmdd1r:10)",
        "SHARDED(2,Crack)", "sharded(2,threadsafe:mdd1r)"}) {
    std::unique_ptr<SelectEngine> engine;
    const Status status = CreateEngine(spec, &base, config, &engine);
    ASSERT_TRUE(status.ok()) << spec << ": " << status.ToString();
    EXPECT_EQ(engine->SelectOrDie(16, 32).count(), 16) << spec;
    EXPECT_TRUE(engine->Validate().ok()) << spec;
  }
}

TEST(ShardedSpecTest, NameReportsRequestedShardsAndInner) {
  const Column base = Column::UniquePermutation(64, 1);
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  EXPECT_EQ(engine->name(), "sharded(4,crack)");
}

// ----------------------------------------------------------- correctness --

// Runs `queries` through `spec` and `scan` side by side, comparing each
// query's count/sum checksum.
void ExpectMatchesScan(const std::string& spec, const Column& base,
                       const std::vector<RangeQuery>& queries) {
  const EngineConfig config;
  auto engine = CreateEngineOrDie(spec, &base, config);
  auto reference = CreateEngineOrDie("scan", &base, config);
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryResult got = engine->SelectOrDie(queries[i].low,
                                                queries[i].high);
    const QueryResult want = reference->SelectOrDie(queries[i].low,
                                                    queries[i].high);
    ASSERT_EQ(got.count(), want.count())
        << spec << " query " << i << " [" << queries[i].low << ", "
        << queries[i].high << ")";
    ASSERT_EQ(got.Sum(), want.Sum()) << spec << " query " << i;
  }
  EXPECT_TRUE(engine->Validate().ok()) << spec;
}

TEST(ShardedEngineTest, MatchesScanOnRandomWorkload) {
  const Column base = Column::UniquePermutation(10000, 7);
  WorkloadParams params;
  params.n = base.size();
  params.num_queries = 200;
  params.selectivity = 100;
  params.seed = 11;
  const auto queries = MakeWorkload(WorkloadKind::kRandom, params);
  ExpectMatchesScan("sharded(4,crack)", base, queries);
  ExpectMatchesScan("sharded(4,mdd1r)", base, queries);
}

TEST(ShardedEngineTest, MatchesScanOnSkewedWorkload) {
  const Column base = Column::UniquePermutation(10000, 13);
  WorkloadParams params;
  params.n = base.size();
  params.num_queries = 200;
  params.selectivity = 100;
  params.seed = 17;
  const auto queries = MakeWorkload(WorkloadKind::kSkew, params);
  ExpectMatchesScan("sharded(8,ddc)", base, queries);
}

TEST(ShardedEngineTest, MatchesReferenceOnDuplicateHeavyData) {
  // n values over n/8 distinct: shard boundaries collapse onto repeated
  // values, so routing must keep all duplicates of a value in one shard.
  const Column base = DuplicateHeavyColumn(8192, 23);
  auto engine = CreateEngineOrDie("sharded(4,mdd1r)", &base, EngineConfig{});
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    const auto range = RandomRange(&rng, base.size() / 8);
    const QueryResult got = engine->SelectOrDie(range.first, range.second);
    const ReferenceAnswer want =
        ReferenceSelect(base.values(), range.first, range.second);
    ASSERT_EQ(got.count(), want.count) << "query " << i;
    ASSERT_EQ(got.Sum(), want.sum) << "query " << i;
  }
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(ShardedEngineTest, AllValuesEqualCollapsesToOneShardAndStillAnswers) {
  const Column base(std::vector<Value>(1000, 42));
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  EXPECT_EQ(engine->SelectOrDie(0, 100).count(), 1000);
  EXPECT_EQ(engine->SelectOrDie(43, 100).count(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(ShardedEngineTest, EmptyAndDegenerateInputs) {
  const Column empty;
  auto engine = CreateEngineOrDie("sharded(4,crack)", &empty, EngineConfig{});
  EXPECT_EQ(engine->SelectOrDie(0, 100).count(), 0);
  EXPECT_TRUE(engine->Validate().ok());

  const Column base = Column::UniquePermutation(100, 3);
  engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  EXPECT_EQ(engine->SelectOrDie(50, 50).count(), 0);  // empty range
  QueryResult result;
  EXPECT_EQ(engine->Select(60, 40, &result).code(),
            StatusCode::kInvalidArgument);  // inverted range
}

// ------------------------------------------------- single-shard identity --

TEST(ShardedEngineTest, SingleShardMatchesBareInnerEngine) {
  const Column base = Column::UniquePermutation(4096, 31);
  const EngineConfig config;
  auto sharded = CreateEngineOrDie("sharded(1,crack)", &base, config);
  auto bare = CreateEngineOrDie("crack", &base, config);
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    const auto range = RandomRange(&rng, base.size());
    const QueryResult got = sharded->SelectOrDie(range.first, range.second);
    const QueryResult want = bare->SelectOrDie(range.first, range.second);
    ASSERT_EQ(got.count(), want.count()) << "query " << i;
    ASSERT_EQ(got.Sum(), want.Sum()) << "query " << i;
  }
  // The single shard holds the whole column, so the inner engine does
  // exactly the work the bare engine does.
  EXPECT_EQ(sharded->stats().cracks, bare->stats().cracks);
  EXPECT_EQ(sharded->stats().tuples_touched, bare->stats().tuples_touched);
  EXPECT_EQ(sharded->stats().queries, bare->stats().queries);
}

// ----------------------------------------------------------------- stats --

TEST(ShardedEngineTest, StatsCountQueriesAndAggregateShardWork) {
  const Column base = Column::UniquePermutation(4096, 41);
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  for (int i = 0; i < 10; ++i) {
    engine->SelectOrDie(i * 100, i * 100 + 500);
  }
  EXPECT_EQ(engine->stats().queries, 10);
  EXPECT_GT(engine->stats().cracks, 0);
  EXPECT_GT(engine->stats().materialized, 0);  // results are deep-copied
}

TEST(ShardedEngineTest, ResultsAreMaterializedAndOutliveReorganization) {
  const Column base = Column::UniquePermutation(4096, 43);
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  const QueryResult first = engine->SelectOrDie(1000, 3000);
  EXPECT_TRUE(first.materialized());
  const ReferenceAnswer want = ReferenceSelect(base.values(), 1000, 3000);
  // Re-crack every shard; `first` must stay valid (owned buffers).
  Rng rng(47);
  for (int i = 0; i < 50; ++i) {
    const auto range = RandomRange(&rng, base.size());
    engine->SelectOrDie(range.first, range.second);
  }
  EXPECT_EQ(first.count(), want.count);
  EXPECT_EQ(first.Sum(), want.sum);
}

// --------------------------------------------------------------- updates --

TEST(ShardedEngineTest, UpdatesRouteToTheOwningShard) {
  const Column base = Column::UniquePermutation(2000, 53);
  auto engine = CreateEngineOrDie("sharded(4,crack)", &base, EngineConfig{});
  std::vector<Value> expected = base.values();

  // Inserts across the whole domain, including values outside [0, n) that
  // must route to the edge shards.
  for (Value v : {-5, 0, 499, 500, 1200, 1999, 2500}) {
    ASSERT_TRUE(engine->StageInsert(v).ok());
    expected.push_back(v);
  }
  for (Value v : {10, 1500}) {
    ASSERT_TRUE(engine->StageDelete(v).ok());
    expected.erase(std::find(expected.begin(), expected.end(), v));
  }

  const ReferenceAnswer want = ReferenceSelect(expected, -100, 3000);
  const QueryResult got = engine->SelectOrDie(-100, 3000);
  EXPECT_EQ(got.count(), want.count);
  EXPECT_EQ(got.Sum(), want.sum);
  EXPECT_TRUE(engine->Validate().ok());
}

}  // namespace
}  // namespace scrack
