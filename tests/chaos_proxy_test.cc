// Tests for the ChaosProxy network-fault injector and the end-to-end
// robustness claims it exists to prove: a coordinator talking TCP through
// seeded delays, byte drops, mid-frame truncations, and severed connections
// never crashes and never hangs past its deadlines — every fault resolves
// as a retried bit-identical answer, an OK degraded partial, or a
// structured error; and an ambiguous write (request delivered, response
// lost) surfaces as an error WITHOUT the value being applied twice.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "distributed/chaos_proxy.h"
#include "distributed/coordinator_engine.h"
#include "distributed/storage_node.h"
#include "distributed/tcp_server.h"
#include "distributed/tcp_transport.h"
#include "harness/engine_factory.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace scrack {
namespace {

using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

constexpr uint64_t kTestSeed = 17;
constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

/// K storage nodes, each behind its own TcpNodeServer AND its own
/// ChaosProxy; the transport's endpoints point at the proxies.
struct ChaosCluster {
  std::vector<Value> lowers;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::vector<std::unique_ptr<TcpNodeServer>> servers;
  std::vector<std::unique_ptr<ChaosProxy>> proxies;
  std::vector<TcpEndpoint> endpoints;
};

void StartChaosCluster(const Column& base, int k,
                       const ChaosProxyOptions& chaos, ChaosCluster* out) {
  out->lowers = CoordinatorEngine::ComputeLowers(base, k);
  ASSERT_EQ(static_cast<int>(out->lowers.size()), k);
  std::vector<std::vector<Value>> slices =
      CoordinatorEngine::DealSlices(base, out->lowers);
  for (int i = 0; i < k; ++i) {
    EngineConfig config;
    config.seed = kTestSeed + static_cast<uint64_t>(i) * kGolden;
    std::unique_ptr<StorageNode> node;
    ASSERT_TRUE(StorageNode::Create(
                    Column(std::move(slices[static_cast<size_t>(i)])), i,
                    [config](const Column* node_base, int /*index*/,
                             std::unique_ptr<SelectEngine>* o) {
                      return CreateEngine("crack", node_base, config, o);
                    },
                    &node)
                    .ok());
    auto server = std::make_unique<TcpNodeServer>();
    ASSERT_TRUE(server->Start(node.get(), 0).ok());
    auto proxy = std::make_unique<ChaosProxy>();
    ChaosProxyOptions per_node = chaos;
    per_node.seed = chaos.seed + static_cast<uint64_t>(i) * kGolden;
    ASSERT_TRUE(proxy->Start("127.0.0.1", server->port(), per_node).ok());
    out->endpoints.push_back(TcpEndpoint{"127.0.0.1", proxy->port()});
    out->nodes.push_back(std::move(node));
    out->servers.push_back(std::move(server));
    out->proxies.push_back(std::move(proxy));
  }
}

void SetChaosEnabled(ChaosCluster* cluster, bool enabled) {
  for (auto& proxy : cluster->proxies) proxy->SetEnabled(enabled);
}

int64_t TotalFaults(const ChaosCluster& cluster) {
  int64_t total = 0;
  for (const auto& proxy : cluster.proxies) total += proxy->faults_injected();
  return total;
}

std::unique_ptr<SelectEngine> CoordThroughProxies(
    const ChaosCluster& cluster, const TcpTransportOptions& options, int k) {
  std::unique_ptr<SelectEngine> coord;
  const Status status = CoordinatorEngine::CreateOverTransport(
      cluster.lowers,
      std::make_unique<TcpTransport>(cluster.endpoints, options), "crack", k,
      &coord);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return coord;
}

TcpTransportOptions SoakOptions() {
  TcpTransportOptions options;
  options.call_timeout_ms = 400;
  options.max_attempts = 3;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 8;
  options.jitter_seed = 7;
  return options;
}

// ------------------------------------------------------------ passthrough --

TEST(ChaosProxyTest, PassthroughForwardsBitIdentically) {
  const Column base = Column::UniquePermutation(1024, 5);
  ChaosProxyOptions chaos;
  chaos.fault_every_bytes = 0;  // transparent forwarder
  ChaosCluster cluster;
  StartChaosCluster(base, 2, chaos, &cluster);
  auto engine = CoordThroughProxies(cluster, SoakOptions(), 2);
  ASSERT_NE(engine, nullptr);
  Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const auto range = RandomRange(&rng, 1024);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    EXPECT_EQ(engine->SelectOrDie(range.first, range.second).count(),
              expect.count);
  }
  EXPECT_EQ(TotalFaults(cluster), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(ChaosProxyTest, DelayOnlyFaultsNeverChangeAnswers) {
  // kDelay perturbs timing but not bytes: every answer stays exact.
  const Column base = Column::UniquePermutation(1024, 13);
  ChaosProxyOptions chaos;
  chaos.seed = 23;
  chaos.fault_every_bytes = 512;
  chaos.delay_ms = 1;
  chaos.force_kind = static_cast<int>(ChaosFault::kDelay);
  ChaosCluster cluster;
  StartChaosCluster(base, 2, chaos, &cluster);
  auto engine = CoordThroughProxies(cluster, SoakOptions(), 2);
  ASSERT_NE(engine, nullptr);
  Rng rng(31);
  for (int i = 0; i < 15; ++i) {
    const auto range = RandomRange(&rng, 1024);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    EXPECT_EQ(engine->SelectOrDie(range.first, range.second).count(),
              expect.count);
  }
  int64_t delays = 0;
  for (const auto& proxy : cluster.proxies) delays += proxy->delays();
  EXPECT_GT(delays, 0);
}

// ------------------------------------------------------------------- soak --

// The seeded soak of the acceptance criteria: a mixed fault schedule
// (delay/drop/truncate/sever) against live query traffic. Every query must
// resolve within its deadline as one of the allowed outcome classes; after
// chaos is switched off, the cluster must answer completely again.
TEST(ChaosProxyTest, SeededFaultSoakNeverCrashesOrHangs) {
  const Column base = Column::UniquePermutation(2048, 3);
  ChaosProxyOptions chaos;
  chaos.seed = 77;
  chaos.fault_every_bytes = 768;
  chaos.delay_ms = 1;
  ChaosCluster cluster;
  StartChaosCluster(base, 2, chaos, &cluster);

  // Creation primes each node with a kStats round trip; run it on a clean
  // network so setup failures cannot masquerade as soak findings.
  SetChaosEnabled(&cluster, false);
  auto engine = CoordThroughProxies(cluster, SoakOptions(), 2);
  ASSERT_NE(engine, nullptr);
  SetChaosEnabled(&cluster, true);

  Timer timer;
  Rng rng(99);
  int ok_full = 0;
  int ok_degraded = 0;
  int structured_errors = 0;
  for (int i = 0; i < 40; ++i) {
    const auto range = RandomRange(&rng, 2048);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    Query query;
    query.low = range.first;
    query.high = range.second;
    // Materialized sweeps push multi-KB responses through the proxies, so
    // response-side faults actually land; counts keep request traffic hot.
    query.mode = (i % 4 == 0) ? OutputMode::kMaterialize : OutputMode::kCount;
    QueryOutput output;
    const Status status = engine->Execute(query, &output);
    if (!status.ok()) {
      ++structured_errors;  // loud, typed, and allowed — never a crash
      continue;
    }
    const Index got = query.mode == OutputMode::kMaterialize
                          ? output.result.count()
                          : output.count;
    if (output.degraded_nodes > 0) {
      ++ok_degraded;
      EXPECT_LE(got, expect.count);  // a partial can never invent tuples
    } else {
      ++ok_full;
      EXPECT_EQ(got, expect.count)
          << "[" << range.first << "," << range.second << ")";
    }
  }
  // Liveness: 40 queries against two faulting proxies finish far inside
  // this bound when every leg honors its deadline.
  EXPECT_LT(timer.ElapsedNanos() / 1000000, 120000);
  EXPECT_GT(TotalFaults(cluster), 0);
  EXPECT_EQ(ok_full + ok_degraded + structured_errors, 40);

  // The counter laws hold no matter which faults landed where.
  const EngineStats stats = engine->CurrentStats();
  EXPECT_LE(stats.transport_retries, stats.transport_reconnects);

  // Chaos off: the same engine, same connections-or-reconnects, answers
  // completely again. Nothing was wedged by the fault schedule.
  SetChaosEnabled(&cluster, false);
  Query sweep;
  sweep.low = -1;
  sweep.high = 4096;
  sweep.mode = OutputMode::kCount;
  QueryOutput output;
  ASSERT_TRUE(engine->Execute(sweep, &output).ok());
  EXPECT_EQ(output.degraded_nodes, 0);
  EXPECT_EQ(output.count, 2048);
  EXPECT_TRUE(engine->Validate().ok());
}

// ------------------------------------------------------- ambiguous writes --

TEST(ChaosProxyTest, AmbiguousWriteSurfacesErrorAndAppliesExactlyOnce) {
  // The response to a StageInsert dies on the wire (request direction is
  // clean, response direction severs). The transport must treat the lost
  // response as ambiguous — NO resend — so the write errors loudly while
  // the node applies it exactly once.
  const Column base = Column::UniquePermutation(256, 9);
  ChaosProxyOptions chaos;
  chaos.seed = 41;
  chaos.fault_every_bytes = 64;
  chaos.direction_mask = 2;  // responses only
  chaos.force_kind = static_cast<int>(ChaosFault::kSever);
  ChaosCluster cluster;
  StartChaosCluster(base, 1, chaos, &cluster);

  SetChaosEnabled(&cluster, false);
  auto engine = CoordThroughProxies(cluster, SoakOptions(), 1);
  ASSERT_NE(engine, nullptr);

  // Arm the sever: the priming traffic already pushed the response stream
  // past the first scheduled fault offset, so the very next response byte
  // triggers it.
  SetChaosEnabled(&cluster, true);
  const Status write = engine->StageInsert(300);
  EXPECT_FALSE(write.ok()) << "ambiguous write must surface, not vanish";

  // Clean network again: the value must be present exactly once. A blind
  // resend would have doubled it.
  SetChaosEnabled(&cluster, false);
  EXPECT_EQ(engine->SelectOrDie(300, 301).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(-1, 512).count(), 256 + 1);
  EXPECT_TRUE(engine->Validate().ok());

  // No in-call resend happened for the ambiguous failure.
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.transport_retries, 0);
  EXPECT_EQ(cluster.proxies[0]->severs(), 1);
}

}  // namespace
}  // namespace scrack
