// Behavior tests for the selective strategies (FiftyFifty, FlipCoin,
// EveryX, ScrackMon, SizeThreshold) and the naive RkCrack baselines.
#include <gtest/gtest.h>

#include "cracking/random_inject_engine.h"
#include "cracking/selective_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 29;
  config.crack_threshold_values = 64;
  return config;
}

TEST(SelectiveEngineTest, FiftyFiftyAlternatesDeterministically) {
  const Column base = Column::UniquePermutation(10'000, 7);
  SelectiveEngine engine(&base, TestConfig(), SelectivePolicy::kFiftyFifty);
  // Query 0 (even): stochastic -> random pivot, materialization possible.
  engine.SelectOrDie(4000, 4100);
  EXPECT_EQ(engine.stats().random_pivots, 1);
  // Query 1 (odd): original cracking -> cracks exactly on the bounds.
  engine.SelectOrDie(6000, 6100);
  EXPECT_EQ(engine.stats().random_pivots, 1);
  EXPECT_TRUE(engine.column().index().HasCrack(6000));
  EXPECT_TRUE(engine.column().index().HasCrack(6100));
  // Query 2 (even): stochastic again.
  engine.SelectOrDie(2000, 2100);
  EXPECT_GE(engine.stats().random_pivots, 2);
  EXPECT_FALSE(engine.column().index().HasCrack(2000));
}

TEST(SelectiveEngineTest, EveryXAppliesStochasticOnSchedule) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.every_x = 4;
  SelectiveEngine engine(&base, config, SelectivePolicy::kEveryX);
  int64_t pivots_after[8];
  for (int i = 0; i < 8; ++i) {
    const Value a = 1000 + 1000 * i;
    engine.SelectOrDie(a, a + 10);
    pivots_after[i] = engine.stats().random_pivots;
  }
  // Stochastic on queries 0 and 4 only.
  EXPECT_GT(pivots_after[0], 0);
  EXPECT_EQ(pivots_after[3], pivots_after[0]);
  EXPECT_GT(pivots_after[4], pivots_after[3]);
  EXPECT_EQ(pivots_after[7], pivots_after[4]);
}

TEST(SelectiveEngineTest, FlipCoinIsSeedDeterministic) {
  const Column base = Column::UniquePermutation(10'000, 7);
  SelectiveEngine a(&base, TestConfig(), SelectivePolicy::kFlipCoin);
  SelectiveEngine b(&base, TestConfig(), SelectivePolicy::kFlipCoin);
  for (int i = 0; i < 20; ++i) {
    const Value lo = 100 * i;
    EXPECT_EQ(a.SelectOrDie(lo, lo + 50).count(),
              b.SelectOrDie(lo, lo + 50).count());
  }
  EXPECT_EQ(a.stats().random_pivots, b.stats().random_pivots);
  EXPECT_EQ(a.stats().cracks, b.stats().cracks);
}

TEST(SelectiveEngineTest, FlipCoinMixesBothModes) {
  const Column base = Column::UniquePermutation(50'000, 7);
  SelectiveEngine engine(&base, TestConfig(), SelectivePolicy::kFlipCoin);
  for (int i = 0; i < 40; ++i) {
    const Value lo = 1000 * i;
    engine.SelectOrDie(lo, lo + 100);
  }
  // With p=0.5 over 40 queries, both modes must have occurred.
  EXPECT_GT(engine.stats().random_pivots, 0);
  EXPECT_GT(engine.stats().cracks, engine.stats().random_pivots);
}

TEST(ScrackMonTest, ThresholdOneIsAlwaysStochastic) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.monitor_threshold = 1;
  SelectiveEngine engine(&base, config, SelectivePolicy::kMonitor);
  engine.SelectOrDie(4000, 4100);
  engine.SelectOrDie(6000, 6100);
  // Every crack decision was stochastic: no bound cracks anywhere.
  EXPECT_FALSE(engine.column().index().HasCrack(4000));
  EXPECT_FALSE(engine.column().index().HasCrack(6000));
  EXPECT_GT(engine.stats().random_pivots, 0);
}

TEST(ScrackMonTest, HighThresholdStartsOriginal) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.monitor_threshold = 100;
  SelectiveEngine engine(&base, config, SelectivePolicy::kMonitor);
  engine.SelectOrDie(4000, 4100);
  // Counter far from threshold: behaves like original cracking.
  EXPECT_TRUE(engine.column().index().HasCrack(4000));
  EXPECT_TRUE(engine.column().index().HasCrack(4100));
  EXPECT_EQ(engine.stats().random_pivots, 0);
}

TEST(ScrackMonTest, CounterTriggersStochasticAfterThresholdCracks) {
  const Column base = Column::UniquePermutation(100'000, 7);
  EngineConfig config = TestConfig();
  config.monitor_threshold = 3;
  SelectiveEngine engine(&base, config, SelectivePolicy::kMonitor);
  // Sequential pattern keeps cracking the same big tail piece; after enough
  // cracks its counter trips and a stochastic action fires.
  for (int i = 0; i < 12; ++i) {
    const Value lo = 1000 * i;
    engine.SelectOrDie(lo, lo + 10);
  }
  EXPECT_GT(engine.stats().random_pivots, 0);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(SizeThresholdTest, BigPiecesStochasticSmallPiecesOriginal) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.crack_threshold_values = 1000;
  SelectiveEngine engine(&base, config, SelectivePolicy::kSizeThreshold);
  engine.SelectOrDie(5000, 5010);  // whole column: stochastic
  EXPECT_GT(engine.stats().random_pivots, 0);
  EXPECT_FALSE(engine.column().index().HasCrack(5000));
  // Keep querying the same narrow area; once pieces shrink below the
  // threshold the engine cracks on bounds again.
  for (int i = 0; i < 50; ++i) {
    engine.SelectOrDie(5000, 5010);
  }
  EXPECT_TRUE(engine.column().index().HasCrack(5000));
  EXPECT_TRUE(engine.Validate().ok());
}

// --------------------------------------------------------------- RkCrack --

TEST(RandomInjectTest, InjectsOneRandomQueryPerPeriod) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.inject_period = 2;
  RandomInjectEngine engine(&base, config);
  EXPECT_EQ(engine.name(), "r2crack");
  for (int i = 0; i < 8; ++i) {
    const Value lo = 1000 * (i % 9);
    engine.SelectOrDie(lo, lo + 10);
  }
  // 8 user queries, period 2 -> 4 forced random queries.
  EXPECT_EQ(engine.stats().random_pivots, 4);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(RandomInjectTest, ForcedQueriesAddCracksBeyondUserBounds) {
  const Column base = Column::UniquePermutation(100'000, 7);
  EngineConfig config = TestConfig();
  config.inject_period = 1;
  RandomInjectEngine engine(&base, config);
  engine.SelectOrDie(10, 20);
  // User query cracks 2 bounds; forced random query cracks up to 2 more.
  EXPECT_GT(engine.stats().cracks, 2);
}

TEST(RandomInjectTest, ResultsUnaffectedByInjection) {
  const Column base = Column::UniquePermutation(10'000, 7);
  EngineConfig config = TestConfig();
  config.inject_period = 1;
  RandomInjectEngine engine(&base, config);
  for (int i = 0; i < 20; ++i) {
    const Value lo = 400 * i;
    EXPECT_EQ(engine.SelectOrDie(lo, lo + 100).count(), 100);
  }
}

}  // namespace
}  // namespace scrack
