// Tests for src/storage: Column, QueryResult, PendingUpdates, Table.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "storage/column.h"
#include "storage/pending_updates.h"
#include "storage/query_result.h"
#include "storage/table.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

// ---------------------------------------------------------------- Column --

TEST(ColumnTest, EmptyColumn) {
  Column column;
  EXPECT_EQ(column.size(), 0);
  EXPECT_TRUE(column.empty());
  Value lo, hi;
  EXPECT_EQ(column.MinMax(&lo, &hi).code(), StatusCode::kNotFound);
}

TEST(ColumnTest, UniquePermutationContainsAllValues) {
  const Column column = Column::UniquePermutation(1000, 5);
  std::set<Value> seen(column.values().begin(), column.values().end());
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(ColumnTest, UniquePermutationIsDeterministicPerSeed) {
  const Column a = Column::UniquePermutation(500, 9);
  const Column b = Column::UniquePermutation(500, 9);
  const Column c = Column::UniquePermutation(500, 10);
  EXPECT_EQ(a.values(), b.values());
  EXPECT_NE(a.values(), c.values());
}

TEST(ColumnTest, UniquePermutationIsShuffled) {
  const Column column = Column::UniquePermutation(1000, 5);
  // Identity permutation would have every element in place.
  int in_place = 0;
  for (Index i = 0; i < column.size(); ++i) {
    if (column[i] == i) ++in_place;
  }
  EXPECT_LT(in_place, 50);
}

TEST(ColumnTest, UniformRandomWithinBounds) {
  const Column column = Column::UniformRandom(2000, -50, 50, 3);
  for (Index i = 0; i < column.size(); ++i) {
    EXPECT_GE(column[i], -50);
    EXPECT_LT(column[i], 50);
  }
}

TEST(ColumnTest, MinMax) {
  Column column(std::vector<Value>{5, -2, 9, 3});
  Value lo = 0, hi = 0;
  ASSERT_TRUE(column.MinMax(&lo, &hi).ok());
  EXPECT_EQ(lo, -2);
  EXPECT_EQ(hi, 9);
  ASSERT_TRUE(column.MinMax(nullptr, nullptr).ok());  // out-params optional
}

TEST(ColumnTest, AppendAndPopBack) {
  Column column;
  column.Append(1);
  column.Append(2);
  EXPECT_EQ(column.size(), 2);
  EXPECT_EQ(column.PopBack(), 2);
  EXPECT_EQ(column.size(), 1);
}

// ----------------------------------------------------------- QueryResult --

TEST(QueryResultTest, EmptyResult) {
  QueryResult result;
  EXPECT_EQ(result.count(), 0);
  EXPECT_EQ(result.Sum(), 0);
  EXPECT_EQ(result.num_segments(), 0u);
  EXPECT_FALSE(result.materialized());
  EXPECT_TRUE(result.Collect().empty());
}

TEST(QueryResultTest, ViewSegments) {
  const std::vector<Value> data = {1, 2, 3, 4, 5};
  QueryResult result;
  result.AddView(data.data(), 2);
  result.AddView(data.data() + 3, 2);
  result.AddView(data.data(), 0);  // ignored
  EXPECT_EQ(result.count(), 4);
  EXPECT_EQ(result.Sum(), 1 + 2 + 4 + 5);
  EXPECT_EQ(result.num_segments(), 2u);
  EXPECT_FALSE(result.materialized());
  EXPECT_EQ(result.Collect(), (std::vector<Value>{1, 2, 4, 5}));
}

TEST(QueryResultTest, OwnedSegments) {
  QueryResult result;
  result.AddOwned({7, 8});
  result.AddOwned({});  // ignored
  result.AddOwned({9});
  EXPECT_EQ(result.count(), 3);
  EXPECT_EQ(result.Sum(), 24);
  EXPECT_TRUE(result.materialized());
  EXPECT_EQ(result.num_segments(), 2u);
}

TEST(QueryResultTest, OwnedPointersSurviveMoreAdds) {
  // Adding many owned buffers must not invalidate earlier segments.
  QueryResult result;
  for (Value v = 0; v < 100; ++v) result.AddOwned({v});
  EXPECT_EQ(result.count(), 100);
  EXPECT_EQ(result.Sum(), 99 * 100 / 2);
  const auto all = result.Collect();
  for (Value v = 0; v < 100; ++v) EXPECT_EQ(all[static_cast<size_t>(v)], v);
}

TEST(QueryResultTest, MixedViewAndOwned) {
  const std::vector<Value> data = {10, 20};
  QueryResult result;
  result.AddOwned({1});
  result.AddView(data.data(), 2);
  EXPECT_EQ(result.count(), 3);
  EXPECT_EQ(result.Sum(), 31);
  EXPECT_TRUE(result.materialized());
}

TEST(QueryResultTest, MoveTransfersSegments) {
  QueryResult a;
  a.AddOwned({1, 2, 3});
  QueryResult b = std::move(a);
  EXPECT_EQ(b.count(), 3);
  EXPECT_EQ(b.Sum(), 6);
  // The cached count moves with the segments: the source is empty again.
  EXPECT_EQ(a.count(), 0);            // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.num_segments(), 0u);    // NOLINT(bugprone-use-after-move)
}

TEST(QueryResultTest, CountIsCachedAcrossManySegments) {
  // count() is O(1) bookkeeping, so interleaving adds and reads stays
  // consistent at every step.
  const std::vector<Value> data(64, 1);
  QueryResult result;
  Index expected = 0;
  for (int i = 0; i < 50; ++i) {
    if (i % 2 == 0) {
      result.AddView(data.data(), i % 5);
      expected += i % 5;
    } else {
      result.AddOwned(std::vector<Value>(static_cast<size_t>(i % 3), 7));
      expected += i % 3;
    }
    ASSERT_EQ(result.count(), expected);
  }
}

TEST(QueryResultTest, ForEachSegmentVisitsInOrder) {
  const std::vector<Value> data = {1, 2, 3};
  QueryResult result;
  result.AddView(data.data(), 3);
  result.AddOwned({4, 5});
  std::vector<Value> seen;
  result.ForEachSegment([&](const Value* d, Index len) {
    seen.insert(seen.end(), d, d + len);
  });
  EXPECT_EQ(seen, (std::vector<Value>{1, 2, 3, 4, 5}));
}

// -------------------------------------------------------- PendingUpdates --

TEST(PendingUpdatesTest, StageAndCount) {
  PendingUpdates pending;
  EXPECT_TRUE(pending.empty());
  pending.StageInsert(5);
  pending.StageInsert(15);
  pending.StageDelete(7);
  EXPECT_EQ(pending.num_pending_inserts(), 2);
  EXPECT_EQ(pending.num_pending_deletes(), 1);
  EXPECT_FALSE(pending.empty());
}

TEST(PendingUpdatesTest, IntersectsRange) {
  PendingUpdates pending;
  pending.StageInsert(10);
  EXPECT_TRUE(pending.IntersectsRange(5, 15));
  EXPECT_TRUE(pending.IntersectsRange(10, 11));
  EXPECT_FALSE(pending.IntersectsRange(11, 20));
  EXPECT_FALSE(pending.IntersectsRange(0, 10));  // half-open upper bound
  pending.StageDelete(3);
  EXPECT_TRUE(pending.IntersectsRange(0, 4));
}

TEST(PendingUpdatesTest, TakeInsertsInRemovesExactlyMatching) {
  PendingUpdates pending;
  for (Value v : {1, 5, 10, 15, 20}) pending.StageInsert(v);
  const auto taken = pending.TakeInsertsIn(5, 16);
  EXPECT_EQ(Sorted(taken), (std::vector<Value>{5, 10, 15}));
  EXPECT_EQ(pending.num_pending_inserts(), 2);
  EXPECT_EQ(Sorted(pending.inserts()), (std::vector<Value>{1, 20}));
}

TEST(PendingUpdatesTest, TakeDeletesIn) {
  PendingUpdates pending;
  for (Value v : {2, 4, 6}) pending.StageDelete(v);
  const auto taken = pending.TakeDeletesIn(3, 7);
  EXPECT_EQ(Sorted(taken), (std::vector<Value>{4, 6}));
  EXPECT_EQ(pending.num_pending_deletes(), 1);
}

TEST(PendingUpdatesTest, PoolsStaySortedUnderArbitraryStagingOrder) {
  PendingUpdates pending;
  for (Value v : {9, 1, 5, 3, 7, 5}) pending.StageInsert(v);
  EXPECT_EQ(pending.inserts(), (std::vector<Value>{1, 3, 5, 5, 7, 9}));
  // Taken runs come back ascending and leave a sorted remainder.
  EXPECT_EQ(pending.TakeInsertsIn(3, 8), (std::vector<Value>{3, 5, 5, 7}));
  EXPECT_EQ(pending.inserts(), (std::vector<Value>{1, 9}));
}

TEST(PendingUpdatesTest, IntersectsLargePoolBinarySearch) {
  // The intersection probe must agree with a brute-force check across a
  // large pool (this is the path that used to be O(pending) per query).
  PendingUpdates pending;
  for (Value v = 0; v < 1000; v += 10) pending.StageInsert(v * 7 % 1000);
  for (Value lo : {0, 1, 123, 990, 1000}) {
    for (Value width : {0, 1, 7, 100}) {
      bool expected = false;
      for (Value v : pending.inserts()) {
        if (v >= lo && v < lo + width) expected = true;
      }
      EXPECT_EQ(pending.IntersectsRange(lo, lo + width), expected)
          << lo << "+" << width;
    }
  }
}

TEST(PendingUpdatesTest, DuplicateValuesAllTaken) {
  PendingUpdates pending;
  pending.StageInsert(5);
  pending.StageInsert(5);
  const auto taken = pending.TakeInsertsIn(5, 6);
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(pending.empty());
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, AddAndGetColumns) {
  Table table("lineitem");
  EXPECT_EQ(table.name(), "lineitem");
  ASSERT_TRUE(table.AddColumn("a", Column({1, 2, 3})).ok());
  ASSERT_TRUE(table.AddColumn("b", Column({4, 5, 6})).ok());
  EXPECT_EQ(table.num_rows(), 3);
  EXPECT_EQ(table.num_columns(), 2u);
  ASSERT_NE(table.GetColumn("a"), nullptr);
  EXPECT_EQ((*table.GetColumn("b"))[0], 4);
  EXPECT_EQ(table.GetColumn("missing"), nullptr);
  EXPECT_EQ(table.ColumnNames(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableTest, RejectsDuplicateColumn) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", Column({1})).ok());
  EXPECT_EQ(table.AddColumn("a", Column({2})).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsRowCountMismatch) {
  Table table("t");
  ASSERT_TRUE(table.AddColumn("a", Column({1, 2})).ok());
  EXPECT_EQ(table.AddColumn("b", Column({1})).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace scrack
