// Differential tests for the predicated and AVX2 kernel variants against
// the scalar reference kernels (the seed implementations), plus the
// dispatched entry points.
//
// Contract under test (cracking/kernel.h):
//   * predicated vs scalar: same split positions, same multiset, same
//     touched, same swaps (Hoare-equivalent accounting) — layout may
//     differ, but the partition invariant must hold;
//   * AVX2 vs predicated: bit-identical arrays, materialization buffers,
//     return values, and counters — dispatch must never change results;
//   * PartialPartition predicated vs scalar: bit-identical layout, cursors
//     and swap counts at every budget (the progressive budget contract),
//     with the predicated `touched` summing to exactly the region size
//     over the passes of one complete partition;
//   * fold kernels vs the scalar folds: identical aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "cracking/kernel.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

constexpr Value kValueMin = std::numeric_limits<Value>::min();
constexpr Value kValueMax = std::numeric_limits<Value>::max();

struct SimdCase {
  const char* name;
  Index n;
  int distribution;  // 0 random, 1 sorted, 2 reverse, 3 duplicates,
                     // 4 all-equal, 5 empty
};

std::vector<Value> MakeData(const SimdCase& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> data(static_cast<size_t>(c.n));
  switch (c.distribution) {
    case 0:
      for (auto& v : data) v = rng.UniformValue(-500, 1000);
      break;
    case 1:
      std::iota(data.begin(), data.end(), 0);
      break;
    case 2:
      std::iota(data.rbegin(), data.rend(), 0);
      break;
    case 3:
      for (auto& v : data) v = rng.UniformValue(0, 4);
      break;
    case 4:
      std::fill(data.begin(), data.end(), 7);
      break;
    case 5:
      break;  // n == 0
  }
  return data;
}

std::vector<Value> Pivots(const SimdCase& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> pivots = {kValueMin, kValueMax, 0, 7,
                               rng.UniformValue(-600, 1100)};
  return pivots;
}

class SimdSweep : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdSweep, CrackInTwoPredicatedMatchesScalarContract) {
  const SimdCase c = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> original = MakeData(c, 100 + trial);
    for (Value pivot : Pivots(c, 200 + trial)) {
      std::vector<Value> ref = original;
      std::vector<Value> pred = original;
      KernelCounters ref_counters;
      KernelCounters pred_counters;
      const Index ref_split =
          CrackInTwoScalar(ref.data(), 0, c.n, pivot, &ref_counters);
      const Index pred_split =
          CrackInTwoPredicated(pred.data(), 0, c.n, pivot, &pred_counters);
      ASSERT_EQ(pred_split, ref_split);
      ASSERT_EQ(pred_counters.touched, ref_counters.touched);
      // Swap accounting: the blocked kernel reports its actual exchanges,
      // which are bounded by touches and exactly the Hoare count when the
      // input fits the two-cursor finish (<= 2 blocks of 128).
      ASSERT_LE(pred_counters.swaps, pred_counters.touched);
      if (c.n <= 256) {
        ASSERT_EQ(pred_counters.swaps, ref_counters.swaps)
            << "pivot=" << pivot;
      }
      for (Index i = 0; i < pred_split; ++i) ASSERT_LT(pred[i], pivot);
      for (Index i = pred_split; i < c.n; ++i) ASSERT_GE(pred[i], pivot);
      ASSERT_EQ(Sorted(pred), Sorted(ref));
    }
  }
}

TEST_P(SimdSweep, CrackInTwoDispatchBitIdenticalToPredicated) {
  const SimdCase c = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> original = MakeData(c, 300 + trial);
    for (Value pivot : Pivots(c, 400 + trial)) {
      std::vector<Value> pred = original;
      std::vector<Value> disp = original;
      KernelCounters pred_counters;
      KernelCounters disp_counters;
      const Index pred_split =
          CrackInTwoPredicated(pred.data(), 0, c.n, pivot, &pred_counters);
      const Index disp_split =
          CrackInTwo(disp.data(), 0, c.n, pivot, &disp_counters);
      ASSERT_EQ(disp_split, pred_split);
      ASSERT_EQ(disp, pred);  // bit-identical layout
      ASSERT_EQ(disp_counters.touched, pred_counters.touched);
      ASSERT_EQ(disp_counters.swaps, pred_counters.swaps);
    }
  }
}

TEST_P(SimdSweep, CrackInThreeVariantsAgree) {
  const SimdCase c = GetParam();
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> original = MakeData(c, 500 + trial);
    for (int bounds = 0; bounds < 4; ++bounds) {
      Value lo = rng.UniformValue(-600, 1100);
      Value hi = rng.UniformValue(-600, 1100);
      if (lo > hi) std::swap(lo, hi);
      if (bounds == 2) lo = hi;            // empty middle
      if (bounds == 3) {                   // extreme bounds
        lo = kValueMin;
        hi = kValueMax;
      }
      std::vector<Value> ref = original;
      std::vector<Value> pred = original;
      std::vector<Value> disp = original;
      KernelCounters ref_counters;
      KernelCounters pred_counters;
      KernelCounters disp_counters;
      const auto [r1, r2] =
          CrackInThreeScalar(ref.data(), 0, c.n, lo, hi, &ref_counters);
      const auto [p1, p2] =
          CrackInThreePredicated(pred.data(), 0, c.n, lo, hi, &pred_counters);
      const auto [d1, d2] =
          CrackInThree(disp.data(), 0, c.n, lo, hi, &disp_counters);
      ASSERT_EQ(p1, r1);
      ASSERT_EQ(p2, r2);
      ASSERT_EQ(pred_counters.touched, ref_counters.touched);
      for (Index i = 0; i < p1; ++i) ASSERT_LT(pred[i], lo);
      for (Index i = p1; i < p2; ++i) {
        ASSERT_GE(pred[i], lo);
        ASSERT_LT(pred[i], hi);
      }
      for (Index i = p2; i < c.n; ++i) ASSERT_GE(pred[i], hi);
      ASSERT_EQ(Sorted(pred), Sorted(ref));
      // Dispatch is bit-identical to predicated.
      ASSERT_EQ(d1, p1);
      ASSERT_EQ(d2, p2);
      ASSERT_EQ(disp, pred);
      ASSERT_EQ(disp_counters.touched, pred_counters.touched);
      ASSERT_EQ(disp_counters.swaps, pred_counters.swaps);
    }
  }
}

TEST_P(SimdSweep, SplitAndMaterializeVariantsAgree) {
  const SimdCase c = GetParam();
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> original = MakeData(c, 700 + trial);
    Value qlo = rng.UniformValue(-600, 1100);
    Value qhi = rng.UniformValue(-600, 1100);
    if (qlo > qhi) std::swap(qlo, qhi);
    const Value pivot =
        c.n > 0 ? original[static_cast<size_t>(
                      rng.UniformIndex(0, c.n - 1))]
                : 0;
    std::vector<Value> ref = original;
    std::vector<Value> pred = original;
    std::vector<Value> disp = original;
    std::vector<Value> ref_out;
    std::vector<Value> pred_out;
    std::vector<Value> disp_out;
    KernelCounters ref_counters;
    KernelCounters pred_counters;
    KernelCounters disp_counters;
    const Index ref_split = SplitAndMaterializeScalar(
        ref.data(), 0, c.n, qlo, qhi, pivot, &ref_out, &ref_counters);
    const Index pred_split = SplitAndMaterializePredicated(
        pred.data(), 0, c.n, qlo, qhi, pivot, &pred_out, &pred_counters);
    const Index disp_split = SplitAndMaterialize(
        disp.data(), 0, c.n, qlo, qhi, pivot, &disp_out, &disp_counters);
    ASSERT_EQ(pred_split, ref_split);
    ASSERT_EQ(pred_counters.touched, ref_counters.touched);
    ASSERT_EQ(pred_counters.swaps, ref_counters.swaps);
    ASSERT_EQ(Sorted(pred), Sorted(ref));
    ASSERT_EQ(Sorted(pred_out), Sorted(ref_out));
    // Dispatch bit-identical: array, split, materialization order, counters.
    ASSERT_EQ(disp_split, pred_split);
    ASSERT_EQ(disp, pred);
    ASSERT_EQ(disp_out, pred_out);
    ASSERT_EQ(disp_counters.touched, pred_counters.touched);
    ASSERT_EQ(disp_counters.swaps, pred_counters.swaps);
  }
}

TEST_P(SimdSweep, PartialPartitionPredicatedTracksScalarExactly) {
  const SimdCase c = GetParam();
  if (c.n == 0) return;
  Rng rng(31);
  for (int64_t budget : {0, 1, 3, 7, 1 << 20}) {
    std::vector<Value> ref = MakeData(c, 900);
    std::vector<Value> pred = ref;
    const Value pivot =
        ref[static_cast<size_t>(rng.UniformIndex(0, c.n - 1))];
    KernelCounters ref_counters;
    KernelCounters pred_counters;
    Index ref_left = 0;
    Index ref_right = c.n - 1;
    Index pred_left = 0;
    Index pred_right = c.n - 1;
    bool complete = false;
    int guard = 0;
    while (!complete && budget > 0) {
      const auto ref_r = PartialPartitionScalar(
          ref.data(), ref_left, ref_right, pivot, budget, &ref_counters);
      const auto pred_r = PartialPartitionPredicated(
          pred.data(), pred_left, pred_right, pivot, budget, &pred_counters);
      // Bit-identical intermediate state: same swaps in the same order.
      ASSERT_EQ(pred_r.left, ref_r.left);
      ASSERT_EQ(pred_r.right, ref_r.right);
      ASSERT_EQ(pred_r.complete, ref_r.complete);
      ASSERT_EQ(pred, ref);
      ASSERT_EQ(pred_counters.swaps, ref_counters.swaps);
      ref_left = ref_r.left;
      ref_right = ref_r.right;
      pred_left = pred_r.left;
      pred_right = pred_r.right;
      complete = ref_r.complete;
      ASSERT_LT(++guard, 10'000'000);
    }
    if (complete) {
      // Exact accounting: over a complete partition, every element of the
      // region is examined exactly once (the scalar reference undercounts
      // the boundary element in some completion paths).
      ASSERT_EQ(pred_counters.touched, c.n) << "budget=" << budget;
    }
  }
}

TEST_P(SimdSweep, PartialPartitionZeroBudgetTouchesNothing) {
  const SimdCase c = GetParam();
  if (c.n == 0) return;
  std::vector<Value> data = MakeData(c, 950);
  const std::vector<Value> before = data;
  KernelCounters counters;
  const auto r =
      PartialPartitionPredicated(data.data(), 0, c.n - 1, 7, 0, &counters);
  EXPECT_EQ(counters.touched, 0);
  EXPECT_EQ(counters.swaps, 0);
  EXPECT_EQ(data, before);
  EXPECT_FALSE(r.complete);
}

TEST_P(SimdSweep, FilterIntoVariantsAgree) {
  const SimdCase c = GetParam();
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> data = MakeData(c, 1100 + trial);
    Value qlo = rng.UniformValue(-600, 1100);
    Value qhi = rng.UniformValue(-600, 1100);
    if (qlo > qhi) std::swap(qlo, qhi);
    std::vector<Value> ref_out = {-99};  // pre-existing content is kept
    std::vector<Value> pred_out = {-99};
    std::vector<Value> disp_out = {-99};
    KernelCounters ref_counters;
    KernelCounters pred_counters;
    KernelCounters disp_counters;
    FilterIntoScalar(data.data(), 0, c.n, qlo, qhi, &ref_out, &ref_counters);
    FilterIntoPredicated(data.data(), 0, c.n, qlo, qhi, &pred_out,
                         &pred_counters);
    FilterInto(data.data(), 0, c.n, qlo, qhi, &disp_out, &disp_counters);
    // FilterInto appends in scan order in every variant: exact equality.
    ASSERT_EQ(pred_out, ref_out);
    ASSERT_EQ(disp_out, ref_out);
    ASSERT_EQ(pred_counters.touched, ref_counters.touched);
    ASSERT_EQ(disp_counters.touched, ref_counters.touched);
  }
}

TEST_P(SimdSweep, FoldKernelsMatchScalar) {
  const SimdCase c = GetParam();
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<Value> data = MakeData(c, 1300 + trial);
    for (int bounds = 0; bounds < 4; ++bounds) {
      Value qlo = rng.UniformValue(-600, 1100);
      Value qhi = rng.UniformValue(-600, 1100);
      if (qlo > qhi) std::swap(qlo, qhi);
      if (bounds == 2) qlo = qhi;
      if (bounds == 3) {
        qlo = kValueMin;
        qhi = kValueMax;
      }
      ASSERT_EQ(CountInRange(data.data(), 0, c.n, qlo, qhi),
                CountInRangeScalar(data.data(), 0, c.n, qlo, qhi));
      ASSERT_EQ(CountInRangePredicated(data.data(), 0, c.n, qlo, qhi),
                CountInRangeScalar(data.data(), 0, c.n, qlo, qhi));
      const RangeSum ref_sum =
          SumInRangeScalar(data.data(), 0, c.n, qlo, qhi);
      for (const RangeSum& s :
           {SumInRange(data.data(), 0, c.n, qlo, qhi),
            SumInRangePredicated(data.data(), 0, c.n, qlo, qhi)}) {
        ASSERT_EQ(s.count, ref_sum.count);
        ASSERT_EQ(s.sum, ref_sum.sum);
      }
      const RangeMinMax ref_mm =
          MinMaxInRangeScalar(data.data(), 0, c.n, qlo, qhi);
      for (const RangeMinMax& m :
           {MinMaxInRange(data.data(), 0, c.n, qlo, qhi),
            MinMaxInRangePredicated(data.data(), 0, c.n, qlo, qhi)}) {
        ASSERT_EQ(m.count, ref_mm.count);
        if (ref_mm.count > 0) {
          ASSERT_EQ(m.min, ref_mm.min);
          ASSERT_EQ(m.max, ref_mm.max);
        }
      }
      for (Index limit : {Index{0}, Index{1}, Index{5}, c.n, c.n + 10}) {
        const RangePrefixHits ref_hits = CountPrefixHitsScalar(
            data.data(), 0, c.n, qlo, qhi, limit);
        for (const RangePrefixHits& h :
             {CountPrefixHits(data.data(), 0, c.n, qlo, qhi, limit),
              CountPrefixHitsPredicated(data.data(), 0, c.n, qlo, qhi,
                                        limit)}) {
          ASSERT_EQ(h.hits, ref_hits.hits) << "limit=" << limit;
          ASSERT_EQ(h.examined, ref_hits.examined) << "limit=" << limit;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimdSweep,
    ::testing::Values(SimdCase{"random", 1024, 0},
                      SimdCase{"random_odd", 1021, 0},
                      SimdCase{"sorted", 512, 1},
                      SimdCase{"reverse", 512, 2},
                      SimdCase{"duplicates", 777, 3},
                      SimdCase{"all_equal", 333, 4},
                      SimdCase{"tiny", 3, 0},
                      SimdCase{"vector_boundary", 8, 0},
                      SimdCase{"empty", 0, 5}),
    [](const ::testing::TestParamInfo<SimdCase>& info) {
      return info.param.name;
    });

TEST(SimdDispatchTest, SubrangeKernelsLeaveNeighborsUntouched) {
  // Dispatched kernels on an interior subrange must not read or write
  // outside [begin, end) — guards the full-vector-store gap logic.
  Rng rng(53);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 64 + static_cast<Index>(rng.UniformIndex(0, 64));
    std::vector<Value> data(static_cast<size_t>(n));
    for (auto& v : data) v = rng.UniformValue(0, 100);
    const Index begin = rng.UniformIndex(0, n / 2);
    const Index end = begin + rng.UniformIndex(0, n - begin);
    std::vector<Value> expected_outside = data;
    KernelCounters counters;
    CrackInTwo(data.data(), begin, end, 50, &counters);
    for (Index i = 0; i < begin; ++i) ASSERT_EQ(data[i], expected_outside[i]);
    for (Index i = end; i < n; ++i) ASSERT_EQ(data[i], expected_outside[i]);
    CrackInThree(data.data(), begin, end, 25, 75, &counters);
    for (Index i = 0; i < begin; ++i) ASSERT_EQ(data[i], expected_outside[i]);
    for (Index i = end; i < n; ++i) ASSERT_EQ(data[i], expected_outside[i]);
  }
}

TEST(SimdDispatchTest, SupportReportingIsConsistent) {
  if (!simd::CompiledWithAvx2()) {
    EXPECT_FALSE(simd::Supported());
  }
  // Supported() is cached; two calls must agree.
  EXPECT_EQ(simd::Supported(), simd::Supported());
}

#if defined(SCRACK_HAVE_AVX2)
TEST(SimdDispatchTest, ExplicitAvx2MatchesPredicatedBitExact) {
  if (!simd::Supported()) {
    GTEST_SKIP() << "AVX2 unavailable or disabled on this machine";
  }
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    const Index n = 1 + static_cast<Index>(rng.UniformIndex(0, 2048));
    std::vector<Value> base(static_cast<size_t>(n));
    for (auto& v : base) v = rng.UniformValue(-1000, 1000);
    const Value pivot = rng.UniformValue(-1100, 1100);

    std::vector<Value> pred = base;
    std::vector<Value> vec = base;
    KernelCounters pred_counters;
    KernelCounters vec_counters;
    const Index pred_split =
        CrackInTwoPredicated(pred.data(), 0, n, pivot, &pred_counters);
    const Index vec_split =
        avx2::CrackInTwo(vec.data(), 0, n, pivot, &vec_counters);
    ASSERT_EQ(vec_split, pred_split);
    ASSERT_EQ(vec, pred);
    ASSERT_EQ(vec_counters.touched, pred_counters.touched);
    ASSERT_EQ(vec_counters.swaps, pred_counters.swaps);
  }
}
#endif  // SCRACK_HAVE_AVX2

}  // namespace
}  // namespace scrack
