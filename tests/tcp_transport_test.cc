// Tests for the real TCP transport stack: stream framing (split, coalesced,
// mid-frame EOF, oversized-prefix rejection, recv deadlines), the
// TcpTransport robustness policy (per-call deadline, reconnect + backoff,
// ambiguous-write detection, counter laws), bit-parity of coord(K,X) over
// TCP against the in-process transport and sharded(K,X), degraded reads and
// loud write failures while a node server is down, recovery after restart
// on the same port, and the per-hop deadline hint reaching storage nodes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "distributed/coordinator_engine.h"
#include "distributed/socket.h"
#include "distributed/storage_node.h"
#include "distributed/tcp_server.h"
#include "distributed/tcp_transport.h"
#include "distributed/wire.h"
#include "harness/engine_factory.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace scrack {
namespace {

using testing::DuplicateHeavyColumn;
using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

constexpr uint64_t kTestSeed = 17;  // TestConfig parity with distributed_test
constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = kTestSeed;
  return config;
}

// ---------------------------------------------------------------- framing --

/// A connected loopback pair: `server` is the accepted end.
struct SocketPair {
  net::Socket listener;
  net::Socket server;
  net::Socket client;
};

void MakeSocketPair(SocketPair* out) {
  ASSERT_TRUE(net::Listen(0, &out->listener).ok());
  uint16_t port = 0;
  ASSERT_TRUE(net::BoundPort(out->listener, &port).ok());
  ASSERT_TRUE(net::Connect("127.0.0.1", port, 2000, &out->client).ok());
  ASSERT_TRUE(net::Accept(out->listener, 2000, &out->server).ok());
}

std::vector<uint8_t> FrameBytes(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> raw;
  const uint32_t size = static_cast<uint32_t>(payload.size());
  raw.push_back(static_cast<uint8_t>(size));
  raw.push_back(static_cast<uint8_t>(size >> 8));
  raw.push_back(static_cast<uint8_t>(size >> 16));
  raw.push_back(static_cast<uint8_t>(size >> 24));
  raw.insert(raw.end(), payload.begin(), payload.end());
  return raw;
}

TEST(FramingTest, FrameSplitIntoSingleByteWritesReassembles) {
  SocketPair pair;
  MakeSocketPair(&pair);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 250, 251, 252};
  const std::vector<uint8_t> raw = FrameBytes(payload);
  // Worst-case stream fragmentation: every byte its own segment. The
  // receiver's partial-read loop must reassemble regardless.
  for (const uint8_t byte : raw) {
    ASSERT_TRUE(net::SendAll(pair.client, &byte, 1, 1000).ok());
  }
  std::vector<uint8_t> received;
  ASSERT_TRUE(net::RecvFrame(pair.server, &received, 2000).ok());
  EXPECT_EQ(received, payload);
}

TEST(FramingTest, CoalescedFramesAreSplitBackApart) {
  SocketPair pair;
  MakeSocketPair(&pair);
  const std::vector<uint8_t> first = {9, 8, 7};
  const std::vector<uint8_t> second = {100, 101, 102, 103};
  std::vector<uint8_t> wire = FrameBytes(first);
  const std::vector<uint8_t> tail = FrameBytes(second);
  wire.insert(wire.end(), tail.begin(), tail.end());
  // One kernel write carrying two frames: the opposite fragmentation case.
  ASSERT_TRUE(net::SendAll(pair.client, wire.data(), wire.size(), 1000).ok());
  std::vector<uint8_t> received;
  ASSERT_TRUE(net::RecvFrame(pair.server, &received, 2000).ok());
  EXPECT_EQ(received, first);
  ASSERT_TRUE(net::RecvFrame(pair.server, &received, 2000).ok());
  EXPECT_EQ(received, second);
}

TEST(FramingTest, MidFrameEofIsAnErrorDistinctFromCleanClose) {
  SocketPair pair;
  MakeSocketPair(&pair);
  // Prefix promises 100 bytes; only 10 arrive before the peer dies.
  std::vector<uint8_t> truncated = FrameBytes(std::vector<uint8_t>(100, 7));
  truncated.resize(4 + 10);
  ASSERT_TRUE(net::SendAll(pair.client, truncated.data(), truncated.size(),
                           1000)
                  .ok());
  pair.client.Close();
  std::vector<uint8_t> received;
  const Status status = net::RecvFrame(pair.server, &received, 2000);
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status.ToString();
  EXPECT_FALSE(net::IsTimeout(status));
}

TEST(FramingTest, CleanCloseBetweenFramesIsNotFound) {
  SocketPair pair;
  MakeSocketPair(&pair);
  pair.client.Close();
  std::vector<uint8_t> received;
  const Status status = net::RecvFrame(pair.server, &received, 2000);
  // Servers use this distinction to tell a finished peer (NotFound, clean
  // end of conversation) from a truncation (Internal, counts a frame error).
  EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();
}

TEST(FramingTest, OversizedLengthPrefixRejectedBeforeAllocation) {
  SocketPair pair;
  MakeSocketPair(&pair);
  const std::vector<uint8_t> prefix = {0xFF, 0xFF, 0xFF, 0xFF};
  ASSERT_TRUE(net::SendAll(pair.client, prefix.data(), prefix.size(),
                           1000)
                  .ok());
  std::vector<uint8_t> received;
  const Status status =
      net::RecvFrame(pair.server, &received, 2000, /*max_frame_bytes=*/1024);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
  // The payload buffer must never have been sized to the hostile prefix.
  EXPECT_TRUE(received.empty());
}

TEST(FramingTest, RecvDeadlineExpiresInsteadOfBlocking) {
  SocketPair pair;
  MakeSocketPair(&pair);
  Timer timer;
  std::vector<uint8_t> received;
  const Status status = net::RecvFrame(pair.server, &received, 100);
  EXPECT_TRUE(net::IsTimeout(status)) << status.ToString();
  // Generous bound: expiry must track the deadline, not some larger hang.
  EXPECT_LT(timer.ElapsedNanos() / 1000000, 5000);
}

// ------------------------------------------------------------ tcp cluster --

/// K in-process StorageNodes, each behind its own TcpNodeServer on an
/// ephemeral loopback port — the hermetic stand-in for K scrack_node
/// processes. Node engines are seeded exactly as the factory's
/// coord/sharded lambda seeds them, which is what makes answers
/// bit-comparable with `coord(K,inner)` built from the same column.
struct TcpCluster {
  std::vector<Value> lowers;
  std::vector<std::unique_ptr<StorageNode>> nodes;
  std::vector<std::unique_ptr<TcpNodeServer>> servers;
  std::vector<TcpEndpoint> endpoints;
};

void StartCluster(const Column& base, int k, const std::string& inner,
                  TcpCluster* out) {
  out->lowers = CoordinatorEngine::ComputeLowers(base, k);
  ASSERT_EQ(static_cast<int>(out->lowers.size()), k);
  std::vector<std::vector<Value>> slices =
      CoordinatorEngine::DealSlices(base, out->lowers);
  for (int i = 0; i < k; ++i) {
    EngineConfig config = TestConfig();
    config.seed = kTestSeed + static_cast<uint64_t>(i) * kGolden;
    std::unique_ptr<StorageNode> node;
    ASSERT_TRUE(StorageNode::Create(
                    Column(std::move(slices[static_cast<size_t>(i)])), i,
                    [&inner, config](const Column* node_base, int /*index*/,
                                     std::unique_ptr<SelectEngine>* o) {
                      return CreateEngine(inner, node_base, config, o);
                    },
                    &node)
                    .ok());
    auto server = std::make_unique<TcpNodeServer>();
    ASSERT_TRUE(server->Start(node.get(), 0).ok());
    out->endpoints.push_back(TcpEndpoint{"127.0.0.1", server->port()});
    out->nodes.push_back(std::move(node));
    out->servers.push_back(std::move(server));
  }
}

TcpTransportOptions FastOptions() {
  TcpTransportOptions options;
  options.call_timeout_ms = 2000;
  options.max_attempts = 3;
  options.backoff_base_ms = 1;
  options.backoff_max_ms = 10;
  options.jitter_seed = 7;
  return options;
}

std::unique_ptr<SelectEngine> CoordOverTcp(const TcpCluster& cluster,
                                           const TcpTransportOptions& options,
                                           const std::string& inner, int k,
                                           int64_t deadline_us = 0) {
  std::unique_ptr<SelectEngine> coord;
  const Status status = CoordinatorEngine::CreateOverTransport(
      cluster.lowers,
      std::make_unique<TcpTransport>(cluster.endpoints, options), inner, k,
      &coord, deadline_us);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return coord;
}

CoordinatorEngine* AsCoordinator(SelectEngine* engine) {
  auto* coord = dynamic_cast<CoordinatorEngine*>(engine);
  EXPECT_NE(coord, nullptr);
  return coord;
}

// -------------------------------------------------------------- transport --

TEST(TcpTransportTest, StatsCallRoundTripsThroughServer) {
  const Column base = Column::UniquePermutation(256, 1);
  TcpCluster cluster;
  StartCluster(base, 1, "crack", &cluster);
  TcpTransport transport(cluster.endpoints, FastOptions());

  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  std::vector<uint8_t> raw;
  ASSERT_TRUE(transport.Call(0, encoded, &raw).ok());
  wire::Response response;
  ASSERT_TRUE(wire::Decode(raw, &response).ok());
  EXPECT_EQ(response.status_code, StatusCode::kOk);
  EXPECT_EQ(response.stats.queries, 0);

  const TransportCounters counters = transport.counters();
  EXPECT_EQ(counters.timeouts, 0);
  EXPECT_EQ(counters.reconnects, 0);
  EXPECT_EQ(counters.retries, 0);
}

TEST(TcpTransportTest, CallDeadlineBoundsASilentPeer) {
  // A listener that accepts and then never answers: the recv leg must
  // expire against the call budget, not hang.
  net::Socket listener;
  ASSERT_TRUE(net::Listen(0, &listener).ok());
  uint16_t port = 0;
  ASSERT_TRUE(net::BoundPort(listener, &port).ok());
  net::Socket accepted;
  std::thread acceptor(
      [&] { (void)net::Accept(listener, 5000, &accepted); });

  TcpTransportOptions options = FastOptions();
  options.call_timeout_ms = 200;
  TcpTransport transport({TcpEndpoint{"127.0.0.1", port}}, options);
  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  Timer timer;
  std::vector<uint8_t> raw;
  const Status status = transport.Call(0, encoded, &raw);
  EXPECT_TRUE(net::IsTimeout(status)) << status.ToString();
  EXPECT_LT(timer.ElapsedNanos() / 1000000, 5000);
  EXPECT_EQ(transport.counters().timeouts, 1);
  // A post-send failure is ambiguous: it must never have been resent.
  EXPECT_EQ(transport.counters().retries, 0);
  acceptor.join();
}

TEST(TcpTransportTest, UnreachableEndpointFailsWithBoundedAttempts) {
  // Bind-then-close yields a port nobody listens on.
  uint16_t dead_port = 0;
  {
    net::Socket listener;
    ASSERT_TRUE(net::Listen(0, &listener).ok());
    ASSERT_TRUE(net::BoundPort(listener, &dead_port).ok());
  }
  TcpTransport transport({TcpEndpoint{"127.0.0.1", dead_port}},
                         FastOptions());
  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  std::vector<uint8_t> raw;
  Timer timer;
  EXPECT_FALSE(transport.Call(0, encoded, &raw).ok());
  EXPECT_LT(timer.ElapsedNanos() / 1000000, 5000);
  // Connect failures before the first success are neither reconnects nor
  // retries — there was no established connection to lose.
  EXPECT_EQ(transport.counters().reconnects, 0);
  EXPECT_EQ(transport.counters().retries, 0);
}

TEST(TcpTransportTest, OversizedResponseRejectedByFrameLimit) {
  const Column base = Column::UniquePermutation(256, 2);
  TcpCluster cluster;
  StartCluster(base, 1, "crack", &cluster);
  TcpTransportOptions options = FastOptions();
  options.max_frame_bytes = 64;  // every stats response is larger than this
  TcpTransport transport(cluster.endpoints, options);

  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  std::vector<uint8_t> raw;
  const Status status = transport.Call(0, encoded, &raw);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << status.ToString();
}

TEST(TcpTransportTest, ReconnectsAfterServerRestartAndCountsIt) {
  const Column base = Column::UniquePermutation(256, 3);
  TcpCluster cluster;
  StartCluster(base, 1, "crack", &cluster);
  TcpTransport transport(cluster.endpoints, FastOptions());

  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  std::vector<uint8_t> raw;
  ASSERT_TRUE(transport.Call(0, encoded, &raw).ok());

  // Bounce the server on its port; the cached connection is now dead. The
  // next Call detects the dead socket (send fails or EOF), reconnects, and
  // answers — at most one counted retry riding the counted reconnect.
  const uint16_t port = cluster.servers[0]->port();
  cluster.servers[0]->Stop();
  ASSERT_TRUE(cluster.servers[0]->Start(cluster.nodes[0].get(), port).ok());

  raw.clear();
  const Status status = transport.Call(0, encoded, &raw);
  ASSERT_TRUE(status.ok()) << status.ToString();
  wire::Response response;
  ASSERT_TRUE(wire::Decode(raw, &response).ok());

  const TransportCounters counters = transport.counters();
  EXPECT_GE(counters.reconnects, 1);
  EXPECT_LE(counters.retries, counters.reconnects);  // the conservation law
}

// ----------------------------------------------------------------- parity --

// The acceptance bar of the PR: coord(K,crack) answers bit-identically
// whether its nodes sit behind the in-process transport, the TCP transport,
// or inside sharded(K,crack) — for K in {1, 2, 4}, materialized tuple order
// included.
TEST(TcpParityTest, CoordOverTcpMatchesInprocAndShardedBitForBit) {
  for (const int k : {1, 2, 4}) {
    const Column base = DuplicateHeavyColumn(2048, 11);
    TcpCluster cluster;
    StartCluster(base, k, "crack", &cluster);
    auto over_tcp = CoordOverTcp(cluster, FastOptions(), "crack", k);
    ASSERT_NE(over_tcp, nullptr);
    auto inproc = CreateEngineOrDie("coord(" + std::to_string(k) + ",crack)",
                                    &base, TestConfig());
    auto sharded = CreateEngineOrDie(
        "sharded(" + std::to_string(k) + ",crack)", &base, TestConfig());
    Rng rng(600 + static_cast<uint64_t>(k));
    for (int i = 0; i < 40; ++i) {
      const auto range = RandomRange(&rng, 600);
      const std::vector<Value> tcp_rows =
          over_tcp->SelectOrDie(range.first, range.second).Collect();
      EXPECT_EQ(tcp_rows,
                inproc->SelectOrDie(range.first, range.second).Collect())
          << "K=" << k << " [" << range.first << "," << range.second << ")";
      EXPECT_EQ(tcp_rows,
                sharded->SelectOrDie(range.first, range.second).Collect())
          << "K=" << k << " [" << range.first << "," << range.second << ")";
    }
    EXPECT_TRUE(over_tcp->Validate().ok());
  }
}

TEST(TcpParityTest, AggregatesAndUpdatesMatchReferenceOverTcp) {
  const Column base = Column::UniquePermutation(512, 19);
  TcpCluster cluster;
  StartCluster(base, 2, "crack", &cluster);
  auto engine = CoordOverTcp(cluster, FastOptions(), "crack", 2);
  ASSERT_NE(engine, nullptr);

  ASSERT_TRUE(engine->StageInsert(1000).ok());
  ASSERT_TRUE(engine->StageInsert(-100).ok());
  ASSERT_TRUE(engine->StageDelete(200).ok());
  EXPECT_EQ(engine->SelectOrDie(999, 1001).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(-101, -99).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(200, 201).count(), 0);
  EXPECT_EQ(engine->SelectOrDie(-200, 2000).count(), 512 + 2 - 1);

  Query query;
  query.low = 100;
  query.high = 300;
  query.mode = OutputMode::kSum;
  QueryOutput sum;
  ASSERT_TRUE(engine->Execute(query, &sum).ok());
  const ReferenceAnswer expect = ReferenceSelect(base.values(), 100, 300);
  // 200 was deleted out of [100, 300).
  EXPECT_EQ(sum.sum, expect.sum - 200);
  EXPECT_TRUE(engine->Validate().ok());
}

// --------------------------------------------------------------- failures --

TEST(TcpFailureTest, StoppedServerDegradesReadsFailsWritesThenRecovers) {
  const Column base = Column::UniquePermutation(1024, 29);
  TcpCluster cluster;
  StartCluster(base, 2, "crack", &cluster);
  TcpTransportOptions options = FastOptions();
  options.call_timeout_ms = 500;
  auto engine = CoordOverTcp(cluster, options, "crack", 2);
  ASSERT_NE(engine, nullptr);
  ASSERT_EQ(engine->SelectOrDie(-1, 2048).count(), 1024);

  // Take node 0 (bottom of the value range) off the network.
  const uint16_t port = cluster.servers[0]->port();
  cluster.servers[0]->Stop();

  Query query;
  query.low = -1;
  query.high = 2048;
  query.mode = OutputMode::kMaterialize;
  QueryOutput degraded;
  const Status read = engine->Execute(query, &degraded);
  ASSERT_TRUE(read.ok()) << read.ToString();
  EXPECT_EQ(degraded.degraded_nodes, 1);
  EXPECT_LT(degraded.result.count(), 1024);

  // Writes routed to the dead node fail loudly instead of dropping data.
  EXPECT_FALSE(engine->StageInsert(-5).ok());

  EngineStats stats = engine->CurrentStats();
  EXPECT_GT(stats.node_failures, 0);
  EXPECT_GE(stats.degraded_queries, 1);

  // Restart on the same port (SO_REUSEADDR) and verify complete answers.
  ASSERT_TRUE(cluster.servers[0]->Start(cluster.nodes[0].get(), port).ok());
  QueryOutput recovered;
  ASSERT_TRUE(engine->Execute(query, &recovered).ok());
  EXPECT_EQ(recovered.degraded_nodes, 0);
  EXPECT_EQ(recovered.result.count(), 1024);
  EXPECT_TRUE(engine->Validate().ok());

  // Counter conservation surfaced through the stats plane: a resend only
  // ever rides a fresh connection, and every counter is nonnegative.
  stats = engine->CurrentStats();
  EXPECT_GE(stats.transport_reconnects, 1);
  EXPECT_LE(stats.transport_retries, stats.transport_reconnects);
  EXPECT_GE(stats.transport_timeouts, 0);

  // The stats plane mirrors the transport's own counters exactly.
  auto* coord = AsCoordinator(engine.get());
  const TransportCounters counters = coord->transport()->counters();
  EXPECT_EQ(stats.transport_timeouts, counters.timeouts);
  EXPECT_EQ(stats.transport_reconnects, counters.reconnects);
  EXPECT_EQ(stats.transport_retries, counters.retries);
}

// ----------------------------------------------------------- deadline hint --

TEST(TcpDeadlineTest, PerHopDeadlineHintReachesStorageNodes) {
  const Column base = Column::UniquePermutation(256, 31);
  TcpCluster cluster;
  StartCluster(base, 2, "crack", &cluster);
  auto engine =
      CoordOverTcp(cluster, FastOptions(), "crack", 2, /*deadline_us=*/123456);
  ASSERT_NE(engine, nullptr);
  // CreateOverTransport primes every node with a kStats request, and since
  // wire v2 every request carries the hint — both nodes have observed it.
  EXPECT_EQ(cluster.nodes[0]->last_deadline_us(), 123456);
  EXPECT_EQ(cluster.nodes[1]->last_deadline_us(), 123456);
  EXPECT_EQ(engine->SelectOrDie(10, 20).count(), 10);
}

}  // namespace
}  // namespace scrack
