// Tests for src/util: Status, Rng, Timer, CacheInfo.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/cache_info.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace scrack {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("low > high").ToString(),
            "InvalidArgument: low > high");
  EXPECT_EQ(Status::Internal("").ToString(), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    SCRACK_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  auto succeeds = []() -> Status {
    SCRACK_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
  EXPECT_EQ(succeeds().code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformStaysBelowBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformBoundOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformCoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);  // all 8 values appear in 1000 draws
}

TEST(RngTest, UniformIndexInclusiveBounds) {
  Rng rng(13);
  std::set<Index> seen;
  for (int i = 0; i < 500; ++i) {
    Index v = rng.UniformIndex(5, 7);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(rng.UniformIndex(42, 42), 42);
}

TEST(RngTest, UniformValueHalfOpen) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    Value v = rng.UniformValue(-10, 10);
    EXPECT_GE(v, -10);
    EXPECT_LT(v, 10);
  }
}

TEST(RngTest, CoinRespectsProbabilityRoughly) {
  Rng rng(19);
  int heads = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.Coin(0.25)) ++heads;
  }
  const double rate = static_cast<double>(heads) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Coin(0.0));
    EXPECT_TRUE(rng.Coin(1.0));
  }
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(23);
  const uint64_t first = rng.Next64();
  rng.Next64();
  rng.Seed(23);
  EXPECT_EQ(rng.Next64(), first);
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = timer.ElapsedSeconds();
  EXPECT_GE(s, 0.005);
  EXPECT_LT(s, 5.0);
  EXPECT_GE(timer.ElapsedNanos(), 5'000'000);
}

TEST(TimerTest, StartResetsEpoch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Start();
  EXPECT_LT(timer.ElapsedSeconds(), 0.005);
}

// ------------------------------------------------------------- CacheInfo --

TEST(CacheInfoTest, DefaultsMatchPaperMachine) {
  CacheInfo info;
  EXPECT_EQ(info.l1_bytes, 32u * 1024);
  EXPECT_EQ(info.l2_bytes, 256u * 1024);
  EXPECT_EQ(info.L1Values(), static_cast<Index>(32 * 1024 / sizeof(Value)));
  EXPECT_EQ(info.L2Values(), static_cast<Index>(256 * 1024 / sizeof(Value)));
}

TEST(CacheInfoTest, DetectReturnsPositiveSizes) {
  const CacheInfo info = CacheInfo::Detect();
  EXPECT_GT(info.l1_bytes, 0u);
  EXPECT_GT(info.l2_bytes, 0u);
  EXPECT_LE(info.l1_bytes, info.l2_bytes);
}

}  // namespace
}  // namespace scrack
