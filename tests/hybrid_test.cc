// Behavior tests for the partition/merge hybrids (AICC/AICS ± 1R).
#include <gtest/gtest.h>

#include "hybrid/hybrid_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::ReferenceSelect;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 43;
  config.hybrid_partition_values = 128;
  config.crack_threshold_values = 32;
  return config;
}

TEST(HybridEngineTest, Names) {
  const Column base = Column::UniquePermutation(16, 1);
  const EngineConfig config = TestConfig();
  using FO = HybridEngine::FinalOrg;
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kCrack, FO::kCrack, false).name(), "aicc");
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kCrack, FO::kSort, false).name(), "aics");
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kCrack, FO::kCrack, true).name(), "aicc1r");
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kCrack, FO::kSort, true).name(), "aics1r");
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kSort, FO::kCrack, false).name(), "aisc");
  EXPECT_EQ(HybridEngine(&base, config, HybridEngine::InitialOrg::kSort, FO::kSort, false).name(), "aiss");
}

TEST(HybridEngineTest, SortInitialPartitionsExtractByBinarySearch) {
  const Column base = Column::UniquePermutation(2048, 5);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kSort,
                      HybridEngine::FinalOrg::kSort, false);
  engine.SelectOrDie(100, 300);
  EXPECT_EQ(engine.ResidualInPartitions(), 2048 - 200);
  // After the sorting burst of the first query, subsequent extraction cost
  // is bounded by binary search + moved tuples, not partition scans.
  const int64_t after_first = engine.stats().tuples_touched;
  EXPECT_GE(after_first, 2048);  // every partition sorted once
  engine.SelectOrDie(400, 410);
  const int64_t second = engine.stats().tuples_touched - after_first;
  EXPECT_LT(second, 2048);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(HybridEngineTest, SortInitialVariantsStayCorrect) {
  const Index n = 3000;
  const Column base = Column::UniquePermutation(n, 5);
  for (const auto org :
       {HybridEngine::FinalOrg::kCrack, HybridEngine::FinalOrg::kSort}) {
    HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kSort,
                        org, false);
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
      const Value a = rng.UniformValue(0, n);
      const Value b = a + 1 + rng.UniformValue(0, 150);
      QueryResult result;
      ASSERT_TRUE(engine.Select(a, b, &result).ok());
      const auto ref = ReferenceSelect(base.values(), a, b);
      ASSERT_EQ(result.count(), ref.count) << engine.name() << " q" << i;
      ASSERT_EQ(result.Sum(), ref.sum) << engine.name() << " q" << i;
    }
    ASSERT_TRUE(engine.Validate().ok());
  }
}

TEST(HybridEngineTest, QueriedRangesMoveToFinalArea) {
  const Column base = Column::UniquePermutation(1024, 1);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kCrack, false);
  EXPECT_EQ(engine.ResidualInPartitions(), 1024);
  engine.SelectOrDie(100, 300);
  // Exactly the qualifying tuples moved out of the initial partitions.
  EXPECT_EQ(engine.ResidualInPartitions(), 1024 - 200);
  EXPECT_GE(engine.NumFinalPieces(), 1u);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(HybridEngineTest, CoveredRangeServedFromFinalOnly) {
  const Column base = Column::UniquePermutation(1024, 1);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kSort, false);
  engine.SelectOrDie(100, 300);
  const Index residual = engine.ResidualInPartitions();
  // Sub-range of a covered range: partitions must not be touched again.
  const QueryResult result = engine.SelectOrDie(150, 250);
  EXPECT_EQ(result.count(), 100);
  EXPECT_EQ(engine.ResidualInPartitions(), residual);
}

TEST(HybridEngineTest, AicsServesSortedViews) {
  const Column base = Column::UniquePermutation(1024, 1);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kSort, false);
  engine.SelectOrDie(0, 1024);
  const QueryResult result = engine.SelectOrDie(200, 210);
  EXPECT_FALSE(result.materialized());
  const auto values = result.Collect();
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_EQ(result.count(), 10);
}

TEST(HybridEngineTest, AiccCracksFinalPiecesOnPartialOverlap) {
  const Column base = Column::UniquePermutation(1024, 1);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kCrack, false);
  engine.SelectOrDie(0, 1024);  // everything in one final piece
  const size_t pieces_before = engine.NumFinalPieces();
  engine.SelectOrDie(300, 700);  // splits the final piece at 300 and 700
  EXPECT_GT(engine.NumFinalPieces(), pieces_before);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(HybridEngineTest, OverlappingQueriesExtractEachValueOnce) {
  const Column base = Column::UniquePermutation(2048, 5);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kCrack, false);
  engine.SelectOrDie(100, 500);
  engine.SelectOrDie(300, 900);   // overlaps previous range
  engine.SelectOrDie(0, 2048);    // covers everything
  const QueryResult result = engine.SelectOrDie(0, 2048);
  EXPECT_EQ(result.count(), 2048);
  EXPECT_EQ(result.Sum(), 2047LL * 2048 / 2);
  EXPECT_EQ(engine.ResidualInPartitions(), 0);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(HybridEngineTest, StochasticVariantAddsRandomCracksInPartitions) {
  const Column base = Column::UniquePermutation(4096, 5);
  HybridEngine plain(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                     HybridEngine::FinalOrg::kCrack, false);
  HybridEngine one_r(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                     HybridEngine::FinalOrg::kCrack, true);
  plain.SelectOrDie(2000, 2010);
  one_r.SelectOrDie(2000, 2010);
  EXPECT_EQ(plain.stats().random_pivots, 0);
  EXPECT_GT(one_r.stats().random_pivots, 0);
  EXPECT_TRUE(one_r.Validate().ok());
}

TEST(HybridEngineTest, ManyQueriesStayCorrect) {
  const Index n = 3000;
  const Column base = Column::UniquePermutation(n, 5);
  for (const bool stochastic : {false, true}) {
    for (const auto org : {HybridEngine::FinalOrg::kCrack,
                           HybridEngine::FinalOrg::kSort}) {
      HybridEngine engine(&base, TestConfig(),
                          HybridEngine::InitialOrg::kCrack, org, stochastic);
      Rng rng(7);
      for (int i = 0; i < 100; ++i) {
        const Value a = rng.UniformValue(0, n);
        const Value b = a + 1 + rng.UniformValue(0, 100);
        QueryResult result;
        ASSERT_TRUE(engine.Select(a, b, &result).ok());
        const auto ref = ReferenceSelect(base.values(), a, b);
        ASSERT_EQ(result.count(), ref.count)
            << engine.name() << " query " << i;
        ASSERT_EQ(result.Sum(), ref.sum) << engine.name() << " query " << i;
      }
      ASSERT_TRUE(engine.Validate().ok());
    }
  }
}

TEST(HybridEngineTest, SequentialWorkloadDrainsPartitionsMonotonically) {
  const Column base = Column::UniquePermutation(2048, 5);
  HybridEngine engine(&base, TestConfig(), HybridEngine::InitialOrg::kCrack,
                      HybridEngine::FinalOrg::kSort, false);
  Index prev_residual = 2048;
  for (Value lo = 0; lo < 2000; lo += 100) {
    engine.SelectOrDie(lo, lo + 100);
    const Index residual = engine.ResidualInPartitions();
    EXPECT_LE(residual, prev_residual);
    prev_residual = residual;
  }
}

}  // namespace
}  // namespace scrack
