// Mutation tests for the invariant auditor: seed a corruption in a live
// engine's structures, then assert the audit fires with the right rule id.
// A detector is only as good as its detection rate — each corruption class
// the auditor claims to catch gets a test that plants exactly that fault.
// Clean-run tests pin the other side: long audited workloads, batch and
// update paths, and the factory compositions must produce zero findings.
//
// The cross-thread harness below blocks one writer mid-crack to overlap a
// second, which needs a raw condition_variable + mutex pair — a deliberate
// exception to the concurrency-layer confinement rule.
// lint:allow-file(mutex-confinement)
#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/audit_engine.h"
#include "cracking/crack_engine.h"
#include "cracking/cracker_column.h"
#include "harness/engine_factory.h"
#include "index/cracker_index.h"
#include "storage/column.h"
#include "test_util.h"
#include "util/rng.h"

namespace scrack {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 17;
  return config;
}

/// Mutation tests collect findings instead of failing the query, and force
/// the full O(n) checks (small columns are below the cutoff anyway).
AuditOptions LenientOptions() {
  AuditOptions options;
  options.fail_fast = false;
  options.checksum_period = 1;
  return options;
}

bool HasRule(const AuditEngine& audit, const std::string& rule) {
  for (const AuditFinding& finding : audit.findings()) {
    if (finding.rule == rule) return true;
  }
  return false;
}

std::string AllFindings(const AuditEngine& audit) {
  std::string out;
  for (const AuditFinding& finding : audit.findings()) {
    out += finding.ToString() + "\n";
  }
  return out;
}

/// Builds an audited CrackEngine and keeps a typed handle to the inner
/// engine so tests can reach (and corrupt) its concrete structures.
struct AuditedCrack {
  CrackEngine* raw;
  std::unique_ptr<AuditEngine> audit;
};

AuditedCrack MakeAuditedCrack(const Column* base, const AuditOptions& options) {
  auto inner = std::make_unique<CrackEngine>(base, TestConfig());
  CrackEngine* raw = inner.get();
  auto audit = std::make_unique<AuditEngine>(std::move(inner), options);
  return {raw, std::move(audit)};
}

// ------------------------------------------------------------ clean runs --

TEST(AuditCleanRunTest, ThousandQueriesZeroFindings) {
  const Column base = Column::UniquePermutation(50'000, 1);
  auto engine = CreateEngineOrDie("audit(crack)", &base, TestConfig());
  auto* audit = dynamic_cast<AuditEngine*>(engine.get());
  ASSERT_NE(audit, nullptr);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Value a = rng.UniformValue(0, 50'000 - 100);
    engine->SelectOrDie(a, a + 100);  // fail_fast: a finding aborts here
  }
  EXPECT_EQ(audit->calls_audited(), 1000);
  EXPECT_TRUE(audit->findings().empty()) << AllFindings(*audit);
}

TEST(AuditCleanRunTest, ParallelCrackingPassesAudit) {
  const Column base = Column::UniquePermutation(50'000, 2);
  auto engine = CreateEngineOrDie("audit(crack-p4)", &base, TestConfig());
  auto* audit = dynamic_cast<AuditEngine*>(engine.get());
  ASSERT_NE(audit, nullptr);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Value a = rng.UniformValue(0, 50'000 - 500);
    engine->SelectOrDie(a, a + 500);
  }
  EXPECT_TRUE(audit->findings().empty()) << AllFindings(*audit);
}

TEST(AuditCleanRunTest, ShardedWrapsAuditInsideEveryShard) {
  const Column base = Column::UniquePermutation(40'000, 3);
  auto engine = CreateEngineOrDie("sharded(4,audit(ddc))", &base, TestConfig());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Value a = rng.UniformValue(0, 40'000 - 200);
    // Per-shard AuditEngines run with fail_fast, so any finding inside any
    // shard surfaces as a Select error and SelectOrDie aborts the test.
    engine->SelectOrDie(a, a + 200);
  }
  EXPECT_GT(engine->CurrentStats().queries, 0);
}

TEST(AuditCleanRunTest, BatchPathAuditsOncePerQuery) {
  const Column base = Column::UniquePermutation(20'000, 4);
  auto engine = CreateEngineOrDie("audit(crack)", &base, TestConfig());
  auto* audit = dynamic_cast<AuditEngine*>(engine.get());
  ASSERT_NE(audit, nullptr);
  std::vector<Query> queries;
  for (int i = 0; i < 32; ++i) {
    Query query;
    query.low = i * 500;
    query.high = query.low + 400;
    query.mode = (i % 2 == 0) ? OutputMode::kCount : OutputMode::kSum;
    queries.push_back(query);
  }
  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(engine->ExecuteBatch(queries, &outputs).ok());
  EXPECT_EQ(audit->calls_audited(), 32);
  EXPECT_TRUE(audit->findings().empty()) << AllFindings(*audit);
}

TEST(AuditCleanRunTest, StagedUpdatesKeepConservationLaw) {
  const Column base = Column::UniquePermutation(10'000, 5);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SelectOrDie(1000, 2000);
  for (Value v = 0; v < 50; ++v) {
    ASSERT_TRUE(crack.audit->StageInsert(20'000 + v).ok());
    ASSERT_TRUE(crack.audit->StageDelete(v * 100).ok());
  }
  crack.audit->SelectOrDie(500, 3000);      // partial merge window
  crack.audit->SelectOrDie(0, 25'000);      // hull covers every update
  crack.audit->SelectOrDie(4000, 9000);
  EXPECT_TRUE(crack.audit->findings().empty()) << AllFindings(*crack.audit);
}

// -------------------------------------------------------------- mutations --

TEST(AuditMutationTest, DetectsPieceBoundaryViolation) {
  const Column base = Column::UniquePermutation(4096, 6);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SelectOrDie(1000, 3000);
  ASSERT_TRUE(crack.audit->findings().empty()) << AllFindings(*crack.audit);

  // Swap one element across the first crack boundary: the multiset is
  // conserved (it is a swap), but both touched pieces now hold a value on
  // the wrong side of the crack.
  CrackerColumn& column = crack.raw->column();
  ASSERT_GE(column.index().num_cracks(), 1u);
  const Index p = column.index().crack_pos(0);
  ASSERT_GT(p, 0);
  ASSERT_LT(p, column.size());
  std::swap(column.data()[p - 1], column.data()[p]);

  ASSERT_TRUE(crack.audit->AuditNow().ok());  // fail_fast off: collect only
  EXPECT_TRUE(HasRule(*crack.audit, "piece-partition"))
      << AllFindings(*crack.audit);
  EXPECT_FALSE(HasRule(*crack.audit, "multiset-conservation"))
      << "a swap must not trip the multiset rule:\n"
      << AllFindings(*crack.audit);
}

TEST(AuditMutationTest, DetectsIndexOrderViolation) {
  const Column base = Column::UniquePermutation(4096, 7);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SelectOrDie(1000, 3000);
  ASSERT_TRUE(crack.audit->findings().empty()) << AllFindings(*crack.audit);

  // Misuse the update-path position shift outside an actual update: crack
  // positions and the recorded column size drift from the real column.
  CrackerColumn& column = crack.raw->column();
  ASSERT_GE(column.index().num_cracks(), 1u);
  column.index().ShiftAbove(column.index().crack_key(0), -1);

  ASSERT_TRUE(crack.audit->AuditNow().ok());
  EXPECT_TRUE(HasRule(*crack.audit, "index-order"))
      << AllFindings(*crack.audit);
}

TEST(AuditMutationTest, DetectsMultisetDrift) {
  const Column base = Column::UniquePermutation(4096, 8);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SelectOrDie(1000, 3000);  // first audit anchors the baseline
  ASSERT_TRUE(crack.audit->findings().empty()) << AllFindings(*crack.audit);

  // Overwrite one value with its piece-neighbor: both values stay inside
  // the same piece (partition intact), but the column multiset changed.
  CrackerColumn& column = crack.raw->column();
  const Index p = column.index().crack_pos(0);
  ASSERT_GE(p, 2);
  column.data()[p - 1] = column.data()[p - 2];

  ASSERT_TRUE(crack.audit->AuditNow().ok());
  EXPECT_TRUE(HasRule(*crack.audit, "multiset-conservation"))
      << AllFindings(*crack.audit);
  EXPECT_FALSE(HasRule(*crack.audit, "piece-partition"))
      << "an in-piece overwrite must not trip the partition rule:\n"
      << AllFindings(*crack.audit);
}

TEST(AuditMutationTest, DetectsConcurrentWriterEntry) {
  const Column base = Column::UniquePermutation(4096, 9);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SelectOrDie(1000, 3000);
  ASSERT_TRUE(crack.audit->findings().empty()) << AllFindings(*crack.audit);

  // One thread holds the column's writer tag while this thread tries to
  // enter — the exact overlap the single-writer discipline forbids. The
  // handshake sequences the two entries deterministically; no data race.
  WriterTag& tag = crack.raw->column().writer_tag();
  std::mutex mutex;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  std::thread holder([&] {
    WriterGuard guard(&tag);
    {
      std::lock_guard<std::mutex> lock(mutex);
      entered = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return entered; });
  }
  { WriterGuard intruder(&tag); }  // denied entry; records the violation
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  holder.join();

  EXPECT_GE(tag.violations(), 1);
  ASSERT_TRUE(crack.audit->AuditNow().ok());
  EXPECT_TRUE(HasRule(*crack.audit, "single-writer"))
      << AllFindings(*crack.audit);
}

/// Forwards to a real CrackEngine but can misreport its stats — the only
/// way to corrupt counters without corrupting the column they describe.
class StatsTamperEngine : public SelectEngine {
 public:
  StatsTamperEngine(const Column* base, const EngineConfig& config)
      : inner_(base, config) {}

  Status Select(Value low, Value high, QueryResult* result) override {
    return inner_.Select(low, high, result);
  }
  std::string name() const override { return "stats-tamper"; }
  EngineStats CurrentStats() const override {
    EngineStats stats = inner_.CurrentStats();
    stats.queries -= understate_queries_;
    stats.tuples_touched -= understate_touched_;
    return stats;
  }
  const CrackerColumn* audit_column() const override {
    return inner_.audit_column();
  }

  int64_t understate_queries_ = 0;
  int64_t understate_touched_ = 0;

 private:
  CrackEngine inner_;
};

TEST(AuditMutationTest, DetectsStatsCounterCorruption) {
  const Column base = Column::UniquePermutation(4096, 10);
  auto inner = std::make_unique<StatsTamperEngine>(&base, TestConfig());
  StatsTamperEngine* raw = inner.get();
  AuditEngine audit(std::move(inner), LenientOptions());
  audit.SelectOrDie(1000, 3000);
  ASSERT_TRUE(audit.findings().empty()) << AllFindings(audit);

  // The next snapshot shows the same query count as the last one even
  // though one call was forwarded: strict accounting must flag it.
  raw->understate_queries_ = 1;
  audit.SelectOrDie(200, 900);
  EXPECT_TRUE(HasRule(audit, "stats-conservation")) << AllFindings(audit);
}

TEST(AuditMutationTest, StatsCorruptionFailsFastAsQueryError) {
  const Column base = Column::UniquePermutation(4096, 11);
  auto inner = std::make_unique<StatsTamperEngine>(&base, TestConfig());
  StatsTamperEngine* raw = inner.get();
  AuditEngine audit(std::move(inner));  // default options: fail_fast on
  audit.SelectOrDie(1000, 3000);

  // A monotone counter running backwards is unambiguous corruption.
  raw->understate_touched_ = 1'000'000;
  QueryResult result;
  const Status status = audit.Select(200, 900, &result);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("stats-conservation"), std::string::npos)
      << status.message();
}

TEST(AuditMutationTest, FindingsCarryQueryAndContext) {
  const Column base = Column::UniquePermutation(4096, 12);
  AuditedCrack crack = MakeAuditedCrack(&base, LenientOptions());
  crack.audit->SetContext("fig99/crack.test");
  crack.audit->SelectOrDie(1000, 3000);
  crack.audit->SelectOrDie(500, 2500);

  CrackerColumn& column = crack.raw->column();
  const Index p = column.index().crack_pos(0);
  ASSERT_GT(p, 0);
  std::swap(column.data()[p - 1], column.data()[p]);
  ASSERT_TRUE(crack.audit->AuditNow().ok());

  ASSERT_FALSE(crack.audit->findings().empty());
  const AuditFinding& finding = crack.audit->findings().front();
  EXPECT_EQ(finding.context, "fig99/crack.test");
  EXPECT_GE(finding.piece, 0);  // partition findings name the piece
  EXPECT_NE(finding.ToString().find("fig99/crack.test"), std::string::npos);
}

}  // namespace
}  // namespace scrack
