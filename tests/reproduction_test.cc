// Reproduction assertions: the paper's qualitative claims, checked in CI.
//
// The bench binaries print the figures; this suite *asserts* the shapes
// that make the paper's argument, on the deterministic tuples-touched
// metric (the paper's own cost model, §3) so there is no timing flake.
// Scale: N=100k, Q=400 — small enough for CI, large enough that every
// ordering below is separated by multiples, not percentages.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "test_util.h"
#include "workload/workload.h"

namespace scrack {
namespace {

constexpr Index kN = 100'000;
constexpr QueryId kQ = 400;

class Reproduction : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    base_ = std::make_unique<Column>(Column::UniquePermutation(kN, 21));
  }
  static void TearDownTestSuite() { base_.reset(); }

  static int64_t TotalTouched(const std::string& spec, WorkloadKind kind,
                              QueryId q = kQ) {
    WorkloadParams params;
    params.n = kN;
    params.num_queries = q;
    params.selectivity = 10;
    params.seed = 5;
    EngineConfig config;
    config.seed = 11;
    auto engine = CreateEngineOrDie(spec, base_.get(), config);
    const RunResult run =
        RunQueries(engine.get(), MakeWorkload(kind, params));
    SCRACK_CHECK(run.status.ok());
    return run.CumulativeTouched();
  }

  static std::unique_ptr<Column> base_;
};

std::unique_ptr<Column> Reproduction::base_;

// --- §3 / Fig. 2: the problem -------------------------------------------

TEST_F(Reproduction, Fig2CrackConvergesOnRandomButNotOnSequential) {
  const int64_t random_total = TotalTouched("crack", WorkloadKind::kRandom);
  const int64_t seq_total = TotalTouched("crack", WorkloadKind::kSequential);
  // Sequential keeps re-scanning the giant residual piece.
  EXPECT_GT(seq_total, 5 * random_total);
  // Random converges: total touched follows ~2N·ln(Q), far below the
  // ~Q·N/2 of the sequential pathology.
  EXPECT_LT(random_total, 20 * kN);
}

TEST_F(Reproduction, Fig2eTouchedDropsFastOnRandomOnly) {
  WorkloadParams params;
  params.n = kN;
  params.num_queries = 100;
  params.seed = 5;
  EngineConfig config;
  config.seed = 11;
  // Random: by query 100 the touched count has collapsed to ~2N/100.
  // Sequential: mid-sequence queries still touch the giant residual piece
  // (by construction the default jump factor finishes the sweep at Q, so
  // the *last* queries are cheap — the paper's point shows mid-run).
  {
    auto engine = CreateEngineOrDie("crack", base_.get(), config);
    const RunResult run = RunQueries(
        engine.get(), MakeWorkload(WorkloadKind::kRandom, params));
    EXPECT_LT(run.records[99].touched, kN / 10);
  }
  {
    auto engine = CreateEngineOrDie("crack", base_.get(), config);
    const RunResult run = RunQueries(
        engine.get(), MakeWorkload(WorkloadKind::kSequential, params));
    EXPECT_GT(run.records[49].touched, kN / 3);
  }
}

// --- §5 Fig. 9: stochastic cracking fixes sequential ---------------------

TEST_F(Reproduction, Fig9StochasticVariantsBeatCrackOnSequential) {
  const int64_t crack = TotalTouched("crack", WorkloadKind::kSequential);
  for (const std::string spec : {"ddc", "ddr", "dd1c", "dd1r", "mdd1r",
                                 "pmdd1r:10"}) {
    const int64_t stochastic =
        TotalTouched(spec, WorkloadKind::kSequential);
    EXPECT_LT(stochastic, crack / 4) << spec;
  }
}

TEST_F(Reproduction, Fig10StochasticStaysCompetitiveOnRandom) {
  const int64_t crack = TotalTouched("crack", WorkloadKind::kRandom);
  for (const std::string spec : {"ddr", "dd1r", "mdd1r"}) {
    const int64_t stochastic = TotalTouched(spec, WorkloadKind::kRandom);
    // The paper's "marginal" overhead: same order of magnitude.
    EXPECT_LT(stochastic, 3 * crack) << spec;
  }
}

// --- §5 Fig. 12: naive random injection is not enough --------------------

TEST_F(Reproduction, Fig12NaiveInjectionBetweenCrackAndScrack) {
  const int64_t crack = TotalTouched("crack", WorkloadKind::kSequential);
  const int64_t r2 = TotalTouched("r2crack", WorkloadKind::kSequential);
  const int64_t scrack = TotalTouched("mdd1r", WorkloadKind::kSequential);
  EXPECT_LT(r2, crack);    // injection helps...
  EXPECT_LT(scrack, r2);   // ...but integrated stochastic cracking wins
}

// --- §5 Fig. 13/17: robustness across workloads --------------------------

TEST_F(Reproduction, Fig13CrackFailsOnFocusedPatterns) {
  for (const WorkloadKind kind :
       {WorkloadKind::kZoomOut, WorkloadKind::kZoomInAlt,
        WorkloadKind::kSeqReverse, WorkloadKind::kSkewZoomOutAlt}) {
    const int64_t crack = TotalTouched("crack", kind);
    const int64_t scrack = TotalTouched("mdd1r", kind);
    EXPECT_GT(crack, 4 * scrack) << WorkloadName(kind);
  }
}

TEST_F(Reproduction, Fig17FiftyFiftyFailsOnAlternatingPatternsOnly) {
  // Deterministic alternation aligns with ZoomOutAlt-style patterns
  // (paper: SkewZoomOutAlt 1381s for FiftyFifty ~= 1382s for Crack, while
  // FlipCoin is fine at 2.2s).
  const WorkloadKind kind = WorkloadKind::kSkewZoomOutAlt;
  const int64_t fifty = TotalTouched("fiftyfifty", kind);
  const int64_t flip = TotalTouched("flipcoin", kind);
  const int64_t scrack = TotalTouched("mdd1r", kind);
  EXPECT_GT(fifty, 4 * flip);
  EXPECT_LT(flip, 4 * scrack + 4 * kN);
  // And on a pattern without the alignment, FiftyFifty is fine.
  const int64_t fifty_seq =
      TotalTouched("fiftyfifty", WorkloadKind::kSequential);
  const int64_t crack_seq =
      TotalTouched("crack", WorkloadKind::kSequential);
  EXPECT_LT(fifty_seq, crack_seq / 4);
}

// --- §5 Fig. 14: hybrids -------------------------------------------------

TEST_F(Reproduction, Fig14StochasticHybridsFixPlainHybrids) {
  const int64_t aicc = TotalTouched("aicc", WorkloadKind::kSequential);
  const int64_t aicc1r = TotalTouched("aicc1r", WorkloadKind::kSequential);
  const int64_t aics = TotalTouched("aics", WorkloadKind::kSequential);
  const int64_t aics1r = TotalTouched("aics1r", WorkloadKind::kSequential);
  EXPECT_LT(aicc1r, aicc / 2);
  EXPECT_LT(aics1r, aics / 2);
}

// --- §5 Figs. 18/19: no royal road ---------------------------------------

TEST_F(Reproduction, Fig18LessFrequentStochasticDegrades) {
  const int64_t x4 =
      TotalTouched("everyx:4", WorkloadKind::kSkyServer, 2000);
  const int64_t x16 =
      TotalTouched("everyx:16", WorkloadKind::kSkyServer, 2000);
  const int64_t x32 =
      TotalTouched("everyx:32", WorkloadKind::kSkyServer, 2000);
  EXPECT_LT(x4, x16);
  EXPECT_LT(x16, x32);
}

TEST_F(Reproduction, Fig19HigherMonitoringThresholdDegrades) {
  const int64_t x1 =
      TotalTouched("scrackmon:1", WorkloadKind::kSkyServer, 2000);
  const int64_t x50 =
      TotalTouched("scrackmon:50", WorkloadKind::kSkyServer, 2000);
  const int64_t x500 =
      TotalTouched("scrackmon:500", WorkloadKind::kSkyServer, 2000);
  EXPECT_LT(x1, x50);
  EXPECT_LT(x50, x500);
}

// --- Fig. 16: SkyServer --------------------------------------------------

TEST_F(Reproduction, Fig16ScrackRobustOnSkyServerTrace) {
  const int64_t crack =
      TotalTouched("crack", WorkloadKind::kSkyServer, 2000);
  const int64_t scrack =
      TotalTouched("pmdd1r:10", WorkloadKind::kSkyServer, 2000);
  EXPECT_GT(crack, 3 * scrack);
}

}  // namespace
}  // namespace scrack
