// Tests for the distributed serving layer: coord(K,<inner>) spec parsing,
// bit-identical parity with sharded(K,<inner>), shard pruning and the
// route-conservation law, update routing through the wire, node-failure
// degradation and recovery, retry accounting, stats aggregation across
// nodes, and composition with the epoch/prog/chaos wrappers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "distributed/coordinator_engine.h"
#include "harness/engine_factory.h"
#include "test_util.h"
#include "util/rng.h"

namespace scrack {
namespace {

using testing::DuplicateHeavyColumn;
using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 17;
  return config;
}

CoordinatorEngine* AsCoordinator(SelectEngine* engine) {
  auto* coord = dynamic_cast<CoordinatorEngine*>(engine);
  EXPECT_NE(coord, nullptr);
  return coord;
}

// ---------------------------------------------------------- spec parsing --

TEST(CoordSpecTest, RejectsMalformedSpecs) {
  const Column base = Column::UniquePermutation(64, 1);
  const EngineConfig config;
  for (const std::string& spec : {
           "coord",             // no parameter list
           "coord()",           // empty parameter list
           "coord(4",           // unbalanced parens
           "coord(4)",          // missing inner spec
           "coord(4,)",         // empty inner spec
           "coord(,crack)",     // missing node count
           "coord(0,crack)",    // K = 0
           "coord(-2,crack)",   // negative K
           "coord(1.5,crack)",  // non-integer K
           "coord(100,crack)",  // K over the 64 cap
           "coord:crack"        // colon form
       }) {
    std::unique_ptr<SelectEngine> engine;
    const Status status = CreateEngine(spec, &base, config, &engine);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
  std::unique_ptr<SelectEngine> engine;
  EXPECT_FALSE(CreateEngine("coord(4,nope)", &base, config, &engine).ok());
}

TEST(CoordSpecTest, BuildsAndReportsName) {
  const Column base = Column::UniquePermutation(256, 1);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  EXPECT_EQ(engine->name(), "coord(4,crack)");
  EXPECT_EQ(engine->SelectOrDie(16, 32).count(), 16);
  EXPECT_TRUE(engine->Validate().ok());
  EXPECT_EQ(engine->CurrentStats().cluster_nodes, 4);
}

// ---------------------------------------------------------------- parity --

// coord(K,X) and sharded(K,X) compute identical boundaries, deal identical
// slices, and seed identical inner engines — so their answers must be
// bit-identical, materialized tuple order included.
TEST(CoordParityTest, MatchesShardedBitForBit) {
  for (const int k : {1, 2, 4, 8}) {
    const Column base = DuplicateHeavyColumn(4096, 11);
    auto coord = CreateEngineOrDie("coord(" + std::to_string(k) + ",crack)",
                                   &base, TestConfig());
    auto sharded = CreateEngineOrDie(
        "sharded(" + std::to_string(k) + ",crack)", &base, TestConfig());
    Rng rng(500 + static_cast<uint64_t>(k));
    for (int i = 0; i < 60; ++i) {
      const auto range = RandomRange(&rng, 600);
      const std::vector<Value> lhs =
          coord->SelectOrDie(range.first, range.second).Collect();
      const std::vector<Value> rhs =
          sharded->SelectOrDie(range.first, range.second).Collect();
      EXPECT_EQ(lhs, rhs) << "K=" << k << " [" << range.first << ","
                          << range.second << ")";
    }
  }
}

TEST(CoordParityTest, MatchesShardedOnStochasticInner) {
  // mdd1r draws random pivots; parity holds because both factories
  // decorrelate per-partition seeds with the same formula.
  const Column base = Column::UniquePermutation(4096, 7);
  auto coord = CreateEngineOrDie("coord(4,mdd1r)", &base, TestConfig());
  auto sharded = CreateEngineOrDie("sharded(4,mdd1r)", &base, TestConfig());
  Rng rng(901);
  for (int i = 0; i < 60; ++i) {
    const auto range = RandomRange(&rng, 4096);
    EXPECT_EQ(coord->SelectOrDie(range.first, range.second).Collect(),
              sharded->SelectOrDie(range.first, range.second).Collect());
  }
}

TEST(CoordParityTest, AggregateModesMatchReference) {
  const Column base = DuplicateHeavyColumn(2048, 23);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  Rng rng(77);
  for (int i = 0; i < 40; ++i) {
    const auto range = RandomRange(&rng, 300);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    Query query;
    query.low = range.first;
    query.high = range.second;

    query.mode = OutputMode::kCount;
    QueryOutput count;
    ASSERT_TRUE(engine->Execute(query, &count).ok());
    EXPECT_EQ(count.count, expect.count);
    EXPECT_EQ(count.degraded_nodes, 0);

    query.mode = OutputMode::kSum;
    QueryOutput sum;
    ASSERT_TRUE(engine->Execute(query, &sum).ok());
    EXPECT_EQ(sum.sum, expect.sum);

    query.mode = OutputMode::kExists;
    query.limit = 1;
    QueryOutput exists;
    ASSERT_TRUE(engine->Execute(query, &exists).ok());
    EXPECT_EQ(exists.exists, expect.count > 0);
  }
}

TEST(CoordParityTest, BatchMatchesSharded) {
  const Column base = DuplicateHeavyColumn(2048, 31);
  auto coord = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  auto sharded = CreateEngineOrDie("sharded(4,crack)", &base, TestConfig());
  Rng rng(13);
  std::vector<Query> queries;
  for (int i = 0; i < 24; ++i) {
    const auto range = RandomRange(&rng, 300);
    Query q;
    q.low = range.first;
    q.high = range.second;
    q.mode = (i % 3 == 0) ? OutputMode::kMaterialize
                          : (i % 3 == 1 ? OutputMode::kCount
                                        : OutputMode::kSum);
    queries.push_back(q);
  }
  std::vector<QueryOutput> lhs, rhs;
  ASSERT_TRUE(coord->ExecuteBatch(queries, &lhs).ok());
  ASSERT_TRUE(sharded->ExecuteBatch(queries, &rhs).ok());
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(lhs[i].count, rhs[i].count) << i;
    EXPECT_EQ(lhs[i].sum, rhs[i].sum) << i;
    if (queries[i].mode == OutputMode::kMaterialize) {
      EXPECT_EQ(testing::Sorted(lhs[i].result.Collect()),
                testing::Sorted(rhs[i].result.Collect()))
          << i;
    }
  }
}

// ------------------------------------------------- pruning / conservation --

TEST(CoordRoutingTest, SelectiveQueryPrunesNodes) {
  const Column base = Column::UniquePermutation(1024, 3);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  const EngineStats before = engine->CurrentStats();
  ASSERT_EQ(before.cluster_nodes, 4);

  // A 16-value needle sits inside one equi-depth partition.
  EXPECT_EQ(engine->SelectOrDie(10, 26).count(), 16);
  EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.fan_outs - before.fan_outs, 1);
  EXPECT_EQ(stats.nodes_routed - before.nodes_routed, 1);
  EXPECT_EQ(stats.nodes_pruned - before.nodes_pruned, 3);

  // A full-domain sweep routes everywhere.
  EXPECT_EQ(engine->SelectOrDie(-1, 2048).count(), 1024);
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.nodes_routed - before.nodes_routed, 1 + 4);

  // An empty range prunes everything but still counts the fan-out.
  EXPECT_EQ(engine->SelectOrDie(5, 5).count(), 0);
  stats = engine->CurrentStats();
  EXPECT_EQ(stats.fan_outs - before.fan_outs, 3);
  EXPECT_EQ(stats.nodes_routed + stats.nodes_pruned,
            stats.fan_outs * stats.cluster_nodes);
  EXPECT_GT(stats.wire_bytes, 0);
  EXPECT_EQ(stats.node_failures, 0);
  EXPECT_EQ(stats.degraded_queries, 0);
}

TEST(CoordRoutingTest, ConservationHoldsUnderRandomWorkload) {
  const Column base = DuplicateHeavyColumn(2048, 5);
  auto engine = CreateEngineOrDie("coord(8,crack)", &base, TestConfig());
  Rng rng(42);
  std::vector<Query> batch;
  for (int i = 0; i < 50; ++i) {
    const auto range = RandomRange(&rng, 300);
    engine->SelectOrDie(range.first, range.second);
    Query q;
    q.low = range.first;
    q.high = range.second;
    q.mode = OutputMode::kCount;
    batch.push_back(q);
  }
  std::vector<QueryOutput> outputs;
  ASSERT_TRUE(engine->ExecuteBatch(batch, &outputs).ok());
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.fan_outs, 100);  // 50 selects + 50 batched queries
  EXPECT_EQ(stats.nodes_routed + stats.nodes_pruned,
            stats.fan_outs * stats.cluster_nodes);
}

TEST(CoordRoutingTest, AuditedCoordinatorPassesConservationLaw) {
  // audit(coord(...)) runs the route-conservation check directly against
  // the coordinator's counters after every forwarded call.
  const Column base = DuplicateHeavyColumn(1024, 9);
  auto engine = CreateEngineOrDie("audit(coord(4,crack))", &base, TestConfig());
  Rng rng(88);
  for (int i = 0; i < 30; ++i) {
    const auto range = RandomRange(&rng, 200);
    engine->SelectOrDie(range.first, range.second);
  }
  EXPECT_TRUE(engine->Validate().ok());
}

// --------------------------------------------------------------- updates --

TEST(CoordUpdateTest, StagedUpdatesRouteAndBecomeVisible) {
  const Column base = Column::UniquePermutation(512, 19);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  // Insert values that land in different partitions (domain is [0, 512)).
  ASSERT_TRUE(engine->StageInsert(1000).ok());   // top partition
  ASSERT_TRUE(engine->StageInsert(-100).ok());   // bottom partition
  ASSERT_TRUE(engine->StageDelete(200).ok());
  EXPECT_EQ(engine->SelectOrDie(999, 1001).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(-101, -99).count(), 1);
  EXPECT_EQ(engine->SelectOrDie(200, 201).count(), 0);
  EXPECT_EQ(engine->SelectOrDie(-200, 2000).count(), 512 + 2 - 1);
  EXPECT_TRUE(engine->Validate().ok());
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.updates_merged, 3);
}

// -------------------------------------------------------------- failures --

TEST(CoordFailureTest, DeadNodeDegradesReadsAndRecovers) {
  const Column base = Column::UniquePermutation(1024, 29);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  auto* coord = AsCoordinator(engine.get());
  ASSERT_NE(coord->inproc_transport(), nullptr);

  const Index full = engine->SelectOrDie(-1, 2048).count();
  ASSERT_EQ(full, 1024);

  coord->inproc_transport()->KillNode(0);
  Query query;
  query.low = -1;
  query.high = 2048;
  query.mode = OutputMode::kMaterialize;
  QueryOutput output;
  const Status status = engine->Execute(query, &output);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(output.degraded_nodes, 1);
  EXPECT_LT(output.result.count(), 1024);  // partial answer, reported as such

  EngineStats stats = engine->CurrentStats();
  EXPECT_GT(stats.node_failures, 0);
  EXPECT_EQ(stats.degraded_queries, 1);

  // A query that never routes to the dead node is not degraded. Node 0
  // owns the bottom of the value range.
  QueryOutput healthy;
  query.low = 900;
  query.high = 910;
  ASSERT_TRUE(engine->Execute(query, &healthy).ok());
  EXPECT_EQ(healthy.degraded_nodes, 0);
  EXPECT_EQ(healthy.result.count(), 10);

  // Writes to a dead node propagate the failure instead of dropping data.
  EXPECT_FALSE(engine->StageInsert(-5).ok());

  // Revival restores complete answers.
  coord->inproc_transport()->ReviveNode(0);
  QueryOutput recovered;
  query.low = -1;
  query.high = 2048;
  ASSERT_TRUE(engine->Execute(query, &recovered).ok());
  EXPECT_EQ(recovered.degraded_nodes, 0);
  EXPECT_EQ(recovered.result.count(), 1024);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(CoordFailureTest, TransientFailureIsRetriedWithoutDegradation) {
  const Column base = Column::UniquePermutation(512, 37);
  auto engine = CreateEngineOrDie("coord(2,crack)", &base, TestConfig());
  auto* coord = AsCoordinator(engine.get());
  // One dropped connection on node 1: the per-node retry absorbs it.
  coord->inproc_transport()->FailNextCalls(1, 1);
  EXPECT_EQ(engine->SelectOrDie(-1, 1024).count(), 512);
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.node_failures, 1);
  EXPECT_EQ(stats.degraded_queries, 0);
}

TEST(CoordFailureTest, ValidatePropagatesDeadNode) {
  const Column base = Column::UniquePermutation(256, 41);
  auto engine = CreateEngineOrDie("coord(2,crack)", &base, TestConfig());
  auto* coord = AsCoordinator(engine.get());
  coord->inproc_transport()->KillNode(1);
  EXPECT_FALSE(engine->Validate().ok());
  coord->inproc_transport()->ReviveNode(1);
  EXPECT_TRUE(engine->Validate().ok());
}

// ----------------------------------------------------------- composition --

TEST(CoordCompositionTest, SumsProgBudgetsAcrossNodes) {
  const Column base = Column::UniquePermutation(1024, 43);
  auto engine =
      CreateEngineOrDie("coord(2,prog(5000,crack))", &base, TestConfig());
  // BudgetedEngine publishes its enforced ceiling (budget plus the
  // small-piece overdraw allowance), so the coordinator's aggregate must be
  // exactly the per-node published value times the node count.
  auto single = CreateEngineOrDie("prog(5000,crack)", &base, TestConfig());
  EXPECT_EQ(engine->CurrentStats().swap_budget,
            2 * single->CurrentStats().swap_budget);
  EXPECT_EQ(engine->SelectOrDie(100, 200).count(), 100);
}

TEST(CoordCompositionTest, EpochInnerServes) {
  const Column base = DuplicateHeavyColumn(1024, 47);
  auto engine = CreateEngineOrDie("coord(2,epoch(crack))", &base, TestConfig());
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto range = RandomRange(&rng, 150);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    EXPECT_EQ(engine->SelectOrDie(range.first, range.second).count(),
              expect.count);
  }
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(CoordCompositionTest, ChaosWrapperRetriesInjectedTransportFaults) {
  // chaos(coord(...)) arms fault points that the in-process transport
  // crosses on every call; the chaos layer must absorb each injected abort
  // and the final answers must stay correct.
  const Column base = DuplicateHeavyColumn(1024, 53);
  auto engine = CreateEngineOrDie("chaos(coord(2,crack))", &base, TestConfig());
  Rng rng(15);
  for (int i = 0; i < 30; ++i) {
    const auto range = RandomRange(&rng, 150);
    const ReferenceAnswer expect =
        ReferenceSelect(base.values(), range.first, range.second);
    EXPECT_EQ(engine->SelectOrDie(range.first, range.second).count(),
              expect.count);
  }
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.nodes_routed + stats.nodes_pruned,
            stats.fan_outs * stats.cluster_nodes);
  EXPECT_TRUE(engine->Validate().ok());
}

// ----------------------------------------------------------------- stats --

TEST(CoordStatsTest, AggregatesNodeCountersThroughTheWire) {
  const Column base = Column::UniquePermutation(2048, 59);
  auto engine = CreateEngineOrDie("coord(4,crack)", &base, TestConfig());
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    const auto range = RandomRange(&rng, 2048);
    engine->SelectOrDie(range.first, range.second);
  }
  const EngineStats stats = engine->CurrentStats();
  EXPECT_EQ(stats.queries, 20);
  EXPECT_GT(stats.tuples_touched, 0);  // node-side counters, via responses
  EXPECT_GT(stats.cracks, 0);
  EXPECT_GT(stats.materialized, 0);
  EXPECT_GT(stats.wire_bytes, 0);
}

}  // namespace
}  // namespace scrack
