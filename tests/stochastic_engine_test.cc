// Behavior tests for the stochastic engines: DDC/DDR/DD1C/DD1R split
// discipline, MDD1R materialization rules, progressive budget mechanics.
#include <gtest/gtest.h>

#include <vector>

#include "cracking/stochastic_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 23;
  config.crack_threshold_values = 128;
  config.progressive_min_values = 512;
  return config;
}

// ------------------------------------------------------------- DDC / DDR --

TEST(DdcEngineTest, FirstQueryLeavesOnlySmallPiecesAroundBounds) {
  const Column base = Column::UniquePermutation(10'000, 3);
  DataDrivenEngine engine(&base, TestConfig(), /*center_pivot=*/true,
                          /*recursive=*/true);
  engine.SelectOrDie(5000, 5010);
  // DDC recursively halves on the way to each bound: the pieces holding the
  // bounds must now be at most the threshold.
  const Piece at_low = engine.column().index().FindPiece(5000);
  EXPECT_LE(at_low.size(), 128 + 1);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(DdcEngineTest, MedianSplitsAreBalanced) {
  const Column base = Column::UniquePermutation(8192, 3);
  EngineConfig config = TestConfig();
  config.crack_threshold_values = 2048;
  DataDrivenEngine engine(&base, config, /*center_pivot=*/true,
                          /*recursive=*/true);
  engine.SelectOrDie(1, 2);
  // The first DDC split must be the exact median: a crack at value 4096
  // with position 4096 (the data is a permutation of [0, 8192)).
  EXPECT_TRUE(engine.column().index().HasCrack(4096));
  EXPECT_EQ(engine.column().index().CrackPosition(4096), 4096);
}

TEST(DdrEngineTest, RandomPivotsAreSeedDeterministic) {
  const Column base = Column::UniquePermutation(4096, 3);
  DataDrivenEngine a(&base, TestConfig(), false, true);
  DataDrivenEngine b(&base, TestConfig(), false, true);
  a.SelectOrDie(100, 200);
  b.SelectOrDie(100, 200);
  EXPECT_EQ(a.stats().cracks, b.stats().cracks);
  EXPECT_EQ(a.stats().tuples_touched, b.stats().tuples_touched);
  EXPECT_EQ(a.column().index().num_cracks(), b.column().index().num_cracks());
}

TEST(Dd1cEngineTest, SingleAuxiliaryCrackPerBound) {
  const Column base = Column::UniquePermutation(10'000, 3);
  DataDrivenEngine engine(&base, TestConfig(), /*center_pivot=*/true,
                          /*recursive=*/false);
  engine.SelectOrDie(5000, 5010);
  // Per bound: at most one median crack + the bound crack. First query has
  // both bounds in one piece: median crack, then crack at 5000 in one half,
  // then possibly another median for the second bound's piece + crack.
  EXPECT_LE(engine.stats().cracks, 4);
  EXPECT_GE(engine.stats().cracks, 3);
}

TEST(Dd1rEngineTest, CheaperFirstQueryThanRecursiveDdrOnAverage) {
  // Individual seeds can go either way (the engines draw different pivot
  // sequences); the paper's claim is about expected initialization cost
  // (§4: DD1R reduces the overhead of its recursive sibling).
  const Column base = Column::UniquePermutation(200'000, 3);
  int64_t ddr_total = 0;
  int64_t dd1r_total = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    EngineConfig config = TestConfig();
    config.seed = 1000 + seed;
    DataDrivenEngine ddr(&base, config, false, true);
    DataDrivenEngine dd1r(&base, config, false, false);
    ddr.SelectOrDie(100'000, 100'010);
    dd1r.SelectOrDie(100'000, 100'010);
    ddr_total += ddr.stats().tuples_touched;
    dd1r_total += dd1r.stats().tuples_touched;
  }
  EXPECT_LT(dd1r_total, ddr_total);
}

TEST(DataDrivenEngineTest, NamesReflectVariant) {
  const Column base = Column::UniquePermutation(16, 3);
  const EngineConfig config = TestConfig();
  EXPECT_EQ(DataDrivenEngine(&base, config, true, true).name(), "ddc");
  EXPECT_EQ(DataDrivenEngine(&base, config, false, true).name(), "ddr");
  EXPECT_EQ(DataDrivenEngine(&base, config, true, false).name(), "dd1c");
  EXPECT_EQ(DataDrivenEngine(&base, config, false, false).name(), "dd1r");
}

TEST(DataDrivenEngineTest, SmallPieceSkipsAuxiliaryCrack) {
  // Piece already below threshold: behaves like plain cracking.
  const Column base = Column::UniquePermutation(64, 3);
  DataDrivenEngine engine(&base, TestConfig(), false, true);
  engine.SelectOrDie(10, 20);
  EXPECT_EQ(engine.stats().random_pivots, 0);
}

TEST(DataDrivenEngineTest, AllEqualColumnTerminates) {
  const Column base(std::vector<Value>(5000, 7));
  DataDrivenEngine ddr(&base, TestConfig(), false, true);
  EXPECT_EQ(ddr.SelectOrDie(0, 100).count(), 5000);
  EXPECT_EQ(ddr.SelectOrDie(7, 8).count(), 5000);
  EXPECT_EQ(ddr.SelectOrDie(8, 9).count(), 0);
  EXPECT_TRUE(ddr.Validate().ok());
  DataDrivenEngine ddc(&base, TestConfig(), true, true);
  EXPECT_EQ(ddc.SelectOrDie(7, 8).count(), 5000);
  EXPECT_TRUE(ddc.Validate().ok());
}

// ----------------------------------------------------------------- MDD1R --

TEST(Mdd1rEngineTest, MaterializesEndPiecesViewsMiddle) {
  const Column base = Column::UniquePermutation(10'000, 3);
  Mdd1rEngine engine(&base, TestConfig());
  engine.SelectOrDie(2000, 8000);
  const int64_t first_mat = engine.stats().materialized;
  EXPECT_GT(first_mat, 0);
  // Second, wider query: end pieces materialize again (no query-bound
  // cracks are ever added), middle comes as a view.
  const QueryResult result = engine.SelectOrDie(1000, 9000);
  EXPECT_EQ(result.count(), 8000);
  EXPECT_TRUE(result.materialized());
  EXPECT_GT(engine.stats().materialized, first_mat);
}

TEST(Mdd1rEngineTest, NeverCracksOnQueryBounds) {
  const Column base = Column::UniquePermutation(10'000, 3);
  Mdd1rEngine engine(&base, TestConfig());
  engine.SelectOrDie(2000, 8000);
  engine.SelectOrDie(3000, 7000);
  EXPECT_FALSE(engine.column().index().HasCrack(2000));
  EXPECT_FALSE(engine.column().index().HasCrack(8000));
  EXPECT_FALSE(engine.column().index().HasCrack(3000));
  EXPECT_FALSE(engine.column().index().HasCrack(7000));
  // But random cracks exist.
  EXPECT_GT(engine.column().index().num_cracks(), 0u);
  EXPECT_EQ(engine.stats().random_pivots, engine.stats().cracks);
}

TEST(Mdd1rEngineTest, PieceCountGrowsOnePerTouchedEndPiece) {
  const Column base = Column::UniquePermutation(10'000, 3);
  Mdd1rEngine engine(&base, TestConfig());
  engine.SelectOrDie(5000, 5010);  // both bounds in one piece: 1 crack
  EXPECT_EQ(engine.stats().cracks, 1);
  engine.SelectOrDie(2000, 9000);  // two end pieces: up to 2 cracks
  EXPECT_LE(engine.stats().cracks, 3);
}

TEST(Mdd1rEngineTest, ExactPieceMatchAvoidsMaterialization) {
  const Column base = Column::UniquePermutation(1000, 3);
  Mdd1rEngine engine(&base, TestConfig());
  // Whole-domain query: bounds hit the column ends; nothing to reorganize.
  const QueryResult result = engine.SelectOrDie(0, 1000);
  EXPECT_EQ(result.count(), 1000);
  EXPECT_FALSE(result.materialized());
  EXPECT_EQ(engine.stats().materialized, 0);
}

// ----------------------------------------------------- Progressive PMDD1R --

TEST(ProgressiveEngineTest, SwapBudgetBoundsPerQuerySwaps) {
  const Column base = Column::UniquePermutation(100'000, 3);
  EngineConfig config = TestConfig();
  config.progressive_budget = 0.01;  // P1%
  ProgressiveEngine engine(&base, config);
  engine.SelectOrDie(50'000, 50'010);
  // One query may swap at most ~1% of each touched piece (the whole column
  // here) plus the (possible) MDD1R fallback on small pieces — none yet.
  EXPECT_LE(engine.stats().swaps, 100'000 / 100 + 2);
}

TEST(ProgressiveEngineTest, RepeatedQueriesCompleteTheCrack) {
  const Column base = Column::UniquePermutation(20'000, 3);
  EngineConfig config = TestConfig();
  config.progressive_budget = 0.10;
  config.progressive_min_values = 1000;
  ProgressiveEngine engine(&base, config);
  // Hammer the same piece: the pending crack must finish and register.
  for (int i = 0; i < 30; ++i) {
    engine.SelectOrDie(10'000, 10'010);
  }
  EXPECT_GT(engine.column().index().num_cracks(), 0u);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(ProgressiveEngineTest, AnswersStayCorrectWhileCrackInFlight) {
  const Column base = Column::UniquePermutation(50'000, 3);
  EngineConfig config = TestConfig();
  config.progressive_budget = 0.01;
  ProgressiveEngine engine(&base, config);
  for (int i = 0; i < 10; ++i) {
    const QueryResult result = engine.SelectOrDie(1000 * i, 1000 * i + 500);
    EXPECT_EQ(result.count(), 500) << "query " << i;
    EXPECT_TRUE(engine.Validate().ok());
  }
}

TEST(ProgressiveEngineTest, SmallPiecesFallBackToMdd1r) {
  const Column base = Column::UniquePermutation(400, 3);
  EngineConfig config = TestConfig();
  config.progressive_min_values = 512;  // column is below the L2 threshold
  ProgressiveEngine engine(&base, config);
  engine.SelectOrDie(100, 200);
  // Full MDD1R path: a crack must have been registered immediately.
  EXPECT_EQ(engine.stats().cracks, 1);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(ProgressiveEngineTest, NameIncludesBudget) {
  const Column base = Column::UniquePermutation(16, 3);
  EngineConfig config = TestConfig();
  config.progressive_budget = 0.10;
  EXPECT_EQ(ProgressiveEngine(&base, config).name(), "pmdd1r(10%)");
}

TEST(ProgressiveEngineTest, FullBudgetMatchesMdd1rCrackCount) {
  const Column base = Column::UniquePermutation(5000, 3);
  EngineConfig config = TestConfig();
  config.progressive_budget = 1.0;  // P100% == MDD1R (up to pass structure)
  config.progressive_min_values = 100;
  ProgressiveEngine p100(&base, config);
  Mdd1rEngine mdd1r(&base, config);
  for (int i = 0; i < 20; ++i) {
    const Value a = (i * 211) % 4900;
    EXPECT_EQ(p100.SelectOrDie(a, a + 100).count(),
              mdd1r.SelectOrDie(a, a + 100).count());
  }
  EXPECT_TRUE(p100.Validate().ok());
}

}  // namespace
}  // namespace scrack
