// Differential tests for budgeted progressive cracking (prog(B,<inner>)).
//
// The contract under test: for ANY per-query swap budget B, prog(B,crack)
// returns bit-identical answers to plain cracking on every query, never
// swaps more than B + 2 * small-piece-cutoff tuples in one query, and —
// once the deferred backlog drains — converges to the *identical* final
// (crack key, crack position) layout plain cracking reaches. Crack
// positions are rank-determined (pos(v) = #elements < v), so layout
// parity is exact equality, not approximate.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cracking/crack_engine.h"
#include "harness/engine_factory.h"
#include "progressive/budgeted_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

using testing::DuplicateHeavyColumn;
using testing::RandomRange;
using testing::ReferenceAnswer;
using testing::ReferenceSelect;

constexpr Index kN = 40 * 1000;
constexpr int kQueries = 200;

EngineConfig SmallPieceConfig(int64_t budget) {
  EngineConfig config;
  config.swap_budget = budget;
  config.crack_threshold_values = 1024;
  return config;
}

/// Answers from `engine` must match the raw-data reference on every query
/// of a deterministic random stream.
void ExpectMatchesReference(SelectEngine* engine, const Column& base,
                            uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < kQueries; ++i) {
    const auto range = RandomRange(&rng, kN);
    const ReferenceAnswer expected =
        ReferenceSelect(base.values(), range.first, range.second);
    QueryResult result;
    ASSERT_TRUE(engine->Select(range.first, range.second, &result).ok());
    EXPECT_EQ(result.count(), expected.count) << "query " << i;
    EXPECT_EQ(result.Sum(), expected.sum) << "query " << i;
    ASSERT_TRUE(engine->Validate().ok()) << "query " << i;
  }
}

TEST(BudgetedEngineTest, TinyBudgetAnswersMatchReference) {
  const Column base = DuplicateHeavyColumn(kN, 11);
  BudgetedEngine engine(&base, SmallPieceConfig(50), "crack");
  ExpectMatchesReference(&engine, base, 101);
  EXPECT_GT(engine.CurrentStats().budget_exhausted, 0);
  EXPECT_GT(engine.CurrentStats().scan_fallback_tuples, 0);
}

TEST(BudgetedEngineTest, PieceSizedBudgetAnswersMatchReference) {
  const Column base = DuplicateHeavyColumn(kN, 11);
  BudgetedEngine engine(&base, SmallPieceConfig(4096), "crack");
  ExpectMatchesReference(&engine, base, 101);
}

TEST(BudgetedEngineTest, UnlimitedBudgetAnswersMatchReference) {
  const Column base = DuplicateHeavyColumn(kN, 11);
  BudgetedEngine engine(&base, SmallPieceConfig(0), "crack");
  ExpectMatchesReference(&engine, base, 101);
  // Unlimited: nothing is ever deferred, the budget never binds.
  EXPECT_EQ(engine.CurrentStats().budget_exhausted, 0);
  EXPECT_EQ(engine.CurrentStats().deferred_swaps, 0);
  EXPECT_TRUE(engine.Converged());
}

TEST(BudgetedEngineTest, PerQuerySwapsNeverExceedCeiling) {
  const Column base = DuplicateHeavyColumn(kN, 13);
  const int64_t budget = 700;
  BudgetedEngine engine(&base, SmallPieceConfig(budget), "crack");
  const int64_t ceiling = engine.CurrentStats().swap_budget;
  ASSERT_GT(ceiling, 0);
  // Cutoff clamps to min(1024, 700) = 700 => ceiling = 700 + 2*700.
  EXPECT_EQ(ceiling, budget + 2 * 700);
  Rng rng(77);
  int64_t prev_swaps = 0;
  for (int i = 0; i < kQueries; ++i) {
    const auto range = RandomRange(&rng, kN);
    QueryResult result;
    ASSERT_TRUE(engine.Select(range.first, range.second, &result).ok());
    const int64_t swaps = engine.CurrentStats().swaps;
    EXPECT_LE(swaps - prev_swaps, ceiling) << "query " << i;
    prev_swaps = swaps;
  }
}

TEST(BudgetedEngineTest, ConvergesToPlainCrackingLayout) {
  const Column base = DuplicateHeavyColumn(kN, 17);
  EngineConfig config = SmallPieceConfig(300);
  CrackEngine crack(&base, config);
  BudgetedEngine prog(&base, config, "crack");
  Rng crack_rng(5);
  Rng prog_rng(5);
  // Layout parity is defined over in-domain crack values: plain cracking
  // registers (useless) cracks for bounds above max_value_, the budgeted
  // path resolves them trivially. DuplicateHeavyColumn's values live in
  // [0, kN/8), so draw bounds from that domain.
  for (int i = 0; i < kQueries; ++i) {
    const auto range = RandomRange(&crack_rng, kN / 8);
    const auto same = RandomRange(&prog_rng, kN / 8);
    ASSERT_EQ(range, same);
    QueryResult a;
    QueryResult b;
    ASSERT_TRUE(crack.Select(range.first, range.second, &a).ok());
    ASSERT_TRUE(prog.Select(range.first, range.second, &b).ok());
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.Sum(), b.Sum());
  }
  ASSERT_TRUE(prog.DrainDeferred(8 * kQueries).ok());
  ASSERT_TRUE(prog.Converged());
  EXPECT_EQ(prog.CurrentStats().deferred_swaps, 0);
  ASSERT_TRUE(prog.Validate().ok());

  const CrackerIndex& want = crack.column().index();
  const CrackerIndex& got = prog.column().index();
  ASSERT_EQ(got.num_cracks(), want.num_cracks());
  for (size_t i = 0; i < want.num_cracks(); ++i) {
    EXPECT_EQ(got.crack_key(i), want.crack_key(i)) << "crack " << i;
    EXPECT_EQ(got.crack_pos(i), want.crack_pos(i)) << "crack " << i;
  }
}

TEST(BudgetedEngineTest, AggregateModesMatchReference) {
  const Column base = DuplicateHeavyColumn(kN, 19);
  BudgetedEngine engine(&base, SmallPieceConfig(400), "crack");
  Rng rng(23);
  for (int i = 0; i < kQueries; ++i) {
    const auto range = RandomRange(&rng, kN);
    const ReferenceAnswer expected =
        ReferenceSelect(base.values(), range.first, range.second);
    Query query;
    query.low = range.first;
    query.high = range.second;

    query.mode = OutputMode::kCount;
    QueryOutput count;
    ASSERT_TRUE(engine.Execute(query, &count).ok());
    EXPECT_EQ(count.count, expected.count) << "query " << i;

    query.mode = OutputMode::kSum;
    QueryOutput sum;
    ASSERT_TRUE(engine.Execute(query, &sum).ok());
    EXPECT_EQ(sum.sum, expected.sum) << "query " << i;
    EXPECT_EQ(sum.count, expected.count) << "query " << i;

    query.mode = OutputMode::kExists;
    query.limit = 1;
    QueryOutput exists;
    ASSERT_TRUE(engine.Execute(query, &exists).ok());
    EXPECT_EQ(exists.exists, expected.count > 0) << "query " << i;

    if (expected.count > 0) {
      query.mode = OutputMode::kMinMax;
      QueryOutput minmax;
      ASSERT_TRUE(engine.Execute(query, &minmax).ok());
      Value lo = range.second;
      Value hi = range.first - 1;
      for (Value v : base.values()) {
        if (range.first <= v && v < range.second) {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      EXPECT_EQ(minmax.min, lo) << "query " << i;
      EXPECT_EQ(minmax.max, hi) << "query " << i;
    }
  }
  EXPECT_GT(engine.CurrentStats().aggregates_pushed, 0);
}

TEST(BudgetedEngineTest, InterleavedUpdatesStayCorrect) {
  const Column base = DuplicateHeavyColumn(kN, 29);
  BudgetedEngine engine(&base, SmallPieceConfig(600), "crack");
  std::vector<Value> live = base.values();
  Rng rng(31);
  for (int i = 0; i < kQueries; ++i) {
    if (i % 5 == 2) {
      const Value v = rng.UniformValue(0, kN);
      ASSERT_TRUE(engine.StageInsert(v).ok());
      live.push_back(v);
    }
    if (i % 11 == 7) {
      // Delete a value known to exist so the reference stays in sync.
      const Value v = live[static_cast<size_t>(
          rng.UniformValue(0, static_cast<Value>(live.size())))];
      ASSERT_TRUE(engine.StageDelete(v).ok());
      live.erase(std::find(live.begin(), live.end(), v));
    }
    const auto range = RandomRange(&rng, kN);
    const ReferenceAnswer expected =
        ReferenceSelect(live, range.first, range.second);
    QueryResult result;
    ASSERT_TRUE(engine.Select(range.first, range.second, &result).ok());
    EXPECT_EQ(result.count(), expected.count) << "query " << i;
    EXPECT_EQ(result.Sum(), expected.sum) << "query " << i;
    ASSERT_TRUE(engine.Validate().ok()) << "query " << i;
  }
  EXPECT_GT(engine.CurrentStats().updates_merged, 0);
}

TEST(BudgetedEngineTest, AuditedProgRunsClean) {
  const Column base = DuplicateHeavyColumn(kN, 37);
  EngineConfig config = SmallPieceConfig(0);
  auto engine = CreateEngineOrDie("audit(prog(2000,crack))", &base, config);
  EXPECT_EQ(engine->name(), "audit(prog(2000,crack))");
  ExpectMatchesReference(engine.get(), base, 41);
}

TEST(BudgetedEngineTest, FactoryComposesWithEpochAndDispatchesParallel) {
  const Column base = DuplicateHeavyColumn(kN, 43);
  EngineConfig config;
  config.swap_budget = 0;  // the spec's budget wins
  auto engine =
      CreateEngineOrDie("epoch(prog(5000,crack-p2))", &base, config);
  EXPECT_EQ(engine->name(), "epoch(prog(5000,crack-p2))");
  ExpectMatchesReference(engine.get(), base, 47);
}

// TSan target: concurrent clients against epoch(prog(B,crack-p2)). The
// epoch layer serializes budgeted reorganizations on the writer path and
// serves crack-converged ranges to shared readers; any torn partial
// partition or gauge race shows up as a checksum mismatch or a TSan
// report.
TEST(BudgetedEngineTest, EpochProgConcurrentHammer) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 120;
  const Column base = DuplicateHeavyColumn(kN, 53);
  auto engine =
      CreateEngineOrDie("epoch(prog(3000,crack-p2))", &base, EngineConfig{});
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const auto range = RandomRange(&rng, kN);
        const ReferenceAnswer expected =
            ReferenceSelect(base.values(), range.first, range.second);
        QueryResult result;
        if (!engine->Select(range.first, range.second, &result).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        if (result.count() != expected.count ||
            result.Sum() != expected.sum) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(engine->Validate().ok());
}

TEST(BudgetedEngineTest, EnvBudgetOverridesAreNotRetested) {
  // SCRACK_SWAP_BUDGET is resolved once per process (static); changing the
  // environment mid-test would be order-dependent, so only the config path
  // is covered here and the env path in the serve/repro tools.
  const Column base = DuplicateHeavyColumn(2048, 3);
  BudgetedEngine engine(&base, SmallPieceConfig(123), "crack");
  EXPECT_EQ(engine.budget(), 123);
  EXPECT_EQ(engine.name(), "prog(123,crack)");
}

// ----------------------------------------------------- factory grammar ----

TEST(ProgFactoryTest, ValidSpecsParse) {
  const Column base = DuplicateHeavyColumn(2048, 3);
  std::unique_ptr<SelectEngine> engine;
  EXPECT_TRUE(
      CreateEngine("prog(5000,crack)", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "prog(5000,crack)");
  EXPECT_TRUE(
      CreateEngine("prog(inf,crack)", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "prog(inf,crack)");
  EXPECT_TRUE(
      CreateEngine("prog(64, crack-p2)", &base, EngineConfig{}, &engine)
          .ok());
  EXPECT_TRUE(CreateEngine("chaos(audit(prog(100,crack)))", &base,
                           EngineConfig{}, &engine)
                  .ok());
  EXPECT_TRUE(
      CreateEngine("sharded(2,prog(500,crack))", &base, EngineConfig{},
                   &engine)
          .ok());
}

TEST(ProgFactoryTest, MalformedSpecsRejectedWithHelpfulErrors) {
  const Column base = DuplicateHeavyColumn(2048, 3);
  std::unique_ptr<SelectEngine> engine;
  const struct {
    const char* spec;
    const char* needle;  // must appear in the error message
  } cases[] = {
      {"prog(5000)", "inner spec"},
      {"prog(,crack)", "budget"},
      {"prog(-5,crack)", "budget"},
      {"prog(abc,crack)", "budget"},
      {"prog(5000,mdd1r)", "plain cracking"},
      {"prog(5000,scan)", "plain cracking"},
      {"prog(5000,prog(10,crack))", "plain cracking"},
      {"prog:5000", "prog(B,<inner>)"},
      {"prog", "prog(B,<inner>)"},
      {"prog(5000,crack", "parenthes"},
      {"chaos(crack))", "parenthes"},
      {"chaos()", "inner"},
      {"audit:crack", "wrapper"},
      {"epoch:crack", "wrapper"},
  };
  for (const auto& test_case : cases) {
    const Status status =
        CreateEngine(test_case.spec, &base, EngineConfig{}, &engine);
    EXPECT_FALSE(status.ok()) << test_case.spec;
    EXPECT_NE(status.message().find(test_case.needle), std::string::npos)
        << test_case.spec << " -> " << status.message();
  }
}

TEST(ProgFactoryTest, UnknownSpecPointsAtTheGrammar) {
  const Column base = DuplicateHeavyColumn(2048, 3);
  std::unique_ptr<SelectEngine> engine;
  const Status status =
      CreateEngine("wibble", &base, EngineConfig{}, &engine);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("KnownEngineSpecs"), std::string::npos);
}

TEST(ProgFactoryTest, KnownSpecsIncludeProgAndChaos) {
  const auto& specs = KnownEngineSpecs();
  auto has = [&specs](const std::string& s) {
    return std::find(specs.begin(), specs.end(), s) != specs.end();
  };
  EXPECT_TRUE(has("prog(5000,crack)"));
  EXPECT_TRUE(has("prog(inf,crack)"));
  EXPECT_TRUE(has("epoch(prog(5000,crack-p))"));
  EXPECT_TRUE(has("chaos(crack)"));
}

}  // namespace
}  // namespace scrack
