// Tests for sideways cracking: pair kernels, CrackerMap, SidewaysCracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "sideways/cracker_map.h"
#include "sideways/kernel_pairs.h"
#include "sideways/sideways_cracker.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

// Reference: tail values whose head is in [lo, hi).
std::vector<Value> ReferenceProject(const std::vector<Value>& head,
                                    const std::vector<Value>& tail,
                                    Value lo, Value hi) {
  std::vector<Value> out;
  for (size_t i = 0; i < head.size(); ++i) {
    if (lo <= head[i] && head[i] < hi) out.push_back(tail[i]);
  }
  return out;
}

// ---------------------------------------------------------- pair kernels --

// Pairs stay glued through any reorganization: (head, tail) multiset of
// pairs must be invariant.
std::vector<std::pair<Value, Value>> Pairs(const std::vector<Value>& head,
                                           const std::vector<Value>& tail) {
  std::vector<std::pair<Value, Value>> out;
  for (size_t i = 0; i < head.size(); ++i) out.emplace_back(head[i], tail[i]);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PairKernelTest, CrackInTwoKeepsPairsGlued) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Value> head(300), tail(300);
    for (size_t i = 0; i < head.size(); ++i) {
      head[i] = rng.UniformValue(0, 500);
      tail[i] = 10'000 + static_cast<Value>(i);
    }
    const auto before = Pairs(head, tail);
    KernelCounters counters;
    const Value pivot = rng.UniformValue(0, 500);
    const Index split = CrackInTwoPairs(head.data(), tail.data(), 0, 300,
                                        pivot, &counters);
    for (Index i = 0; i < split; ++i) ASSERT_LT(head[i], pivot);
    for (Index i = split; i < 300; ++i) ASSERT_GE(head[i], pivot);
    ASSERT_EQ(Pairs(head, tail), before);
  }
}

TEST(PairKernelTest, CrackInThreeKeepsPairsGlued) {
  Rng rng(5);
  std::vector<Value> head(400), tail(400);
  for (size_t i = 0; i < head.size(); ++i) {
    head[i] = rng.UniformValue(0, 100);
    tail[i] = -static_cast<Value>(i);
  }
  const auto before = Pairs(head, tail);
  KernelCounters counters;
  const auto [p1, p2] =
      CrackInThreePairs(head.data(), tail.data(), 0, 400, 30, 70, &counters);
  for (Index i = 0; i < p1; ++i) ASSERT_LT(head[i], 30);
  for (Index i = p1; i < p2; ++i) {
    ASSERT_GE(head[i], 30);
    ASSERT_LT(head[i], 70);
  }
  for (Index i = p2; i < 400; ++i) ASSERT_GE(head[i], 70);
  ASSERT_EQ(Pairs(head, tail), before);
}

TEST(PairKernelTest, SplitAndMaterializeCollectsTailValues) {
  Rng rng(7);
  std::vector<Value> head(300), tail(300);
  for (size_t i = 0; i < head.size(); ++i) {
    head[i] = rng.UniformValue(0, 100);
    tail[i] = 1000 + head[i] * 3;  // recomputable from head
  }
  const std::vector<Value> orig_head = head;
  const std::vector<Value> orig_tail = tail;
  const auto before = Pairs(head, tail);
  std::vector<Value> out;
  KernelCounters counters;
  const Value pivot = head[static_cast<size_t>(rng.UniformIndex(0, 299))];
  SplitAndMaterializePairs(head.data(), tail.data(), 0, 300, 20, 60, pivot,
                           &out, &counters);
  ASSERT_EQ(Pairs(head, tail), before);
  ASSERT_EQ(Sorted(out),
            Sorted(ReferenceProject(orig_head, orig_tail, 20, 60)));
}

// ------------------------------------------------------------ CrackerMap --

class CrackerMapModes : public ::testing::TestWithParam<CrackerMap::Mode> {};

TEST_P(CrackerMapModes, ProjectionMatchesReference) {
  const Index n = 1500;
  const Column head = Column::UniquePermutation(n, 11);
  // tail[i] derived from position so it is a genuine second attribute.
  std::vector<Value> tail_values(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    tail_values[static_cast<size_t>(i)] = 7 * head[i] + 1;
  }
  const Column tail(std::move(tail_values));

  EngineConfig config;
  config.seed = 3;
  config.crack_threshold_values = 64;
  CrackerMap map(&head, &tail, config, GetParam());

  Rng rng(13);
  for (int i = 0; i < 120; ++i) {
    const Value a = rng.UniformValue(0, n);
    const Value b = a + 1 + rng.UniformValue(0, 100);
    QueryResult result;
    ASSERT_TRUE(map.Select(a, b, &result).ok());
    const auto expected =
        ReferenceProject(head.values(), tail.values(), a, b);
    ASSERT_EQ(result.count(), static_cast<Index>(expected.size()));
    ASSERT_EQ(Sorted(result.Collect()), Sorted(expected));
    ASSERT_TRUE(map.Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CrackerMapModes,
                         ::testing::Values(CrackerMap::Mode::kCrack,
                                           CrackerMap::Mode::kDd1r,
                                           CrackerMap::Mode::kMdd1r),
                         [](const ::testing::TestParamInfo<CrackerMap::Mode>&
                                info) {
                           switch (info.param) {
                             case CrackerMap::Mode::kCrack: return "crack";
                             case CrackerMap::Mode::kDd1r: return "dd1r";
                             case CrackerMap::Mode::kMdd1r: return "mdd1r";
                           }
                           return "unknown";
                         });

TEST(CrackerMapTest, CrackModeReturnsViews) {
  const Column head = Column::UniquePermutation(1000, 1);
  const Column tail = Column::UniquePermutation(1000, 2);
  EngineConfig config;
  CrackerMap map(&head, &tail, config, CrackerMap::Mode::kCrack);
  QueryResult result;
  ASSERT_TRUE(map.Select(100, 300, &result).ok());
  EXPECT_EQ(result.count(), 200);
  EXPECT_FALSE(result.materialized());
}

TEST(CrackerMapTest, LazyInitOnFirstSelect) {
  const Column head = Column::UniquePermutation(100, 1);
  const Column tail = Column::UniquePermutation(100, 2);
  EngineConfig config;
  CrackerMap map(&head, &tail, config, CrackerMap::Mode::kCrack);
  EXPECT_FALSE(map.initialized());
  QueryResult result;
  ASSERT_TRUE(map.Select(0, 10, &result).ok());
  EXPECT_TRUE(map.initialized());
  EXPECT_GE(map.stats().tuples_touched, 200);  // both attributes copied
}

TEST(CrackerMapTest, InvalidRangeRejected) {
  const Column head = Column::UniquePermutation(10, 1);
  const Column tail = Column::UniquePermutation(10, 2);
  EngineConfig config;
  CrackerMap map(&head, &tail, config, CrackerMap::Mode::kCrack);
  QueryResult result;
  EXPECT_EQ(map.Select(5, 2, &result).code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------------- SidewaysCracker --

Table MakeThreeColumnTable(Index n) {
  Table table("photoobj");
  SCRACK_CHECK(table.AddColumn("ra", Column::UniquePermutation(n, 1)).ok());
  std::vector<Value> mag(static_cast<size_t>(n)), dec(static_cast<size_t>(n));
  const Column* ra = table.GetColumn("ra");
  for (Index i = 0; i < n; ++i) {
    mag[static_cast<size_t>(i)] = (*ra)[i] * 2;
    dec[static_cast<size_t>(i)] = -(*ra)[i];
  }
  SCRACK_CHECK(table.AddColumn("mag", Column(std::move(mag))).ok());
  SCRACK_CHECK(table.AddColumn("dec", Column(std::move(dec))).ok());
  return table;
}

TEST(SidewaysCrackerTest, MapsCreatedOnDemand) {
  const Table table = MakeThreeColumnTable(500);
  EngineConfig config;
  SidewaysCracker cracker(&table, "ra", config, CrackerMap::Mode::kCrack);
  EXPECT_EQ(cracker.num_live_maps(), 0u);

  QueryResult r1;
  ASSERT_TRUE(cracker.Project("mag", 100, 200, &r1).ok());
  EXPECT_EQ(cracker.num_live_maps(), 1u);
  EXPECT_EQ(r1.count(), 100);
  // mag = 2*ra, so the sum is exactly 2 * sum(ra in [100,200)).
  int64_t expected = 0;
  for (Value v = 100; v < 200; ++v) expected += 2 * v;
  EXPECT_EQ(r1.Sum(), expected);

  QueryResult r2;
  ASSERT_TRUE(cracker.Project("dec", 100, 200, &r2).ok());
  EXPECT_EQ(cracker.num_live_maps(), 2u);
  EXPECT_EQ(r2.Sum(), -expected / 2);
  EXPECT_TRUE(cracker.Validate().ok());
}

TEST(SidewaysCrackerTest, UnknownColumnsRejected) {
  const Table table = MakeThreeColumnTable(100);
  EngineConfig config;
  SidewaysCracker cracker(&table, "ra", config, CrackerMap::Mode::kCrack);
  QueryResult result;
  EXPECT_EQ(cracker.Project("nope", 0, 10, &result).code(),
            StatusCode::kNotFound);
  SidewaysCracker bad_head(&table, "nope", config, CrackerMap::Mode::kCrack);
  EXPECT_EQ(bad_head.Project("mag", 0, 10, &result).code(),
            StatusCode::kNotFound);
}

TEST(SidewaysCrackerTest, StorageBudgetEvictsLru) {
  const Index n = 2000;
  const Table table = MakeThreeColumnTable(n);
  EngineConfig config;
  // Budget fits roughly one map (2 arrays x n x 8 bytes = 32KB per map).
  SidewaysCracker cracker(&table, "ra", config, CrackerMap::Mode::kCrack,
                          /*budget_bytes=*/40'000);
  QueryResult r;
  ASSERT_TRUE(cracker.Project("mag", 0, 100, &r).ok());
  QueryResult r2;
  ASSERT_TRUE(cracker.Project("dec", 0, 100, &r2).ok());
  // The mag map must have been evicted to stay within budget.
  EXPECT_EQ(cracker.num_live_maps(), 1u);
  EXPECT_EQ(cracker.MapStats("mag"), nullptr);
  ASSERT_NE(cracker.MapStats("dec"), nullptr);

  // Touching mag again rebuilds (and recounts) it.
  QueryResult r3;
  ASSERT_TRUE(cracker.Project("mag", 0, 100, &r3).ok());
  EXPECT_EQ(r3.count(), 100);
  EXPECT_EQ(cracker.maps_created(), 3);
}

TEST(SidewaysCrackerTest, RepeatedProjectionsGetCheaper) {
  const Table table = MakeThreeColumnTable(5000);
  EngineConfig config;
  SidewaysCracker cracker(&table, "ra", config, CrackerMap::Mode::kDd1r);
  QueryResult r1;
  ASSERT_TRUE(cracker.Project("mag", 2000, 2100, &r1).ok());
  const int64_t first = cracker.MapStats("mag")->tuples_touched;
  QueryResult r2;
  ASSERT_TRUE(cracker.Project("mag", 2000, 2100, &r2).ok());
  EXPECT_EQ(cracker.MapStats("mag")->tuples_touched, first);  // exact rematch
}

}  // namespace
}  // namespace scrack
