// Tests for the harness layer: engine factory, experiment runner,
// reporting utilities, AdaptiveStore facade.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/adaptive_store.h"
#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "test_util.h"

namespace scrack {
namespace {

// --------------------------------------------------------------- Factory --

TEST(EngineFactoryTest, AllKnownSpecsCreate) {
  const Column base = Column::UniquePermutation(256, 1);
  for (const std::string& spec : KnownEngineSpecs()) {
    std::unique_ptr<SelectEngine> engine;
    const Status status = CreateEngine(spec, &base, EngineConfig{}, &engine);
    ASSERT_TRUE(status.ok()) << spec << ": " << status.ToString();
    ASSERT_NE(engine, nullptr) << spec;
    EXPECT_EQ(engine->SelectOrDie(10, 20).count(), 10) << spec;
  }
}

TEST(EngineFactoryTest, SpecsAreCaseInsensitive) {
  const Column base = Column::UniquePermutation(64, 1);
  std::unique_ptr<SelectEngine> engine;
  EXPECT_TRUE(CreateEngine("MDD1R", &base, EngineConfig{}, &engine).ok());
  EXPECT_TRUE(CreateEngine("Crack", &base, EngineConfig{}, &engine).ok());
}

TEST(EngineFactoryTest, ScrackAliasesMdd1r) {
  const Column base = Column::UniquePermutation(64, 1);
  std::unique_ptr<SelectEngine> engine;
  ASSERT_TRUE(CreateEngine("scrack", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "mdd1r");
}

TEST(EngineFactoryTest, ParameterizedSpecs) {
  const Column base = Column::UniquePermutation(64, 1);
  std::unique_ptr<SelectEngine> engine;
  ASSERT_TRUE(CreateEngine("pmdd1r:5", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "pmdd1r(5%)");
  ASSERT_TRUE(CreateEngine("everyx:8", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "everyx(8)");
  ASSERT_TRUE(
      CreateEngine("scrackmon:50", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "scrackmon(50)");
  ASSERT_TRUE(CreateEngine("r16crack", &base, EngineConfig{}, &engine).ok());
  EXPECT_EQ(engine->name(), "r16crack");
}

TEST(EngineFactoryTest, BadSpecsRejected) {
  const Column base = Column::UniquePermutation(64, 1);
  std::unique_ptr<SelectEngine> engine;
  EXPECT_FALSE(CreateEngine("nope", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(CreateEngine("pmdd1r:0", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(
      CreateEngine("pmdd1r:150", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(CreateEngine("pmdd1r:x", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(CreateEngine("rcrack", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(CreateEngine("", &base, EngineConfig{}, &engine).ok());
  EXPECT_FALSE(CreateEngine("crack", nullptr, EngineConfig{}, &engine).ok());
}

// ------------------------------------------------------------ Experiment --

TEST(ExperimentTest, RecordsPerQueryMetrics) {
  const Column base = Column::UniquePermutation(1000, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  const std::vector<RangeQuery> queries = {{10, 20}, {30, 40}, {10, 20}};
  const RunResult result = RunQueries(engine.get(), queries);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.engine_name, "crack");
  EXPECT_EQ(result.records[0].result_count, 10);
  EXPECT_GT(result.records[0].touched, 1000);  // init + first crack
  EXPECT_EQ(result.records[2].touched, 0);     // exact re-match
  EXPECT_GE(result.records[0].seconds, 0.0);
}

TEST(ExperimentTest, CumulativeAggregation) {
  const Column base = Column::UniquePermutation(100, 1);
  auto engine = CreateEngineOrDie("scan", &base, EngineConfig{});
  const std::vector<RangeQuery> queries = {{0, 10}, {10, 20}, {20, 30}};
  const RunResult result = RunQueries(engine.get(), queries);
  EXPECT_EQ(result.CumulativeTouched(-1), 300);
  EXPECT_EQ(result.CumulativeTouched(1), 100);
  EXPECT_EQ(result.CumulativeTouched(999), 300);  // clamped
  EXPECT_DOUBLE_EQ(result.CumulativeSeconds(3), result.CumulativeSeconds());
}

TEST(ExperimentTest, BeforeQueryHookRunsAndCanAbort) {
  const Column base = Column::UniquePermutation(100, 1);
  auto engine = CreateEngineOrDie("crack", &base, EngineConfig{});
  int calls = 0;
  RunOptions options;
  options.before_query = [&](QueryId i, SelectEngine*) {
    ++calls;
    return i == 2 ? Status::Internal("stop here") : Status::OK();
  };
  const std::vector<RangeQuery> queries = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  const RunResult result = RunQueries(engine.get(), queries, options);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.records.size(), 2u);
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
}

TEST(ExperimentTest, ValidateEachQueryOption) {
  const Column base = Column::UniquePermutation(500, 1);
  auto engine = CreateEngineOrDie("mdd1r", &base, EngineConfig{});
  RunOptions options;
  options.validate_each_query = true;
  WorkloadParams params;
  params.n = 500;
  params.num_queries = 50;
  const auto queries = MakeWorkload(WorkloadKind::kRandom, params);
  const RunResult result = RunQueries(engine.get(), queries, options);
  EXPECT_TRUE(result.status.ok()) << result.status.ToString();
}

// ---------------------------------------------------------------- Report --

TEST(ReportTest, LogSpacedPointsCoverRange) {
  const auto points = LogSpacedPoints(1000);
  ASSERT_FALSE(points.empty());
  EXPECT_EQ(points.front(), 1);
  EXPECT_EQ(points.back(), 1000);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i], points[i - 1]);
  }
  EXPECT_EQ(LogSpacedPoints(1), (std::vector<QueryId>{1}));
}

TEST(ReportTest, TextTableAlignsAndSeparates) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22222"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("-----"), std::string::npos);
  EXPECT_NE(rendered.find("22222"), std::string::npos);
  // 4 lines: header, separator, 2 rows.
  EXPECT_EQ(std::count(rendered.begin(), rendered.end(), '\n'), 4);
}

TEST(ReportTest, NumFormatsCompactly) {
  EXPECT_EQ(TextTable::Num(0), "0");
  EXPECT_EQ(TextTable::Num(12345.6), "12346");
  EXPECT_EQ(TextTable::Num(0.1234567), "0.1235");
}

TEST(ReportTest, EnvInt64ReadsOverrides) {
  ::unsetenv("SCRACK_TEST_KNOB");
  EXPECT_EQ(EnvInt64("SCRACK_TEST_KNOB", 7), 7);
  ::setenv("SCRACK_TEST_KNOB", "123", 1);
  EXPECT_EQ(EnvInt64("SCRACK_TEST_KNOB", 7), 123);
  ::setenv("SCRACK_TEST_KNOB", "garbage", 1);
  EXPECT_EQ(EnvInt64("SCRACK_TEST_KNOB", 7), 7);
  ::setenv("SCRACK_TEST_KNOB", "-5", 1);
  EXPECT_EQ(EnvInt64("SCRACK_TEST_KNOB", 7), 7);
  ::unsetenv("SCRACK_TEST_KNOB");
}

// --------------------------------------------------------- AdaptiveStore --

TEST(AdaptiveStoreTest, EndToEnd) {
  AdaptiveStore store;
  ASSERT_TRUE(
      store.AddColumn("ra", Column::UniquePermutation(1000, 1)).ok());
  ASSERT_TRUE(store
                  .AddColumn("dec", Column::UniquePermutation(1000, 2),
                             "crack")
                  .ok());
  EXPECT_EQ(store.num_columns(), 2u);

  QueryResult result;
  ASSERT_TRUE(store.Select("ra", 100, 200, &result).ok());
  EXPECT_EQ(result.count(), 100);

  ASSERT_TRUE(store.Insert("dec", 5000).ok());
  QueryResult result2;
  ASSERT_TRUE(store.Select("dec", 4000, 6000, &result2).ok());
  EXPECT_EQ(result2.count(), 1);

  ASSERT_NE(store.engine("ra"), nullptr);
  EXPECT_EQ(store.engine("ra")->name(), "mdd1r");
  EXPECT_EQ(store.engine("nope"), nullptr);
}

TEST(AdaptiveStoreTest, Errors) {
  AdaptiveStore store;
  ASSERT_TRUE(store.AddColumn("a", Column({1, 2, 3})).ok());
  EXPECT_EQ(store.AddColumn("a", Column({1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.AddColumn("b", Column({1}), "bogus").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store.num_columns(), 1u);  // failed AddColumn rolled back
  QueryResult result;
  EXPECT_EQ(store.Select("missing", 0, 1, &result).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Insert("missing", 1).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete("missing", 1).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace scrack
