// Behavior tests for original cracking (CrackEngine) and the Scan/Sort
// baselines: reorganization side effects, cost accounting, result forms.
#include <gtest/gtest.h>

#include "cracking/crack_engine.h"
#include "cracking/scan_engine.h"
#include "cracking/sort_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 5;
  return config;
}

TEST(CrackEngineTest, FirstQueryTouchesWholeColumnViaCrackInThree) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(100, 200);
  // Init copy (1000) + one crack-in-three pass (1000).
  EXPECT_EQ(engine.stats().tuples_touched, 2000);
  EXPECT_EQ(engine.stats().cracks, 2);
}

TEST(CrackEngineTest, SecondQueryTouchesOnlyEndPieces) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(400, 600);  // pieces: [0,400) [400,600) [600,1000)
  const int64_t after_first = engine.stats().tuples_touched;
  // Q2 of Fig. 1: bounds fall into the two outer pieces; the middle piece
  // already qualifies and is not touched.
  engine.SelectOrDie(300, 700);
  const int64_t second = engine.stats().tuples_touched - after_first;
  EXPECT_EQ(second, 400 + 400);  // only the two end pieces are analyzed
  EXPECT_EQ(engine.stats().cracks, 4);
}

TEST(CrackEngineTest, ExactRematchTouchesNothing) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(250, 750);
  const int64_t after_first = engine.stats().tuples_touched;
  const QueryResult result = engine.SelectOrDie(250, 750);
  EXPECT_EQ(engine.stats().tuples_touched, after_first);
  EXPECT_EQ(result.count(), 500);
}

TEST(CrackEngineTest, ResultIsViewNotMaterialized) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  const QueryResult result = engine.SelectOrDie(100, 300);
  EXPECT_FALSE(result.materialized());
  EXPECT_EQ(result.num_segments(), 1u);  // contiguous qualifying area
  EXPECT_EQ(engine.stats().materialized, 0);
}

TEST(CrackEngineTest, ConvergesTowardSmallTouches) {
  const Column base = Column::UniquePermutation(100'000, 2);
  CrackEngine engine(&base, TestConfig());
  Rng rng(3);
  // Random workload: touches per query must fall by orders of magnitude.
  int64_t before = 0;
  int64_t first_query_touched = 0;
  int64_t late_total = 0;
  for (int i = 0; i < 200; ++i) {
    const Value a = rng.UniformValue(0, 100'000 - 10);
    before = engine.stats().tuples_touched;
    engine.SelectOrDie(a, a + 10);
    const int64_t touched = engine.stats().tuples_touched - before;
    if (i == 0) first_query_touched = touched;
    if (i >= 190) late_total += touched;
  }
  EXPECT_GT(first_query_touched, 100'000);
  EXPECT_LT(late_total / 10, first_query_touched / 20);
}

TEST(CrackEngineTest, SequentialWorkloadKeepsTouchingLargePieces) {
  // The pathology of §3: every query re-analyzes the large unindexed tail.
  const Column base = Column::UniquePermutation(50'000, 2);
  CrackEngine engine(&base, TestConfig());
  int64_t total = 0;
  const int64_t queries = 50;
  for (int64_t i = 0; i < queries; ++i) {
    const int64_t before = engine.stats().tuples_touched;
    engine.SelectOrDie(i * 10, i * 10 + 10);
    total += engine.stats().tuples_touched - before;
  }
  // Average touches stay within a small factor of N (no convergence).
  EXPECT_GT(total / queries, 50'000 / 2);
}

TEST(CrackEngineTest, CracksAccumulateAcrossQueries) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(100, 200);
  engine.SelectOrDie(300, 400);
  engine.SelectOrDie(500, 600);
  EXPECT_EQ(engine.stats().cracks, 6);
  EXPECT_EQ(engine.column().index().num_cracks(), 6u);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(CrackEngineTest, StatsCountQueries) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(1, 2);
  engine.SelectOrDie(3, 4);
  EXPECT_EQ(engine.stats().queries, 2);
}

// ------------------------------------------------------------------ Scan --

TEST(ScanEngineTest, AlwaysTouchesEverythingAndMaterializes) {
  const Column base = Column::UniquePermutation(5000, 1);
  ScanEngine engine(&base, TestConfig());
  for (int i = 0; i < 3; ++i) {
    const QueryResult result = engine.SelectOrDie(10, 20);
    EXPECT_TRUE(result.materialized());
    EXPECT_EQ(result.count(), 10);
  }
  EXPECT_EQ(engine.stats().tuples_touched, 3 * 5000);
  EXPECT_EQ(engine.stats().materialized, 30);
}

TEST(ScanEngineTest, ImmediateUpdates) {
  const Column base(std::vector<Value>{1, 2, 3});
  ScanEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageInsert(10).ok());
  ASSERT_TRUE(engine.StageDelete(2).ok());
  const QueryResult result = engine.SelectOrDie(0, 100);
  EXPECT_EQ(result.count(), 3);
  EXPECT_EQ(result.Sum(), 1 + 3 + 10);
  EXPECT_EQ(engine.StageDelete(999).code(), StatusCode::kNotFound);
}

// ------------------------------------------------------------------ Sort --

TEST(SortEngineTest, FirstQueryPaysTheSort) {
  const Column base = Column::UniquePermutation(10'000, 1);
  SortEngine engine(&base, TestConfig());
  engine.SelectOrDie(5, 6);
  const int64_t first = engine.stats().tuples_touched;
  EXPECT_GE(first, 10'000);
  engine.SelectOrDie(7, 8);
  EXPECT_EQ(engine.stats().tuples_touched, first);  // binary search only
}

TEST(SortEngineTest, ReturnsViews) {
  const Column base = Column::UniquePermutation(1000, 1);
  SortEngine engine(&base, TestConfig());
  const QueryResult result = engine.SelectOrDie(100, 200);
  EXPECT_FALSE(result.materialized());
  EXPECT_EQ(result.count(), 100);
}

TEST(SortEngineTest, UpdatesBeforeAndAfterInit) {
  const Column base(std::vector<Value>{5, 1, 9});
  SortEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageInsert(3).ok());   // pre-init
  ASSERT_TRUE(engine.StageDelete(9).ok());   // pre-init
  EXPECT_EQ(engine.SelectOrDie(0, 100).Sum(), 1 + 3 + 5);
  ASSERT_TRUE(engine.StageInsert(7).ok());   // post-init
  ASSERT_TRUE(engine.StageDelete(1).ok());   // post-init
  EXPECT_EQ(engine.SelectOrDie(0, 100).Sum(), 3 + 5 + 7);
  EXPECT_TRUE(engine.Validate().ok());
  EXPECT_EQ(engine.StageDelete(1).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace scrack
