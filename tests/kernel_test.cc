// Tests for the physical reorganization kernels (cracking/kernel.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cracking/kernel.h"
#include "test_util.h"
#include "util/rng.h"

namespace scrack {
namespace {

using ::scrack::testing::Sorted;

// Input shapes shared by the parameterized kernel sweeps.
struct KernelCase {
  const char* name;
  Index n;
  int distribution;  // 0 random, 1 sorted, 2 reverse, 3 duplicates
};

std::vector<Value> MakeData(const KernelCase& c, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> data(static_cast<size_t>(c.n));
  switch (c.distribution) {
    case 0:
      for (auto& v : data) v = rng.UniformValue(0, 1000);
      break;
    case 1:
      std::iota(data.begin(), data.end(), 0);
      break;
    case 2:
      std::iota(data.rbegin(), data.rend(), 0);
      break;
    case 3:
      for (auto& v : data) v = rng.UniformValue(0, 4);
      break;
  }
  return data;
}

class KernelSweep : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelSweep, CrackInTwoPartitionInvariant) {
  const KernelCase c = GetParam();
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> data = MakeData(c, 1000 + trial);
    const std::vector<Value> before = Sorted(data);
    const Value pivot = rng.UniformValue(-5, 1010);
    KernelCounters counters;
    const Index split =
        CrackInTwo(data.data(), 0, c.n, pivot, &counters);
    ASSERT_GE(split, 0);
    ASSERT_LE(split, c.n);
    for (Index i = 0; i < split; ++i) ASSERT_LT(data[i], pivot);
    for (Index i = split; i < c.n; ++i) ASSERT_GE(data[i], pivot);
    ASSERT_EQ(Sorted(data), before);  // multiset preserved
    ASSERT_EQ(counters.touched, c.n);
  }
}

TEST_P(KernelSweep, CrackInThreePartitionInvariant) {
  const KernelCase c = GetParam();
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> data = MakeData(c, 2000 + trial);
    const std::vector<Value> before = Sorted(data);
    Value lo = rng.UniformValue(0, 1000);
    Value hi = rng.UniformValue(0, 1000);
    if (lo > hi) std::swap(lo, hi);
    KernelCounters counters;
    const auto [p1, p2] =
        CrackInThree(data.data(), 0, c.n, lo, hi, &counters);
    ASSERT_LE(0, p1);
    ASSERT_LE(p1, p2);
    ASSERT_LE(p2, c.n);
    for (Index i = 0; i < p1; ++i) ASSERT_LT(data[i], lo);
    for (Index i = p1; i < p2; ++i) {
      ASSERT_GE(data[i], lo);
      ASSERT_LT(data[i], hi);
    }
    for (Index i = p2; i < c.n; ++i) ASSERT_GE(data[i], hi);
    ASSERT_EQ(Sorted(data), before);
  }
}

TEST_P(KernelSweep, SplitAndMaterializeCollectsExactlyQualifying) {
  const KernelCase c = GetParam();
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Value> data = MakeData(c, 3000 + trial);
    const std::vector<Value> original = data;
    Value qlo = rng.UniformValue(0, 1000);
    Value qhi = rng.UniformValue(0, 1000);
    if (qlo > qhi) std::swap(qlo, qhi);
    const Value pivot =
        data[static_cast<size_t>(rng.UniformIndex(0, c.n - 1))];
    std::vector<Value> out;
    KernelCounters counters;
    const Index split = SplitAndMaterialize(data.data(), 0, c.n, qlo, qhi,
                                            pivot, &out, &counters);
    // Partition postcondition.
    for (Index i = 0; i < split; ++i) ASSERT_LT(data[i], pivot);
    for (Index i = split; i < c.n; ++i) ASSERT_GE(data[i], pivot);
    ASSERT_EQ(Sorted(data), Sorted(original));
    // Materialization: exactly the qualifying multiset, each tuple once.
    std::vector<Value> expected;
    for (Value v : original) {
      if (qlo <= v && v < qhi) expected.push_back(v);
    }
    ASSERT_EQ(Sorted(out), Sorted(expected));
  }
}

TEST_P(KernelSweep, PartialPartitionConvergesToCrackInTwo) {
  const KernelCase c = GetParam();
  Rng rng(105);
  for (int64_t budget : {1, 3, 7, 1 << 20}) {
    std::vector<Value> data = MakeData(c, 4000);
    std::vector<Value> ref = data;
    const Value pivot =
        data[static_cast<size_t>(rng.UniformIndex(0, c.n - 1))];

    KernelCounters ref_counters;
    const Index ref_split =
        CrackInTwo(ref.data(), 0, c.n, pivot, &ref_counters);

    KernelCounters counters;
    Index left = 0;
    Index right = c.n - 1;
    bool complete = false;
    int steps = 0;
    while (!complete) {
      const auto r =
          PartialPartition(data.data(), left, right, pivot, budget,
                           &counters);
      // Intermediate invariant: settled regions are correctly classified.
      for (Index i = 0; i < r.left; ++i) ASSERT_LT(data[i], pivot);
      for (Index i = r.right + 1; i < c.n; ++i) ASSERT_GE(data[i], pivot);
      left = r.left;
      right = r.right;
      complete = r.complete;
      ASSERT_LT(++steps, 10'000'000);
    }
    ASSERT_EQ(left, ref_split) << "budget=" << budget;
    ASSERT_EQ(Sorted(data), Sorted(ref));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelSweep,
    ::testing::Values(KernelCase{"random", 512, 0},
                      KernelCase{"sorted", 512, 1},
                      KernelCase{"reverse", 512, 2},
                      KernelCase{"duplicates", 512, 3},
                      KernelCase{"tiny", 3, 0}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

TEST(KernelTest, CrackInTwoEmptyRange) {
  std::vector<Value> data = {1, 2, 3};
  KernelCounters counters;
  EXPECT_EQ(CrackInTwo(data.data(), 1, 1, 2, &counters), 1);
  EXPECT_EQ(counters.touched, 0);
}

TEST(KernelTest, CrackInTwoPivotBelowAll) {
  std::vector<Value> data = {5, 6, 7};
  KernelCounters counters;
  EXPECT_EQ(CrackInTwo(data.data(), 0, 3, 0, &counters), 0);
}

TEST(KernelTest, CrackInTwoPivotAboveAll) {
  std::vector<Value> data = {5, 6, 7};
  KernelCounters counters;
  EXPECT_EQ(CrackInTwo(data.data(), 0, 3, 100, &counters), 3);
}

TEST(KernelTest, CrackInTwoSubrangeOnly) {
  std::vector<Value> data = {100, 4, 9, 2, 7, 100};
  KernelCounters counters;
  const Index split = CrackInTwo(data.data(), 1, 5, 5, &counters);
  EXPECT_EQ(data[0], 100);
  EXPECT_EQ(data[5], 100);
  EXPECT_EQ(split, 3);  // {4, 2} below, {9, 7} above
  for (Index i = 1; i < split; ++i) EXPECT_LT(data[i], 5);
  for (Index i = split; i < 5; ++i) EXPECT_GE(data[i], 5);
}

TEST(KernelTest, CrackInThreeEqualBoundsActsLikeCrackInTwo) {
  std::vector<Value> data = {3, 1, 4, 1, 5, 9, 2, 6};
  KernelCounters counters;
  const auto [p1, p2] = CrackInThree(data.data(), 0, 8, 4, 4, &counters);
  EXPECT_EQ(p1, p2);  // empty middle: no value satisfies 4 <= v < 4
  for (Index i = 0; i < p1; ++i) EXPECT_LT(data[i], 4);
  for (Index i = p2; i < 8; ++i) EXPECT_GE(data[i], 4);
}

TEST(KernelTest, SplitAndMaterializeEmptyPiece) {
  std::vector<Value> data = {1, 2, 3};
  std::vector<Value> out;
  KernelCounters counters;
  EXPECT_EQ(SplitAndMaterialize(data.data(), 2, 2, 0, 10, 2, &out,
                                &counters),
            2);
  EXPECT_TRUE(out.empty());
}

TEST(KernelTest, FilterIntoCountsTouched) {
  std::vector<Value> data = {1, 5, 2, 8, 3};
  std::vector<Value> out;
  KernelCounters counters;
  FilterInto(data.data(), 0, 5, 2, 6, &out, &counters);
  EXPECT_EQ(counters.touched, 5);
  EXPECT_EQ(Sorted(out), (std::vector<Value>{2, 3, 5}));
}

TEST(KernelTest, PartialPartitionZeroBudgetMakesNoSwaps) {
  std::vector<Value> data = {9, 1, 8, 2};
  KernelCounters counters;
  const auto r = PartialPartition(data.data(), 0, 3, 5, 0, &counters);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(counters.swaps, 0);
  EXPECT_EQ(data, (std::vector<Value>{9, 1, 8, 2}));
}

TEST(KernelTest, PartialPartitionAlreadyPartitionedCompletesWithoutSwaps) {
  std::vector<Value> data = {1, 2, 8, 9};
  KernelCounters counters;
  const auto r = PartialPartition(data.data(), 0, 3, 5, 1, &counters);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.left, 2);
  EXPECT_EQ(counters.swaps, 0);
}

TEST(KernelTest, PartialPartitionRespectsSwapBudget) {
  // Alternating high/low forces one swap per pair.
  std::vector<Value> data;
  for (int i = 0; i < 100; ++i) data.push_back(i % 2 == 0 ? 100 : 1);
  KernelCounters counters;
  const auto r = PartialPartition(data.data(), 0, 99, 50, 5, &counters);
  EXPECT_FALSE(r.complete);
  EXPECT_EQ(counters.swaps, 5);
}

}  // namespace
}  // namespace scrack
