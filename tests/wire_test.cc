// Tests for the coordinator / storage-node wire protocol: Encode/Decode
// round-trips over every message type, output mode, status code, and the
// full EngineStats payload; deterministic re-encoding; and defensive
// decoding — every truncation point, trailing garbage, version and enum
// mismatches, and a seeded random-corruption fuzz that must reject or
// round-trip but never crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "distributed/wire.h"
#include "util/rng.h"

namespace scrack {
namespace {

// EngineStats has no operator==; the wire carries every field, so compare
// them all (this doubles as a reminder to extend the codec when a field is
// added — kStatsFields bumps and this list grows with it).
void ExpectStatsEqual(const EngineStats& a, const EngineStats& b) {
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.tuples_touched, b.tuples_touched);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.cracks, b.cracks);
  EXPECT_EQ(a.materialized, b.materialized);
  EXPECT_EQ(a.updates_merged, b.updates_merged);
  EXPECT_EQ(a.random_pivots, b.random_pivots);
  EXPECT_EQ(a.aggregates_pushed, b.aggregates_pushed);
  EXPECT_EQ(a.parallel_cracks, b.parallel_cracks);
  EXPECT_EQ(a.threads_used, b.threads_used);
  EXPECT_EQ(a.shared_reads, b.shared_reads);
  EXPECT_EQ(a.exclusive_cracks, b.exclusive_cracks);
  EXPECT_EQ(a.escalations, b.escalations);
  EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
  EXPECT_EQ(a.deferred_swaps, b.deferred_swaps);
  EXPECT_EQ(a.scan_fallback_tuples, b.scan_fallback_tuples);
  EXPECT_EQ(a.swap_budget, b.swap_budget);
  EXPECT_EQ(a.fan_outs, b.fan_outs);
  EXPECT_EQ(a.nodes_routed, b.nodes_routed);
  EXPECT_EQ(a.nodes_pruned, b.nodes_pruned);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.node_failures, b.node_failures);
  EXPECT_EQ(a.degraded_queries, b.degraded_queries);
  EXPECT_EQ(a.cluster_nodes, b.cluster_nodes);
  EXPECT_EQ(a.transport_timeouts, b.transport_timeouts);
  EXPECT_EQ(a.transport_reconnects, b.transport_reconnects);
  EXPECT_EQ(a.transport_retries, b.transport_retries);
}

EngineStats DistinctStats() {
  EngineStats s;
  int64_t v = 1000;
  s.queries = ++v;
  s.tuples_touched = ++v;
  s.swaps = ++v;
  s.cracks = ++v;
  s.materialized = ++v;
  s.updates_merged = ++v;
  s.random_pivots = ++v;
  s.aggregates_pushed = ++v;
  s.parallel_cracks = ++v;
  s.threads_used = ++v;
  s.shared_reads = ++v;
  s.exclusive_cracks = ++v;
  s.escalations = ++v;
  s.budget_exhausted = ++v;
  s.deferred_swaps = ++v;
  s.scan_fallback_tuples = ++v;
  s.swap_budget = ++v;
  s.fan_outs = ++v;
  s.nodes_routed = ++v;
  s.nodes_pruned = ++v;
  s.wire_bytes = ++v;
  s.node_failures = ++v;
  s.degraded_queries = ++v;
  s.cluster_nodes = ++v;
  s.transport_timeouts = ++v;
  s.transport_reconnects = ++v;
  s.transport_retries = ++v;
  return s;
}

void ExpectQueryEqual(const Query& a, const Query& b) {
  EXPECT_EQ(a.low, b.low);
  EXPECT_EQ(a.high, b.high);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.limit, b.limit);
}

// ------------------------------------------------------------- requests --

TEST(WireRequestTest, RoundTripsEveryMessageType) {
  // Only the payload relevant to each type crosses the wire; the decoder
  // resets the rest to defaults.
  for (const wire::MessageType type :
       {wire::MessageType::kQuery, wire::MessageType::kBatch,
        wire::MessageType::kStageInsert, wire::MessageType::kStageDelete,
        wire::MessageType::kStats, wire::MessageType::kValidate}) {
    wire::Request request;
    request.type = type;
    request.query = Query{-17, 123456789, OutputMode::kSum, 1};
    request.batch = {Query{1, 2, OutputMode::kCount, 1},
                     Query{-5, 99, OutputMode::kExists, 7}};
    request.update_value = -424242;
    std::vector<uint8_t> buffer;
    wire::Encode(request, &buffer);
    wire::Request decoded;
    const Status status = wire::Decode(buffer, &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded.type, request.type);
    switch (type) {
      case wire::MessageType::kQuery:
        ExpectQueryEqual(decoded.query, request.query);
        break;
      case wire::MessageType::kBatch:
        ASSERT_EQ(decoded.batch.size(), request.batch.size());
        for (size_t i = 0; i < request.batch.size(); ++i) {
          ExpectQueryEqual(decoded.batch[i], request.batch[i]);
        }
        break;
      case wire::MessageType::kStageInsert:
      case wire::MessageType::kStageDelete:
        EXPECT_EQ(decoded.update_value, request.update_value);
        break;
      case wire::MessageType::kStats:
      case wire::MessageType::kValidate:
        break;  // header-only messages
    }
  }
}

TEST(WireRequestTest, RoundTripsEveryOutputMode) {
  for (const OutputMode mode :
       {OutputMode::kMaterialize, OutputMode::kCount, OutputMode::kSum,
        OutputMode::kMinMax, OutputMode::kExists}) {
    wire::Request request;
    request.query = Query{0, 100, mode, 3};
    std::vector<uint8_t> buffer;
    wire::Encode(request, &buffer);
    wire::Request decoded;
    ASSERT_TRUE(wire::Decode(buffer, &decoded).ok())
        << OutputModeName(mode);
    EXPECT_EQ(decoded.query.mode, mode);
  }
}

TEST(WireRequestTest, EncodingIsDeterministic) {
  wire::Request request;
  request.type = wire::MessageType::kBatch;
  request.batch = {Query{1, 2, OutputMode::kMinMax, 1}};
  std::vector<uint8_t> once, twice;
  wire::Encode(request, &once);
  wire::Encode(request, &twice);
  EXPECT_EQ(once, twice);
}

// ------------------------------------------------------------ responses --

TEST(WireResponseTest, RoundTripsEveryStatusCode) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kNotFound,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    wire::Response response;
    response.status_code = code;
    response.status_message =
        code == StatusCode::kOk ? "" : "something failed: detail";
    response.stats = DistinctStats();
    std::vector<uint8_t> buffer;
    wire::Encode(response, &buffer);
    wire::Response decoded;
    const Status status = wire::Decode(buffer, &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded.status_code, response.status_code);
    EXPECT_EQ(decoded.status_message, response.status_message);
    ExpectStatsEqual(decoded.stats, response.stats);
  }
}

TEST(WireResponseTest, RoundTripsOutputsWithValues) {
  wire::Response response;
  wire::Output full;
  full.count = 3;
  full.sum = -60;
  full.min = -40;
  full.max = 0;
  full.exists = true;
  full.values = {-40, -20, 0};
  wire::Output empty;
  response.outputs = {full, empty};
  std::vector<uint8_t> buffer;
  wire::Encode(response, &buffer);
  wire::Response decoded;
  ASSERT_TRUE(wire::Decode(buffer, &decoded).ok());
  ASSERT_EQ(decoded.outputs.size(), 2u);
  EXPECT_EQ(decoded.outputs[0].count, 3);
  EXPECT_EQ(decoded.outputs[0].sum, -60);
  EXPECT_EQ(decoded.outputs[0].min, -40);
  EXPECT_EQ(decoded.outputs[0].max, 0);
  EXPECT_TRUE(decoded.outputs[0].exists);
  EXPECT_EQ(decoded.outputs[0].values, full.values);
  EXPECT_EQ(decoded.outputs[1].count, 0);
  EXPECT_FALSE(decoded.outputs[1].exists);
  EXPECT_TRUE(decoded.outputs[1].values.empty());
}

TEST(WireResponseTest, ToOutputFromOutputRoundTripOwnsTuples) {
  QueryOutput output;
  output.count = 2;
  output.sum = 30;
  std::vector<Value> rows = {10, 20};
  output.result.AddOwned(std::move(rows));
  const wire::Output on_wire = wire::ToOutput(output);
  EXPECT_EQ(on_wire.values, (std::vector<Value>{10, 20}));
  QueryOutput rebuilt;
  wire::FromOutput(on_wire, &rebuilt);
  EXPECT_EQ(rebuilt.count, output.count);
  EXPECT_EQ(rebuilt.sum, output.sum);
  EXPECT_TRUE(rebuilt.result.materialized());
  EXPECT_EQ(rebuilt.result.Collect(), (std::vector<Value>{10, 20}));
}

// ------------------------------------------------------------- rejection --

TEST(WireRejectionTest, EveryTruncationPointFails) {
  wire::Request request;
  request.type = wire::MessageType::kBatch;
  request.batch = {Query{1, 2, OutputMode::kCount, 1},
                   Query{3, 4, OutputMode::kSum, 1}};
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  for (size_t len = 0; len < buffer.size(); ++len) {
    const std::vector<uint8_t> prefix(buffer.begin(),
                                      buffer.begin() + static_cast<long>(len));
    wire::Request decoded;
    EXPECT_FALSE(wire::Decode(prefix, &decoded).ok()) << "prefix " << len;
  }

  wire::Response response;
  response.status_code = StatusCode::kOk;
  wire::Output out;
  out.values = {1, 2, 3};
  response.outputs = {out};
  response.stats = DistinctStats();
  std::vector<uint8_t> rbuffer;
  wire::Encode(response, &rbuffer);
  for (size_t len = 0; len < rbuffer.size(); ++len) {
    const std::vector<uint8_t> prefix(
        rbuffer.begin(), rbuffer.begin() + static_cast<long>(len));
    wire::Response decoded;
    EXPECT_FALSE(wire::Decode(prefix, &decoded).ok()) << "prefix " << len;
  }
}

TEST(WireRejectionTest, TrailingGarbageFails) {
  wire::Request request;
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  buffer.push_back(0);
  wire::Request decoded;
  const Status status = wire::Decode(buffer, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("trailing"), std::string::npos);
}

TEST(WireRejectionTest, WrongVersionFails) {
  wire::Request request;
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  buffer[0] = static_cast<uint8_t>(wire::kProtocolVersion + 1);
  wire::Request decoded;
  const Status status = wire::Decode(buffer, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(WireRequestTest, DeadlineHintRoundTrips) {
  wire::Request request;
  request.type = wire::MessageType::kStageInsert;
  request.update_value = 77;
  request.deadline_us = 1500000;  // 1.5 s per-hop budget
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  wire::Request decoded;
  ASSERT_TRUE(wire::Decode(buffer, &decoded).ok());
  EXPECT_EQ(decoded.deadline_us, 1500000);

  // Zero (the default) means "no deadline" and must survive too.
  request.deadline_us = 0;
  buffer.clear();
  wire::Encode(request, &buffer);
  ASSERT_TRUE(wire::Decode(buffer, &decoded).ok());
  EXPECT_EQ(decoded.deadline_us, 0);
}

TEST(WireRejectionTest, NegativeDeadlineFails) {
  wire::Request request;
  request.deadline_us = 12345;
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  // The deadline i64 sits right after version(4) + type(1); force the sign
  // bit of its big end.
  buffer[4 + 1 + 7] = 0x80;
  wire::Request decoded;
  const Status status = wire::Decode(buffer, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("deadline"), std::string::npos);
}

TEST(WireRejectionTest, V1FrameWithoutDeadlineFails) {
  // Decode-compat: a v1 peer never sends the deadline field. The version
  // gate must reject the frame outright (with the version message, not a
  // confusing payload error) rather than misparse the type byte as part
  // of a deadline.
  static_assert(wire::kProtocolVersion == 2,
                "bump this test alongside the protocol version");
  wire::Request request;
  request.type = wire::MessageType::kStats;
  std::vector<uint8_t> v2;
  wire::Encode(request, &v2);
  // Rebuild the equivalent v1 frame by hand: version(4)=1, type(1), and
  // no deadline field between them and the (empty) payload.
  std::vector<uint8_t> v1;
  v1.push_back(1);
  v1.push_back(0);
  v1.push_back(0);
  v1.push_back(0);
  v1.push_back(v2[4]);  // type byte
  wire::Request decoded;
  const Status status = wire::Decode(v1, &decoded);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST(WireRejectionTest, UnknownEnumsFail) {
  wire::Request request;
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  std::vector<uint8_t> bad_type = buffer;
  bad_type[4] = 250;  // message type byte follows the u32 version
  wire::Request decoded;
  EXPECT_FALSE(wire::Decode(bad_type, &decoded).ok());

  wire::Response response;
  std::vector<uint8_t> rbuffer;
  wire::Encode(response, &rbuffer);
  std::vector<uint8_t> bad_status = rbuffer;
  bad_status[4] = 250;  // status code byte follows the u32 version
  wire::Response rdecoded;
  EXPECT_FALSE(wire::Decode(bad_status, &rdecoded).ok());
}

TEST(WireRejectionTest, SeededCorruptionFuzzNeverCrashes) {
  wire::Response response;
  response.status_code = StatusCode::kInternal;
  response.status_message = "node 3 fell over";
  wire::Output out;
  out.values = {5, 6, 7, 8};
  response.outputs = {out, out};
  response.stats = DistinctStats();
  std::vector<uint8_t> clean;
  wire::Encode(response, &clean);

  Rng rng(20260809);
  int rejected = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> corrupt = clean;
    const int flips = 1 + static_cast<int>(rng.Next64() % 8);
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(rng.Next64() % corrupt.size());
      corrupt[pos] = static_cast<uint8_t>(rng.Next64());
    }
    // Occasionally also truncate or extend.
    if (rng.Next64() % 4 == 0) {
      corrupt.resize(static_cast<size_t>(rng.Next64() % (corrupt.size() + 8)));
    }
    wire::Response decoded;
    if (!wire::Decode(corrupt, &decoded).ok()) ++rejected;
  }
  // Most corruptions must be caught; the rest decoded without crashing
  // (flipping a counter byte yields a different but well-formed message).
  EXPECT_GT(rejected, 0);

  // Request-side fuzz from raw random bytes.
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> noise(rng.Next64() % 64);
    for (uint8_t& b : noise) b = static_cast<uint8_t>(rng.Next64());
    wire::Request decoded;
    (void)wire::Decode(noise, &decoded);
  }
}

TEST(WireRejectionTest, HugeCountIsRejectedBeforeAllocation) {
  // A corrupt count field must fail the remaining-bytes bound, not attempt
  // a multi-gigabyte reserve.
  wire::Request request;
  request.type = wire::MessageType::kBatch;
  request.batch = {Query{1, 2, OutputMode::kCount, 1}};
  std::vector<uint8_t> buffer;
  wire::Encode(request, &buffer);
  // A kBatch message is version(4) + type(1) + deadline(8) + u32 count +
  // queries.
  const size_t count_pos = 4 + 1 + 8;
  ASSERT_LT(count_pos + 3, buffer.size());
  buffer[count_pos] = 0xFF;
  buffer[count_pos + 1] = 0xFF;
  buffer[count_pos + 2] = 0xFF;
  buffer[count_pos + 3] = 0xFF;
  wire::Request decoded;
  EXPECT_FALSE(wire::Decode(buffer, &decoded).ok());
}

}  // namespace
}  // namespace scrack
