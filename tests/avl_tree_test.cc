// Tests for the from-scratch AVL tree (index/avl_tree.h).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "index/avl_tree.h"
#include "util/rng.h"

namespace scrack {
namespace {

TEST(AvlTreeTest, EmptyTree) {
  AvlTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_EQ(tree.Min(), nullptr);
  EXPECT_EQ(tree.Max(), nullptr);
  EXPECT_EQ(tree.Floor(5), nullptr);
  EXPECT_EQ(tree.Higher(5), nullptr);
  EXPECT_FALSE(tree.Contains(5));
  EXPECT_TRUE(tree.ValidateStructure());
}

TEST(AvlTreeTest, InsertAndFind) {
  AvlTree tree;
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_TRUE(tree.Insert(5, 50));
  EXPECT_TRUE(tree.Insert(20, 200));
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_TRUE(tree.Contains(10));
  ASSERT_NE(tree.Find(5), nullptr);
  EXPECT_EQ(*tree.Find(5), 50);
  EXPECT_EQ(tree.Find(7), nullptr);
}

TEST(AvlTreeTest, DuplicateInsertRejected) {
  AvlTree tree;
  EXPECT_TRUE(tree.Insert(10, 100));
  EXPECT_FALSE(tree.Insert(10, 999));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find(10), 100);  // original position kept
}

TEST(AvlTreeTest, NeighborQueries) {
  AvlTree tree;
  for (Value k : {10, 20, 30, 40}) tree.Insert(k, k * 10);

  // Floor: greatest key <= v.
  EXPECT_EQ(tree.Floor(25)->key, 20);
  EXPECT_EQ(tree.Floor(20)->key, 20);
  EXPECT_EQ(tree.Floor(9), nullptr);
  EXPECT_EQ(tree.Floor(100)->key, 40);

  // Lower: greatest key < v.
  EXPECT_EQ(tree.Lower(20)->key, 10);
  EXPECT_EQ(tree.Lower(10), nullptr);

  // Ceiling: smallest key >= v.
  EXPECT_EQ(tree.Ceiling(25)->key, 30);
  EXPECT_EQ(tree.Ceiling(30)->key, 30);
  EXPECT_EQ(tree.Ceiling(41), nullptr);

  // Higher: smallest key > v.
  EXPECT_EQ(tree.Higher(30)->key, 40);
  EXPECT_EQ(tree.Higher(40), nullptr);
  EXPECT_EQ(tree.Higher(0)->key, 10);

  EXPECT_EQ(tree.Min()->key, 10);
  EXPECT_EQ(tree.Max()->key, 40);
}

TEST(AvlTreeTest, InOrderIsAscending) {
  AvlTree tree;
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    tree.Insert(static_cast<Value>(rng.Uniform(10'000)), i);
  }
  Value prev = -1;
  size_t visited = 0;
  tree.InOrder([&](const AvlTree::Entry& e) {
    EXPECT_GT(e.key, prev);
    prev = e.key;
    ++visited;
  });
  EXPECT_EQ(visited, tree.size());
}

TEST(AvlTreeTest, StaysBalancedUnderSortedInsertion) {
  AvlTree tree;
  for (Value k = 0; k < 1024; ++k) {
    tree.Insert(k, k);
    ASSERT_TRUE(tree.ValidateStructure()) << "after inserting " << k;
  }
  // AVL height bound: ~1.44 log2(n). For n=1024, height <= 15.
  EXPECT_LE(tree.Height(), 15);
}

TEST(AvlTreeTest, StaysBalancedUnderReverseInsertion) {
  AvlTree tree;
  for (Value k = 1024; k > 0; --k) tree.Insert(k, k);
  EXPECT_TRUE(tree.ValidateStructure());
  EXPECT_LE(tree.Height(), 15);
}

TEST(AvlTreeTest, EraseLeafInnerAndRoot) {
  AvlTree tree;
  for (Value k : {50, 30, 70, 20, 40, 60, 80}) tree.Insert(k, k);
  EXPECT_TRUE(tree.Erase(20));  // leaf
  EXPECT_TRUE(tree.Erase(30));  // one child
  EXPECT_TRUE(tree.Erase(50));  // root with two children
  EXPECT_FALSE(tree.Erase(50));
  EXPECT_FALSE(tree.Erase(999));
  EXPECT_EQ(tree.size(), 4u);
  EXPECT_TRUE(tree.ValidateStructure());
  for (Value k : {40, 60, 70, 80}) EXPECT_TRUE(tree.Contains(k));
}

TEST(AvlTreeTest, ClearEmptiesLargeTree) {
  AvlTree tree;
  for (Value k = 0; k < 100'000; ++k) tree.Insert(k, k);
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.ValidateStructure());
  EXPECT_TRUE(tree.Insert(1, 1));
}

TEST(AvlTreeTest, ShiftPositionsAbove) {
  AvlTree tree;
  for (Value k : {10, 20, 30, 40}) tree.Insert(k, k * 10);
  tree.ShiftPositionsAbove(20, +5);
  EXPECT_EQ(*tree.Find(10), 100);
  EXPECT_EQ(*tree.Find(20), 200);  // key == v is not shifted
  EXPECT_EQ(*tree.Find(30), 305);
  EXPECT_EQ(*tree.Find(40), 405);
  tree.ShiftPositionsAbove(0, -100);
  EXPECT_EQ(*tree.Find(10), 0);
  EXPECT_EQ(*tree.Find(20), 100);
}

TEST(AvlTreeTest, ForEachMutablePositionRewrites) {
  AvlTree tree;
  for (Value k : {1, 2, 3}) tree.Insert(k, k);
  tree.ForEachMutablePosition([](Value key, Index& pos) { pos = key * 100; });
  EXPECT_EQ(*tree.Find(2), 200);
  // Traversal order must be ascending.
  std::vector<Value> order;
  tree.ForEachMutablePosition(
      [&](Value key, Index&) { order.push_back(key); });
  EXPECT_EQ(order, (std::vector<Value>{1, 2, 3}));
}

// Property test: a random operation stream must agree with std::map, and
// the structure must stay balanced throughout.
class AvlRandomOps : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AvlRandomOps, AgreesWithStdMap) {
  AvlTree tree;
  std::map<Value, Index> ref;
  Rng rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    const Value key = static_cast<Value>(rng.Uniform(500));
    const int op = static_cast<int>(rng.Uniform(4));
    if (op < 2) {
      const Index pos = static_cast<Index>(rng.Uniform(1'000'000));
      const bool inserted = tree.Insert(key, pos);
      const bool ref_inserted = ref.emplace(key, pos).second;
      ASSERT_EQ(inserted, ref_inserted);
    } else if (op == 2) {
      ASSERT_EQ(tree.Erase(key), ref.erase(key) > 0);
    } else {
      // Compare all four neighbor queries.
      const AvlTree::Entry* floor = tree.Floor(key);
      auto it = ref.upper_bound(key);
      if (it == ref.begin()) {
        ASSERT_EQ(floor, nullptr);
      } else {
        ASSERT_NE(floor, nullptr);
        ASSERT_EQ(floor->key, std::prev(it)->first);
        ASSERT_EQ(floor->pos, std::prev(it)->second);
      }
      const AvlTree::Entry* higher = tree.Higher(key);
      if (it == ref.end()) {
        ASSERT_EQ(higher, nullptr);
      } else {
        ASSERT_NE(higher, nullptr);
        ASSERT_EQ(higher->key, it->first);
      }
    }
    ASSERT_EQ(tree.size(), ref.size());
    if (step % 100 == 0) {
      ASSERT_TRUE(tree.ValidateStructure());
    }
  }
  ASSERT_TRUE(tree.ValidateStructure());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvlRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace scrack
