// Update (Ripple merge) tests: staged inserts/deletes must merge lazily and
// correctly into cracked columns (paper Fig. 15 semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cracking/crack_engine.h"
#include "cracking/stochastic_engine.h"
#include "test_util.h"

namespace scrack {
namespace {

using ::scrack::testing::ReferenceSelect;

EngineConfig TestConfig() {
  EngineConfig config;
  config.seed = 31;
  config.crack_threshold_values = 64;
  return config;
}

TEST(UpdatesTest, InsertIsVisibleAfterMerge) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(100, 200);  // build some pieces
  ASSERT_TRUE(engine.StageInsert(150).ok());
  const QueryResult result = engine.SelectOrDie(100, 200);
  EXPECT_EQ(result.count(), 101);  // 100 originals + the insert
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(UpdatesTest, InsertOutsideQueryRangeStaysPending) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageInsert(900).ok());
  engine.SelectOrDie(100, 200);  // does not cover 900
  EXPECT_EQ(engine.column().pending().num_pending_inserts(), 1);
  EXPECT_EQ(engine.SelectOrDie(850, 950).count(), 101);
  EXPECT_EQ(engine.column().pending().num_pending_inserts(), 0);
  EXPECT_EQ(engine.stats().updates_merged, 1);
}

TEST(UpdatesTest, DeleteRemovesOneOccurrence) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(0, 1000);
  ASSERT_TRUE(engine.StageDelete(500).ok());
  EXPECT_EQ(engine.SelectOrDie(490, 510).count(), 19);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(UpdatesTest, DeleteOfAbsentValueFailsTheMergingQuery) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackEngine engine(&base, TestConfig());
  ASSERT_TRUE(engine.StageDelete(5000).ok());  // staging always succeeds
  QueryResult result;
  EXPECT_EQ(engine.Select(4000, 6000, &result).code(), StatusCode::kNotFound);
}

TEST(UpdatesTest, InsertBeyondCurrentDomainExtendsIt) {
  const Column base = Column::UniquePermutation(100, 1);
  CrackEngine engine(&base, TestConfig());
  engine.SelectOrDie(10, 20);
  ASSERT_TRUE(engine.StageInsert(10'000).ok());
  ASSERT_TRUE(engine.StageInsert(-50).ok());
  EXPECT_EQ(engine.SelectOrDie(-100, 20'000).count(), 102);
  EXPECT_TRUE(engine.Validate().ok());
}

TEST(UpdatesTest, RippleInsertPreservesAllPieces) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  // Build several pieces first.
  for (Value lo : {100, 300, 500, 700, 900}) {
    engine.SelectOrDie(lo, lo + 50);
  }
  // Insert into a middle piece; every piece boundary above must shift.
  EngineStats scratch;
  engine.column().RippleInsert(401, &scratch);
  EXPECT_TRUE(engine.Validate().ok());
  EXPECT_EQ(engine.SelectOrDie(400, 450).count(), 51);
  EXPECT_EQ(engine.SelectOrDie(0, 2000).count(), 1001);
}

TEST(UpdatesTest, RippleDeleteDirect) {
  const Column base = Column::UniquePermutation(1000, 1);
  CrackEngine engine(&base, TestConfig());
  for (Value lo : {200, 600}) engine.SelectOrDie(lo, lo + 100);
  EngineStats scratch;
  ASSERT_TRUE(engine.column().RippleDelete(650, &scratch).ok());
  EXPECT_TRUE(engine.Validate().ok());
  EXPECT_EQ(engine.SelectOrDie(600, 700).count(), 99);
  EXPECT_EQ(engine.column().RippleDelete(5000, &scratch).code(),
            StatusCode::kNotFound);
}

// Differential stress: interleave random queries with random inserts and
// deletes; answers must always match a reference multiset.
class UpdateStress : public ::testing::TestWithParam<std::string> {};

TEST_P(UpdateStress, InterleavedUpdatesMatchReference) {
  const Index n = 2000;
  const Column base = Column::UniquePermutation(n, 3);
  std::vector<Value> reference = base.values();
  Rng rng(137);

  std::unique_ptr<SelectEngine> engine;
  Column base_copy = base;  // lifetime owner for the engine
  if (GetParam() == "crack") {
    engine = std::make_unique<CrackEngine>(&base_copy, TestConfig());
  } else if (GetParam() == "mdd1r") {
    engine = std::make_unique<Mdd1rEngine>(&base_copy, TestConfig());
  } else {
    EngineConfig config = TestConfig();
    config.progressive_min_values = 256;  // engage the progressive path
    config.progressive_budget = 0.05;
    engine = std::make_unique<ProgressiveEngine>(&base_copy, config);
  }

  Value next_insert = n;  // fresh values keep the multiset unique-ish
  for (int step = 0; step < 300; ++step) {
    const int action = static_cast<int>(rng.Uniform(10));
    if (action < 2) {
      const Value v = next_insert++;
      ASSERT_TRUE(engine->StageInsert(v).ok());
      reference.push_back(v);
    } else if (action < 4 && !reference.empty()) {
      const size_t pick = static_cast<size_t>(
          rng.Uniform(static_cast<uint64_t>(reference.size())));
      const Value v = reference[pick];
      ASSERT_TRUE(engine->StageDelete(v).ok());
      reference.erase(reference.begin() + static_cast<int64_t>(pick));
    } else {
      const Value a = rng.UniformValue(0, n + 400);
      const Value b = a + 1 + rng.UniformValue(0, 200);
      QueryResult result;
      ASSERT_TRUE(engine->Select(a, b, &result).ok());
      const auto ref = ReferenceSelect(reference, a, b);
      ASSERT_EQ(result.count(), ref.count) << "step " << step;
      ASSERT_EQ(result.Sum(), ref.sum) << "step " << step;
      ASSERT_TRUE(engine->Validate().ok());
    }
  }
  // Drain every pending update with a full-domain query.
  QueryResult full;
  ASSERT_TRUE(
      engine->Select(-1'000'000, 1'000'000, &full).ok());
  ASSERT_EQ(full.count(), static_cast<Index>(reference.size()));
}

INSTANTIATE_TEST_SUITE_P(Engines, UpdateStress,
                         ::testing::Values(std::string("crack"),
                                           std::string("mdd1r"),
                                           std::string("pmdd1r")));

}  // namespace
}  // namespace scrack
