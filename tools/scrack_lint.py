#!/usr/bin/env python3
"""scrack_lint — project-specific static checks for the scrack tree.

Enforces conventions that generic linters cannot know about. Rules:

  avx2-confinement    AVX2 intrinsics (immintrin.h, _mm256*/__m256*) and the
                      -mavx2 flag stay confined to src/cracking/kernel_avx2.cc
                      (the one TU built with -mavx2); anywhere else they crash
                      portable builds or silently poison the whole binary
                      with AVX2 codegen.
  kernel-tier-parity  every kernel declared in src/cracking/kernel.h with a
                      *Scalar reference tier also declares a *Predicated tier
                      and an avx2:: tier, and is exercised by at least one
                      test under tests/ (the differential sweeps).
  determinism         no nondeterminism sources outside src/util/rng.h:
                      std::rand/srand/random_device/mt19937 (seeded runs must
                      be bit-reproducible) and no wall-clock reads
                      (system_clock, time(), gettimeofday) that would leak
                      timing flake into repro metrics; steady_clock via
                      util/timer.h is the sanctioned clock.
  check-macros        raw assert() is banned: SCRACK_CHECK (always on) or
                      SCRACK_DCHECK (debug) give file:line diagnostics and
                      are not compiled away by NDEBUG surprises.
  naked-new           no naked new/delete expressions; ownership goes through
                      containers and smart pointers. (static leaky singletons
                      carry an explicit suppression.)
  mutex-confinement   raw std::mutex/std::shared_mutex (and <mutex>/
                      <shared_mutex> includes) stay confined to the
                      concurrency layer (thread_pool, sharded_engine,
                      threadsafe_engine, epoch_engine); kernels, the column
                      and the tools stay lock-free or go through those
                      wrappers.
  include-hygiene     headers use #pragma once; no uphill relative includes
                      ("../") — project includes are rooted at src/.
  socket-confinement  raw POSIX networking (::socket/::connect/::bind/
                      ::listen/::accept/::send/::recv/::poll/::shutdown,
                      setsockopt/getaddrinfo/inet_pton, and the <sys/socket.h>
                      family of headers) stays confined to
                      src/distributed/socket.cc; everything else talks
                      net::Socket so deadline handling, EINTR retries, and
                      partial-transfer loops live in exactly one place.

Suppressions (each intentional exception must carry one, which keeps them
greppable):
    // lint:allow(rule-id)        on the offending line or the line above
    // lint:allow-file(rule-id)   anywhere in the file, silences whole file
A rule id of '*' silences every rule for that line/file.

Usage:
    scrack_lint.py [--root DIR] [paths...]
Exits 0 when clean, 1 with file:line diagnostics otherwise. Default paths:
src tests bench tools CMakeLists.txt.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".inl"}
AVX2_HOME = os.path.join("src", "cracking", "kernel_avx2.cc")
RNG_HOME = os.path.join("src", "util", "rng.h")
SOCKET_HOME = os.path.join("src", "distributed", "socket.cc")
KERNEL_HEADER = os.path.join("src", "cracking", "kernel.h")

ALLOW_RE = re.compile(r"lint:allow\(([\w*,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"lint:allow-file\(([\w*,\s-]+)\)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line  # 1-based
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line
    structure, so token rules never fire on prose or messages."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: skip to the matching delimiter wholesale.
                m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:i + 20])
                if i > 0 and text[i - 1] == "R" and m:
                    terminator = ")" + m.group(1) + '"'
                    end = text.find(terminator, i)
                    end = n if end < 0 else end + len(terminator)
                    out.append("".join(ch if ch == "\n" else " "
                                       for ch in text[i:end]))
                    i = end
                    continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                # Digit separator (1'000'000), not a char literal.
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() and nxt.isalnum():
                    out.append(" ")
                    i += 1
                    continue
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


def parse_suppressions(raw_lines):
    """Returns (per-line {lineno: set(rules)}, file-wide set(rules))."""
    per_line = {}
    file_wide = set()
    for lineno, line in enumerate(raw_lines, start=1):
        for match in ALLOW_FILE_RE.finditer(line):
            file_wide.update(r.strip() for r in match.group(1).split(","))
        # lint:allow-file also matches lint:allow's regex tail — keep the
        # narrower form only where the file-wide one did not match.
        if "lint:allow-file(" not in line:
            for match in ALLOW_RE.finditer(line):
                rules = {r.strip() for r in match.group(1).split(",")}
                per_line.setdefault(lineno, set()).update(rules)
    return per_line, file_wide


def suppressed(rule, lineno, per_line, file_wide):
    for rules in (file_wide, per_line.get(lineno, set()),
                  per_line.get(lineno - 1, set())):
        if rule in rules or "*" in rules:
            return True
    return False


# --------------------------------------------------------------- rules ----
# Each rule takes (relpath, raw_lines, code_lines) and yields
# (lineno, rule-id, message). code_lines are comment/string-stripped.

AVX2_TOKENS = re.compile(r"immintrin\.h|_mm256\w*|__m256\w*|-mavx2")


def rule_avx2_confinement(relpath, raw_lines, code_lines):
    if relpath.replace(os.sep, "/") == AVX2_HOME.replace(os.sep, "/"):
        return
    is_cmake = os.path.basename(relpath).lower() in ("cmakelists.txt",) or \
        relpath.endswith(".cmake")
    # In CMake files -mavx2 may appear in the capability probe and in the
    # per-file property that scopes it to the AVX2 TU.
    for lineno, line in enumerate(code_lines, 1):
        for match in AVX2_TOKENS.finditer(line):
            token = match.group(0)
            if is_cmake and token == "-mavx2":
                context = " ".join(raw_lines[max(0, lineno - 3):lineno])
                if "kernel_avx2.cc" in context or \
                        "check_cxx_compiler_flag" in context.lower():
                    continue
            yield (lineno, "avx2-confinement",
                   f"'{token}' outside {AVX2_HOME}; AVX2 code must stay in "
                   "the one -mavx2 translation unit")


DETERMINISM_TOKENS = [
    (re.compile(r"\bstd::rand\b|\bsrand\s*\("), "libc rand"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bsystem_clock\b"), "wall clock (use steady_clock)"),
    (re.compile(r"\btime\s*\(\s*(NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday"),
]


def rule_determinism(relpath, raw_lines, code_lines):
    if relpath.replace(os.sep, "/") == RNG_HOME.replace(os.sep, "/"):
        return
    for lineno, line in enumerate(code_lines, 1):
        for pattern, what in DETERMINISM_TOKENS:
            if pattern.search(line):
                yield (lineno, "determinism",
                       f"{what}: all randomness goes through util/rng.h "
                       "(seeded xoshiro) and all timing through util/timer.h "
                       "so runs are reproducible")


ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def rule_check_macros(relpath, raw_lines, code_lines):
    for lineno, line in enumerate(code_lines, 1):
        if "static_assert" in line:
            line = line.replace("static_assert", "")
        if ASSERT_RE.search(line):
            yield (lineno, "check-macros",
                   "raw assert(): use SCRACK_CHECK (always-on) or "
                   "SCRACK_DCHECK (debug) from util/common.h")


NEW_RE = re.compile(r"\bnew\b\s*(\(\s*std::nothrow\s*\))?\s*[A-Za-z_:<([]")
DELETE_RE = re.compile(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_:*(]")
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def rule_naked_new(relpath, raw_lines, code_lines):
    for lineno, line in enumerate(code_lines, 1):
        scrubbed = DELETED_FN_RE.sub("", line)
        if NEW_RE.search(scrubbed):
            yield (lineno, "naked-new",
                   "naked new: own it in a container / make_unique (leaky "
                   "singletons carry an explicit suppression)")
        elif DELETE_RE.search(scrubbed):
            yield (lineno, "naked-new",
                   "naked delete: the matching allocation should be owned "
                   "by a smart pointer or container")


MUTEX_RE = re.compile(
    r"\bstd::(?:shared_|recursive_|timed_|shared_timed_)?mutex\b")
MUTEX_INCLUDE_RE = re.compile(r'#\s*include\s+<(?:mutex|shared_mutex)>')
# The only files allowed to hold raw locks: the concurrency layer proper.
# Everything else (kernels, the column, engines, tools, tests) must stay
# lock-free or go through one of these wrappers — ad-hoc locking is how
# deadlocks and silent serialization creep into the hot path.
MUTEX_HOMES = {
    "thread_pool", "sharded_engine", "threadsafe_engine", "epoch_engine",
    # The distributed transport internals: the coordinator's stats cache and
    # each storage node's serve loop serialize behind one lock apiece, and
    # the TCP transport holds one per-node connection lock (the transport
    # contract makes Call() the serialization point).
    "coordinator_engine", "storage_node", "tcp_transport",
}


def rule_mutex_confinement(relpath, raw_lines, code_lines):
    stem = os.path.splitext(os.path.basename(relpath))[0]
    if stem in MUTEX_HOMES:
        return
    for lineno, line in enumerate(code_lines, 1):
        match = MUTEX_RE.search(line) or MUTEX_INCLUDE_RE.search(line)
        if match:
            yield (lineno, "mutex-confinement",
                   f"'{match.group(0)}' outside the concurrency layer "
                   f"({', '.join(sorted(MUTEX_HOMES))}): use those wrappers "
                   "or atomics instead of ad-hoc locks")


HEADER_EXTENSIONS = {".h", ".hpp", ".inl"}


def rule_include_hygiene(relpath, raw_lines, code_lines):
    ext = os.path.splitext(relpath)[1]
    if ext in HEADER_EXTENSIONS:
        if not any("#pragma once" in line for line in raw_lines):
            yield (1, "include-hygiene", "header without #pragma once")
    # The include path itself is a string literal, which the stripper blanks;
    # gate on the directive surviving in code (not commented out), then read
    # the path from the raw line.
    for lineno, (code, raw) in enumerate(zip(code_lines, raw_lines), 1):
        if (re.search(r'#\s*include\s+"', code)
                and re.search(r'#\s*include\s+"\.\./', raw)):
            yield (lineno, "include-hygiene",
                   'uphill relative include ("../"): project includes are '
                   "rooted at src/ (target_include_directories)")


# Raw POSIX networking calls (the :: forms socket.cc itself uses) and the
# lookup/option helpers that only make sense next to them. Wrapper methods
# (net::Connect, Socket::Shutdown) are capitalized, so the lowercase match
# never fires on call sites that go through the sanctioned layer.
SOCKET_CALL_RE = re.compile(
    r"::\s*(?:socket|connect|bind|listen|accept4?|send(?:to|msg)?|"
    r"recv(?:from|msg)?|poll|shutdown)\s*\(|"
    r"\b(?:setsockopt|getsockopt|getaddrinfo|freeaddrinfo|inet_pton|"
    r"inet_ntop)\s*\(")
SOCKET_INCLUDE_RE = re.compile(
    r"#\s*include\s+<(?:sys/socket\.h|netinet/[\w.]+|arpa/inet\.h|"
    r"poll\.h|netdb\.h)>")


def rule_socket_confinement(relpath, raw_lines, code_lines):
    if relpath.replace(os.sep, "/") == SOCKET_HOME.replace(os.sep, "/"):
        return
    for lineno, line in enumerate(code_lines, 1):
        match = SOCKET_CALL_RE.search(line) or SOCKET_INCLUDE_RE.search(line)
        if match:
            yield (lineno, "socket-confinement",
                   f"'{match.group(0).strip()}' outside {SOCKET_HOME}: raw "
                   "networking goes through net::Socket so deadlines, EINTR "
                   "retries, and partial transfers are handled in one place")


LINE_RULES = [
    rule_avx2_confinement,
    rule_determinism,
    rule_check_macros,
    rule_naked_new,
    rule_mutex_confinement,
    rule_include_hygiene,
    rule_socket_confinement,
]


def check_kernel_tier_parity(root, test_corpus):
    """Cross-file rule: every *Scalar kernel has Predicated and avx2 tiers
    declared in kernel.h and shows up in the test suite."""
    findings = []
    path = os.path.join(root, KERNEL_HEADER)
    if not os.path.isfile(path):
        return findings
    raw = open(path, encoding="utf-8", errors="replace").read()
    raw_lines = raw.splitlines()
    per_line, file_wide = parse_suppressions(raw_lines)
    code = strip_comments_and_strings(raw)

    avx2_block = ""
    avx2_match = re.search(r"namespace avx2\s*\{(.*?)\}", code, re.DOTALL)
    if avx2_match:
        avx2_block = avx2_match.group(1)

    for match in re.finditer(r"\b(\w+)Scalar\s*\(", code):
        base = match.group(1)
        lineno = code.count("\n", 0, match.start()) + 1
        if suppressed("kernel-tier-parity", lineno, per_line, file_wide):
            continue
        missing = []
        if not re.search(rf"\b{base}Predicated\s*\(", code):
            missing.append(f"{base}Predicated")
        if not re.search(rf"\b{base}\s*\(", avx2_block):
            missing.append(f"avx2::{base}")
        if missing:
            findings.append(Finding(
                KERNEL_HEADER, lineno, "kernel-tier-parity",
                f"kernel '{base}' lacks tier(s): {', '.join(missing)} "
                "(every kernel ships scalar + predicated + AVX2, "
                "differential-tested against each other)"))
        if not re.search(rf"\b{base}\b", test_corpus):
            findings.append(Finding(
                KERNEL_HEADER, lineno, "kernel-tier-parity",
                f"kernel '{base}' not referenced by any test under tests/ "
                "(add it to the differential sweeps)"))
    return findings


def collect_files(root, paths):
    files = []
    for path in paths:
        full = os.path.join(root, path)
        if os.path.isfile(full):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            # Fixture trees contain deliberate violations for the lint's own
            # self-test; they are linted explicitly, never by the tree scan.
            dirnames[:] = [d for d in dirnames if d != "lint_fixtures"]
            for name in sorted(filenames):
                ext = os.path.splitext(name)[1]
                if ext in CXX_EXTENSIONS or name == "CMakeLists.txt":
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel)
    return files


def lint_file(root, relpath):
    full = os.path.join(root, relpath)
    raw = open(full, encoding="utf-8", errors="replace").read()
    raw_lines = raw.splitlines()
    per_line, file_wide = parse_suppressions(raw_lines)
    ext = os.path.splitext(relpath)[1]
    if ext in CXX_EXTENSIONS:
        code_lines = strip_comments_and_strings(raw).splitlines()
    else:
        # CMake: '#' comments out the rest of the line.
        code_lines = [re.sub(r"#.*", "", line) for line in raw_lines]
    # Pad so raw/code views always line up for the rules.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")

    findings = []
    for rule in LINE_RULES:
        for lineno, rule_id, message in rule(relpath, raw_lines, code_lines):
            if not suppressed(rule_id, lineno, per_line, file_wide):
                findings.append(Finding(relpath, lineno, rule_id, message))
    return findings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: the tool's parent dir)")
    parser.add_argument("paths", nargs="*",
                        default=["src", "tests", "bench", "tools",
                                 "CMakeLists.txt"],
                        help="files or directories to lint, relative to root")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    findings = []
    test_corpus = ""
    tests_dir = os.path.join(root, "tests")
    if os.path.isdir(tests_dir):
        for name in sorted(os.listdir(tests_dir)):
            if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                test_corpus += open(os.path.join(tests_dir, name),
                                    encoding="utf-8", errors="replace").read()

    for relpath in collect_files(root, args.paths):
        findings.extend(lint_file(root, relpath))
    if "src" in args.paths or any(
            p.replace(os.sep, "/") == KERNEL_HEADER.replace(os.sep, "/")
            for p in args.paths):
        findings.extend(check_kernel_tier_parity(root, test_corpus))

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"scrack_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
