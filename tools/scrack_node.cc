// scrack_node: one storage node of a coord(K,...) cluster, served over TCP.
//
// The cross-process face of the distributed layer: each process owns one
// value-range slice of the dataset and answers wire::Requests through a
// TcpNodeServer. There is no data exchange at startup — the node
// regenerates the same deterministic column the coordinator uses
// (Column::UniquePermutation(n, seed)), recomputes the same equi-depth
// boundaries (CoordinatorEngine::ComputeLowers), and keeps exactly its
// slice. A coordinator built from the same (n, seed, K) routes with
// identical boundaries, so answers are bit-identical to the in-process
// cluster — the cross-process smoke in CI asserts this.
//
// Usage:
//   scrack_node --node=2 --nodes=4 --n=200000 [--seed=42] [--port=0]
//               [--engine='epoch(crack)']
//
// Prints "scrack_node: node I/K listening on port P" once serving (parse
// the port when using --port=0), then runs until SIGTERM/SIGINT, which
// drains cleanly: in-flight requests finish, threads join, exit 0.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distributed/coordinator_engine.h"
#include "distributed/storage_node.h"
#include "distributed/tcp_server.h"
#include "harness/engine_factory.h"
#include "storage/column.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --node=I --nodes=K --n=N [--seed=S] [--port=P] "
      "[--engine=SPEC]\n"
      "  --node=I      this node's index, 0 <= I < K (required)\n"
      "  --nodes=K     cluster size (required)\n"
      "  --n=N         dataset size; must match the coordinator (required)\n"
      "  --seed=S      dataset seed; must match the coordinator (default "
      "42)\n"
      "  --port=P      TCP port; 0 = ephemeral, printed on stdout (default "
      "0)\n"
      "  --engine=SPEC inner engine spec (default 'epoch(crack)')\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using scrack::Column;
  using scrack::CoordinatorEngine;
  using scrack::EngineConfig;
  using scrack::Index;
  using scrack::Status;
  using scrack::StorageNode;
  using scrack::TcpNodeServer;
  using scrack::Value;

  int node_index = -1;
  int num_nodes = 0;
  long long n = 0;
  uint64_t seed = 42;
  long port = 0;
  std::string engine_spec = "epoch(crack)";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--node=", 0) == 0) {
      node_index = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      num_nodes = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--n=", 0) == 0) {
      n = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--port=", 0) == 0) {
      port = std::atol(arg.c_str() + 7);
    } else if (arg.rfind("--engine=", 0) == 0) {
      engine_spec = arg.substr(9);
    } else {
      Usage(argv[0]);
      return 2;
    }
  }
  if (num_nodes < 1 || num_nodes > CoordinatorEngine::kMaxNodes ||
      node_index < 0 || node_index >= num_nodes || n < 1 || port < 0 ||
      port > 65535) {
    Usage(argv[0]);
    return 2;
  }

  // Regenerate the shared dataset and keep exactly this node's slice. The
  // deal is the coordinator's own algorithm, so routing and ownership
  // agree across the process boundary by construction. Duplicate-free
  // permutations never collapse boundaries, so the slice index is valid.
  const Column base = Column::UniquePermutation(static_cast<Index>(n), seed);
  const std::vector<Value> lowers =
      CoordinatorEngine::ComputeLowers(base, num_nodes);
  if (static_cast<int>(lowers.size()) != num_nodes) {
    std::fprintf(stderr,
                 "scrack_node: boundaries collapsed to %d < %d nodes\n",
                 static_cast<int>(lowers.size()), num_nodes);
    return 1;
  }
  std::vector<std::vector<Value>> slices =
      CoordinatorEngine::DealSlices(base, lowers);

  // Same per-node seed decorrelation as the factory's coord/sharded lambda
  // — the other half of cross-process answer parity for stochastic inners.
  EngineConfig config = EngineConfig::Detected();
  config.seed = seed + static_cast<uint64_t>(node_index) *
                           0x9E3779B97F4A7C15ULL;
  std::unique_ptr<StorageNode> node;
  {
    const Status created = StorageNode::Create(
        Column(std::move(slices[static_cast<size_t>(node_index)])),
        node_index,
        [&](const Column* node_base, int /*index*/,
            std::unique_ptr<scrack::SelectEngine>* out) {
          return scrack::CreateEngine(engine_spec, node_base, config, out);
        },
        &node);
    if (!created.ok()) {
      std::fprintf(stderr, "scrack_node: %s\n", created.ToString().c_str());
      return 1;
    }
  }

  TcpNodeServer server;
  const Status started =
      server.Start(node.get(), static_cast<uint16_t>(port));
  if (!started.ok()) {
    std::fprintf(stderr, "scrack_node: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("scrack_node: node %d/%d listening on port %u (%lld tuples, %s)\n",
              node_index, num_nodes, server.port(),
              static_cast<long long>(node->slice_size()),
              engine_spec.c_str());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Clean drain: stop accepting, finish in-flight requests, join threads.
  server.Stop();
  std::printf(
      "scrack_node: node %d drained (%lld connections, %lld requests, "
      "%lld frame errors)\n",
      node_index, static_cast<long long>(server.connections_accepted()),
      static_cast<long long>(server.requests_served()),
      static_cast<long long>(server.frame_errors()));
  return 0;
}
