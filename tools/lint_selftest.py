#!/usr/bin/env python3
"""Self-test for tools/scrack_lint.py, wired into CTest.

Three checks:
  1. The real tree lints clean (exit 0) — the gate the CI job enforces.
  2. The seeded fixtures under tests/lint_fixtures/ trip every line rule
     (nonzero exit, every expected rule id present in the output).
  3. The suppressed twin of the bad fixture yields zero findings, proving
     the lint:allow / lint:allow-file / lint:allow(*) forms all work.
"""

import os
import subprocess
import sys

EXPECTED_RULES = (
    "avx2-confinement",
    "determinism",
    "check-macros",
    "naked-new",
    "mutex-confinement",
    "include-hygiene",
    "socket-confinement",
)


def run_lint(root, paths):
    cmd = [sys.executable, os.path.join(root, "tools", "scrack_lint.py"),
           "--root", root] + paths
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    return proc.returncode, proc.stdout


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures = []

    rc, out = run_lint(root, [])
    if rc != 0:
        failures.append(f"tree scan should be clean, got exit {rc}:\n{out}")

    fixtures = [os.path.join("tests", "lint_fixtures", "bad_example.cc"),
                os.path.join("tests", "lint_fixtures", "bad_example.h")]
    rc, out = run_lint(root, fixtures)
    if rc == 0:
        failures.append("seeded fixtures should fail the lint but passed")
    for rule in EXPECTED_RULES:
        if f"[{rule}]" not in out:
            failures.append(
                f"rule '{rule}' did not fire on the seeded fixtures:\n{out}")

    rc, out = run_lint(
        root, [os.path.join("tests", "lint_fixtures", "suppressed_ok.cc")])
    if rc != 0:
        failures.append(
            f"suppressed fixture should lint clean, got exit {rc}:\n{out}")

    if failures:
        for failure in failures:
            print(f"lint_selftest: FAIL: {failure}")
        return 1
    print(f"lint_selftest: OK ({len(EXPECTED_RULES)} rules verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
