#!/usr/bin/env python3
"""Perf-trajectory gate: diff a fresh bench JSON against a committed baseline.

Understands the report schemas:
  * BENCH_kernels.json  — results[]: {kernel, variant, gbps}
  * BENCH_repro.json    — figures[].metrics: "<label>.touched_per_sec"
  * BENCH_serve.json    — scenarios[]: {engine, phase, loop, qps}

A metric regresses when fresh < baseline / max_regression (default 1.3x).
Two gate modes:
  * per-metric (default) — any single regressed metric fails. Right for
    BENCH_kernels.json, whose GB/s figures are medians over reps.
  * median (--gate=median) — fails only when the *median* ratio across all
    compared metrics regresses. Right for BENCH_repro.json, whose per-run
    wall-clock times are tens of milliseconds and individually noisy.
Metrics present in only one file are reported but never fail the gate, so
adding or removing a kernel/scenario doesn't require a lockstep baseline
update. Exit status: 0 clean, 1 regression(s), 2 usage/schema error.

--fresh accepts multiple report files; each metric takes its best (max)
value across them. Lock-contention benchmarks (BENCH_serve.json: many
client threads on few cores) are bimodal run to run — whether the mutex
stays on its futex fast path is a scheduling accident — so the serve CI
job measures best-of-3, which converges to the contention-favorable
regime instead of gating on a coin flip. The committed serve baseline is
the same best-of envelope. Single-run reports (kernels, repro) are
unaffected.

--normalize REF divides every metric by REF's value *from the same file*
before comparing. The committed baselines were generated on a developer
machine; CI runners have different absolute throughput, so the CI gates
compare normalized (relative) throughput — e.g. each kernel variant
relative to the scalar crack_in_two of the same run — which tracks code
regressions (a broken AVX2 path, a pessimized engine) rather than machine
speed.

Usage:
  tools/perf_diff.py --baseline bench/baselines/BENCH_kernels_baseline.json \
                     --fresh BENCH_kernels.json [--max-regression 1.3]

Stdlib only (CI runs it on a bare runner python3).
"""

import argparse
import json
import sys


def extract_metrics(doc, min_seconds, always_keep=None):
    """Flat {name: throughput} map from either report schema.

    Repro runs shorter than min_seconds are skipped: their touched_per_sec
    is dominated by timer noise, not kernel throughput, and would make the
    gate flaky. `always_keep` (the normalization reference) is exempt from
    the floor so normalization never silently loses its denominator.
    """
    metrics = {}
    if "results" in doc:  # BENCH_kernels.json
        for row in doc["results"]:
            metrics[f"{row['kernel']}/{row['variant']}"] = float(row["gbps"])
        return metrics
    if "figures" in doc:  # BENCH_repro.json
        for figure in doc["figures"]:
            figure_metrics = figure.get("metrics", {})
            for name, value in figure_metrics.items():
                if not name.endswith(".touched_per_sec") or value <= 0:
                    continue
                label = name[: -len(".touched_per_sec")]
                full_name = f"{figure['id']}/{label}"
                if (full_name != always_keep and
                        figure_metrics.get(f"{label}.cum_seconds", 0)
                        < min_seconds):
                    continue
                metrics[full_name] = float(value)
        return metrics
    if "scenarios" in doc:  # BENCH_serve.json
        for row in doc["scenarios"]:
            # Open-loop QPS is pinned by the arrival schedule, not the
            # engine; only the closed-loop rows measure throughput.
            if row.get("loop") != "closed" or float(row["qps"]) <= 0:
                continue
            metrics[f"{row['engine']}/{row['phase']}"] = float(row["qps"])
        return metrics
    raise ValueError(
        "unrecognized report schema (no 'results', 'figures' or 'scenarios')")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True, nargs="+",
                        help="fresh report(s); with several, each metric "
                             "takes its best value across them")
    parser.add_argument("--max-regression", type=float, default=1.3,
                        help="fail when fresh < baseline / this factor")
    parser.add_argument("--min-seconds", type=float, default=0.02,
                        help="ignore repro runs shorter than this (noise)")
    parser.add_argument("--gate", choices=["per-metric", "median"],
                        default="per-metric")
    parser.add_argument("--normalize", metavar="REF", default=None,
                        help="divide every metric by REF's value from the "
                             "same file (machine-independent comparison)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            baseline = extract_metrics(json.load(f), args.min_seconds,
                                       args.normalize)
        fresh = {}
        for path in args.fresh:
            with open(path) as f:
                one = extract_metrics(json.load(f), args.min_seconds,
                                      args.normalize)
            for key, value in one.items():
                fresh[key] = max(value, fresh.get(key, value))
        if args.normalize is not None:
            for name, metrics in (("baseline", baseline), ("fresh", fresh)):
                if args.normalize not in metrics:
                    raise ValueError(
                        f"normalization metric '{args.normalize}' absent "
                        f"from {name} report")
                reference = metrics.pop(args.normalize)
                for key in metrics:
                    metrics[key] /= reference
    except (OSError, ValueError, KeyError) as error:
        print(f"perf_diff: {error}", file=sys.stderr)
        return 2

    regressions = []
    ratios = []
    width = max((len(name) for name in baseline), default=10)
    print(f"{'metric':<{width}}  {'baseline':>12} {'fresh':>12} {'ratio':>7}")
    for name in sorted(baseline):
        if name not in fresh:
            print(f"{name:<{width}}  {baseline[name]:>12.3g} {'absent':>12}")
            continue
        ratio = fresh[name] / baseline[name] if baseline[name] else float("inf")
        ratios.append(ratio)
        flag = ""
        if fresh[name] * args.max_regression < baseline[name]:
            flag = "  REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  {baseline[name]:>12.3g} {fresh[name]:>12.3g} "
              f"{ratio:>6.2f}x{flag}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  {'absent':>12} {fresh[name]:>12.3g}")

    if not ratios:
        print("\nno common metrics to compare", file=sys.stderr)
        return 2 if baseline or fresh else 0

    if args.gate == "median":
        median = sorted(ratios)[len(ratios) // 2]
        print(f"\nmedian throughput ratio: {median:.2f}x over "
              f"{len(ratios)} metrics")
        if median * args.max_regression < 1.0:
            print(f"median regressed more than {args.max_regression}x vs "
                  f"{args.baseline}", file=sys.stderr)
            return 1
        return 0

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{args.max_regression}x vs {args.baseline}", file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.max_regression}x "
          f"({len(ratios)} metrics compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
