#!/usr/bin/env python3
"""clang-tidy gate over the library sources.

Reads build/compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS is on in
CMakeLists.txt), selects the translation units under src/, and runs
clang-tidy with the repo's .clang-tidy config. WarningsAsErrors: '*' makes
any finding a nonzero exit, so this is pass/fail.

Environment without clang-tidy: exits 0 with a SKIP notice so local builds
never block on a missing binary. CI passes --require, which turns a missing
binary into a failure — the gate cannot be skipped silently there.

Usage:
  tools/run_clang_tidy.py [--build-dir build] [--require] [files...]

Explicit file arguments bypass compile_commands.json and are compiled as
standalone C++17 units — used by the CI self-check that the gate flags the
seeded fixture tests/lint_fixtures/tidy_bad_example.cc.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

CANDIDATES = ("clang-tidy", "clang-tidy-19", "clang-tidy-18", "clang-tidy-17",
              "clang-tidy-16", "clang-tidy-15", "clang-tidy-14")


def find_clang_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if shutil.which(env) or os.path.exists(env) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def library_sources(root, build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return None
    with open(db_path, encoding="utf-8") as db_file:
        entries = json.load(db_file)
    src_prefix = os.path.join(os.path.abspath(root), "src") + os.sep
    files = sorted({os.path.abspath(e["file"]) for e in entries
                    if os.path.abspath(e["file"]).startswith(src_prefix)})
    return files


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="directory holding compile_commands.json")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) if clang-tidy is not installed")
    parser.add_argument("files", nargs="*",
                        help="lint these files standalone instead of the "
                             "compile database's src/ units")
    args = parser.parse_args()

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    tidy = find_clang_tidy()
    if tidy is None:
        message = "run_clang_tidy: clang-tidy not found"
        if args.require:
            print(f"{message} (--require set)", file=sys.stderr)
            return 2
        print(f"{message}; SKIP (install clang-tidy or set CLANG_TIDY)")
        return 0

    if args.files:
        cmd = [tidy] + args.files + ["--", "-std=c++17",
                                     "-I", os.path.join(root, "src")]
    else:
        files = library_sources(root, args.build_dir)
        if files is None:
            print("run_clang_tidy: no compile_commands.json under "
                  f"{args.build_dir}/ — configure CMake first", file=sys.stderr)
            return 2
        if not files:
            print("run_clang_tidy: compile database has no src/ units",
                  file=sys.stderr)
            return 2
        cmd = [tidy, "-p", args.build_dir, "--quiet"] + files

    print(f"run_clang_tidy: {tidy} over {len(cmd) - 1} argument(s)")
    proc = subprocess.run(cmd, cwd=root)
    return 1 if proc.returncode != 0 else 0


if __name__ == "__main__":
    sys.exit(main())
