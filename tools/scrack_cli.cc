// scrack_cli: command-line driver for the scrack library.
//
// Loads data (generated or from a file of integers, one per line), binds it
// to any indexing strategy, and executes commands from the command line or
// stdin. Useful for poking at cracking behaviour interactively and for
// scripting ad-hoc experiments without writing C++.
//
// Usage:
//   scrack_cli [--engine SPEC] [--n N | --load FILE] [--seed S] [CMds...]
//
// Commands (arguments or one per stdin line):
//   select LO HI      range select [LO, HI); prints count/sum/cost
//   count LO HI       aggregate COUNT(*) over [LO, HI) (pushdown path)
//   sum LO HI         aggregate SUM over [LO, HI) (pushdown path)
//   minmax LO HI      aggregate MIN/MAX over [LO, HI) (pushdown path)
//   exists LO HI [K]  LIMIT-K existence probe over [LO, HI) (default K=1)
//   insert V          stage an insert
//   delete V          stage a delete
//   workload KIND Q   run Q queries of a Fig. 7 workload pattern
//   stats             print cumulative engine counters
//   validate          run the engine's invariant check
//   engines           list known engine specs
//   help              this text
//
// Examples:
//   scrack_cli --engine mdd1r --n 1000000 "select 10 20" stats
//   echo -e "workload Sequential 1000\nstats" | scrack_cli --engine crack
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "storage/column.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace scrack {
namespace cli {
namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  select LO HI      range select [LO, HI)\n"
      "  count LO HI       aggregate COUNT(*) over [LO, HI)\n"
      "  sum LO HI         aggregate SUM over [LO, HI)\n"
      "  minmax LO HI      aggregate MIN/MAX over [LO, HI)\n"
      "  exists LO HI [K]  LIMIT-K existence probe (default K=1)\n"
      "  insert V          stage an insert\n"
      "  delete V          stage a delete\n"
      "  workload KIND Q   run Q queries of a workload pattern\n"
      "  stats             cumulative engine counters\n"
      "  validate          invariant check\n"
      "  engines           list engine specs\n"
      "  help              this text\n");
}

struct Options {
  std::string engine_spec = "mdd1r";
  Index n = 1'000'000;
  std::string load_path;
  uint64_t seed = 42;
  std::vector<std::string> commands;
};

bool ParseArgs(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      const char* v = need_value("--engine");
      if (v == nullptr) return false;
      options->engine_spec = v;
    } else if (arg == "--n") {
      const char* v = need_value("--n");
      if (v == nullptr) return false;
      options->n = std::atoll(v);
    } else if (arg == "--load") {
      const char* v = need_value("--load");
      if (v == nullptr) return false;
      options->load_path = v;
    } else if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      options->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else {
      options->commands.push_back(arg);
    }
  }
  return true;
}

Status LoadColumn(const Options& options, Column* column) {
  if (options.load_path.empty()) {
    *column = Column::UniquePermutation(options.n, options.seed);
    return Status::OK();
  }
  std::ifstream in(options.load_path);
  if (!in) {
    return Status::NotFound("cannot open " + options.load_path);
  }
  std::vector<Value> values;
  Value v;
  while (in >> v) values.push_back(v);
  if (values.empty()) {
    return Status::InvalidArgument(options.load_path + " holds no integers");
  }
  *column = Column(std::move(values));
  return Status::OK();
}

class Session {
 public:
  Session(std::unique_ptr<SelectEngine> engine, Index n, uint64_t seed)
      : engine_(std::move(engine)), n_(n), seed_(seed) {}

  /// The counters the session reports (wrapper engines surface the
  /// wrapped engine's numbers through the virtual accessor).
  EngineStats CurrentStats() const { return engine_->CurrentStats(); }

  // Returns false on a malformed command (session continues).
  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command)) return true;  // blank line

    if (command == "help") {
      PrintHelp();
    } else if (command == "engines") {
      for (const std::string& spec : KnownEngineSpecs()) {
        std::printf("  %s\n", spec.c_str());
      }
    } else if (command == "select") {
      Value lo, hi;
      if (!(in >> lo >> hi)) return Malformed(line);
      const int64_t touched_before = CurrentStats().tuples_touched;
      Timer timer;
      Query query;
      query.low = lo;
      query.high = hi;
      query.mode = OutputMode::kMaterialize;
      QueryOutput output;
      const Status status = engine_->Execute(query, &output);
      const double secs = timer.ElapsedSeconds();
      if (!status.ok()) return Failed(status);
      std::printf(
          "count=%lld sum=%lld secs=%.6f touched=%lld segments=%zu%s\n",
          static_cast<long long>(output.result.count()),
          static_cast<long long>(output.result.Sum()), secs,
          static_cast<long long>(CurrentStats().tuples_touched -
                                 touched_before),
          output.result.num_segments(),
          output.result.materialized() ? " (materialized)" : " (views)");
    } else if (command == "count" || command == "sum" || command == "minmax" ||
               command == "exists") {
      Query query;
      if (!(in >> query.low >> query.high)) return Malformed(line);
      if (command == "count") {
        query.mode = OutputMode::kCount;
      } else if (command == "sum") {
        query.mode = OutputMode::kSum;
      } else if (command == "minmax") {
        query.mode = OutputMode::kMinMax;
      } else {
        query.mode = OutputMode::kExists;
        if (!(in >> query.limit)) {
          // K absent defaults to 1; K present but non-numeric is an error.
          if (!in.eof()) return Malformed(line);
          query.limit = 1;
        }
      }
      const EngineStats before = CurrentStats();
      Timer timer;
      QueryOutput output;
      const Status status = engine_->Execute(query, &output);
      const double secs = timer.ElapsedSeconds();
      if (!status.ok()) return Failed(status);
      std::printf("%s count=%lld", OutputModeName(query.mode),
                  static_cast<long long>(output.count));
      if (query.mode == OutputMode::kSum) {
        std::printf(" sum=%lld", static_cast<long long>(output.sum));
      } else if (query.mode == OutputMode::kMinMax && output.count > 0) {
        std::printf(" min=%lld max=%lld",
                    static_cast<long long>(output.min),
                    static_cast<long long>(output.max));
      } else if (query.mode == OutputMode::kExists) {
        std::printf(" exists=%s", output.exists ? "true" : "false");
      }
      const EngineStats after = CurrentStats();
      std::printf(" secs=%.6f touched=%lld%s\n", secs,
                  static_cast<long long>(after.tuples_touched -
                                         before.tuples_touched),
                  after.aggregates_pushed > before.aggregates_pushed
                      ? " (pushed)"
                      : " (folded)");
    } else if (command == "insert" || command == "delete") {
      Value v;
      if (!(in >> v)) return Malformed(line);
      const Status status = command == "insert" ? engine_->StageInsert(v)
                                                : engine_->StageDelete(v);
      if (!status.ok()) return Failed(status);
      std::printf("staged %s %lld\n", command.c_str(),
                  static_cast<long long>(v));
    } else if (command == "workload") {
      std::string kind_name;
      QueryId q;
      if (!(in >> kind_name >> q) || q <= 0) return Malformed(line);
      WorkloadKind kind;
      if (!ParseWorkloadKind(kind_name, &kind)) {
        std::fprintf(stderr, "unknown workload: %s\n", kind_name.c_str());
        return false;
      }
      WorkloadParams params;
      params.n = n_;
      params.num_queries = q;
      params.seed = seed_ + 1;
      const RunResult run =
          RunQueries(engine_.get(), MakeWorkload(kind, params));
      if (!run.status.ok()) return Failed(run.status);
      std::printf("%lld queries of %s: cumulative %.4f secs\n",
                  static_cast<long long>(q), WorkloadName(kind).c_str(),
                  run.CumulativeSeconds());
      PrintCumulativeCurves(WorkloadName(kind), {run}, LogSpacedPoints(q));
    } else if (command == "stats") {
      const EngineStats s = CurrentStats();
      std::printf(
          "engine=%s queries=%lld touched=%lld swaps=%lld cracks=%lld "
          "materialized=%lld updates_merged=%lld random_pivots=%lld "
          "aggregates_pushed=%lld parallel_cracks=%lld threads_used=%lld "
          "shared_reads=%lld exclusive_cracks=%lld escalations=%lld "
          "budget_exhausted=%lld deferred_swaps=%lld "
          "scan_fallback_tuples=%lld swap_budget=%lld "
          "fan_outs=%lld nodes_routed=%lld nodes_pruned=%lld "
          "wire_bytes=%lld node_failures=%lld degraded_queries=%lld "
          "cluster_nodes=%lld transport_timeouts=%lld "
          "transport_reconnects=%lld transport_retries=%lld\n",
          engine_->name().c_str(), static_cast<long long>(s.queries),
          static_cast<long long>(s.tuples_touched),
          static_cast<long long>(s.swaps), static_cast<long long>(s.cracks),
          static_cast<long long>(s.materialized),
          static_cast<long long>(s.updates_merged),
          static_cast<long long>(s.random_pivots),
          static_cast<long long>(s.aggregates_pushed),
          static_cast<long long>(s.parallel_cracks),
          static_cast<long long>(s.threads_used),
          static_cast<long long>(s.shared_reads),
          static_cast<long long>(s.exclusive_cracks),
          static_cast<long long>(s.escalations),
          static_cast<long long>(s.budget_exhausted),
          static_cast<long long>(s.deferred_swaps),
          static_cast<long long>(s.scan_fallback_tuples),
          static_cast<long long>(s.swap_budget),
          static_cast<long long>(s.fan_outs),
          static_cast<long long>(s.nodes_routed),
          static_cast<long long>(s.nodes_pruned),
          static_cast<long long>(s.wire_bytes),
          static_cast<long long>(s.node_failures),
          static_cast<long long>(s.degraded_queries),
          static_cast<long long>(s.cluster_nodes),
          static_cast<long long>(s.transport_timeouts),
          static_cast<long long>(s.transport_reconnects),
          static_cast<long long>(s.transport_retries));
    } else if (command == "validate") {
      std::printf("%s\n", engine_->Validate().ToString().c_str());
    } else {
      return Malformed(line);
    }
    return true;
  }

 private:
  static bool Malformed(const std::string& line) {
    std::fprintf(stderr, "malformed command: %s (try 'help')\n",
                 line.c_str());
    return false;
  }
  static bool Failed(const Status& status) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return false;
  }

  std::unique_ptr<SelectEngine> engine_;
  Index n_;
  uint64_t seed_;
};

int Main(int argc, char** argv) {
  Options options;
  if (!ParseArgs(argc, argv, &options)) return 2;

  Column column;
  if (Status s = LoadColumn(options, &column); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  EngineConfig config = EngineConfig::Detected();
  config.seed = options.seed;
  std::unique_ptr<SelectEngine> engine;
  if (Status s = CreateEngine(options.engine_spec, &column, config, &engine);
      !s.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("scrack_cli: %lld tuples behind engine '%s'\n",
              static_cast<long long>(column.size()),
              engine->name().c_str());

  Session session(std::move(engine), column.size(), options.seed);
  int failures = 0;
  for (const std::string& command : options.commands) {
    if (!session.Execute(command)) ++failures;
  }
  if (options.commands.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!session.Execute(line)) ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cli
}  // namespace scrack

int main(int argc, char** argv) { return scrack::cli::Main(argc, argv); }
