// scrack_serve — the concurrent-serving benchmark.
//
// Drives N client threads against one engine across the convergence
// lifecycle the epoch layer targets (paper §6 deferred this to future
// work; see src/parallel/epoch_engine.h):
//
//   cold       — first pass over fresh data: every query cracks, so the
//                reader-writer layer degenerates to the exclusive lock.
//   converged  — the identical query streams replayed: every bound is
//                already a crack position, so epoch engines serve the
//                whole phase as concurrent shared readers.
//   update     — the streams replayed once more while an updater thread
//                stages inserts: escalations reappear exactly where a
//                query's range covers a staged value.
//
// Each phase runs closed-loop (a thread issues its next query the moment
// the previous one answers; throughput-bound), and the converged phase
// additionally runs open-loop (queries have fixed scheduled arrival times
// at --rate; latency is measured from the *scheduled* arrival, so
// queueing behind a lock shows up in p99 — the production-relevant
// number a closed loop hides).
//
// Correctness gates, enforced via the exit code:
//   * per-(phase, loop) checksums must agree across every engine — the
//     engines disagree only if a concurrency bug corrupted an answer;
//   * after the update phase, a quiesced full-range sum must agree across
//     engines (per-query parity during the phase is timing-dependent, the
//     final merged multiset is not);
//   * engines exposing a cracker column must report zero WriterTag
//     violations (a shared reader that reorganized, or two overlapped
//     writers, trips the tag — see audit/writer_tag.h).
//
// All query streams are deterministic in (--seed, thread index), so two
// runs at the same scale issue the identical query multiset to every
// engine. Latencies are wall-clock (steady, via util/timer.h) and
// machine-dependent; checksums and escalation counts are not.
//
// Usage:
//   scrack_serve [--quick] [--threads=N] [--n=N] [--q=Q] [--rate=QPS]
//                [--seed=S] [--json=PATH]
//
//   --quick      CI scale (smaller column and streams, same gates).
//   --threads=N  client threads (default 8).
//   --q=Q        total queries per phase, split across threads.
//   --rate=QPS   total open-loop arrival rate (default 50000).
//   --json=PATH  report path (default BENCH_serve.json; 'none' disables).
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cracking/cracker_column.h"
#include "cracking/engine.h"
#include "harness/engine_factory.h"
#include "repro/json.h"
#include "storage/column.h"
#include "storage/query.h"
#include "util/rng.h"
#include "util/timer.h"

namespace scrack {
namespace {

struct ServeOptions {
  Index n = 1000 * 1000;
  int64_t total_queries = 40 * 1000;  // per phase, split across threads
  int threads = 8;
  double rate = 50 * 1000;  // open-loop total arrivals/sec
  uint64_t seed = 42;
  int64_t updates = 200;  // staged inserts during the update phase
  std::string json_path = "BENCH_serve.json";
};

/// One thread's deterministic query stream: fixed-width ranges at uniform
/// random offsets, every 4th query materializing, the rest aggregating
/// (kSum), so both shared-read paths are exercised.
std::vector<Query> MakeStream(const ServeOptions& opt, int thread_index) {
  const int64_t per_thread = opt.total_queries / opt.threads;
  const Value width = std::max<Value>(1, opt.n / 1000);
  Rng rng(opt.seed ^ (0x9E3779B97F4A7C15ULL *
                      static_cast<uint64_t>(thread_index + 1)));
  std::vector<Query> stream;
  stream.reserve(static_cast<size_t>(per_thread));
  for (int64_t i = 0; i < per_thread; ++i) {
    Query query;
    query.low = rng.UniformValue(0, opt.n - width);
    query.high = query.low + width;
    query.mode = i % 4 == 0 ? OutputMode::kMaterialize : OutputMode::kSum;
    stream.push_back(query);
  }
  return stream;
}

/// Order-independent fold of one answer into a running checksum, so the
/// per-phase total is invariant to thread interleaving (and, when a fixed
/// global stream is partitioned, to the thread count).
uint64_t FoldChecksum(const Query& query, const QueryOutput& output) {
  int64_t count = 0;
  int64_t sum = 0;
  if (query.mode == OutputMode::kMaterialize) {
    count = output.result.count();
    sum = output.result.Sum();
  } else {
    count = output.count;
    sum = output.sum;
  }
  return static_cast<uint64_t>(sum) * 31u + static_cast<uint64_t>(count);
}

struct PhaseResult {
  double seconds = 0;
  int64_t queries = 0;
  uint64_t checksum = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  // CurrentStats deltas across the phase.
  int64_t shared_reads = 0;
  int64_t exclusive_cracks = 0;
  int64_t escalations = 0;
  bool ok = true;
};

double PercentileUs(const std::vector<int64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  const size_t last = sorted_ns.size() - 1;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted_ns.size()));
  if (i > last) i = last;
  return static_cast<double>(sorted_ns[i]) / 1000.0;
}

/// Runs one phase: every client thread issues its stream, closed- or
/// open-loop; an optional updater thread stages `updates` inserts spread
/// across the phase. Returns merged latency percentiles, throughput, the
/// commutative checksum, and the engine's stat deltas.
PhaseResult RunPhase(SelectEngine* engine,
                     const std::vector<std::vector<Query>>& streams,
                     bool open_loop, double total_rate, int64_t updates,
                     Index n, uint64_t seed) {
  const int threads = static_cast<int>(streams.size());
  std::vector<std::vector<int64_t>> latencies_ns(streams.size());
  std::vector<uint64_t> checksums(streams.size(), 0);
  std::atomic<int64_t> errors{0};
  const EngineStats before = engine->CurrentStats();

  Timer phase_timer;
  std::vector<std::thread> workers;
  workers.reserve(streams.size() + 1);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Query>& stream = streams[static_cast<size_t>(t)];
      std::vector<int64_t>& lat = latencies_ns[static_cast<size_t>(t)];
      lat.reserve(stream.size());
      const double per_thread_rate =
          total_rate / static_cast<double>(threads);
      const double ns_per_arrival =
          per_thread_rate > 0 ? 1e9 / per_thread_rate : 0;
      uint64_t checksum = 0;
      Timer timer;
      for (size_t i = 0; i < stream.size(); ++i) {
        int64_t issue_ns = timer.ElapsedNanos();
        if (open_loop) {
          // Fixed arrival schedule: wait for the slot, then measure from
          // the *scheduled* arrival so queueing delay is included. A
          // thread running behind schedule never waits.
          const int64_t arrival_ns =
              static_cast<int64_t>(ns_per_arrival * static_cast<double>(i));
          while (timer.ElapsedNanos() < arrival_ns) {
            std::this_thread::yield();
          }
          issue_ns = arrival_ns;
        }
        QueryOutput output;
        const Status status = engine->Execute(stream[i], &output);
        if (!status.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        lat.push_back(timer.ElapsedNanos() - issue_ns);
        checksum += FoldChecksum(stream[i], output);
      }
      checksums[static_cast<size_t>(t)] = checksum;
    });
  }
  if (updates > 0) {
    workers.emplace_back([&] {
      // Spread the staged inserts across the phase: yield-loop between
      // stages so client queries interleave with escalations. The staged
      // value set is deterministic; only the interleaving is not.
      Rng rng(seed + 999);
      for (int64_t u = 0; u < updates; ++u) {
        if (!engine->StageInsert(rng.UniformValue(0, n)).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (int spin = 0; spin < 64; ++spin) std::this_thread::yield();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  PhaseResult result;
  result.seconds = phase_timer.ElapsedSeconds();
  result.ok = errors.load() == 0;
  std::vector<int64_t> merged;
  for (const std::vector<int64_t>& lat : latencies_ns) {
    result.queries += static_cast<int64_t>(lat.size());
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_us = PercentileUs(merged, 0.50);
  result.p99_us = PercentileUs(merged, 0.99);
  result.p999_us = PercentileUs(merged, 0.999);
  for (uint64_t checksum : checksums) result.checksum += checksum;
  const EngineStats after = engine->CurrentStats();
  result.shared_reads = after.shared_reads - before.shared_reads;
  result.exclusive_cracks = after.exclusive_cracks - before.exclusive_cracks;
  result.escalations = after.escalations - before.escalations;
  return result;
}

struct Scenario {
  std::string engine;
  std::string phase;
  std::string loop;
  PhaseResult result;
};

int Main(int argc, char** argv) {
  ServeOptions opt;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--n=", 0) == 0) {
      opt.n = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--q=", 0) == 0) {
      opt.total_queries = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--rate=", 0) == 0) {
      opt.rate = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=N] [--n=N] [--q=Q] "
                   "[--rate=QPS] [--seed=S] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick) {
    opt.n = 200 * 1000;
    opt.total_queries = 8 * 1000;
    opt.updates = 50;
  }
  if (opt.threads < 1 || opt.n < 1000 || opt.total_queries < opt.threads) {
    std::fprintf(stderr, "scrack_serve: invalid scale\n");
    return 2;
  }

  const std::vector<std::string> engine_specs = {
      "threadsafe:crack", "epoch(crack)", "epoch(crack-p)",
      "sharded(2,epoch(crack))"};

  const Column base = Column::UniquePermutation(opt.n, opt.seed);
  std::vector<std::vector<Query>> streams;
  for (int t = 0; t < opt.threads; ++t) streams.push_back(MakeStream(opt, t));

  std::vector<Scenario> scenarios;
  std::vector<uint64_t> final_sums;
  bool ok = true;

  std::printf("%-26s %-10s %-7s %10s %9s %9s %9s %12s\n", "engine", "phase",
              "loop", "qps", "p50us", "p99us", "p999us", "escalations");
  for (const std::string& spec : engine_specs) {
    std::unique_ptr<SelectEngine> engine;
    const Status created =
        CreateEngine(spec, &base, EngineConfig::Detected(), &engine);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }

    const auto run_and_report = [&](const std::string& phase,
                                    const std::string& loop, bool open_loop,
                                    int64_t updates) {
      PhaseResult result =
          RunPhase(engine.get(), streams, open_loop,
                   open_loop ? opt.rate : 0, updates, opt.n, opt.seed);
      ok = ok && result.ok;
      const double qps =
          result.seconds > 0
              ? static_cast<double>(result.queries) / result.seconds
              : 0;
      std::printf("%-26s %-10s %-7s %10.0f %9.1f %9.1f %9.1f %12" PRId64
                  "\n",
                  engine->name().c_str(), phase.c_str(), loop.c_str(), qps,
                  result.p50_us, result.p99_us, result.p999_us,
                  result.escalations);
      scenarios.push_back(Scenario{spec, phase, loop, result});
    };

    run_and_report("cold", "closed", false, 0);
    run_and_report("converged", "closed", false, 0);
    run_and_report("converged", "open", true, 0);
    run_and_report("update", "closed", false, opt.updates);

    // Quiesced post-update parity: one full-range sum merges every staged
    // insert, so the answer depends only on the final multiset.
    Query full;
    full.low = 0;
    full.high = opt.n + 1;
    full.mode = OutputMode::kSum;
    QueryOutput output;
    const Status status = engine->Execute(full, &output);
    if (!status.ok()) {
      std::fprintf(stderr, "engine %s: final query: %s\n", spec.c_str(),
                   status.ToString().c_str());
      ok = false;
    }
    final_sums.push_back(static_cast<uint64_t>(output.sum) * 31u +
                         static_cast<uint64_t>(output.count));

    const CrackerColumn* column = engine->audit_column();
    if (column != nullptr && column->writer_tag().violations() != 0) {
      std::fprintf(stderr, "engine %s: %" PRId64 " WriterTag violations\n",
                   spec.c_str(),
                   static_cast<int64_t>(column->writer_tag().violations()));
      ok = false;
    }
    if (!engine->Validate().ok()) {
      std::fprintf(stderr, "engine %s: Validate failed after serve\n",
                   spec.c_str());
      ok = false;
    }
  }

  // Cross-engine parity: same (phase, loop) => same checksum; same final
  // full-range sum. Any mismatch is a correctness bug, not noise.
  const size_t per_engine = scenarios.size() / engine_specs.size();
  for (size_t s = 0; s < per_engine; ++s) {
    // The update phase's in-flight checksums are timing-dependent (a query
    // may run before or after an insert lands); its parity gate is the
    // quiesced final sum below.
    if (scenarios[s].phase == "update") continue;
    for (size_t e = 1; e < engine_specs.size(); ++e) {
      const Scenario& ref = scenarios[s];
      const Scenario& other = scenarios[e * per_engine + s];
      if (other.result.checksum != ref.result.checksum) {
        std::fprintf(stderr, "parity mismatch: %s/%s %s vs %s\n",
                     ref.phase.c_str(), ref.loop.c_str(),
                     ref.engine.c_str(), other.engine.c_str());
        ok = false;
      }
    }
  }
  for (size_t e = 1; e < final_sums.size(); ++e) {
    if (final_sums[e] != final_sums[0]) {
      std::fprintf(stderr, "post-update parity mismatch: %s vs %s\n",
                   engine_specs[0].c_str(), engine_specs[e].c_str());
      ok = false;
    }
  }

  if (opt.json_path != "none") {
    repro::Json doc{repro::JsonObject{}};
    doc.Set("schema", "serve");
    doc.Set("n", static_cast<int64_t>(opt.n));
    doc.Set("threads", static_cast<int64_t>(opt.threads));
    doc.Set("queries_per_phase", opt.total_queries);
    doc.Set("seed", static_cast<int64_t>(opt.seed));
    repro::Json rows{repro::JsonArray{}};
    for (const Scenario& scenario : scenarios) {
      const PhaseResult& r = scenario.result;
      repro::Json row{repro::JsonObject{}};
      row.Set("engine", scenario.engine);
      row.Set("phase", scenario.phase);
      row.Set("loop", scenario.loop);
      row.Set("qps", r.seconds > 0
                         ? static_cast<double>(r.queries) / r.seconds
                         : 0.0);
      row.Set("p50_us", r.p50_us);
      row.Set("p99_us", r.p99_us);
      row.Set("p999_us", r.p999_us);
      row.Set("queries", r.queries);
      row.Set("checksum", static_cast<double>(r.checksum % 2147483647u));
      row.Set("shared_reads", r.shared_reads);
      row.Set("exclusive_cracks", r.exclusive_cracks);
      row.Set("escalations", r.escalations);
      rows.Append(std::move(row));
    }
    doc.Set("scenarios", std::move(rows));
    const Status written = repro::WriteJsonFile(doc, opt.json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", opt.json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }

  std::printf(ok ? "serve: parity OK\n" : "serve: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace scrack

int main(int argc, char** argv) { return scrack::Main(argc, argv); }
