// scrack_serve — the concurrent-serving benchmark.
//
// Drives N client threads against one engine across the convergence
// lifecycle the epoch layer targets (paper §6 deferred this to future
// work; see src/parallel/epoch_engine.h):
//
//   cold       — first pass over fresh data: every query cracks, so the
//                reader-writer layer degenerates to the exclusive lock.
//   converged  — the identical query streams replayed: every bound is
//                already a crack position, so epoch engines serve the
//                whole phase as concurrent shared readers.
//   update     — the streams replayed once more while an updater thread
//                stages inserts: escalations reappear exactly where a
//                query's range covers a staged value.
//
// Each phase runs closed-loop (a thread issues its next query the moment
// the previous one answers; throughput-bound), and the converged phase
// additionally runs open-loop (queries have fixed scheduled arrival times
// at --rate; latency is measured from the *scheduled* arrival, so
// queueing behind a lock shows up in p99 — the production-relevant
// number a closed loop hides).
//
// Correctness gates, enforced via the exit code:
//   * per-(phase, loop) checksums must agree across every engine — the
//     engines disagree only if a concurrency bug corrupted an answer;
//   * after the update phase, a quiesced full-range sum must agree across
//     engines (per-query parity during the phase is timing-dependent, the
//     final merged multiset is not);
//   * engines exposing a cracker column must report zero WriterTag
//     violations (a shared reader that reorganized, or two overlapped
//     writers, trips the tag — see audit/writer_tag.h).
//
// All query streams are deterministic in (--seed, thread index), so two
// runs at the same scale issue the identical query multiset to every
// engine. Latencies are wall-clock (steady, via util/timer.h) and
// machine-dependent; checksums and escalation counts are not.
//
// Two additional modes ride in this binary (both exit nonzero on any
// correctness failure, like the default mode):
//
//   --slo     per-query SLO profile: replays one deterministic stream
//             single-threaded over {crack, prog(B,crack)} across a cold
//             and a converged pass, recording per-query latency AND
//             per-query tuples-touched/swapped deltas. Reports p50/p99/
//             p999 latency, p999/max touched tuples, max per-query swaps
//             (gated against the engine's published swap_budget ceiling),
//             and the deadline-miss rate against --deadline-us. Answers
//             must match across engines. Writes a *separate* report
//             (BENCH_serve_slo.json, schema "serve-slo") so the default
//             mode's "serve" schema and its committed baseline stay
//             untouched.
//
//   --dist    multi-node serving smoke: replays one deterministic stream
//             through coord(4,epoch(crack)) across the cold/converged/
//             update phases, gating every phase checksum against
//             sharded(4,epoch(crack)) — the same partitioning without the
//             wire. Then a seeded storage node is killed mid-serve: every
//             read must still answer (as a degraded partial, never an
//             error), and reviving the node must restore complete
//             answers. Reports per-phase routing/pruning/wire counters
//             and writes a separate report (BENCH_serve_dist.json,
//             schema "serve-dist"). --transport picks the wire: "inproc"
//             (default) keeps PR 9's in-process transport; "tcp"
//             self-hosts the same four nodes behind TcpNodeServers on
//             ephemeral loopback ports and drives them through a real
//             TcpTransport — identical checksums, plus the transport's
//             timeout/reconnect/retry counters in the report. The kill
//             segment generalizes: under tcp the victim's server is
//             stopped and restarted on its port instead of KillNode/
//             ReviveNode. --nodes=host:port,... skips self-hosting and
//             targets external scrack_node processes (the CI
//             cross-process smoke); the kill segment is skipped, since
//             the cluster's lifecycle belongs to whoever launched it.
//             --expect-dead=V replaces the phases with a degraded-cluster
//             probe against external nodes whose node V was already
//             killed: reads must answer as degraded partials, a write
//             routed to V must fail loudly.
//
//   --faults  fault-injection smoke: runs chaos(audit(crack)) and
//             chaos(audit(prog(B,crack))) over the same stream with
//             inserts staged along the way. Every injected fault must
//             leave the column invariant-clean (the audit wrapper sits
//             *inside* chaos, so each retry is audited) and the retry
//             must return exactly the clean engine's answer.
//
// Usage:
//   scrack_serve [--quick] [--threads=N] [--n=N] [--q=Q] [--rate=QPS]
//                [--seed=S] [--json=PATH]
//                [--slo] [--faults[=PERIOD]] [--dist] [--budget=B]
//                [--deadline-us=D] [--transport=inproc|tcp]
//                [--nodes=HOST:PORT,...] [--expect-dead=V]
//
//   --quick        CI scale (smaller column and streams, same gates).
//   --threads=N    client threads (default 8).
//   --q=Q          total queries per phase, split across threads.
//   --rate=QPS     total open-loop arrival rate (default 50000).
//   --json=PATH    report path (default BENCH_serve.json, or
//                  BENCH_serve_slo.json under --slo; 'none' disables).
//   --slo          run the SLO profile instead of the serving phases.
//   --faults[=P]   run the fault-injection smoke (inject every P-th
//                  query, default 3) instead of the serving phases.
//   --dist         run the multi-node serving smoke instead of the
//                  serving phases.
//   --budget=B     per-query swap budget for the prog engines in --slo /
//                  --faults (default 5000).
//   --deadline-us  per-query latency SLO for --slo's miss rate
//                  (default 1000; observation only, never enforced).
//   --transport=T  --dist wire: "inproc" (default) or "tcp" (self-hosted
//                  TcpNodeServers on ephemeral loopback ports).
//   --nodes=LIST   --dist against external nodes (comma-separated
//                  host:port, one per scrack_node process); implies tcp.
//   --expect-dead=V  --dist degraded probe: with external node V already
//                  killed, assert degraded reads + loud write failures.
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/audit_engine.h"
#include "cracking/cracker_column.h"
#include "cracking/engine.h"
#include "distributed/coordinator_engine.h"
#include "distributed/storage_node.h"
#include "distributed/tcp_server.h"
#include "distributed/tcp_transport.h"
#include "harness/engine_factory.h"
#include "progressive/chaos_engine.h"
#include "repro/json.h"
#include "storage/column.h"
#include "storage/query.h"
#include "util/rng.h"
#include "util/timer.h"

namespace scrack {
namespace {

struct ServeOptions {
  Index n = 1000 * 1000;
  int64_t total_queries = 40 * 1000;  // per phase, split across threads
  int threads = 8;
  double rate = 50 * 1000;  // open-loop total arrivals/sec
  uint64_t seed = 42;
  int64_t updates = 200;  // staged inserts during the update phase
  std::string json_path = "BENCH_serve.json";
  std::string transport = "inproc";  // --dist wire: "inproc" or "tcp"
  std::string nodes_csv;             // --dist external cluster host:port,...
  int expect_dead = -1;              // --dist probe: index of a killed node
};

/// One thread's deterministic query stream: fixed-width ranges at uniform
/// random offsets, every 4th query materializing, the rest aggregating
/// (kSum), so both shared-read paths are exercised.
std::vector<Query> MakeStream(const ServeOptions& opt, int thread_index) {
  const int64_t per_thread = opt.total_queries / opt.threads;
  const Value width = std::max<Value>(1, opt.n / 1000);
  Rng rng(opt.seed ^ (0x9E3779B97F4A7C15ULL *
                      static_cast<uint64_t>(thread_index + 1)));
  std::vector<Query> stream;
  stream.reserve(static_cast<size_t>(per_thread));
  for (int64_t i = 0; i < per_thread; ++i) {
    Query query;
    query.low = rng.UniformValue(0, opt.n - width);
    query.high = query.low + width;
    query.mode = i % 4 == 0 ? OutputMode::kMaterialize : OutputMode::kSum;
    stream.push_back(query);
  }
  return stream;
}

/// Order-independent fold of one answer into a running checksum, so the
/// per-phase total is invariant to thread interleaving (and, when a fixed
/// global stream is partitioned, to the thread count).
uint64_t FoldChecksum(const Query& query, const QueryOutput& output) {
  int64_t count = 0;
  int64_t sum = 0;
  if (query.mode == OutputMode::kMaterialize) {
    count = output.result.count();
    sum = output.result.Sum();
  } else {
    count = output.count;
    sum = output.sum;
  }
  return static_cast<uint64_t>(sum) * 31u + static_cast<uint64_t>(count);
}

struct PhaseResult {
  double seconds = 0;
  int64_t queries = 0;
  uint64_t checksum = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  // CurrentStats deltas across the phase.
  int64_t shared_reads = 0;
  int64_t exclusive_cracks = 0;
  int64_t escalations = 0;
  bool ok = true;
};

double PercentileUs(const std::vector<int64_t>& sorted_ns, double p) {
  if (sorted_ns.empty()) return 0;
  const size_t last = sorted_ns.size() - 1;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted_ns.size()));
  if (i > last) i = last;
  return static_cast<double>(sorted_ns[i]) / 1000.0;
}

/// Runs one phase: every client thread issues its stream, closed- or
/// open-loop; an optional updater thread stages `updates` inserts spread
/// across the phase. Returns merged latency percentiles, throughput, the
/// commutative checksum, and the engine's stat deltas.
PhaseResult RunPhase(SelectEngine* engine,
                     const std::vector<std::vector<Query>>& streams,
                     bool open_loop, double total_rate, int64_t updates,
                     Index n, uint64_t seed) {
  const int threads = static_cast<int>(streams.size());
  std::vector<std::vector<int64_t>> latencies_ns(streams.size());
  std::vector<uint64_t> checksums(streams.size(), 0);
  std::atomic<int64_t> errors{0};
  const EngineStats before = engine->CurrentStats();

  Timer phase_timer;
  std::vector<std::thread> workers;
  workers.reserve(streams.size() + 1);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const std::vector<Query>& stream = streams[static_cast<size_t>(t)];
      std::vector<int64_t>& lat = latencies_ns[static_cast<size_t>(t)];
      lat.reserve(stream.size());
      const double per_thread_rate =
          total_rate / static_cast<double>(threads);
      const double ns_per_arrival =
          per_thread_rate > 0 ? 1e9 / per_thread_rate : 0;
      uint64_t checksum = 0;
      Timer timer;
      for (size_t i = 0; i < stream.size(); ++i) {
        int64_t issue_ns = timer.ElapsedNanos();
        if (open_loop) {
          // Fixed arrival schedule: wait for the slot, then measure from
          // the *scheduled* arrival so queueing delay is included. A
          // thread running behind schedule never waits.
          const int64_t arrival_ns =
              static_cast<int64_t>(ns_per_arrival * static_cast<double>(i));
          while (timer.ElapsedNanos() < arrival_ns) {
            std::this_thread::yield();
          }
          issue_ns = arrival_ns;
        }
        QueryOutput output;
        const Status status = engine->Execute(stream[i], &output);
        if (!status.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        lat.push_back(timer.ElapsedNanos() - issue_ns);
        checksum += FoldChecksum(stream[i], output);
      }
      checksums[static_cast<size_t>(t)] = checksum;
    });
  }
  if (updates > 0) {
    workers.emplace_back([&] {
      // Spread the staged inserts across the phase: yield-loop between
      // stages so client queries interleave with escalations. The staged
      // value set is deterministic; only the interleaving is not.
      Rng rng(seed + 999);
      for (int64_t u = 0; u < updates; ++u) {
        if (!engine->StageInsert(rng.UniformValue(0, n)).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (int spin = 0; spin < 64; ++spin) std::this_thread::yield();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  PhaseResult result;
  result.seconds = phase_timer.ElapsedSeconds();
  result.ok = errors.load() == 0;
  std::vector<int64_t> merged;
  for (const std::vector<int64_t>& lat : latencies_ns) {
    result.queries += static_cast<int64_t>(lat.size());
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  result.p50_us = PercentileUs(merged, 0.50);
  result.p99_us = PercentileUs(merged, 0.99);
  result.p999_us = PercentileUs(merged, 0.999);
  for (uint64_t checksum : checksums) result.checksum += checksum;
  const EngineStats after = engine->CurrentStats();
  result.shared_reads = after.shared_reads - before.shared_reads;
  result.exclusive_cracks = after.exclusive_cracks - before.exclusive_cracks;
  result.escalations = after.escalations - before.escalations;
  return result;
}

struct Scenario {
  std::string engine;
  std::string phase;
  std::string loop;
  PhaseResult result;
};

// ------------------------------------------------------------ SLO mode ----

int64_t PercentileCount(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t i = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (i > sorted.size() - 1) i = sorted.size() - 1;
  return sorted[i];
}

/// Single-threaded SLO profile: per-query latency and work deltas across a
/// cold and a converged pass, {crack, prog(B,crack)}, answers gated for
/// parity and per-query swaps gated against the published budget ceiling.
int RunSloMode(const ServeOptions& opt, int64_t budget, double deadline_us) {
  EngineConfig config = EngineConfig::Detected();
  config.seed = opt.seed;
  config.deadline_us = deadline_us;
  const Column base = Column::UniquePermutation(opt.n, opt.seed);
  ServeOptions single = opt;
  single.threads = 1;
  const std::vector<Query> stream = MakeStream(single, 0);

  struct SloRow {
    std::string engine;
    std::string phase;
    double seconds = 0;
    double p50_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    double miss_rate = 0;
    int64_t p999_touched = 0;
    int64_t max_touched = 0;
    int64_t max_swaps = 0;
    uint64_t checksum = 0;
    EngineStats stats;  // cumulative snapshot at end of phase
  };
  std::vector<SloRow> rows;
  std::vector<uint64_t> engine_checksums;
  bool ok = true;

  const std::vector<std::string> specs = {
      "crack", "prog(" + std::to_string(budget) + ",crack)"};
  std::printf("%-18s %-10s %9s %9s %9s %8s %12s %12s %10s\n", "engine",
              "phase", "p50us", "p99us", "p999us", "miss", "p999touch",
              "maxswaps", "deferred");
  for (const std::string& spec : specs) {
    std::unique_ptr<SelectEngine> engine;
    const Status created = CreateEngine(spec, &base, config, &engine);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }
    uint64_t engine_checksum = 0;
    for (const char* phase : {"cold", "converged"}) {
      SloRow row;
      row.engine = spec;
      row.phase = phase;
      std::vector<int64_t> latencies_ns;
      std::vector<int64_t> touched;
      latencies_ns.reserve(stream.size());
      touched.reserve(stream.size());
      int64_t misses = 0;
      Timer phase_timer;
      for (const Query& query : stream) {
        const EngineStats before = engine->CurrentStats();
        Timer timer;
        QueryOutput output;
        const Status status = engine->Execute(query, &output);
        if (!status.ok()) {
          std::fprintf(stderr, "engine %s: %s\n", spec.c_str(),
                       status.ToString().c_str());
          return 1;
        }
        const int64_t ns = timer.ElapsedNanos();
        const EngineStats after = engine->CurrentStats();
        latencies_ns.push_back(ns);
        touched.push_back(after.tuples_touched - before.tuples_touched);
        row.max_swaps = std::max(row.max_swaps, after.swaps - before.swaps);
        if (deadline_us > 0 &&
            static_cast<double>(ns) / 1000.0 > deadline_us) {
          ++misses;
        }
        row.checksum += FoldChecksum(query, output);
      }
      row.seconds = phase_timer.ElapsedSeconds();
      std::sort(latencies_ns.begin(), latencies_ns.end());
      std::sort(touched.begin(), touched.end());
      row.p50_us = PercentileUs(latencies_ns, 0.50);
      row.p99_us = PercentileUs(latencies_ns, 0.99);
      row.p999_us = PercentileUs(latencies_ns, 0.999);
      row.p999_touched = PercentileCount(touched, 0.999);
      row.max_touched = touched.empty() ? 0 : touched.back();
      row.miss_rate = stream.empty()
                          ? 0
                          : static_cast<double>(misses) /
                                static_cast<double>(stream.size());
      row.stats = engine->CurrentStats();
      engine_checksum += row.checksum;
      // The budget law the engine publishes: no query may swap more than
      // the ceiling. Enforced here on the real per-query deltas.
      if (row.stats.swap_budget > 0 &&
          row.max_swaps > row.stats.swap_budget) {
        std::fprintf(stderr,
                     "engine %s %s: per-query swaps %" PRId64
                     " exceed the published ceiling %" PRId64 "\n",
                     spec.c_str(), phase, row.max_swaps,
                     row.stats.swap_budget);
        ok = false;
      }
      std::printf("%-18s %-10s %9.1f %9.1f %9.1f %7.2f%% %12" PRId64
                  " %12" PRId64 " %10" PRId64 "\n",
                  spec.c_str(), phase, row.p50_us, row.p99_us, row.p999_us,
                  100.0 * row.miss_rate, row.p999_touched, row.max_swaps,
                  row.stats.deferred_swaps);
      rows.push_back(std::move(row));
    }
    if (!engine->Validate().ok()) {
      std::fprintf(stderr, "engine %s: Validate failed\n", spec.c_str());
      ok = false;
    }
    engine_checksums.push_back(engine_checksum);
  }
  for (size_t e = 1; e < engine_checksums.size(); ++e) {
    if (engine_checksums[e] != engine_checksums[0]) {
      std::fprintf(stderr, "slo parity mismatch: %s vs %s\n",
                   specs[0].c_str(), specs[e].c_str());
      ok = false;
    }
  }

  if (opt.json_path != "none") {
    repro::Json doc{repro::JsonObject{}};
    doc.Set("schema", "serve-slo");
    doc.Set("n", static_cast<int64_t>(opt.n));
    doc.Set("queries_per_phase",
            static_cast<int64_t>(stream.size()));
    doc.Set("seed", static_cast<int64_t>(opt.seed));
    doc.Set("budget", budget);
    doc.Set("deadline_us", deadline_us);
    repro::Json out_rows{repro::JsonArray{}};
    for (const SloRow& row : rows) {
      repro::Json j{repro::JsonObject{}};
      j.Set("engine", row.engine);
      j.Set("phase", row.phase);
      j.Set("p50_us", row.p50_us);
      j.Set("p99_us", row.p99_us);
      j.Set("p999_us", row.p999_us);
      j.Set("deadline_miss_rate", row.miss_rate);
      j.Set("p999_touched", row.p999_touched);
      j.Set("max_touched", row.max_touched);
      j.Set("max_swaps_per_query", row.max_swaps);
      j.Set("checksum", static_cast<double>(row.checksum % 2147483647u));
      j.Set("budget_exhausted", row.stats.budget_exhausted);
      j.Set("deferred_swaps", row.stats.deferred_swaps);
      j.Set("scan_fallback_tuples", row.stats.scan_fallback_tuples);
      j.Set("swap_budget", row.stats.swap_budget);
      out_rows.Append(std::move(j));
    }
    doc.Set("scenarios", std::move(out_rows));
    const Status written = repro::WriteJsonFile(doc, opt.json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", opt.json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("SLO report written to %s\n", opt.json_path.c_str());
  }
  std::printf(ok ? "serve --slo: parity OK\n" : "serve --slo: FAILED\n");
  return ok ? 0 : 1;
}

// --------------------------------------------------------- faults mode ----

/// Deterministic fault-injection smoke: chaos(audit(<engine>)) must answer
/// exactly like a clean engine on every query — including the retried
/// ones — with zero audit findings (audit fail_fast turns any finding into
/// an error Status on the exact query that tripped it).
int RunFaultsMode(const ServeOptions& opt, int64_t budget, int64_t period) {
  EngineConfig config = EngineConfig::Detected();
  config.seed = opt.seed;
  const Column base = Column::UniquePermutation(opt.n, opt.seed);
  ServeOptions single = opt;
  single.threads = 1;
  const std::vector<Query> stream = MakeStream(single, 0);
  const int64_t update_period =
      stream.empty() ? 0
                     : std::max<int64_t>(
                           1, static_cast<int64_t>(stream.size()) /
                                  std::max<int64_t>(1, opt.updates));

  // Reference answers from a clean crack engine, with the identical
  // insert stream staged at the identical points.
  std::vector<uint64_t> reference;
  reference.reserve(stream.size());
  {
    std::unique_ptr<SelectEngine> clean;
    const Status created = CreateEngine("crack", &base, config, &clean);
    if (!created.ok()) {
      std::fprintf(stderr, "clean engine: %s\n", created.ToString().c_str());
      return 1;
    }
    Rng rng(opt.seed + 999);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (update_period > 0 && i > 0 &&
          static_cast<int64_t>(i) % update_period == 0) {
        if (!clean->StageInsert(rng.UniformValue(0, opt.n)).ok()) return 1;
      }
      QueryOutput output;
      if (!clean->Execute(stream[i], &output).ok()) {
        std::fprintf(stderr, "clean engine failed at query %zu\n", i);
        return 1;
      }
      reference.push_back(FoldChecksum(stream[i], output));
    }
  }

  bool ok = true;
  const std::vector<std::string> inner_specs = {
      "audit(crack)", "audit(prog(" + std::to_string(budget) + ",crack))"};
  for (const std::string& inner_spec : inner_specs) {
    std::unique_ptr<SelectEngine> inner;
    const Status created = CreateEngine(inner_spec, &base, config, &inner);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", inner_spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }
    ChaosOptions chaos_options;
    chaos_options.period = period;
    chaos_options.seed = opt.seed;
    ChaosEngine engine(std::move(inner), chaos_options);
    Rng rng(opt.seed + 999);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (update_period > 0 && i > 0 &&
          static_cast<int64_t>(i) % update_period == 0) {
        if (!engine.StageInsert(rng.UniformValue(0, opt.n)).ok()) {
          std::fprintf(stderr, "%s: staged insert failed\n",
                       engine.name().c_str());
          ok = false;
          break;
        }
      }
      QueryOutput output;
      const Status status = engine.Execute(stream[i], &output);
      if (!status.ok()) {
        // With audit inside chaos, this is either an audit finding on the
        // exact query (invariant broken by an aborted mutation) or a
        // double fault; both fail the smoke.
        std::fprintf(stderr, "%s: query %zu: %s\n", engine.name().c_str(), i,
                     status.ToString().c_str());
        ok = false;
        break;
      }
      if (FoldChecksum(stream[i], output) != reference[i]) {
        std::fprintf(stderr, "%s: query %zu: answer diverged after fault\n",
                     engine.name().c_str(), i);
        ok = false;
        break;
      }
    }
    if (!engine.Validate().ok()) {
      std::fprintf(stderr, "%s: Validate failed\n", engine.name().c_str());
      ok = false;
    }
    // A paranoid end-of-run audit sweep on top of the per-call audits.
    if (auto* audit = dynamic_cast<AuditEngine*>(engine.inner())) {
      if (!audit->AuditNow().ok() || !audit->findings().empty()) {
        std::fprintf(stderr, "%s: %zu audit finding(s)\n",
                     engine.name().c_str(), audit->findings().size());
        ok = false;
      }
    }
    std::printf("%-34s faults=%" PRId64 " retries=%" PRId64
                " last_point=%s\n",
                engine.name().c_str(), engine.faults_injected(),
                engine.retries(),
                engine.last_fault_point().empty()
                    ? "-"
                    : engine.last_fault_point().c_str());
    if (engine.faults_injected() == 0 && period > 0 &&
        static_cast<int64_t>(stream.size()) >= 2 * period) {
      std::fprintf(stderr, "%s: no faults fired (smoke is vacuous)\n",
                   engine.name().c_str());
      ok = false;
    }
  }
  std::printf(ok ? "serve --faults: degradation OK\n"
                 : "serve --faults: FAILED\n");
  return ok ? 0 : 1;
}

// ----------------------------------------------------------- dist mode ----

/// Parses "host:port,host:port,..." into endpoints. Returns false (with a
/// message on stderr) on any malformed element.
bool ParseEndpoints(const std::string& csv, std::vector<TcpEndpoint>* out) {
  size_t begin = 0;
  while (begin <= csv.size()) {
    size_t end = csv.find(',', begin);
    if (end == std::string::npos) end = csv.size();
    const std::string element = csv.substr(begin, end - begin);
    const size_t colon = element.rfind(':');
    const long port = colon == std::string::npos
                          ? 0
                          : std::atol(element.c_str() + colon + 1);
    if (colon == 0 || colon == std::string::npos || port < 1 ||
        port > 65535) {
      std::fprintf(stderr, "dist: malformed endpoint '%s' in --nodes\n",
                   element.c_str());
      return false;
    }
    out->push_back(TcpEndpoint{element.substr(0, colon),
                               static_cast<uint16_t>(port)});
    begin = end + 1;
  }
  return !out->empty();
}

/// Multi-node serving smoke: coord(K,epoch(crack)) vs sharded(K,epoch(crack))
/// across the cold/converged/update phases, then a node-kill segment. Every
/// phase checksum must match the wire-free reference; with a node dead,
/// every read must answer as a degraded partial instead of failing, and
/// revival must restore complete answers. The coordinator runs over the
/// in-process transport (default), a self-hosted TCP cluster
/// (--transport=tcp), or external scrack_node processes (--nodes=...).
int RunDistMode(const ServeOptions& opt) {
  std::vector<TcpEndpoint> endpoints;
  if (!opt.nodes_csv.empty() && !ParseEndpoints(opt.nodes_csv, &endpoints)) {
    return 2;
  }
  const int kNodes =
      endpoints.empty() ? 4 : static_cast<int>(endpoints.size());
  const bool external = !endpoints.empty();
  const bool over_tcp = external || opt.transport == "tcp";
  EngineConfig config = EngineConfig::Detected();
  config.seed = opt.seed;
  const Column base = Column::UniquePermutation(opt.n, opt.seed);
  ServeOptions single = opt;
  single.threads = 1;
  const std::vector<Query> stream = MakeStream(single, 0);
  const int64_t update_period =
      stream.empty() ? 0
                     : std::max<int64_t>(
                           1, static_cast<int64_t>(stream.size()) /
                                  std::max<int64_t>(1, opt.updates));

  const std::string inner_spec = "epoch(crack)";
  const std::string coord_spec =
      "coord(" + std::to_string(kNodes) + "," + inner_spec + ")";
  const std::string ref_spec =
      "sharded(" + std::to_string(kNodes) + "," + inner_spec + ")";

  // Self-hosted TCP cluster state; empty under inproc or --nodes. The
  // nodes must outlive the coordinator, so they live at function scope.
  std::vector<std::unique_ptr<StorageNode>> tcp_nodes;
  std::vector<std::unique_ptr<TcpNodeServer>> tcp_servers;

  std::unique_ptr<SelectEngine> coord_engine;
  std::unique_ptr<SelectEngine> ref_engine;
  if (over_tcp) {
    std::vector<Value> lowers =
        CoordinatorEngine::ComputeLowers(base, kNodes);
    if (static_cast<int>(lowers.size()) != kNodes) {
      std::fprintf(stderr, "dist: boundaries collapsed below %d nodes\n",
                   kNodes);
      return 1;
    }
    if (!external) {
      // Self-host: the factory's own deal and per-node seed decorrelation,
      // each node behind its own TcpNodeServer on an ephemeral port — so
      // coord-over-TCP answers stay bit-identical to the wire-free
      // reference.
      std::vector<std::vector<Value>> slices =
          CoordinatorEngine::DealSlices(base, lowers);
      for (int i = 0; i < kNodes; ++i) {
        EngineConfig node_config = config;
        node_config.seed =
            opt.seed + static_cast<uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
        std::unique_ptr<StorageNode> node;
        const Status created = StorageNode::Create(
            Column(std::move(slices[static_cast<size_t>(i)])), i,
            [&](const Column* node_base, int /*index*/,
                std::unique_ptr<SelectEngine>* out) {
              return CreateEngine(inner_spec, node_base, node_config, out);
            },
            &node);
        if (!created.ok()) {
          std::fprintf(stderr, "dist: node %d: %s\n", i,
                       created.ToString().c_str());
          return 1;
        }
        auto server = std::make_unique<TcpNodeServer>();
        const Status started = server->Start(node.get(), 0);
        if (!started.ok()) {
          std::fprintf(stderr, "dist: node %d server: %s\n", i,
                       started.ToString().c_str());
          return 1;
        }
        endpoints.push_back(TcpEndpoint{"127.0.0.1", server->port()});
        tcp_nodes.push_back(std::move(node));
        tcp_servers.push_back(std::move(server));
      }
    }
    TcpTransportOptions transport_options;  // production defaults
    const Status created = CoordinatorEngine::CreateOverTransport(
        std::move(lowers),
        std::make_unique<TcpTransport>(endpoints, transport_options),
        inner_spec, kNodes, &coord_engine, /*deadline_us=*/0,
        /*tolerate_unreachable=*/opt.expect_dead >= 0);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s over tcp: %s\n", coord_spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }
  } else {
    const Status created =
        CreateEngine(coord_spec, &base, config, &coord_engine);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", coord_spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }
  }
  {
    const Status created = CreateEngine(ref_spec, &base, config, &ref_engine);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", ref_spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }
  }
  auto* coord = dynamic_cast<CoordinatorEngine*>(coord_engine.get());
  if (coord == nullptr ||
      (!over_tcp && coord->inproc_transport() == nullptr)) {
    std::fprintf(stderr, "dist: %s is not a coordinator\n",
                 coord_spec.c_str());
    return 1;
  }

  // Degraded-cluster probe: whoever launched the external nodes already
  // killed node V; assert the coordinator's failure policy from the
  // outside — reads answer as degraded partials, a write routed to the
  // dead node fails loudly — then report and exit. No phases, no
  // reference engine: the external cluster's state may include staged
  // updates from earlier legs.
  if (opt.expect_dead >= 0) {
    if (!external || opt.expect_dead >= kNodes) {
      std::fprintf(stderr,
                   "dist: --expect-dead needs --nodes and an index < K\n");
      return 2;
    }
    const int victim = opt.expect_dead;
    bool probe_ok = true;
    Query full;
    full.low = 0;
    full.high = opt.n + 1;
    full.mode = OutputMode::kCount;
    QueryOutput degraded;
    const Status read = coord_engine->Execute(full, &degraded);
    if (!read.ok()) {
      std::fprintf(stderr, "dist: read failed (not degraded) with node %d "
                           "dead: %s\n",
                   victim, read.ToString().c_str());
      probe_ok = false;
    } else if (degraded.degraded_nodes != 1) {
      std::fprintf(stderr, "dist: expected exactly 1 degraded node, got %d\n",
                   degraded.degraded_nodes);
      probe_ok = false;
    }
    int64_t degraded_reads = 0;
    for (size_t i = 0; i < stream.size() && i < 256; ++i) {
      QueryOutput output;
      if (!coord_engine->Execute(stream[i], &output).ok()) {
        std::fprintf(stderr, "dist: query %zu failed with node %d dead\n", i,
                     victim);
        probe_ok = false;
        break;
      }
      degraded_reads += output.degraded_nodes > 0 ? 1 : 0;
    }
    if (!stream.empty() && degraded_reads <= 0) {
      std::fprintf(stderr,
                   "dist: no stream query touched the dead node (probe is "
                   "vacuous)\n");
      probe_ok = false;
    }
    const Value victim_value =
        static_cast<Value>(victim) * (opt.n / kNodes) + opt.n / (2 * kNodes);
    const bool write_failed = !coord_engine->StageInsert(victim_value).ok();
    if (!write_failed) {
      std::fprintf(stderr, "dist: write unexpectedly succeeded with node %d "
                           "dead\n",
                   victim);
      probe_ok = false;
    }
    const EngineStats end = coord_engine->CurrentStats();
    std::printf("dist probe: victim=%d degraded_count=%lld degraded_reads=%"
                PRId64 " node_failures=%" PRId64 " timeouts=%" PRId64
                " reconnects=%" PRId64 " retries=%" PRId64 "\n",
                victim, static_cast<long long>(degraded.count),
                degraded_reads, end.node_failures, end.transport_timeouts,
                end.transport_reconnects, end.transport_retries);
    if (opt.json_path != "none") {
      repro::Json doc{repro::JsonObject{}};
      doc.Set("schema", "serve-dist-probe");
      doc.Set("n", static_cast<int64_t>(opt.n));
      doc.Set("nodes", static_cast<int64_t>(kNodes));
      doc.Set("victim", static_cast<int64_t>(victim));
      doc.Set("degraded_count", static_cast<int64_t>(degraded.count));
      doc.Set("degraded_reads", degraded_reads);
      doc.Set("write_failed", static_cast<int64_t>(write_failed ? 1 : 0));
      doc.Set("node_failures", end.node_failures);
      doc.Set("degraded_queries", end.degraded_queries);
      doc.Set("transport_timeouts", end.transport_timeouts);
      doc.Set("transport_reconnects", end.transport_reconnects);
      doc.Set("transport_retries", end.transport_retries);
      const Status written = repro::WriteJsonFile(doc, opt.json_path);
      if (!written.ok()) {
        std::fprintf(stderr, "write %s: %s\n", opt.json_path.c_str(),
                     written.ToString().c_str());
        return 1;
      }
    }
    std::printf(probe_ok ? "serve --dist probe: degraded-partial OK\n"
                         : "serve --dist probe: FAILED\n");
    return probe_ok ? 0 : 1;
  }

  bool ok = true;
  struct DistRow {
    std::string phase;
    double seconds = 0;
    uint64_t checksum = 0;
    int64_t routed = 0;
    int64_t pruned = 0;
    int64_t wire_bytes = 0;
  };
  std::vector<DistRow> rows;

  // Replays the stream on one engine, staging the deterministic insert set
  // along the way when `with_updates` — single-threaded, so the per-phase
  // checksum is exactly reproducible across engines.
  const auto replay = [&](SelectEngine* engine, bool with_updates,
                          uint64_t* checksum) -> bool {
    Rng rng(opt.seed + 999);
    for (size_t i = 0; i < stream.size(); ++i) {
      if (with_updates && update_period > 0 && i > 0 &&
          static_cast<int64_t>(i) % update_period == 0) {
        if (!engine->StageInsert(rng.UniformValue(0, opt.n)).ok()) {
          std::fprintf(stderr, "%s: staged insert failed\n",
                       engine->name().c_str());
          return false;
        }
      }
      QueryOutput output;
      const Status status = engine->Execute(stream[i], &output);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: query %zu: %s\n", engine->name().c_str(),
                     i, status.ToString().c_str());
        return false;
      }
      if (output.degraded_nodes != 0) {
        std::fprintf(stderr, "%s: query %zu degraded with all nodes up\n",
                     engine->name().c_str(), i);
        return false;
      }
      *checksum += FoldChecksum(stream[i], output);
    }
    return true;
  };

  std::printf("%-34s %-10s %10s %10s %10s %12s %8s\n", "engine", "phase",
              "qps", "routed", "pruned", "wire_bytes", "prune%");
  for (const char* phase : {"cold", "converged", "update"}) {
    const bool with_updates = std::strcmp(phase, "update") == 0;
    DistRow row;
    row.phase = phase;
    const EngineStats before = coord_engine->CurrentStats();
    Timer timer;
    if (!replay(coord_engine.get(), with_updates, &row.checksum)) return 1;
    row.seconds = timer.ElapsedSeconds();
    const EngineStats after = coord_engine->CurrentStats();
    row.routed = after.nodes_routed - before.nodes_routed;
    row.pruned = after.nodes_pruned - before.nodes_pruned;
    row.wire_bytes = after.wire_bytes - before.wire_bytes;
    uint64_t ref_checksum = 0;
    if (!replay(ref_engine.get(), with_updates, &ref_checksum)) return 1;
    if (ref_checksum != row.checksum) {
      std::fprintf(stderr, "dist parity mismatch in %s phase: %s vs %s\n",
                   phase, coord_spec.c_str(), ref_spec.c_str());
      ok = false;
    }
    const int64_t fanned = row.routed + row.pruned;
    std::printf("%-34s %-10s %10.0f %10" PRId64 " %10" PRId64 " %12" PRId64
                " %7.1f%%\n",
                coord_engine->name().c_str(), phase,
                row.seconds > 0 ? static_cast<double>(stream.size()) /
                                      row.seconds
                                : 0,
                row.routed, row.pruned, row.wire_bytes,
                fanned > 0 ? 100.0 * static_cast<double>(row.pruned) /
                                 static_cast<double>(fanned)
                           : 0.0);
    rows.push_back(std::move(row));
  }
  // Narrow streams over K equi-depth partitions must prune most fan-outs:
  // a width-n/1000 range touches at most two adjacent nodes, so at least
  // (K-2)/K of every fan-out prunes. Vacuous at K=1 (one node owns every
  // range); at K=2 the bound degenerates to "some pruning happened".
  if (kNodes > 1 && !rows.empty()) {
    const int64_t fanned = rows.back().routed + rows.back().pruned;
    const int64_t pruned_floor =
        kNodes > 2 ? fanned * (kNodes - 2) / kNodes : 1;
    if (rows.back().pruned < pruned_floor) {
      std::fprintf(stderr,
                   "dist: narrow queries did not prune (routed=%" PRId64
                   " pruned=%" PRId64 " floor=%" PRId64 ")\n",
                   rows.back().routed, rows.back().pruned, pruned_floor);
      ok = false;
    }
  }

  // Node-kill segment: with one node dead, reads answer as degraded
  // partials; writes fail loudly; revival restores complete answers.
  // Under --transport=tcp the "crash" is the victim's TcpNodeServer
  // stopping, and revival restarts it on the same port (SO_REUSEADDR) —
  // the coordinator only ever sees refused connections, exactly what a
  // dead process looks like. Skipped against external nodes (--nodes):
  // their lifecycle belongs to the launcher, which drives the same
  // assertions through --expect-dead.
  const int victim = static_cast<int>(opt.seed % kNodes);
  QueryOutput degraded;
  QueryOutput recovered;
  QueryOutput reference;
  int64_t degraded_reads = 0;
  if (!external) {
    const uint16_t victim_port = over_tcp ? tcp_servers[victim]->port() : 0;
    if (over_tcp) {
      tcp_servers[victim]->Stop();
    } else {
      coord->inproc_transport()->KillNode(victim);
    }
    Query full;
    full.low = 0;
    full.high = opt.n + 1;
    full.mode = OutputMode::kCount;
    const Status status = coord_engine->Execute(full, &degraded);
    if (!status.ok()) {
      std::fprintf(stderr, "dist: read failed (not degraded) with node %d "
                           "dead: %s\n",
                   victim, status.ToString().c_str());
      ok = false;
    } else if (degraded.degraded_nodes != 1) {
      std::fprintf(stderr, "dist: expected exactly 1 degraded node, got %d\n",
                   degraded.degraded_nodes);
      ok = false;
    }
    // The stream keeps flowing: every read completes, none errors.
    for (size_t i = 0; i < stream.size() && i < 256; ++i) {
      QueryOutput output;
      if (!coord_engine->Execute(stream[i], &output).ok()) {
        std::fprintf(stderr, "dist: query %zu failed with node %d dead\n", i,
                     victim);
        ok = false;
        break;
      }
      degraded_reads += output.degraded_nodes > 0 ? 1 : 0;
    }
    // A write routed to the dead node's value range must fail loudly —
    // equi-depth boundaries over a unique permutation put the victim's
    // range around [victim*n/K, (victim+1)*n/K).
    const Value victim_value =
        static_cast<Value>(victim) * (opt.n / kNodes) + opt.n / (2 * kNodes);
    if (coord_engine->StageInsert(victim_value).ok()) {
      std::fprintf(stderr, "dist: write unexpectedly succeeded with node %d "
                           "dead\n",
                   victim);
      ok = false;
    }
    if (over_tcp) {
      const Status restarted =
          tcp_servers[victim]->Start(tcp_nodes[victim].get(), victim_port);
      if (!restarted.ok()) {
        std::fprintf(stderr, "dist: victim restart: %s\n",
                     restarted.ToString().c_str());
        ok = false;
      }
    } else {
      coord->inproc_transport()->ReviveNode(victim);
    }
    if (!coord_engine->Execute(full, &recovered).ok() ||
        !ref_engine->Execute(full, &reference).ok() ||
        recovered.degraded_nodes != 0 ||
        recovered.count != reference.count) {
      std::fprintf(stderr, "dist: revival did not restore complete "
                           "answers\n");
      ok = false;
    }
    if (degraded.count >= reference.count) {
      std::fprintf(stderr, "dist: degraded answer was not partial "
                           "(%lld >= %lld)\n",
                   static_cast<long long>(degraded.count),
                   static_cast<long long>(reference.count));
      ok = false;
    }
  }
  const EngineStats end = coord_engine->CurrentStats();
  if (!external) {
    std::printf("node-kill: victim=%d degraded_count=%lld/%lld "
                "degraded_reads=%" PRId64 " node_failures=%" PRId64
                " recovered_count=%lld\n",
                victim, static_cast<long long>(degraded.count),
                static_cast<long long>(reference.count), degraded_reads,
                end.node_failures, static_cast<long long>(recovered.count));
    if (end.degraded_queries <= 0 || end.node_failures <= 0) {
      std::fprintf(stderr, "dist: kill segment left no degradation trace\n");
      ok = false;
    }
  }
  if (over_tcp) {
    std::printf("transport=tcp timeouts=%" PRId64 " reconnects=%" PRId64
                " retries=%" PRId64 "\n",
                end.transport_timeouts, end.transport_reconnects,
                end.transport_retries);
  }
  if (!coord_engine->Validate().ok() || !ref_engine->Validate().ok()) {
    std::fprintf(stderr, "dist: Validate failed after serve\n");
    ok = false;
  }

  if (opt.json_path != "none") {
    repro::Json doc{repro::JsonObject{}};
    doc.Set("schema", "serve-dist");
    doc.Set("n", static_cast<int64_t>(opt.n));
    doc.Set("nodes", static_cast<int64_t>(kNodes));
    doc.Set("queries_per_phase", static_cast<int64_t>(stream.size()));
    doc.Set("seed", static_cast<int64_t>(opt.seed));
    doc.Set("engine", coord_engine->name());
    doc.Set("transport", over_tcp ? "tcp" : "inproc");
    doc.Set("transport_timeouts", end.transport_timeouts);
    doc.Set("transport_reconnects", end.transport_reconnects);
    doc.Set("transport_retries", end.transport_retries);
    repro::Json out_rows{repro::JsonArray{}};
    for (const DistRow& row : rows) {
      repro::Json j{repro::JsonObject{}};
      j.Set("phase", row.phase);
      j.Set("qps", row.seconds > 0
                       ? static_cast<double>(stream.size()) / row.seconds
                       : 0.0);
      j.Set("checksum", static_cast<double>(row.checksum % 2147483647u));
      j.Set("nodes_routed", row.routed);
      j.Set("nodes_pruned", row.pruned);
      j.Set("wire_bytes", row.wire_bytes);
      out_rows.Append(std::move(j));
    }
    doc.Set("phases", std::move(out_rows));
    if (!external) {
      repro::Json kill{repro::JsonObject{}};
      kill.Set("victim", static_cast<int64_t>(victim));
      kill.Set("degraded_count", static_cast<int64_t>(degraded.count));
      kill.Set("recovered_count", static_cast<int64_t>(recovered.count));
      kill.Set("degraded_reads", degraded_reads);
      kill.Set("node_failures", end.node_failures);
      kill.Set("degraded_queries", end.degraded_queries);
      doc.Set("node_kill", std::move(kill));
    }
    const Status written = repro::WriteJsonFile(doc, opt.json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", opt.json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
    std::printf("dist report written to %s\n", opt.json_path.c_str());
  }
  std::printf(ok ? "serve --dist: degraded-partial OK\n"
                 : "serve --dist: FAILED\n");
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  ServeOptions opt;
  bool quick = false;
  bool slo = false;
  bool faults = false;
  bool dist = false;
  int64_t fault_period = 3;
  int64_t budget = 5000;
  double deadline_us = 1000;
  bool json_path_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      opt.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--n=", 0) == 0) {
      opt.n = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--q=", 0) == 0) {
      opt.total_queries = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--rate=", 0) == 0) {
      opt.rate = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--json=", 0) == 0) {
      opt.json_path = arg.substr(7);
      json_path_set = true;
    } else if (arg == "--slo") {
      slo = true;
    } else if (arg == "--dist") {
      dist = true;
    } else if (arg == "--faults") {
      faults = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      faults = true;
      fault_period = std::atoll(arg.c_str() + 9);
    } else if (arg.rfind("--budget=", 0) == 0) {
      budget = std::atoll(arg.c_str() + 9);
    } else if (arg.rfind("--deadline-us=", 0) == 0) {
      deadline_us = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--transport=", 0) == 0) {
      opt.transport = arg.substr(12);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      opt.nodes_csv = arg.substr(8);
    } else if (arg.rfind("--expect-dead=", 0) == 0) {
      opt.expect_dead = std::atoi(arg.c_str() + 14);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--threads=N] [--n=N] [--q=Q] "
                   "[--rate=QPS] [--seed=S] [--json=PATH] [--slo] "
                   "[--faults[=PERIOD]] [--dist] [--budget=B] "
                   "[--deadline-us=D] [--transport=inproc|tcp] "
                   "[--nodes=HOST:PORT,...] [--expect-dead=V]\n",
                   argv[0]);
      return 2;
    }
  }
  if (quick) {
    opt.n = 200 * 1000;
    opt.total_queries = 8 * 1000;
    opt.updates = 50;
  }
  if (opt.threads < 1 || opt.n < 1000 || opt.total_queries < opt.threads) {
    std::fprintf(stderr, "scrack_serve: invalid scale\n");
    return 2;
  }
  if (static_cast<int>(slo) + static_cast<int>(faults) +
          static_cast<int>(dist) > 1) {
    std::fprintf(stderr,
                 "scrack_serve: pick one of --slo / --faults / --dist\n");
    return 2;
  }
  if (budget < 1 || fault_period < 1) {
    std::fprintf(stderr, "scrack_serve: --budget and --faults period must "
                         "be >= 1\n");
    return 2;
  }
  if (opt.transport != "inproc" && opt.transport != "tcp") {
    std::fprintf(stderr, "scrack_serve: --transport must be inproc or tcp\n");
    return 2;
  }
  if (!dist && (opt.transport != "inproc" || !opt.nodes_csv.empty() ||
                opt.expect_dead >= 0)) {
    std::fprintf(stderr, "scrack_serve: --transport/--nodes/--expect-dead "
                         "require --dist\n");
    return 2;
  }
  if (slo) {
    if (!json_path_set) opt.json_path = "BENCH_serve_slo.json";
    return RunSloMode(opt, budget, deadline_us);
  }
  if (faults) {
    return RunFaultsMode(opt, budget, fault_period);
  }
  if (dist) {
    if (!json_path_set) opt.json_path = "BENCH_serve_dist.json";
    return RunDistMode(opt);
  }

  const std::vector<std::string> engine_specs = {
      "threadsafe:crack", "epoch(crack)", "epoch(crack-p)",
      "sharded(2,epoch(crack))"};

  const Column base = Column::UniquePermutation(opt.n, opt.seed);
  std::vector<std::vector<Query>> streams;
  for (int t = 0; t < opt.threads; ++t) streams.push_back(MakeStream(opt, t));

  std::vector<Scenario> scenarios;
  std::vector<uint64_t> final_sums;
  bool ok = true;

  std::printf("%-26s %-10s %-7s %10s %9s %9s %9s %12s\n", "engine", "phase",
              "loop", "qps", "p50us", "p99us", "p999us", "escalations");
  for (const std::string& spec : engine_specs) {
    std::unique_ptr<SelectEngine> engine;
    const Status created =
        CreateEngine(spec, &base, EngineConfig::Detected(), &engine);
    if (!created.ok()) {
      std::fprintf(stderr, "engine %s: %s\n", spec.c_str(),
                   created.ToString().c_str());
      return 1;
    }

    const auto run_and_report = [&](const std::string& phase,
                                    const std::string& loop, bool open_loop,
                                    int64_t updates) {
      PhaseResult result =
          RunPhase(engine.get(), streams, open_loop,
                   open_loop ? opt.rate : 0, updates, opt.n, opt.seed);
      ok = ok && result.ok;
      const double qps =
          result.seconds > 0
              ? static_cast<double>(result.queries) / result.seconds
              : 0;
      std::printf("%-26s %-10s %-7s %10.0f %9.1f %9.1f %9.1f %12" PRId64
                  "\n",
                  engine->name().c_str(), phase.c_str(), loop.c_str(), qps,
                  result.p50_us, result.p99_us, result.p999_us,
                  result.escalations);
      scenarios.push_back(Scenario{spec, phase, loop, result});
    };

    run_and_report("cold", "closed", false, 0);
    run_and_report("converged", "closed", false, 0);
    run_and_report("converged", "open", true, 0);
    run_and_report("update", "closed", false, opt.updates);

    // Quiesced post-update parity: one full-range sum merges every staged
    // insert, so the answer depends only on the final multiset.
    Query full;
    full.low = 0;
    full.high = opt.n + 1;
    full.mode = OutputMode::kSum;
    QueryOutput output;
    const Status status = engine->Execute(full, &output);
    if (!status.ok()) {
      std::fprintf(stderr, "engine %s: final query: %s\n", spec.c_str(),
                   status.ToString().c_str());
      ok = false;
    }
    final_sums.push_back(static_cast<uint64_t>(output.sum) * 31u +
                         static_cast<uint64_t>(output.count));

    const CrackerColumn* column = engine->audit_column();
    if (column != nullptr && column->writer_tag().violations() != 0) {
      std::fprintf(stderr, "engine %s: %" PRId64 " WriterTag violations\n",
                   spec.c_str(),
                   static_cast<int64_t>(column->writer_tag().violations()));
      ok = false;
    }
    if (!engine->Validate().ok()) {
      std::fprintf(stderr, "engine %s: Validate failed after serve\n",
                   spec.c_str());
      ok = false;
    }
  }

  // Cross-engine parity: same (phase, loop) => same checksum; same final
  // full-range sum. Any mismatch is a correctness bug, not noise.
  const size_t per_engine = scenarios.size() / engine_specs.size();
  for (size_t s = 0; s < per_engine; ++s) {
    // The update phase's in-flight checksums are timing-dependent (a query
    // may run before or after an insert lands); its parity gate is the
    // quiesced final sum below.
    if (scenarios[s].phase == "update") continue;
    for (size_t e = 1; e < engine_specs.size(); ++e) {
      const Scenario& ref = scenarios[s];
      const Scenario& other = scenarios[e * per_engine + s];
      if (other.result.checksum != ref.result.checksum) {
        std::fprintf(stderr, "parity mismatch: %s/%s %s vs %s\n",
                     ref.phase.c_str(), ref.loop.c_str(),
                     ref.engine.c_str(), other.engine.c_str());
        ok = false;
      }
    }
  }
  for (size_t e = 1; e < final_sums.size(); ++e) {
    if (final_sums[e] != final_sums[0]) {
      std::fprintf(stderr, "post-update parity mismatch: %s vs %s\n",
                   engine_specs[0].c_str(), engine_specs[e].c_str());
      ok = false;
    }
  }

  if (opt.json_path != "none") {
    repro::Json doc{repro::JsonObject{}};
    doc.Set("schema", "serve");
    doc.Set("n", static_cast<int64_t>(opt.n));
    doc.Set("threads", static_cast<int64_t>(opt.threads));
    doc.Set("queries_per_phase", opt.total_queries);
    doc.Set("seed", static_cast<int64_t>(opt.seed));
    repro::Json rows{repro::JsonArray{}};
    for (const Scenario& scenario : scenarios) {
      const PhaseResult& r = scenario.result;
      repro::Json row{repro::JsonObject{}};
      row.Set("engine", scenario.engine);
      row.Set("phase", scenario.phase);
      row.Set("loop", scenario.loop);
      row.Set("qps", r.seconds > 0
                         ? static_cast<double>(r.queries) / r.seconds
                         : 0.0);
      row.Set("p50_us", r.p50_us);
      row.Set("p99_us", r.p99_us);
      row.Set("p999_us", r.p999_us);
      row.Set("queries", r.queries);
      row.Set("checksum", static_cast<double>(r.checksum % 2147483647u));
      row.Set("shared_reads", r.shared_reads);
      row.Set("exclusive_cracks", r.exclusive_cracks);
      row.Set("escalations", r.escalations);
      rows.Append(std::move(row));
    }
    doc.Set("scenarios", std::move(rows));
    const Status written = repro::WriteJsonFile(doc, opt.json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "write %s: %s\n", opt.json_path.c_str(),
                   written.ToString().c_str());
      return 1;
    }
  }

  std::printf(ok ? "serve: parity OK\n" : "serve: FAILED\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace scrack

int main(int argc, char** argv) { return scrack::Main(argc, argv); }
