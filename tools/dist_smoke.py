#!/usr/bin/env python3
"""Cross-process distributed smoke: scrack_node processes over real TCP.

The in-process suites (tests/tcp_transport_test.cc, scrack_serve --dist
--transport=tcp) already prove the transport against self-hosted servers;
this driver proves the last gap — separate OS processes, each regenerating
its slice from (n, seed, K) with zero data exchange — and the crash story
no in-process harness can tell: a node SIGKILLed mid-flight, not drained.

Legs, every one gated by exit codes:

  1. Parity: for K in {1, 2, 4}, launch K scrack_node processes on
     ephemeral ports and run `scrack_serve --dist --nodes=...` against
     them. The serve binary replays the cold/converged/update phases and
     exits nonzero unless every phase checksum matches the wire-free
     sharded(K,...) reference built in-process from the same (n, seed) —
     cross-process answers are bit-identical or this leg fails. Nodes are
     then SIGTERMed and must drain cleanly (exit 0, "drained" on stdout).

  2. Kill: a fresh K=4 cluster, one node SIGKILLed (no drain, no
     goodbye), then `scrack_serve --dist --expect-dead=V`: reads must
     answer as degraded partials (exactly one degraded node), the query
     stream must keep flowing, and a write routed to the dead node must
     fail loudly. A SIGKILL kills the staged updates with the process, so
     recovery is a fresh cluster: all survivors are SIGTERMed, all K
     nodes relaunched, and the full parity leg reruns — exact parity
     after restart, not just liveness.

Scale is the serve binary's --quick (n=200000, seed 42), so the whole
smoke stays CI-sized. Run from anywhere:

  python3 tools/dist_smoke.py --build-dir build
"""

import argparse
import os
import signal
import subprocess
import sys
import time

N = 200 * 1000  # scrack_serve --quick scale; nodes must match exactly
SEED = 42
STEP_TIMEOUT_S = 300


class Cluster:
    """K scrack_node processes on ephemeral ports."""

    def __init__(self, node_bin, k):
        self.procs = []
        self.ports = []
        for i in range(k):
            proc = subprocess.Popen(
                [node_bin, f"--node={i}", f"--nodes={k}", f"--n={N}",
                 f"--seed={SEED}", "--port=0"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
            self.procs.append(proc)
        for i, proc in enumerate(self.procs):
            line = proc.stdout.readline()  # blocks until the node serves
            if "listening on port" not in line:
                raise RuntimeError(f"node {i} failed to start: {line!r}")
            self.ports.append(int(line.split("port")[1].split()[0]))

    def endpoints(self):
        return ",".join(f"127.0.0.1:{p}" for p in self.ports)

    def sigkill(self, index):
        self.procs[index].kill()
        self.procs[index].wait(timeout=STEP_TIMEOUT_S)

    def shutdown(self, expect_clean=True):
        """SIGTERM every live node; under expect_clean each must drain."""
        failures = []
        for proc in self.procs:
            if proc.poll() is not None:
                continue  # already dead (the SIGKILL victim)
            proc.send_signal(signal.SIGTERM)
        for i, proc in enumerate(self.procs):
            try:
                rc = proc.wait(timeout=STEP_TIMEOUT_S)
            except subprocess.TimeoutExpired:
                proc.kill()
                failures.append(f"node {i} did not drain on SIGTERM")
                continue
            tail = proc.stdout.read()
            if expect_clean and (rc != 0 or "drained" not in tail):
                failures.append(
                    f"node {i} exit {rc}, missing drain line: {tail!r}")
        return failures


def run_serve(serve_bin, extra, label):
    cmd = [serve_bin, "--dist", "--quick", "--json=none"] + extra
    print(f"--- {label}: {' '.join(cmd)}", flush=True)
    proc = subprocess.run(cmd, timeout=STEP_TIMEOUT_S)
    return proc.returncode == 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--victim", type=int, default=SEED % 4,
                        help="node index SIGKILLed in the kill leg")
    args = parser.parse_args()
    serve_bin = os.path.join(args.build_dir, "scrack_serve")
    node_bin = os.path.join(args.build_dir, "scrack_node")
    for binary in (serve_bin, node_bin):
        if not os.path.exists(binary):
            print(f"dist_smoke: missing binary {binary}", flush=True)
            return 2
    failures = []

    for k in (1, 2):
        cluster = Cluster(node_bin, k)
        if not run_serve(serve_bin, [f"--nodes={cluster.endpoints()}"],
                         f"parity K={k}"):
            failures.append(f"parity leg failed at K={k}")
        failures += cluster.shutdown()

    # The K=4 cluster serves the full parity leg first, so the SIGKILL
    # lands on a node with cracked state and live traffic history — the
    # crash we are simulating, not a node that never served a byte.
    victim = args.victim
    cluster = Cluster(node_bin, 4)
    if not run_serve(serve_bin, [f"--nodes={cluster.endpoints()}"],
                     "parity K=4"):
        failures.append("parity leg failed at K=4")
    cluster.sigkill(victim)
    if not run_serve(serve_bin,
                     [f"--nodes={cluster.endpoints()}",
                      f"--expect-dead={victim}"],
                     f"SIGKILL node {victim}, degraded probe"):
        failures.append("degraded probe failed after SIGKILL")
    # The SIGKILLed process took its staged state with it, so recovery is
    # a full fresh cluster — and the recovered cluster must pass the exact
    # parity gate again, proving restart restores bit-identical answers.
    failures += cluster.shutdown(expect_clean=False)
    time.sleep(0.2)  # let the kernel finish reclaiming the listen ports
    cluster = Cluster(node_bin, 4)
    if not run_serve(serve_bin, [f"--nodes={cluster.endpoints()}"],
                     "parity after restart"):
        failures.append("post-restart parity leg failed")
    failures += cluster.shutdown()

    if failures:
        for failure in failures:
            print(f"dist_smoke: FAIL: {failure}", flush=True)
        return 1
    print("dist_smoke: OK (parity K=1/2/4, SIGKILL degrade, restart parity)",
          flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
