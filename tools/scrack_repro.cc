// scrack_repro — the unified reproduction driver.
//
// Replaces the 18 per-figure bench binaries: every Fig. 2-20 scenario of
// the paper (plus the repo's beyond-paper scenarios) lives in the
// declarative registry of src/repro/registry.cc, each with machine-checked
// shape assertions over the deterministic tuples-touched / checksum
// metrics. The process exits nonzero when any assertion fails, which is
// what the CI repro-gate job enforces.
//
// Usage:
//   scrack_repro [--figure=all|<id>|<number>] [--quick] [--audit]
//                [--json=PATH] [--markdown[=PATH]] [--list]
//                [--n=N] [--q=Q] [--seed=S]
//
//   --figure=F     which scenario(s) to run: 'all' (default), a spec id
//                  ('fig09', 'pushdown'), or a bare paper figure number.
//   --quick        CI scale (each spec declares its quick N/Q); the same
//                  assertions must hold as at full scale.
//   --audit        run every grid cell under the invariant auditor
//                  (audit(<engine>); for sharded cells, every shard's
//                  inner engine). Any violation fails the figure with a
//                  diagnostic naming the figure/cell, query, piece and
//                  rule. SCRACK_AUDIT=1 in the environment does the same.
//   --json=PATH    write the merged JSON report (default BENCH_repro.json;
//                  'none' disables).
//   --markdown     print ready-to-paste EXPERIMENTS.md rows after the run
//                  (--markdown=PATH writes them to a file instead).
//   --list         print the registry (id, figures, title, runs,
//                  assertions) and exit.
//   --n/--q/--seed override every spec's scale / RNG seed.
//
// The paper ran N=1e8, Q=1e4 on a 2.4GHz Xeon; default scale is
// laptop-size (typically N=1e6). The reproduction target is the *shape* of
// each figure — who wins, by what factor, where curves flatten — which is
// exactly what the assertions encode, so scale changes don't change
// verdicts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "repro/registry.h"
#include "repro/repro_report.h"
#include "repro/runner.h"
#include "util/simd.h"

namespace scrack {
namespace repro {
namespace {

void PrintRegistry() {
  std::printf("%-10s %-8s %5s %5s  %s\n", "id", "figures", "runs", "asrt",
              "title");
  for (const FigureSpec& spec : Registry()) {
    std::string figures;
    for (size_t i = 0; i < spec.figures.size(); ++i) {
      figures += (i > 0 ? "," : "") + std::to_string(spec.figures[i]);
    }
    if (figures.empty()) figures = "-";
    std::printf("%-10s %-8s %5zu %5zu  %s\n", spec.id.c_str(),
                figures.c_str(), spec.runs.size(), spec.assertions.size(),
                spec.title.c_str());
  }
  std::printf(
      "\nEngine specs follow the grammar in README.md (\"Engine specs\"):\n"
      "  base     scan | sort | crack | ddc | ddr | dd1c | dd1r | mdd1r |\n"
      "           pmdd1r:<pct> | fiftyfifty | flipcoin | sizesel |\n"
      "           everyx:<k> | scrackmon:<x> | r<k>crack | aicc | aics |\n"
      "           aicc1r | aics1r | auto\n"
      "  suffix   <engine>-p | <engine>-pN      intra-query parallel\n"
      "  wrapper  threadsafe:<inner> | epoch(<inner>) | sharded(P,<inner>) |\n"
      "           audit(<inner>) | prog(B,<inner>) | chaos(<inner>)\n"
      "Unknown or malformed specs are rejected with an error naming the\n"
      "expected shape.\n");
}

int Main(int argc, char** argv) {
  std::string figure = "all";
  std::string json_path = "BENCH_repro.json";
  std::string markdown_path;
  bool markdown = false;
  bool list = false;
  ReproOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--figure=", 0) == 0) {
      figure = arg.substr(9);
    } else if (arg == "--quick") {
      options.quick = true;
    } else if (arg == "--audit") {
      options.audit = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--markdown") {
      markdown = true;
    } else if (arg.rfind("--markdown=", 0) == 0) {
      markdown = true;
      markdown_path = arg.substr(11);
    } else if (arg == "--list") {
      list = true;
    } else if (arg.rfind("--n=", 0) == 0) {
      options.n_override = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--q=", 0) == 0) {
      options.q_override = std::atoll(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--figure=all|ID|N] [--quick] [--audit] "
                   "[--json=PATH] [--markdown[=PATH]] [--list] [--n=N] "
                   "[--q=Q] [--seed=S]\n",
                   argv[0]);
      return 2;
    }
  }
  const char* audit_env = std::getenv("SCRACK_AUDIT");
  if (audit_env != nullptr && *audit_env != '\0' &&
      std::strcmp(audit_env, "0") != 0) {
    options.audit = true;
  }

  if (list) {
    PrintRegistry();
    return 0;
  }

  std::string error;
  const auto specs = SelectSpecs(figure, &error);
  if (specs.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  std::printf("scrack_repro: %zu scenario(s), %s scale, seed=%llu, "
              "avx2=%s, audit=%s\n",
              specs.size(), options.quick ? "quick" : "full",
              static_cast<unsigned long long>(options.seed),
              simd::Supported() ? "on" : "off",
              options.audit ? "on" : "off");

  std::vector<FigureResult> results;
  int failed_figures = 0;
  for (const FigureSpec* spec : specs) {
    FigureResult result;
    const Status status = RunFigure(*spec, options, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: harness error: %s\n", spec->id.c_str(),
                   status.message().c_str());
      return 2;
    }
    PrintFigure(*spec, result);
    if (!result.ok) ++failed_figures;
    results.push_back(std::move(result));
  }

  if (json_path != "none" && !json_path.empty()) {
    const Json report = BuildReport(specs, results, options);
    const Status status = WriteJsonFile(report, json_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return 2;
    }
    std::printf("\nJSON report written to %s\n", json_path.c_str());
  }

  if (markdown) {
    const std::string rows = MarkdownRows(specs, results);
    if (markdown_path.empty()) {
      std::printf("\nEXPERIMENTS.md rows:\n%s", rows.c_str());
    } else {
      FILE* f = std::fopen(markdown_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", markdown_path.c_str());
        return 2;
      }
      std::fwrite(rows.data(), 1, rows.size(), f);
      std::fclose(f);
      std::printf("\nmarkdown rows written to %s\n", markdown_path.c_str());
    }
  }

  int total = 0;
  int failed = 0;
  for (const FigureResult& result : results) {
    for (const AssertionResult& assertion : result.assertions) {
      ++total;
      if (!assertion.ok) ++failed;
    }
  }
  std::printf("\nshape assertions: %d/%d pass across %zu scenario(s)%s\n",
              total - failed, total, specs.size(),
              failed == 0 ? "" : "  [FAILURES]");
  return failed == 0 ? 0 : 1;
}

}  // namespace
}  // namespace repro
}  // namespace scrack

int main(int argc, char** argv) { return scrack::repro::Main(argc, argv); }
