// Figure 14 — partition/merge adaptive-indexing hybrids on the sequential
// workload.
//
// Paper shape: AICC and AICS inherit original cracking's blinkered
// query-driven behaviour and fail on sequential (slightly worse than Crack
// due to merge overhead); grafting DD1R-style random cracks into them
// (AICC1R / AICS1R) restores robustness — their curves flatten quickly.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 14: stochastic hybrids (AICS/AICC +- 1R)",
              "sequential workload, cumulative seconds", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  std::vector<RunResult> runs;
  for (const std::string spec :
       {"aics", "aicc", "crack", "aics1r", "aicc1r"}) {
    runs.push_back(RunSpec(spec, base, config, queries));
  }
  PrintCumulativeCurves("Fig 14 hybrids on sequential", runs, points);
  std::printf(
      "\nPaper shape: AICS/AICC at or slightly above Crack (merge overhead,\n"
      "no convergence); AICS1R/AICC1R converge quickly to low flat totals.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
