// Micro-benchmarks (google-benchmark) for the reorganization kernels the
// figure benches are built on: crack_in_two / crack_in_three /
// split_and_materialize / partial partition, and Introselect vs
// std::nth_element (the DDC median step).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "cracking/kernel.h"
#include "storage/column.h"
#include "util/introselect.h"
#include "util/rng.h"

namespace scrack {
namespace {

std::vector<Value> MakeData(Index n, uint64_t seed) {
  return Column::UniquePermutation(n, seed).values();
}

void BM_CrackInTwo(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 1);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    KernelCounters counters;
    benchmark::DoNotOptimize(
        CrackInTwo(data.data(), 0, n, n / 2, &counters));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CrackInTwo)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_CrackInThree(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 2);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    KernelCounters counters;
    benchmark::DoNotOptimize(
        CrackInThree(data.data(), 0, n, n / 3, 2 * n / 3, &counters));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CrackInThree)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_SplitAndMaterialize(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 3);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    KernelCounters counters;
    std::vector<Value> out;
    benchmark::DoNotOptimize(SplitAndMaterialize(
        data.data(), 0, n, n / 2 - 50, n / 2 + 50, n / 2, &out, &counters));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SplitAndMaterialize)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_PartialPartitionFull(benchmark::State& state) {
  // Completing a partition via budgeted steps; cost should track
  // CrackInTwo within a small constant.
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 4);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    KernelCounters counters;
    Index left = 0;
    Index right = n - 1;
    bool complete = false;
    while (!complete) {
      const auto r = PartialPartition(data.data(), left, right, n / 2,
                                      n / 10, &counters);
      left = r.left;
      right = r.right;
      complete = r.complete;
    }
    benchmark::DoNotOptimize(left);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PartialPartitionFull)->Arg(1 << 14)->Arg(1 << 18);

void BM_Introselect(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 5);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    benchmark::DoNotOptimize(SelectNth(data.data(), n, n / 2));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Introselect)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

void BM_StdNthElement(benchmark::State& state) {
  const Index n = state.range(0);
  const std::vector<Value> base = MakeData(n, 5);
  std::vector<Value> data;
  for (auto _ : state) {
    state.PauseTiming();
    data = base;
    state.ResumeTiming();
    std::nth_element(data.begin(), data.begin() + n / 2, data.end());
    benchmark::DoNotOptimize(data[static_cast<size_t>(n / 2)]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdNthElement)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 21);

}  // namespace
}  // namespace scrack

BENCHMARK_MAIN();
