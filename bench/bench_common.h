// Shared plumbing for the per-figure bench binaries.
//
// Every bench binary reads SCRACK_N / SCRACK_Q / SCRACK_SEED from the
// environment (laptop-scale defaults otherwise; the paper ran N=1e8, Q=1e4
// on a 2.4GHz Xeon) and prints plain-text tables whose *shape* — who wins,
// by what factor, where curves flatten — is the reproduction target.
// EXPERIMENTS.md at the repository root holds the paper-vs-measured table
// for each figure; fill in its "measured" column from these binaries'
// output.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/engine_factory.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace scrack {
namespace bench {

struct BenchEnv {
  Index n;
  QueryId q;
  uint64_t seed;
};

inline BenchEnv ReadEnv(Index default_n, QueryId default_q) {
  BenchEnv env;
  env.n = static_cast<Index>(EnvInt64("SCRACK_N", default_n));
  env.q = static_cast<QueryId>(EnvInt64("SCRACK_Q", default_q));
  env.seed = static_cast<uint64_t>(EnvInt64("SCRACK_SEED", 42));
  return env;
}

inline void PrintHeader(const std::string& figure, const std::string& what,
                        const BenchEnv& env) {
  std::printf("\n################################################################\n");
  std::printf("# %s\n# %s\n", figure.c_str(), what.c_str());
  std::printf("# N=%lld tuples, Q=%lld queries, seed=%llu",
              static_cast<long long>(env.n), static_cast<long long>(env.q),
              static_cast<unsigned long long>(env.seed));
  std::printf("  (override: SCRACK_N / SCRACK_Q / SCRACK_SEED)\n");
  std::printf("################################################################\n");
}

/// Runs `spec` over a fresh engine on `base` against `queries`.
inline RunResult RunSpec(const std::string& spec, const Column& base,
                         const EngineConfig& config,
                         const std::vector<RangeQuery>& queries,
                         const RunOptions& options = {}) {
  auto engine = CreateEngineOrDie(spec, &base, config);
  return RunQueries(engine.get(), queries, options);
}

inline WorkloadParams DefaultWorkloadParams(const BenchEnv& env) {
  WorkloadParams params;
  params.n = env.n;
  params.num_queries = env.q;
  params.selectivity = 10;
  params.seed = env.seed + 1;
  return params;
}

inline EngineConfig DefaultEngineConfig(const BenchEnv& env) {
  EngineConfig config = EngineConfig::Detected();
  config.seed = env.seed;
  return config;
}

}  // namespace bench
}  // namespace scrack
