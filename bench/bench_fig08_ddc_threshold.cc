// Figure 8 (table) — DDC piece-size threshold sweep.
//
// Paper: cumulative time for the sequential workload with the DDC stop
// threshold at L1/4, L1/2, L1, L2, 3L2. L1 (and below) are near-optimal;
// L2 degrades; 3L2 degrades badly (large uncracked pieces keep getting
// re-scanned).
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 8: varying DDC piece-size threshold (CRACK_AT)",
              "cumulative seconds on the sequential workload", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));

  const EngineConfig detected = DefaultEngineConfig(env);
  const Index l1 = detected.crack_threshold_values;
  const Index l2 = detected.progressive_min_values;
  struct Cell {
    const char* label;
    Index threshold;
  };
  const Cell cells[] = {
      {"L1/4", l1 / 4}, {"L1/2", l1 / 2}, {"L1", l1},
      {"L2", l2},       {"3L2", 3 * l2},
  };

  TextTable table({"threshold", "values/piece", "cumulative secs",
                   "tuples touched"});
  for (const Cell& cell : cells) {
    EngineConfig config = detected;
    config.crack_threshold_values = std::max<Index>(1, cell.threshold);
    const RunResult run = RunSpec("ddc", base, config, queries);
    table.AddRow({cell.label, std::to_string(config.crack_threshold_values),
                  TextTable::Num(run.CumulativeSeconds()),
                  std::to_string(run.CumulativeTouched())});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper (Fig. 8, N=1e8, Q=1e4): 2.2 / 2.2 / 2.2 / 7.8 / 54.7 secs —\n"
      "flat up to L1, degrading sharply beyond L2.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
