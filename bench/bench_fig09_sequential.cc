// Figure 9 — stochastic cracking fixes the sequential workload.
//   (a) DDC and DDR converge to Sort-like flat cumulative curves where
//       Crack keeps climbing; DDR's first query is ~2x cheaper than DDC's.
//   (b) DD1C/DD1R: lower initialization than their recursive siblings, a
//       few more queries to converge; DD1R's first query ~4x under DD1C's.
//   (c) progressive variants P100/P50/P10/P1: the tighter the swap budget,
//       the cheaper the first query and the later the convergence.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 9(a-c): sequential workload, stochastic variants",
              "cumulative response time vs Crack and Sort", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  {
    std::vector<RunResult> runs;
    for (const std::string spec : {"sort", "crack", "ddc", "ddr"}) {
      runs.push_back(RunSpec(spec, base, config, queries));
    }
    PrintCumulativeCurves("Fig 9(a) DDC / DDR", runs, points);
  }
  {
    std::vector<RunResult> runs;
    for (const std::string spec : {"sort", "crack", "dd1c", "dd1r"}) {
      runs.push_back(RunSpec(spec, base, config, queries));
    }
    PrintCumulativeCurves("Fig 9(b) DD1C / DD1R", runs, points);
  }
  {
    std::vector<RunResult> runs;
    for (const std::string spec :
         {"sort", "crack", "pmdd1r:100", "pmdd1r:50", "pmdd1r:10",
          "pmdd1r:1"}) {
      runs.push_back(RunSpec(spec, base, config, queries));
    }
    PrintCumulativeCurves("Fig 9(c) progressive stochastic cracking", runs,
                          points);
  }
  std::printf(
      "\nPaper shape: every stochastic variant flattens within ~10-20\n"
      "queries while Crack's cumulative keeps climbing ~linearly; tighter\n"
      "progressive budgets trade first-query cost for convergence speed.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
