// Figure 11 (table) — varying selectivity.
//
// Cumulative seconds for 1e3 queries at selectivities 1e-7% / 1e-2% / 10% /
// 50% / random, under the random and sequential workloads, for Scan, Sort,
// Crack, DD1R and P10%. Paper shape: cracking-family costs are insensitive
// to selectivity under random; under sequential, Crack is ~2 orders above
// DD1R/P10%; Scan (and, mildly, progressive) grows with selectivity because
// it materializes.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

std::vector<RangeQuery> SelectivityWorkload(WorkloadKind kind,
                                            const BenchEnv& env,
                                            double selectivity_percent,
                                            bool random_widths) {
  WorkloadParams params = DefaultWorkloadParams(env);
  if (random_widths) {
    // "Rand": every query gets a random width — emulate by generating at a
    // mid selectivity and then re-drawing widths.
    params.selectivity = 10;
    auto queries = MakeWorkload(kind, params);
    Rng rng(env.seed + 99);
    for (RangeQuery& q : queries) {
      const Value width = 1 + rng.UniformValue(0, env.n / 2);
      q.high = std::min<Value>(env.n, q.low + width);
      if (q.high <= q.low) q.high = q.low + 1;
    }
    return queries;
  }
  params.selectivity = std::max<Value>(
      1, static_cast<Value>(static_cast<double>(env.n) *
                            selectivity_percent / 100.0));
  return MakeWorkload(kind, params);
}

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/300);
  PrintHeader("Figure 11: varying selectivity",
              "cumulative seconds; selectivity as % of the domain", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);

  struct SelCase {
    const char* label;
    double percent;
    bool random;
  };
  const SelCase cases[] = {
      {"1e-7%", 1e-7, false}, {"1e-2%", 1e-2, false}, {"10%", 10, false},
      {"50%", 50, false},     {"Rand", 0, true},
  };
  const std::string specs[] = {"scan", "sort", "crack", "dd1r", "pmdd1r:10"};

  for (const WorkloadKind kind :
       {WorkloadKind::kRandom, WorkloadKind::kSequential}) {
    std::printf("\n== %s workload — cumulative secs for %lld queries ==\n",
                WorkloadName(kind).c_str(), static_cast<long long>(env.q));
    std::vector<std::string> header = {"algorithm"};
    for (const SelCase& c : cases) header.push_back(c.label);
    TextTable table(std::move(header));
    for (const std::string& spec : specs) {
      std::vector<std::string> row = {spec};
      for (const SelCase& c : cases) {
        const auto queries = SelectivityWorkload(kind, env, c.percent,
                                                 c.random);
        const RunResult run = RunSpec(spec, base, config, queries);
        row.push_back(TextTable::Num(run.CumulativeSeconds()));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
  }
  std::printf(
      "\nPaper shape (Fig. 11): Crack ~constant across selectivity but 1-2\n"
      "orders worse than DD1R/P10%% under sequential; Scan and P10%% grow\n"
      "with selectivity (materialization); Sort constant.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
