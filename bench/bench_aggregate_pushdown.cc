// Aggregate pushdown — what dropping the materialization requirement buys.
//   (a) per output mode (materialize / count / sum / minmax / exists),
//       cumulative seconds and end-of-run counters for scan, crack, mdd1r
//       and sharded(4,crack) on the same random workload. Cracking answers
//       count from index piece bounds (materialized stays 0 and the
//       aggregate path reads no tuples); scan folds in its single pass
//       without allocating result buffers; mdd1r has no pushdown override
//       and shows the default Select+fold cost as the baseline.
//   (b) batched execution: ExecuteBatch vs one-by-one Execute for kCount
//       on the same engines — the amortization of locks, fan-outs and
//       pending-update passes.
#include <array>

#include "bench_common.h"
#include "util/timer.h"

namespace scrack {
namespace bench {
namespace {

constexpr std::array<OutputMode, 5> kModes = {
    OutputMode::kMaterialize, OutputMode::kCount, OutputMode::kSum,
    OutputMode::kMinMax, OutputMode::kExists};

constexpr const char* kSpecs[] = {"scan", "crack", "mdd1r", "sharded(4,crack)"};

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/2000);
  PrintHeader("Aggregate pushdown: Execute(Query) output modes",
              "materialize vs count/sum/minmax/exists across engines", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kRandom, DefaultWorkloadParams(env));

  // (a) one mode per run, fresh engine each time.
  TextTable table({"engine", "mode", "cum secs", "touched", "materialized",
                   "pushed"});
  for (const char* spec : kSpecs) {
    for (OutputMode mode : kModes) {
      RunOptions options;
      options.mode = mode;
      const RunResult run = RunSpec(spec, base, config, queries, options);
      SCRACK_CHECK(run.status.ok());
      table.AddRow({run.engine_name, OutputModeName(mode),
                    TextTable::Num(run.CumulativeSeconds()),
                    std::to_string(run.final_stats.tuples_touched),
                    std::to_string(run.final_stats.materialized),
                    std::to_string(run.final_stats.aggregates_pushed)});
    }
  }
  std::printf("\n(a) per-mode cost, fresh engine per row:\n");
  table.Print();

  // (b) the same kCount workload, batched vs one-by-one.
  std::vector<Query> batch;
  batch.reserve(queries.size());
  for (const RangeQuery& q : queries) {
    batch.push_back(Query{q.low, q.high, OutputMode::kCount, 1});
  }
  TextTable batch_table({"engine", "one-by-one secs", "batched secs",
                         "checksum"});
  for (const char* spec : kSpecs) {
    auto sequential = CreateEngineOrDie(spec, &base, config);
    Timer seq_timer;
    int64_t seq_checksum = 0;
    for (const Query& query : batch) {
      QueryOutput output;
      SCRACK_CHECK(sequential->Execute(query, &output).ok());
      seq_checksum += output.count;
    }
    const double seq_secs = seq_timer.ElapsedSeconds();

    auto batched = CreateEngineOrDie(spec, &base, config);
    Timer batch_timer;
    std::vector<QueryOutput> outputs;
    SCRACK_CHECK(batched->ExecuteBatch(batch, &outputs).ok());
    const double batch_secs = batch_timer.ElapsedSeconds();
    int64_t batch_checksum = 0;
    for (const QueryOutput& output : outputs) batch_checksum += output.count;
    SCRACK_CHECK(batch_checksum == seq_checksum);

    batch_table.AddRow({sequential->name(), TextTable::Num(seq_secs),
                        TextTable::Num(batch_secs),
                        std::to_string(batch_checksum)});
  }
  std::printf("\n(b) kCount workload, ExecuteBatch vs sequential Execute "
              "(checksums verified equal):\n");
  batch_table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
