// Ablation benches for design choices DESIGN.md calls out (beyond the
// paper's own sweeps in Figs. 8/9c/18/19):
//
//   A. crack-in-three vs two crack-in-two passes for a both-bounds-in-one-
//      piece query — the single-pass kernel original cracking uses for its
//      first query (Fig. 1 Q1).
//   B. hybrid initial-partition size — our AICC/AICS use fixed-size slices;
//      this sweep shows the merge-overhead trade-off.
//   C. sideways cracker-map modes — does the paper's robustness result
//      carry over to multi-column projection? (Extension: the paper only
//      evaluates single-column selects.)
#include "bench_common.h"
#include "cracking/kernel.h"
#include "sideways/cracker_map.h"
#include "util/timer.h"
#include "workload/workload.h"

namespace scrack {
namespace bench {
namespace {

void AblationCrackInThree(const BenchEnv& env) {
  std::printf("\n== A. crack-in-three vs 2x crack-in-two (first query) ==\n");
  TextTable table({"kernel", "secs", "touched"});
  {
    std::vector<Value> data =
        Column::UniquePermutation(env.n, env.seed).values();
    KernelCounters counters;
    Timer timer;
    CrackInThree(data.data(), 0, env.n, env.n / 3, 2 * env.n / 3, &counters);
    table.AddRow({"crack_in_three", TextTable::Num(timer.ElapsedSeconds()),
                  std::to_string(counters.touched)});
  }
  {
    std::vector<Value> data =
        Column::UniquePermutation(env.n, env.seed).values();
    KernelCounters counters;
    Timer timer;
    const Index p1 =
        CrackInTwo(data.data(), 0, env.n, env.n / 3, &counters);
    CrackInTwo(data.data(), p1, env.n, 2 * env.n / 3, &counters);
    table.AddRow({"2x crack_in_two", TextTable::Num(timer.ElapsedSeconds()),
                  std::to_string(counters.touched)});
  }
  table.Print();
  std::printf("Expectation: the single pass touches ~n vs ~n + 2n/3.\n");
}

void AblationHybridPartitionSize(const BenchEnv& env) {
  std::printf("\n== B. hybrid initial-partition size (AICC, sequential) ==\n");
  const Column base = Column::UniquePermutation(env.n, env.seed);
  WorkloadParams params = DefaultWorkloadParams(env);
  params.num_queries = std::min<QueryId>(env.q, 500);
  const auto queries = MakeWorkload(WorkloadKind::kSequential, params);
  TextTable table({"partition values", "cumulative secs", "touched"});
  for (const Index partition : {1 << 12, 1 << 14, 1 << 16, 1 << 18}) {
    EngineConfig config = DefaultEngineConfig(env);
    config.hybrid_partition_values = partition;
    const RunResult run = RunSpec("aicc", base, config, queries);
    table.AddRow({std::to_string(partition),
                  TextTable::Num(run.CumulativeSeconds()),
                  std::to_string(run.CumulativeTouched())});
  }
  table.Print();
  std::printf(
      "Expectation: small partitions pay more per-partition bookkeeping per\n"
      "query; large ones re-scan more per crack — a shallow optimum between.\n");
}

void AblationSidewaysModes(const BenchEnv& env) {
  std::printf("\n== C. cracker-map modes on a sequential projection ==\n");
  const Index n = env.n;
  const Column head = Column::UniquePermutation(n, env.seed);
  std::vector<Value> tail_values(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) {
    tail_values[static_cast<size_t>(i)] = head[i] * 2 + 1;
  }
  const Column tail(std::move(tail_values));
  WorkloadParams params = DefaultWorkloadParams(env);
  params.num_queries = std::min<QueryId>(env.q, 1000);
  const auto queries = MakeWorkload(WorkloadKind::kSequential, params);

  TextTable table({"map mode", "cumulative secs", "touched"});
  struct ModeCase {
    const char* label;
    CrackerMap::Mode mode;
  };
  for (const ModeCase mode_case :
       {ModeCase{"crack (query-driven)", CrackerMap::Mode::kCrack},
        ModeCase{"dd1r (stochastic)", CrackerMap::Mode::kDd1r},
        ModeCase{"mdd1r (stochastic)", CrackerMap::Mode::kMdd1r}}) {
    EngineConfig config = DefaultEngineConfig(env);
    CrackerMap map(&head, &tail, config, mode_case.mode);
    Timer timer;
    for (const RangeQuery& q : queries) {
      QueryResult result;
      const Status status = map.Select(q.low, q.high, &result);
      SCRACK_CHECK(status.ok());
    }
    table.AddRow({mode_case.label, TextTable::Num(timer.ElapsedSeconds()),
                  std::to_string(map.stats().tuples_touched)});
  }
  table.Print();
  std::printf(
      "Expectation: the paper's robustness result carries over to maps —\n"
      "query-driven map cracking degenerates on sequential patterns, the\n"
      "stochastic modes stay flat.\n");
}

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Ablations: kernel choice, hybrid partition size, map modes",
              "design-choice sweeps beyond the paper's own", env);
  AblationCrackInThree(env);
  AblationHybridPartitionSize(env);
  AblationSidewaysModes(env);
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
