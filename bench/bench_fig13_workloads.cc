// Figure 13 — Periodic / ZoomOut / ZoomIn / ZoomInAlt workloads.
//
// Paper shape: Scrack (P10%) is robust on all four; original cracking
// fails (ZoomOut, ZoomInAlt badly — it even loses the low-initialization
// advantage over Sort), behaves acceptably only where the workload itself
// carries randomness.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/2000);
  PrintHeader("Figure 13: various workloads under stochastic cracking",
              "Sort vs Crack vs Scrack (P10%), cumulative seconds", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto points = LogSpacedPoints(env.q);

  for (const WorkloadKind kind :
       {WorkloadKind::kPeriodic, WorkloadKind::kZoomOut, WorkloadKind::kZoomIn,
        WorkloadKind::kZoomInAlt}) {
    const auto queries = MakeWorkload(kind, DefaultWorkloadParams(env));
    std::vector<RunResult> runs;
    for (const std::string spec : {"sort", "crack", "pmdd1r:10"}) {
      runs.push_back(RunSpec(spec, base, config, queries));
    }
    runs.back().engine_name = "scrack(P10%)";
    PrintCumulativeCurves("Fig 13 " + WorkloadName(kind), runs, points);
  }
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
