// Figure 12 — naive random-injection baselines on the sequential workload.
//
// RkCrack forces one random query per k user queries through original
// cracking. Paper shape: all RkCrack variants beat plain Crack by about an
// order of magnitude, but integrated stochastic cracking (Scrack = P10%)
// gains another order and actually converges (flat curve), which the naive
// approaches do not.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 12: naive approaches (forced random queries)",
              "sequential workload, cumulative response time", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  std::vector<RunResult> runs;
  for (const std::string spec : {"crack", "r1crack", "r2crack", "r4crack",
                                 "r8crack", "pmdd1r:10"}) {
    runs.push_back(RunSpec(spec, base, config, queries));
  }
  runs.back().engine_name = "scrack(P10%)";
  PrintCumulativeCurves("Fig 12 naive random injection", runs, points);
  std::printf(
      "\nPaper shape: Crack worst; R1..R8crack ~1 order better but not\n"
      "converging; integrated stochastic cracking another order better and\n"
      "flat after a few queries.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
