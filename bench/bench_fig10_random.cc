// Figure 10 — random workload: stochastic cracking must keep original
// cracking's adaptivity. All variants track Crack's cumulative curve
// closely; Crack is only marginally faster during the first few queries.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 10: random workload",
              "all stochastic variants retain original cracking's behaviour",
              env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kRandom, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  std::vector<RunResult> runs;
  for (const std::string spec :
       {"sort", "ddc", "dd1c", "ddr", "dd1r", "pmdd1r:50", "crack"}) {
    runs.push_back(RunSpec(spec, base, config, queries));
  }
  PrintCumulativeCurves("Fig 10 random workload", runs, points);
  std::printf(
      "\nPaper shape: all cracking variants cluster together well below\n"
      "Sort's first-query cost; Sort amortizes only late (if at all).\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
