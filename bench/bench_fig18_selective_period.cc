// Figure 18 (table) — selective stochastic cracking with varying period on
// the SkyServer workload: stochastic every X-th query, original otherwise.
//
// Paper: 25 / 62 / 65 / 97 / 153 / 239 seconds for X = 1 / 2 / 4 / 8 / 16 /
// 32 — performance degrades monotonically as stochastic actions are applied
// less often. X=1 (continuous stochastic cracking) wins.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/10'000);
  PrintHeader("Figure 18: selective stochastic cracking, varying period",
              "SkyServer workload; stochastic every X queries", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSkyServer, DefaultWorkloadParams(env));

  TextTable table({"X (stochastic every X queries)", "cumulative secs"});
  for (const int x : {1, 2, 4, 8, 16, 32}) {
    const std::string spec =
        x == 1 ? std::string("mdd1r") : "everyx:" + std::to_string(x);
    const RunResult run = RunSpec(spec, base, config, queries);
    table.AddRow({std::to_string(x), TextTable::Num(run.CumulativeSeconds())});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper (Fig. 18, 160k queries): 25 / 62 / 65 / 97 / 153 / 239 secs —\n"
      "monotone degradation as stochastic cracking is applied less often.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
