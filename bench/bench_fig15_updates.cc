// Figure 15 — adaptive updates: high-frequency, low-volume update stream
// (10 random inserts arriving with every 10 queries) interleaved with the
// sequential workload.
//
// Paper shape: Scrack keeps its robust flat cumulative curve — updates do
// not disturb it — while Crack shows the same sequential-workload failure
// as without updates.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 15: high frequency / low volume updates",
              "sequential workload + 10 random inserts per 10 queries", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  std::vector<RunResult> runs;
  for (const std::string spec : {"crack", "pmdd1r:10"}) {
    // 10 updates arrive with every 10th query; values land anywhere in the
    // (growing) domain. The RNG is per-run so both engines see the same
    // update stream.
    auto update_rng = std::make_shared<Rng>(env.seed + 7);
    RunOptions options;
    const Index n = env.n;
    options.before_query = [update_rng, n](QueryId i,
                                           SelectEngine* engine) -> Status {
      if (i % 10 != 0) return Status::OK();
      for (int u = 0; u < 10; ++u) {
        SCRACK_RETURN_NOT_OK(engine->StageInsert(
            update_rng->UniformValue(0, n)));
      }
      return Status::OK();
    };
    runs.push_back(RunSpec(spec, base, config, queries, options));
  }
  runs.back().engine_name = "scrack(P10%)";
  PrintCumulativeCurves("Fig 15 updates", runs, points);
  std::printf(
      "\nPaper shape: Scrack unaffected by the update stream (flat curve),\n"
      "Crack remains 1-2 orders worse cumulatively under sequential.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
