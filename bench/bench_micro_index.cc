// Micro-benchmarks (google-benchmark) for the cracker index structure:
// the from-scratch AVL tree vs std::map on the operations cracking issues
// (insert-once, floor/higher piece lookups), plus end-to-end piece lookup
// through CrackerIndex. This is the ablation DESIGN.md calls out for the
// paper's choice of tree-backed cracker index.
#include <benchmark/benchmark.h>

#include <map>

#include "index/avl_tree.h"
#include "index/cracker_index.h"
#include "util/rng.h"

namespace scrack {
namespace {

void BM_AvlInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    AvlTree tree;
    for (int64_t i = 0; i < n; ++i) {
      tree.Insert(static_cast<Value>(rng.Next64() % 100'000'000),
                  static_cast<Index>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AvlInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_StdMapInsert(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    std::map<Value, Index> tree;
    for (int64_t i = 0; i < n; ++i) {
      tree.emplace(static_cast<Value>(rng.Next64() % 100'000'000),
                   static_cast<Index>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StdMapInsert)->Arg(1 << 10)->Arg(1 << 14);

void BM_AvlPieceLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  AvlTree tree;
  Rng rng(2);
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(static_cast<Value>(rng.Next64() % 100'000'000),
                static_cast<Index>(i));
  }
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Next64() % 100'000'000);
    benchmark::DoNotOptimize(tree.Floor(v));
    benchmark::DoNotOptimize(tree.Higher(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AvlPieceLookup)->Arg(1 << 10)->Arg(1 << 16);

void BM_StdMapPieceLookup(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::map<Value, Index> tree;
  Rng rng(2);
  for (int64_t i = 0; i < n; ++i) {
    tree.emplace(static_cast<Value>(rng.Next64() % 100'000'000),
                 static_cast<Index>(i));
  }
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Next64() % 100'000'000);
    auto it = tree.upper_bound(v);  // Higher
    benchmark::DoNotOptimize(it);
    if (it != tree.begin()) --it;   // Floor
    benchmark::DoNotOptimize(it);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapPieceLookup)->Arg(1 << 10)->Arg(1 << 16);

void BM_CrackerIndexFindPiece(benchmark::State& state) {
  const int64_t n = state.range(0);
  CrackerIndex index(100'000'000);
  Rng rng(3);
  for (int64_t i = 0; i < n; ++i) {
    const Value v = static_cast<Value>(rng.Next64() % 100'000'000);
    index.AddCrack(v, v);  // positions ~ values for a permutation dataset
  }
  for (auto _ : state) {
    const Value v = static_cast<Value>(rng.Next64() % 100'000'000);
    benchmark::DoNotOptimize(index.FindPiece(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrackerIndexFindPiece)->Arg(1 << 10)->Arg(1 << 16);

}  // namespace
}  // namespace scrack

BENCHMARK_MAIN();
