// Kernel microbenchmark: throughput of the scalar (seed), predicated, AVX2,
// dispatched, and multi-threaded parallel cracking kernels, with
// machine-readable JSON output so the perf trajectory survives across PRs.
//
// Usage:
//   bench_kernels [--quick] [--json=PATH] [--threads=N]
//
//   --quick      2M values, 3 reps (CI smoke); default 10M values, 5 reps.
//   --json=PATH  where to write the JSON report (default BENCH_kernels.json
//                in the current directory).
//   --threads=N  max thread count for the parallel partition rows (default
//                8; rows run at 1/2/4/... up to N).
//   SCRACK_N / SCRACK_SEED env vars override the element count and seed
//   (SCRACK_N=100000000 reproduces the acceptance numbers).
//
// Besides timing, the binary is a parity gate: it verifies that the
// dispatched kernels produce the same splits, multisets, and counters as
// the scalar reference, that the dispatched output is bit-identical to
// the predicated implementation (the documented contract), and that the
// parallel kernels produce byte-identical layouts at every thread count
// with the sequential split/multiset. Any divergence makes the process
// exit nonzero, which is what the CI bench-kernels job checks.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cracking/kernel.h"
#include "cracking/kernel_parallel.h"
#include "harness/report.h"
#include "index/cracker_index.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"
#include "util/simd.h"

namespace scrack {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Order-insensitive multiset checksum (for scalar-vs-dispatched parity,
/// whose layouts legitimately differ).
uint64_t MultisetChecksum(const std::vector<Value>& data) {
  uint64_t acc = 0;
  for (Value v : data) {
    uint64_t x = static_cast<uint64_t>(v) + 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    acc += x ^ (x >> 31);
  }
  return acc;
}

/// Order-sensitive checksum (FNV-1a over bytes) for bit-identity checks.
uint64_t ByteChecksum(const std::vector<Value>& data) {
  uint64_t h = 1469598103934665603ULL;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  const size_t bytes = data.size() * sizeof(Value);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

struct BenchRow {
  std::string kernel;
  std::string variant;
  double seconds = 0;
  double gbps = 0;
};

struct Config {
  Index n = 0;
  int reps = 0;
  bool quick = false;
  uint64_t seed = 42;
  int max_threads = 8;
};

/// Times `run` over `reps` repetitions on a fresh copy of `pristine` each
/// time (copy excluded from the timing); returns the median.
template <typename F>
double MedianSeconds(const std::vector<Value>& pristine, int reps, F&& run) {
  std::vector<double> times;
  std::vector<Value> work;
  for (int r = 0; r < reps; ++r) {
    work = pristine;
    const double start = Now();
    run(work.data());
    times.push_back(Now() - start);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

double Gbps(Index n, double seconds) {
  return static_cast<double>(n) * sizeof(Value) / seconds / 1e9;
}

struct ParityCheck {
  std::string name;
  bool ok = true;
  std::string detail;
};

// Global collection of results, filled by the Run* helpers.
std::vector<BenchRow> g_rows;
std::vector<ParityCheck> g_checks;

void Report(const std::string& kernel, const std::string& variant, Index n,
            double seconds) {
  BenchRow row;
  row.kernel = kernel;
  row.variant = variant;
  row.seconds = seconds;
  row.gbps = Gbps(n, seconds);
  std::printf("  %-22s %-12s %10.4f s   %7.2f GB/s\n", kernel.c_str(),
              variant.c_str(), seconds, row.gbps);
  g_rows.push_back(row);
}

void Check(const std::string& name, bool ok, const std::string& detail) {
  ParityCheck check;
  check.name = name;
  check.ok = ok;
  check.detail = detail;
  if (!ok) {
    std::fprintf(stderr, "PARITY FAILURE: %s (%s)\n", name.c_str(),
                 detail.c_str());
  }
  g_checks.push_back(check);
}

void BenchCrackInTwo(const Config& cfg, const std::vector<Value>& pristine,
                     Value pivot) {
  const Index n = cfg.n;
  std::printf("CrackInTwo (pivot = median)\n");
  KernelCounters c;
  Report("crack_in_two", "scalar", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInTwoScalar(d, 0, n, pivot, &c);
         }));
  Report("crack_in_two", "predicated", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInTwoPredicated(d, 0, n, pivot, &c);
         }));
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    Report("crack_in_two", "avx2", n,
           MedianSeconds(pristine, cfg.reps, [&](Value* d) {
             avx2::CrackInTwo(d, 0, n, pivot, &c);
           }));
  }
#endif
  Report("crack_in_two", "dispatched", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInTwo(d, 0, n, pivot, &c);
         }));

  // Parity: dispatched vs scalar (multiset + split + counters) and
  // dispatched vs predicated (bit-identical).
  std::vector<Value> ref = pristine;
  std::vector<Value> pred = pristine;
  std::vector<Value> disp = pristine;
  KernelCounters ref_c;
  KernelCounters pred_c;
  KernelCounters disp_c;
  const Index ref_split = CrackInTwoScalar(ref.data(), 0, n, pivot, &ref_c);
  const Index pred_split =
      CrackInTwoPredicated(pred.data(), 0, n, pivot, &pred_c);
  const Index disp_split = CrackInTwo(disp.data(), 0, n, pivot, &disp_c);
  Check("crack_in_two.split",
        ref_split == pred_split && ref_split == disp_split,
        "splits " + std::to_string(ref_split) + "/" +
            std::to_string(pred_split) + "/" + std::to_string(disp_split));
  Check("crack_in_two.multiset",
        MultisetChecksum(disp) == MultisetChecksum(ref),
        "dispatched multiset != scalar multiset");
  Check("crack_in_two.bitident", ByteChecksum(disp) == ByteChecksum(pred),
        "dispatched layout != predicated layout");
  Check("crack_in_two.counters",
        ref_c.touched == disp_c.touched && pred_c.touched == disp_c.touched &&
            pred_c.swaps == disp_c.swaps,
        "touched diverges, or dispatched swaps != predicated swaps");
}

void BenchCrackInThree(const Config& cfg, const std::vector<Value>& pristine,
                       Value lo, Value hi) {
  const Index n = cfg.n;
  std::printf("CrackInThree (middle = 10%%)\n");
  KernelCounters c;
  Report("crack_in_three", "scalar", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInThreeScalar(d, 0, n, lo, hi, &c);
         }));
  Report("crack_in_three", "predicated", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInThreePredicated(d, 0, n, lo, hi, &c);
         }));
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    Report("crack_in_three", "avx2", n,
           MedianSeconds(pristine, cfg.reps, [&](Value* d) {
             avx2::CrackInThree(d, 0, n, lo, hi, &c);
           }));
  }
#endif
  Report("crack_in_three", "dispatched", n,
         MedianSeconds(pristine, cfg.reps, [&](Value* d) {
           CrackInThree(d, 0, n, lo, hi, &c);
         }));

  std::vector<Value> ref = pristine;
  std::vector<Value> pred = pristine;
  std::vector<Value> disp = pristine;
  KernelCounters ref_c;
  KernelCounters pred_c;
  KernelCounters disp_c;
  const auto ref_split = CrackInThreeScalar(ref.data(), 0, n, lo, hi, &ref_c);
  const auto pred_split =
      CrackInThreePredicated(pred.data(), 0, n, lo, hi, &pred_c);
  const auto disp_split = CrackInThree(disp.data(), 0, n, lo, hi, &disp_c);
  Check("crack_in_three.splits",
        ref_split == pred_split && ref_split == disp_split,
        "split pair mismatch");
  Check("crack_in_three.multiset",
        MultisetChecksum(disp) == MultisetChecksum(ref),
        "dispatched multiset != scalar multiset");
  Check("crack_in_three.bitident", ByteChecksum(disp) == ByteChecksum(pred),
        "dispatched layout != predicated layout");
  Check("crack_in_three.touched", ref_c.touched == disp_c.touched,
        "touched diverges");
}

void BenchFilterInto(const Config& cfg, const std::vector<Value>& pristine,
                     Value qlo, Value qhi) {
  const Index n = cfg.n;
  std::printf("FilterInto (10%% selectivity)\n");
  KernelCounters c;
  std::vector<Value> out;
  const auto run_with = [&](auto&& kernel) {
    return MedianSeconds(pristine, cfg.reps, [&](Value* d) {
      out.clear();
      kernel(d, &out);
    });
  };
  Report("filter_into", "scalar", n, run_with([&](Value* d, auto* o) {
           FilterIntoScalar(d, 0, n, qlo, qhi, o, &c);
         }));
  Report("filter_into", "predicated", n, run_with([&](Value* d, auto* o) {
           FilterIntoPredicated(d, 0, n, qlo, qhi, o, &c);
         }));
#if defined(SCRACK_HAVE_AVX2)
  if (simd::Supported()) {
    Report("filter_into", "avx2", n, run_with([&](Value* d, auto* o) {
             avx2::FilterInto(d, 0, n, qlo, qhi, o, &c);
           }));
  }
#endif
  Report("filter_into", "dispatched", n, run_with([&](Value* d, auto* o) {
           FilterInto(d, 0, n, qlo, qhi, o, &c);
         }));

  std::vector<Value> ref_out;
  std::vector<Value> disp_out;
  KernelCounters pc;
  FilterIntoScalar(pristine.data(), 0, n, qlo, qhi, &ref_out, &pc);
  FilterInto(pristine.data(), 0, n, qlo, qhi, &disp_out, &pc);
  Check("filter_into.exact", ref_out == disp_out,
        "dispatched filter output != scalar output");
}

void BenchFolds(const Config& cfg, const std::vector<Value>& pristine,
                Value qlo, Value qhi) {
  const Index n = cfg.n;
  std::printf("Fold kernels (10%% selectivity)\n");
  const auto time_fold = [&](auto&& fold) {
    std::vector<double> times;
    for (int r = 0; r < cfg.reps; ++r) {
      const double start = Now();
      fold();
      times.push_back(Now() - start);
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };
  // volatile sinks so the folds aren't optimized away.
  volatile int64_t sink = 0;
  Report("count_in_range", "scalar", n, time_fold([&] {
           sink = CountInRangeScalar(pristine.data(), 0, n, qlo, qhi);
         }));
  Report("count_in_range", "dispatched", n, time_fold([&] {
           sink = CountInRange(pristine.data(), 0, n, qlo, qhi);
         }));
  Report("sum_in_range", "scalar", n, time_fold([&] {
           sink = SumInRangeScalar(pristine.data(), 0, n, qlo, qhi).sum;
         }));
  Report("sum_in_range", "dispatched", n, time_fold([&] {
           sink = SumInRange(pristine.data(), 0, n, qlo, qhi).sum;
         }));
  (void)sink;

  const RangeSum ref = SumInRangeScalar(pristine.data(), 0, n, qlo, qhi);
  const RangeSum disp = SumInRange(pristine.data(), 0, n, qlo, qhi);
  Check("folds.sum", ref.count == disp.count && ref.sum == disp.sum,
        "dispatched sum fold diverges");
  const RangeMinMax mm_ref =
      MinMaxInRangeScalar(pristine.data(), 0, n, qlo, qhi);
  const RangeMinMax mm_disp = MinMaxInRange(pristine.data(), 0, n, qlo, qhi);
  Check("folds.minmax",
        mm_ref.count == mm_disp.count &&
            (mm_ref.count == 0 ||
             (mm_ref.min == mm_disp.min && mm_ref.max == mm_disp.max)),
        "dispatched minmax fold diverges");
}

// Parallel partition rows: the first-touch sweep at 1/2/4/... threads,
// with the parity gates the exit code depends on — sequential split and
// multiset, plus byte-identical layouts across every thread count.
void BenchParallelCrack(const Config& cfg, const std::vector<Value>& pristine,
                        Value pivot, Value lo, Value hi) {
  const Index n = cfg.n;
  std::printf("Parallel CrackInTwo / CrackInThree (shared pool, %d workers)\n",
              ThreadPool::Shared().num_threads());

  std::vector<int> counts;
  for (int t = 1; t <= cfg.max_threads; t *= 2) counts.push_back(t);
  if (counts.empty()) counts.push_back(1);

  KernelCounters c;
  for (int t : counts) {
    ParallelContext ctx;
    ctx.pool = &ThreadPool::Shared();
    ctx.max_concurrency = t;
    Report("parallel_crack_in_two", "t" + std::to_string(t), n,
           MedianSeconds(pristine, cfg.reps, [&](Value* d) {
             ParallelCrackInTwo(d, 0, n, pivot, ctx, &c);
           }));
  }
  {
    ParallelContext ctx;
    ctx.pool = &ThreadPool::Shared();
    ctx.max_concurrency = cfg.max_threads;
    Report("parallel_crack_in_two", "inplace_t" + std::to_string(cfg.max_threads),
           n, MedianSeconds(pristine, cfg.reps, [&](Value* d) {
             ParallelCrackInTwoInPlace(d, 0, n, pivot, ctx, &c);
           }));
    Report("parallel_crack_in_three", "t" + std::to_string(cfg.max_threads),
           n, MedianSeconds(pristine, cfg.reps, [&](Value* d) {
             ParallelCrackInThree(d, 0, n, lo, hi, ctx, &c);
           }));
  }

  // Parity: sequential reference once, then every thread count against it.
  std::vector<Value> ref = pristine;
  KernelCounters ref_c;
  const Index ref_split = CrackInTwo(ref.data(), 0, n, pivot, &ref_c);
  const uint64_t ref_multiset = MultisetChecksum(ref);

  std::vector<Value> first;
  uint64_t first_bytes = 0;
  for (int t : counts) {
    ParallelContext ctx;
    ctx.pool = &ThreadPool::Shared();
    ctx.max_concurrency = t;
    std::vector<Value> work = pristine;
    KernelCounters par_c;
    const Index split = ParallelCrackInTwo(work.data(), 0, n, pivot, ctx,
                                           &par_c);
    const std::string tag = "parallel_crack_in_two.t" + std::to_string(t);
    Check(tag + ".split", split == ref_split,
          "parallel split " + std::to_string(split) + " != sequential " +
              std::to_string(ref_split));
    Check(tag + ".multiset", MultisetChecksum(work) == ref_multiset,
          "parallel multiset != sequential multiset");
    Check(tag + ".touched", par_c.touched == ref_c.touched,
          "parallel touched != sequential touched");
    if (first.empty()) {
      first = std::move(work);
      first_bytes = ByteChecksum(first);
    } else {
      Check(tag + ".thread_invariant", ByteChecksum(work) == first_bytes,
            "layout differs between thread counts");
    }
  }
  {
    // In-place variant: same split and multiset, thread-count-invariant.
    ParallelContext ctx;
    ctx.pool = &ThreadPool::Shared();
    std::vector<Value> once;
    uint64_t once_bytes = 0;
    for (int t : {1, cfg.max_threads}) {
      ctx.max_concurrency = t;
      std::vector<Value> work = pristine;
      KernelCounters par_c;
      const Index split = ParallelCrackInTwoInPlace(work.data(), 0, n, pivot,
                                                    ctx, &par_c);
      const std::string tag =
          "parallel_crack_in_two_inplace.t" + std::to_string(t);
      Check(tag + ".split", split == ref_split, "in-place split diverges");
      Check(tag + ".multiset", MultisetChecksum(work) == ref_multiset,
            "in-place multiset diverges");
      if (once.empty()) {
        once = std::move(work);
        once_bytes = ByteChecksum(once);
      } else {
        Check(tag + ".thread_invariant", ByteChecksum(work) == once_bytes,
              "in-place layout differs between thread counts");
      }
    }
  }
  {
    // CrackInThree: bit-identical to the sequential dispatched kernel.
    std::vector<Value> ref3 = pristine;
    KernelCounters ref3_c;
    const auto ref3_split = CrackInThree(ref3.data(), 0, n, lo, hi, &ref3_c);
    ParallelContext ctx;
    ctx.pool = &ThreadPool::Shared();
    ctx.max_concurrency = cfg.max_threads;
    std::vector<Value> work = pristine;
    KernelCounters par_c;
    const auto split =
        ParallelCrackInThree(work.data(), 0, n, lo, hi, ctx, &par_c);
    Check("parallel_crack_in_three.splits", split == ref3_split,
          "split pair mismatch");
    Check("parallel_crack_in_three.bitident",
          ByteChecksum(work) == ByteChecksum(ref3),
          "parallel layout != sequential out-of-place layout");
    Check("parallel_crack_in_three.counters",
          par_c.touched == ref3_c.touched && par_c.swaps == ref3_c.swaps,
          "parallel counters diverge from sequential");
  }
}

// FindPiece micro-bench: the prefetched branch-free binary search against a
// plain std::upper_bound over the same keys, at 1M pieces — far past any
// cache, where the prefetch ladder pays. "gbps" for these rows is lookup
// throughput in 1e9 lookups/sec (the JSON schema's throughput slot).
void BenchFindPiece(const Config& cfg) {
  const Index pieces = cfg.quick ? 250'000 : 1'000'000;
  const Index lookups = cfg.quick ? 2'000'000 : 5'000'000;
  std::printf("FindPiece (%lld pieces, %lld lookups)\n",
              static_cast<long long>(pieces),
              static_cast<long long>(lookups));

  // Cracks every 16 values over a [0, 16 * pieces) domain.
  std::vector<CrackerIndex::Entry> entries;
  entries.reserve(static_cast<size_t>(pieces));
  for (Index i = 1; i <= pieces; ++i) {
    entries.push_back(CrackerIndex::Entry{i * 16, i * 16});
  }
  const Index column_size = (pieces + 1) * 16;
  const CrackerIndex index = CrackerIndex::FromSorted(entries, column_size);
  std::vector<Value> keys;
  keys.reserve(entries.size());
  for (const auto& entry : entries) keys.push_back(entry.key);

  std::vector<Value> probes(static_cast<size_t>(lookups));
  Rng rng(cfg.seed + 5);
  for (auto& v : probes) v = rng.UniformValue(0, column_size);

  const auto time_lookups = [&](auto&& fn) {
    std::vector<double> times;
    for (int r = 0; r < cfg.reps; ++r) {
      const double start = Now();
      fn();
      times.push_back(Now() - start);
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
  };

  volatile int64_t sink = 0;
  int64_t acc = 0;
  const double std_secs = time_lookups([&] {
    acc = 0;
    for (Value v : probes) {
      const auto it = std::upper_bound(keys.begin(), keys.end(), v);
      acc += it == keys.begin() ? 0 : *(it - 1);
    }
    sink = acc;
  });
  const double prefetch_secs = time_lookups([&] {
    acc = 0;
    for (Value v : probes) {
      acc += index.FindPiece(v).begin;
    }
    sink = acc;
  });
  (void)sink;

  // Cross-check: FindPiece agrees with the std::upper_bound model.
  bool agree = true;
  for (Index i = 0; i < 10000 && agree; ++i) {
    const Value v = probes[static_cast<size_t>(i)];
    const Piece piece = index.FindPiece(v);
    const auto it = std::upper_bound(keys.begin(), keys.end(), v);
    const Index model_begin = it == keys.begin() ? 0 : *(it - 1);
    agree = piece.begin == model_begin;
  }
  Check("find_piece.model", agree,
        "prefetched FindPiece disagrees with std::upper_bound model");

  const auto lookup_row = [&](const char* variant, double secs) {
    BenchRow row;
    row.kernel = "find_piece";
    row.variant = variant;
    row.seconds = secs;
    // Lookup rows record Mlookups/s in the throughput slot (these rows are
    // only ever compared against themselves across runs).
    row.gbps = static_cast<double>(lookups) / secs / 1e6;
    std::printf("  %-22s %-12s %10.4f s   %7.2f Mlookups/s\n", "find_piece",
                variant, secs, row.gbps);
    g_rows.push_back(row);
  };
  lookup_row("upper_bound_std", std_secs);
  lookup_row("prefetched", prefetch_secs);
}

double FindSeconds(const std::string& kernel, const std::string& variant) {
  for (const BenchRow& row : g_rows) {
    if (row.kernel == kernel && row.variant == variant) return row.seconds;
  }
  return 0;
}

void WriteJson(const std::string& path, const Config& cfg) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  bool all_ok = true;
  for (const ParityCheck& check : g_checks) all_ok &= check.ok;
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"meta\": {\"n\": %lld, \"reps\": %d, \"quick\": %s, "
               "\"seed\": %llu, \"avx2_compiled\": %s, "
               "\"avx2_supported\": %s},\n",
               static_cast<long long>(cfg.n), cfg.reps,
               cfg.quick ? "true" : "false",
               static_cast<unsigned long long>(cfg.seed),
               simd::CompiledWithAvx2() ? "true" : "false",
               simd::Supported() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const BenchRow& row = g_rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                 "\"seconds\": %.6f, \"gbps\": %.3f}%s\n",
                 row.kernel.c_str(), row.variant.c_str(), row.seconds,
                 row.gbps, i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_dispatched_vs_scalar\": {\n");
  const char* kernels[] = {"crack_in_two", "crack_in_three", "filter_into",
                           "count_in_range", "sum_in_range"};
  for (size_t i = 0; i < 5; ++i) {
    const double scalar = FindSeconds(kernels[i], "scalar");
    const double disp = FindSeconds(kernels[i], "dispatched");
    std::fprintf(f, "    \"%s\": %.3f%s\n", kernels[i],
                 disp > 0 ? scalar / disp : 0.0, i + 1 < 5 ? "," : "");
  }
  std::fprintf(f, "  },\n");
  // Parallel first-touch speedup over the sequential dispatched kernel —
  // the intra-query parallelism acceptance numbers.
  std::fprintf(f, "  \"parallel_speedup_vs_dispatched\": {\n");
  {
    const double seq = FindSeconds("crack_in_two", "dispatched");
    bool first = true;
    for (const BenchRow& row : g_rows) {
      if (row.kernel != "parallel_crack_in_two" || row.seconds <= 0) continue;
      std::fprintf(f, "%s    \"%s\": %.3f", first ? "" : ",\n",
                   row.variant.c_str(), seq / row.seconds);
      first = false;
    }
    std::fprintf(f, "\n  },\n");
  }
  std::fprintf(f, "  \"parity\": {\n");
  std::fprintf(f, "    \"ok\": %s,\n", all_ok ? "true" : "false");
  std::fprintf(f, "    \"checks\": [\n");
  for (size_t i = 0; i < g_checks.size(); ++i) {
    std::fprintf(f, "      {\"name\": \"%s\", \"ok\": %s}%s\n",
                 g_checks[i].name.c_str(), g_checks[i].ok ? "true" : "false",
                 i + 1 < g_checks.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n  }\n}\n");
  std::fclose(f);
  std::printf("\nJSON report written to %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  Config cfg;
  std::string json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      cfg.quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cfg.max_threads = std::atoi(arg.c_str() + 10);
      if (cfg.max_threads < 1 || cfg.max_threads > 1024) {
        std::fprintf(stderr, "--threads out of range [1, 1024]\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--json=PATH] [--threads=N]\n",
                   argv[0]);
      return 2;
    }
  }
  cfg.n = static_cast<Index>(
      EnvInt64("SCRACK_N", cfg.quick ? 2'000'000 : 10'000'000));
  cfg.reps = cfg.quick ? 3 : 5;
  cfg.seed = static_cast<uint64_t>(EnvInt64("SCRACK_SEED", 42));

  std::printf("bench_kernels: N=%lld reps=%d avx2_compiled=%d "
              "avx2_supported=%d\n\n",
              static_cast<long long>(cfg.n), cfg.reps,
              simd::CompiledWithAvx2() ? 1 : 0, simd::Supported() ? 1 : 0);

  Rng rng(cfg.seed);
  std::vector<Value> pristine(static_cast<size_t>(cfg.n));
  for (auto& v : pristine) v = rng.UniformValue(0, cfg.n);

  const Value pivot = cfg.n / 2;
  const Value qlo = cfg.n / 2 - cfg.n / 20;  // 10% middle band
  const Value qhi = cfg.n / 2 + cfg.n / 20;

  BenchCrackInTwo(cfg, pristine, pivot);
  BenchCrackInThree(cfg, pristine, qlo, qhi);
  BenchFilterInto(cfg, pristine, qlo, qhi);
  BenchFolds(cfg, pristine, qlo, qhi);
  BenchParallelCrack(cfg, pristine, pivot, qlo, qhi);
  BenchFindPiece(cfg);

  bool all_ok = true;
  for (const ParityCheck& check : g_checks) all_ok &= check.ok;
  std::printf("\nparity: %s (%zu checks)\n", all_ok ? "OK" : "FAILED",
              g_checks.size());
  const double s2 = FindSeconds("crack_in_two", "scalar") /
                    FindSeconds("crack_in_two", "dispatched");
  const double s3 = FindSeconds("crack_in_three", "scalar") /
                    FindSeconds("crack_in_three", "dispatched");
  std::printf("speedup dispatched vs scalar: crack_in_two %.2fx, "
              "crack_in_three %.2fx\n",
              s2, s3);
  WriteJson(json_path, cfg);
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace scrack

int main(int argc, char** argv) { return scrack::Main(argc, argv); }
