// Parallel scaling — the sharded engine vs the single-lock baseline.
//   (a) single query stream: sharded(P,mdd1r) for P in {1,2,4,8} against
//       bare mdd1r and threadsafe:mdd1r. Range partitioning means each
//       shard cracks a column 1/P-th the size, so convergence is faster
//       even before any thread-level parallelism.
//   (b) concurrent client streams: wall-clock for C threads firing the
//       same random workload at one shared engine — the case the
//       single-mutex baseline serializes and per-shard locking does not.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "util/timer.h"

namespace scrack {
namespace bench {
namespace {

double ConcurrentWallClock(SelectEngine* engine,
                           const std::vector<RangeQuery>& queries,
                           int clients) {
  std::atomic<int> failures{0};
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      // Interleave: client c takes every clients-th query.
      for (size_t i = static_cast<size_t>(c); i < queries.size();
           i += static_cast<size_t>(clients)) {
        QueryResult result;
        if (!engine->Select(queries[i].low, queries[i].high, &result).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SCRACK_CHECK(failures.load() == 0);
  return timer.ElapsedSeconds();
}

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/2000);
  PrintHeader("Parallel scaling: sharded(P,mdd1r)",
              "range-partitioned shards vs the single-lock baseline", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kRandom, DefaultWorkloadParams(env));
  const auto points = LogSpacedPoints(env.q);

  // (a) one query stream: partitioning effect only.
  std::vector<RunResult> runs;
  for (const std::string spec :
       {"mdd1r", "threadsafe:mdd1r", "sharded(1,mdd1r)", "sharded(2,mdd1r)",
        "sharded(4,mdd1r)", "sharded(8,mdd1r)"}) {
    runs.push_back(RunSpec(spec, base, config, queries));
  }
  PrintCumulativeCurves("(a) single stream, cumulative seconds", runs,
                        points);

  // (b) C concurrent clients sharing one engine.
  TextTable table({"engine", "1 client", "2 clients", "4 clients",
                   "8 clients"});
  for (const std::string spec :
       {"threadsafe:mdd1r", "sharded(2,mdd1r)", "sharded(4,mdd1r)",
        "sharded(8,mdd1r)"}) {
    std::vector<std::string> row{spec};
    for (int clients : {1, 2, 4, 8}) {
      auto engine = CreateEngineOrDie(spec, &base, config);
      row.push_back(
          TextTable::Num(ConcurrentWallClock(engine.get(), queries, clients)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n(b) shared engine, wall-clock seconds for the whole "
              "workload:\n");
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
