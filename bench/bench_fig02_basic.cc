// Figure 2 — basic cracking performance.
//   (a) per-query response time, random workload: Scan flat-high, Sort
//       pays everything on query 1 then is fastest, Crack starts near Scan
//       and converges toward Sort.
//   (b) per-query response time, sequential workload: Crack fails to
//       improve and tracks Scan.
//   (c,d) the same two runs as cumulative curves: Sort never amortizes vs
//       Crack under random; under sequential Sort amortizes after ~100
//       queries while Crack stays Scan-like.
//   (e) tuples touched per cracking query: drops fast under random, barely
//       falls under sequential.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 2(a-e): basic cracking performance",
              "Scan vs Sort vs Crack under random and sequential workloads",
              env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto points = LogSpacedPoints(env.q);

  for (const WorkloadKind kind :
       {WorkloadKind::kRandom, WorkloadKind::kSequential}) {
    const auto queries = MakeWorkload(kind, DefaultWorkloadParams(env));
    std::vector<RunResult> runs;
    for (const std::string spec : {"scan", "sort", "crack"}) {
      runs.push_back(RunSpec(spec, base, config, queries));
    }
    const std::string title = WorkloadName(kind) + " workload";
    PrintPerQueryCurves("Fig 2(a/b) " + title, runs, points);
    PrintCumulativeCurves("Fig 2(c/d) " + title, runs, points);
    // Fig 2(e): tuples touched by the cracking query only.
    PrintTouchedCurves("Fig 2(e) " + title + " (Crack)", {runs[2]}, points);
  }
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
