// Convergence analysis: the physical shape behind the paper's curves.
//
// The paper argues from the tuples-touched metric (Fig. 2e); the underlying
// physical state is the piece-size distribution of the cracker column. This
// bench tracks #pieces and max/median piece size over the query sequence
// for Crack vs DD1R vs MDD1R on the random and sequential workloads:
//   * random + Crack: pieces multiply everywhere, max size collapses;
//   * sequential + Crack: one giant residual piece persists (max ~ N) —
//     the robustness pathology in its rawest form;
//   * sequential + DD1R/MDD1R: random cracks dismantle the giant piece.
#include "bench_common.h"
#include "cracking/crack_engine.h"
#include "cracking/stochastic_engine.h"

namespace scrack {
namespace bench {
namespace {

template <typename Engine>
void Track(const std::string& label, const std::vector<RangeQuery>& queries,
           Engine* engine) {
  std::printf("\n-- %s --\n", label.c_str());
  std::printf("%10s %10s %14s %14s %14s\n", "query#", "pieces", "max piece",
              "median piece", "mean piece");
  const auto points = LogSpacedPoints(static_cast<QueryId>(queries.size()));
  size_t next_point = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult result;
    const Status status =
        engine->Select(queries[i].low, queries[i].high, &result);
    SCRACK_CHECK(status.ok());
    if (next_point < points.size() &&
        static_cast<QueryId>(i) + 1 == points[next_point]) {
      ++next_point;
      const auto dist = engine->column().DescribePieces();
      std::printf("%10zu %10zu %14lld %14lld %14.0f\n", i + 1,
                  dist.num_pieces, static_cast<long long>(dist.max_size),
                  static_cast<long long>(dist.median_size), dist.mean_size);
    }
  }
}

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Analysis: piece-size distribution over the query sequence",
              "the physical state behind Fig. 2(e)'s touched counts", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);

  for (const WorkloadKind kind :
       {WorkloadKind::kRandom, WorkloadKind::kSequential}) {
    const auto queries = MakeWorkload(kind, DefaultWorkloadParams(env));
    {
      CrackEngine engine(&base, config);
      Track("crack on " + WorkloadName(kind), queries, &engine);
    }
    {
      DataDrivenEngine engine(&base, config, /*center_pivot=*/false,
                              /*recursive=*/false);
      Track("dd1r on " + WorkloadName(kind), queries, &engine);
    }
    {
      Mdd1rEngine engine(&base, config);
      Track("mdd1r on " + WorkloadName(kind), queries, &engine);
    }
  }
  std::printf(
      "\nReading: under sequential, Crack's max piece stays ~N (the giant\n"
      "unindexed residual) while DD1R/MDD1R break it down within a handful\n"
      "of queries — the structural cause of every robustness figure.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
