// Figure 17 (table) — all workloads x {Crack, Scrack, FiftyFifty, FlipCoin}.
//
// Scrack here is MDD1R ("All Stochastic Cracking variants use MDD1R", §5).
// Paper shape per row family:
//   * workloads with inherent randomness (Random, Skew, SeqRandom): Crack
//     on par or marginally ahead;
//   * deterministic focus patterns (Sequential, SeqReverse, ZoomOutAlt,
//     SkewZoomOutAlt, ZoomOut, SeqZoomOut, Mixed, SkyServer): Crack 2+
//     orders worse; FiftyFifty fails on the *Alt patterns (deterministic
//     alternation aligns with its own period); FlipCoin robust but behind
//     pure Scrack on SkyServer.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/1000);
  PrintHeader("Figure 17: selective stochastic cracking across workloads",
              "cumulative seconds per (workload x strategy)", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);

  std::vector<WorkloadKind> kinds = Fig17SyntheticKinds();
  kinds.push_back(WorkloadKind::kMixed);
  kinds.push_back(WorkloadKind::kSkyServer);

  const std::string specs[] = {"crack", "mdd1r", "fiftyfifty", "flipcoin"};
  TextTable table({"workload", "crack", "scrack", "fiftyfifty", "flipcoin"});
  for (const WorkloadKind kind : kinds) {
    const auto queries = MakeWorkload(kind, DefaultWorkloadParams(env));
    std::vector<std::string> row = {WorkloadName(kind)};
    for (const std::string& spec : specs) {
      const RunResult run = RunSpec(spec, base, config, queries);
      row.push_back(TextTable::Num(run.CumulativeSeconds()));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper shape (Fig. 17): Scrack robust everywhere; Crack fails on\n"
      "focused patterns by 2+ orders; FiftyFifty fails on ZoomOutAlt-style\n"
      "patterns; FlipCoin robust but behind pure Scrack.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
