// Figure 20 — the total-cost vs initialization-cost trade-off on the
// sequential workload.
//
// x-axis of the paper's scatter: cumulative time for the full sequence;
// y-axis: cumulative time after queries 1, 2, 4, 8, 16, 32. DD1R minimizes
// the total; progressive variants (P5%, P10%) minimize the burden on the
// first queries at some total-cost premium.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/2000);
  PrintHeader("Figure 20: summary — total vs initialization cost",
              "sequential workload; DD1R vs P5% vs P10%", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSequential, DefaultWorkloadParams(env));

  TextTable table({"algorithm", "total secs", "cum@1", "cum@2", "cum@4",
                   "cum@8", "cum@16", "cum@32"});
  for (const std::string spec : {"dd1r", "pmdd1r:5", "pmdd1r:10"}) {
    const RunResult run = RunSpec(spec, base, config, queries);
    std::vector<std::string> row = {run.engine_name,
                                    TextTable::Num(run.CumulativeSeconds())};
    for (const QueryId p : {1, 2, 4, 8, 16, 32}) {
      row.push_back(TextTable::Num(run.CumulativeSeconds(p)));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper shape: DD1R leftmost on total cost; P5%%/P10%% lower on the\n"
      "first-queries axis (cheaper initialization) at a small total-cost\n"
      "premium.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
