// Figure 16 — the SkyServer workload (synthetic trace; DESIGN.md §3).
//
// (a) cumulative response time: Scrack answers the whole sequence in a
//     small flat total; Crack needs ~2 orders of magnitude more (paper: 25s
//     vs >2000s for 160k queries; Sort 70s; Scan >8000s).
// (b) the access pattern itself, printed as a coarse trace so the
//     dwell-drift-jump structure is visible.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/10'000);
  PrintHeader("Figure 16: SkyServer workload (synthetic trace)",
              "Crack vs Scrack cumulative; plus the access pattern", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  WorkloadParams params = DefaultWorkloadParams(env);
  const auto queries = MakeWorkload(WorkloadKind::kSkyServer, params);
  const auto points = LogSpacedPoints(env.q);

  std::vector<RunResult> runs;
  for (const std::string spec : {"sort", "crack", "pmdd1r:10"}) {
    runs.push_back(RunSpec(spec, base, config, queries));
  }
  runs.back().engine_name = "scrack(P10%)";
  PrintCumulativeCurves("Fig 16(a) SkyServer", runs, points);

  // Fig 16(b): the access pattern, one sample row per ~2% of the sequence.
  std::printf("\n== Fig 16(b) access pattern (query -> low bound) ==\n");
  const size_t step = std::max<size_t>(1, queries.size() / 50);
  for (size_t i = 0; i < queries.size(); i += step) {
    const int bucket = static_cast<int>(
        60.0 * static_cast<double>(queries[i].low) /
        static_cast<double>(env.n));
    std::printf("%7zu |%*s*\n", i, bucket, "");
  }
  std::printf(
      "\nPaper shape: queries dwell on one region at a time; Crack pays for\n"
      "every region change, Scrack does not (25s vs 2274s at paper scale).\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
