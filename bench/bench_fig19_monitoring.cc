// Figure 19 (table) — selective stochastic cracking via per-piece
// monitoring (ScrackMon) on the SkyServer workload.
//
// A piece's crack counter (inherited on splits) must reach X before the
// next crack on it is stochastic. Paper: 25 / 83 / 127 / 366 / 585 / 1316
// seconds for X = 1 / 5 / 10 / 50 / 100 / 500 — again, continuous
// stochastic cracking (X=1) wins, monotone degradation beyond.
#include "bench_common.h"

namespace scrack {
namespace bench {
namespace {

void Run() {
  const BenchEnv env = ReadEnv(/*n=*/1'000'000, /*q=*/10'000);
  PrintHeader("Figure 19: selective stochastic cracking via monitoring",
              "SkyServer workload; ScrackMon threshold X", env);
  const Column base = Column::UniquePermutation(env.n, env.seed);
  const EngineConfig config = DefaultEngineConfig(env);
  const auto queries =
      MakeWorkload(WorkloadKind::kSkyServer, DefaultWorkloadParams(env));

  TextTable table({"X (cracks before stochastic)", "cumulative secs"});
  for (const int x : {1, 5, 10, 50, 100, 500}) {
    const RunResult run =
        RunSpec("scrackmon:" + std::to_string(x), base, config, queries);
    table.AddRow({std::to_string(x), TextTable::Num(run.CumulativeSeconds())});
  }
  std::printf("\n");
  table.Print();
  std::printf(
      "\nPaper (Fig. 19, 160k queries): 25 / 83 / 127 / 366 / 585 / 1316\n"
      "secs — monotone degradation with rising monitoring threshold.\n");
}

}  // namespace
}  // namespace bench
}  // namespace scrack

int main() { scrack::bench::Run(); }
