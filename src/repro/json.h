// Minimal JSON document model for the reproduction driver: build, dump,
// and parse. BENCH_repro.json is written through this model and the test
// suite parses it back through the same model, so the schema round-trips
// by construction. Numbers are stored as doubles (every metric the driver
// records fits a double exactly or is reported as one anyway); object keys
// keep insertion order so emitted reports diff cleanly across runs.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace scrack {
namespace repro {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::vector<std::pair<std::string, Json>>;

/// One JSON value (null / bool / number / string / array / object).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                  // NOLINT
  Json(double d) : type_(Type::kNumber), number_(d) {}            // NOLINT
  Json(int64_t i)                                                 // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  Json(int i) : Json(static_cast<int64_t>(i)) {}                  // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}                   // NOLINT
  Json(JsonArray a) : type_(Type::kArray), array_(std::move(a)) {}
  Json(JsonObject o) : type_(Type::kObject), object_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return array_; }
  const JsonObject& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* Find(const std::string& key) const;

  /// Appends a member (objects) / element (arrays).
  void Set(const std::string& key, Json value);
  void Append(Json value);

  /// Serializes with 2-space indentation and '\n' line ends.
  std::string Dump() const;

  /// Parses `text` into `*out`. Accepts exactly what Dump produces plus
  /// arbitrary whitespace; rejects trailing garbage.
  static Status Parse(const std::string& text, Json* out);

 private:
  void DumpTo(std::string* out, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  JsonArray array_;
  JsonObject object_;
};

/// Writes `json` to `path` (Dump plus a trailing newline).
Status WriteJsonFile(const Json& json, const std::string& path);

}  // namespace repro
}  // namespace scrack
