// The reproduction registry: one FigureSpec per paper figure (2-20) plus
// the repo's beyond-paper scenarios (aggregate pushdown, parallel sharding,
// sideways cracking). `scrack_repro` drives these; the test suite checks
// the registry covers every figure and that each spec carries at least one
// machine-checkable shape assertion.
#pragma once

#include <string>
#include <vector>

#include "repro/spec.h"

namespace scrack {
namespace repro {

/// All registered specs, in presentation order (paper figures first, then
/// beyond-paper scenarios). Built once; subsequent calls return the same
/// registry.
const std::vector<FigureSpec>& Registry();

/// Finds a spec by id ("fig09", "pushdown"). nullptr when unknown.
const FigureSpec* FindSpec(const std::string& id);

/// Resolves a --figure argument: "all", a spec id ("fig09"), or a bare
/// paper figure number ("9" selects every spec covering figure 9). Returns
/// an empty vector and sets *error on unknown selectors.
std::vector<const FigureSpec*> SelectSpecs(const std::string& selector,
                                           std::string* error);

/// Paper figure numbers covered by the registry (sorted, deduplicated).
std::vector<int> CoveredFigures();

}  // namespace repro
}  // namespace scrack
