#include "repro/runner.h"

#include <algorithm>
#include <memory>

#include <cstdlib>

#include "audit/audit_engine.h"
#include "harness/csv.h"
#include "harness/engine_factory.h"
#include "harness/report.h"
#include "util/rng.h"

namespace scrack {
namespace repro {

Scale ResolveScale(const FigureSpec& spec, const ReproOptions& options) {
  Scale scale;
  scale.n = options.n_override > 0
                ? options.n_override
                : (options.quick ? spec.quick_n : spec.default_n);
  scale.q = options.q_override > 0
                ? options.q_override
                : (options.quick ? spec.quick_q : spec.default_q);
  return scale;
}

std::vector<RangeQuery> BuildWorkload(const RunDecl& decl, Index n, QueryId q,
                                      uint64_t seed) {
  WorkloadParams params;
  params.n = n;
  params.num_queries = q;
  params.seed = seed + 1;
  params.selectivity = 10;
  if (decl.selectivity_percent > 0) {
    params.selectivity = std::max<Value>(
        1, static_cast<Value>(static_cast<double>(n) *
                              decl.selectivity_percent / 100.0));
  }
  auto queries = MakeWorkload(decl.workload, params);
  if (decl.selectivity_percent < 0) {
    // Fig. 11's "Rand" column: every query gets a fresh random width.
    Rng rng(seed + 99);
    for (RangeQuery& query : queries) {
      const Value width = 1 + rng.UniformValue(0, n / 2);
      query.high = std::min<Value>(n, query.low + width);
      if (query.high <= query.low) query.high = query.low + 1;
    }
  }
  return queries;
}

namespace {

/// Records one finished run into the figure result: curves at log-spaced
/// checkpoints plus the flat metrics the assertions read.
void Record(const RunDecl& decl, const RunResult& run, FigureResult* result) {
  RunSeries series;
  series.decl = decl;
  series.engine_name = run.engine_name;
  series.final_stats = run.final_stats;

  const QueryId q = static_cast<QueryId>(run.records.size());
  double cum_seconds = 0;
  int64_t cum_touched = 0;
  int64_t checksum_count = 0;
  // Unsigned accumulation (wraparound is defined) reduced mod 2^31 below:
  // at paper scale the raw sum of result_sum exceeds both int64 and the
  // 2^53 range where doubles stay exact, and the kEqual assertions need
  // exact metric values.
  uint64_t checksum_sum = 0;
  const auto points = LogSpacedPoints(q);
  size_t next_point = 0;
  for (QueryId i = 0; i < q; ++i) {
    const QueryRecord& record = run.records[static_cast<size_t>(i)];
    cum_seconds += record.seconds;
    cum_touched += record.touched;
    checksum_count += static_cast<int64_t>(record.result_count);
    checksum_sum += static_cast<uint64_t>(record.result_sum);
    if (next_point < points.size() && i + 1 == points[next_point]) {
      ++next_point;
      series.points.push_back(CurvePoint{i + 1, cum_seconds, cum_touched});
    }
  }
  checksum_sum %= uint64_t{1} << 31;
  result->runs.push_back(series);

  auto& metrics = result->metrics;
  const std::string& p = decl.label;
  metrics[p + ".cum_seconds"] = cum_seconds;
  metrics[p + ".cum_touched"] = static_cast<double>(cum_touched);
  metrics[p + ".touched_per_sec"] =
      cum_seconds > 0 ? static_cast<double>(cum_touched) / cum_seconds : 0;
  metrics[p + ".touched_at_1"] =
      q > 0 ? static_cast<double>(run.records[0].touched) : 0;
  metrics[p + ".swaps_at_1"] =
      q > 0 ? static_cast<double>(run.records[0].swaps) : 0;
  metrics[p + ".max_swaps_per_query"] = [&] {
    int64_t max_swaps = 0;
    for (const QueryRecord& record : run.records) {
      max_swaps = std::max(max_swaps, record.swaps);
    }
    return static_cast<double>(max_swaps);
  }();
  metrics[p + ".cum_touched_at_8"] =
      static_cast<double>(run.CumulativeTouched(std::min<QueryId>(8, q)));
  metrics[p + ".checksum_count"] = static_cast<double>(checksum_count);
  metrics[p + ".checksum_sum"] = static_cast<double>(checksum_sum);  // mod 2^31
  metrics[p + ".materialized"] =
      static_cast<double>(run.final_stats.materialized);
  metrics[p + ".aggregates_pushed"] =
      static_cast<double>(run.final_stats.aggregates_pushed);
  metrics[p + ".updates_merged"] =
      static_cast<double>(run.final_stats.updates_merged);
  metrics[p + ".parallel_cracks"] =
      static_cast<double>(run.final_stats.parallel_cracks);
  metrics[p + ".threads_used"] =
      static_cast<double>(run.final_stats.threads_used);
  metrics[p + ".shared_reads"] =
      static_cast<double>(run.final_stats.shared_reads);
  metrics[p + ".exclusive_cracks"] =
      static_cast<double>(run.final_stats.exclusive_cracks);
  metrics[p + ".escalations"] =
      static_cast<double>(run.final_stats.escalations);
  metrics[p + ".cum_swaps"] = static_cast<double>(run.final_stats.swaps);
  metrics[p + ".budget_exhausted"] =
      static_cast<double>(run.final_stats.budget_exhausted);
  metrics[p + ".deferred_swaps"] =
      static_cast<double>(run.final_stats.deferred_swaps);
  metrics[p + ".scan_fallback_tuples"] =
      static_cast<double>(run.final_stats.scan_fallback_tuples);
  metrics[p + ".fan_outs"] = static_cast<double>(run.final_stats.fan_outs);
  metrics[p + ".nodes_routed"] =
      static_cast<double>(run.final_stats.nodes_routed);
  metrics[p + ".nodes_pruned"] =
      static_cast<double>(run.final_stats.nodes_pruned);
  metrics[p + ".wire_bytes"] =
      static_cast<double>(run.final_stats.wire_bytes);
  metrics[p + ".node_failures"] =
      static_cast<double>(run.final_stats.node_failures);
  metrics[p + ".degraded_queries"] =
      static_cast<double>(run.final_stats.degraded_queries);
  metrics[p + ".cluster_nodes"] =
      static_cast<double>(run.final_stats.cluster_nodes);
  metrics[p + ".transport_timeouts"] =
      static_cast<double>(run.final_stats.transport_timeouts);
  metrics[p + ".transport_reconnects"] =
      static_cast<double>(run.final_stats.transport_reconnects);
  metrics[p + ".transport_retries"] =
      static_cast<double>(run.final_stats.transport_retries);
}

}  // namespace

Status RunFigure(const FigureSpec& spec, const ReproOptions& options,
                 FigureResult* result) {
  *result = FigureResult{};
  result->id = spec.id;
  const Scale scale = ResolveScale(spec, options);
  result->n = scale.n;
  result->q = scale.q;
  result->metrics["n"] = static_cast<double>(scale.n);
  result->metrics["q"] = static_cast<double>(scale.q);

  const Column base = Column::UniquePermutation(scale.n, options.seed);

  for (const RunDecl& decl : spec.runs) {
    EngineConfig config = EngineConfig::Detected();
    config.seed = options.seed;
    if (decl.crack_threshold_values > 0) {
      config.crack_threshold_values = decl.crack_threshold_values;
    }
    if (decl.hybrid_partition_values > 0) {
      config.hybrid_partition_values = decl.hybrid_partition_values;
    }
    if (decl.parallel_min_values > 0) {
      config.parallel_min_values = decl.parallel_min_values;
    }

    std::unique_ptr<SelectEngine> engine;
    const std::string engine_spec =
        options.audit ? WrapSpecInAudit(decl.engine) : decl.engine;
    SCRACK_RETURN_NOT_OK(CreateEngine(engine_spec, &base, config, &engine));
    if (auto* audited = dynamic_cast<AuditEngine*>(engine.get())) {
      // Findings (and the fail-fast Status) name the figure and grid cell.
      audited->SetContext(spec.id + "/" + decl.label);
    }

    RunOptions run_options;
    run_options.mode = decl.mode;
    std::shared_ptr<Rng> update_rng;
    if (decl.update_period > 0 && decl.updates_per_batch > 0) {
      // Per-run RNG with a run-independent seed: every engine in the grid
      // sees the identical update stream.
      update_rng = std::make_shared<Rng>(options.seed + 7);
      const Index n = scale.n;
      const int period = decl.update_period;
      const int count = decl.updates_per_batch;
      run_options.before_query = [update_rng, n, period, count](
                                     QueryId i, SelectEngine* e) -> Status {
        if (i % period != 0) return Status::OK();
        for (int u = 0; u < count; ++u) {
          SCRACK_RETURN_NOT_OK(e->StageInsert(update_rng->UniformValue(0, n)));
        }
        return Status::OK();
      };
    }

    const auto queries = BuildWorkload(decl, scale.n, scale.q, options.seed);
    const RunResult run = RunQueries(engine.get(), queries, run_options);
    SCRACK_RETURN_NOT_OK(run.status);
    // Optional raw per-query export for external plotting (see csv.h).
    const char* csv_dir = std::getenv("SCRACK_CSV_DIR");
    if (csv_dir != nullptr && *csv_dir != '\0') {
      SCRACK_RETURN_NOT_OK(WriteRunsCsv({run}, csv_dir,
                                        spec.id + "_" + decl.label));
    }
    Record(decl, run, result);
  }

  if (spec.extra) {
    ReproContext context;
    context.options = &options;
    context.n = scale.n;
    context.q = scale.q;
    context.seed = options.seed;
    context.base = &base;
    SCRACK_RETURN_NOT_OK(spec.extra(context, result));
  }

  result->ok = true;
  for (const ShapeAssertion& assertion : spec.assertions) {
    const AssertionResult outcome = Evaluate(assertion, result->metrics);
    result->ok = result->ok && outcome.ok;
    result->assertions.push_back(outcome);
  }
  return Status::OK();
}

}  // namespace repro
}  // namespace scrack
