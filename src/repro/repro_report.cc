#include "repro/repro_report.h"

#include <cstdio>

#include "harness/report.h"
#include "util/simd.h"

namespace scrack {
namespace repro {

namespace {

Json RunJson(const RunSeries& series) {
  Json run;
  run.Set("label", series.decl.label);
  run.Set("engine", series.decl.engine);
  run.Set("engine_name", series.engine_name);
  run.Set("workload", WorkloadName(series.decl.workload));
  run.Set("mode", OutputModeName(series.decl.mode));
  Json points(JsonArray{});
  for (const CurvePoint& point : series.points) {
    Json p;
    p.Set("query", point.query);
    p.Set("cum_seconds", point.cum_seconds);
    p.Set("cum_touched", point.cum_touched);
    points.Append(std::move(p));
  }
  run.Set("points", std::move(points));
  return run;
}

Json AssertionJson(const ShapeAssertion& spec, const AssertionResult& result) {
  Json a;
  a.Set("name", result.name);
  a.Set("kind", KindName(spec.kind));
  a.Set("ok", result.ok);
  a.Set("measured", result.measured);
  a.Set("description", result.description);
  return a;
}

Json MetricsJson(const FigureResult& result) {
  Json metrics;
  for (const auto& metric : result.metrics) {
    metrics.Set(metric.first, metric.second);
  }
  return metrics;
}

}  // namespace

Json BuildReport(const std::vector<const FigureSpec*>& specs,
                 const std::vector<FigureResult>& results,
                 const ReproOptions& options) {
  SCRACK_CHECK(specs.size() == results.size());
  int total = 0;
  int failed = 0;
  Json figures(JsonArray{});
  for (size_t i = 0; i < specs.size(); ++i) {
    const FigureSpec& spec = *specs[i];
    const FigureResult& result = results[i];
    Json figure;
    figure.Set("id", spec.id);
    Json figure_numbers(JsonArray{});
    for (const int f : spec.figures) figure_numbers.Append(f);
    figure.Set("figures", std::move(figure_numbers));
    figure.Set("title", spec.title);
    figure.Set("n", result.n);
    figure.Set("q", result.q);
    Json runs(JsonArray{});
    for (const RunSeries& series : result.runs) {
      runs.Append(RunJson(series));
    }
    figure.Set("runs", std::move(runs));
    figure.Set("metrics", MetricsJson(result));
    Json assertions(JsonArray{});
    for (size_t a = 0; a < result.assertions.size(); ++a) {
      ++total;
      if (!result.assertions[a].ok) ++failed;
      assertions.Append(AssertionJson(spec.assertions[a],
                                      result.assertions[a]));
    }
    figure.Set("assertions", std::move(assertions));
    figure.Set("ok", result.ok);
    figures.Append(std::move(figure));
  }

  Json meta;
  meta.Set("tool", "scrack_repro");
  meta.Set("quick", options.quick);
  meta.Set("seed", static_cast<int64_t>(options.seed));
  meta.Set("avx2_compiled", simd::CompiledWithAvx2());
  meta.Set("avx2_supported", simd::Supported());

  Json report;
  report.Set("meta", std::move(meta));
  report.Set("figures", std::move(figures));
  report.Set("assertions_total", total);
  report.Set("assertions_failed", failed);
  report.Set("ok", failed == 0);
  return report;
}

std::string MeasuredSummary(const FigureSpec& spec,
                            const FigureResult& result) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "n=%lld q=%lld: ",
                static_cast<long long>(result.n),
                static_cast<long long>(result.q));
  std::string summary = buf;

  // Headline: the first ratio assertion with both sides present; for
  // chain-only specs, the chain's endpoint ratio.
  bool have_headline = false;
  for (size_t i = 0; !have_headline && i < spec.assertions.size(); ++i) {
    const ShapeAssertion& assertion = spec.assertions[i];
    if ((assertion.kind != ShapeAssertion::Kind::kLess &&
         assertion.kind != ShapeAssertion::Kind::kGreater) ||
        assertion.right.empty()) {
      continue;
    }
    const auto left = result.metrics.find(assertion.left);
    const auto right = result.metrics.find(assertion.right);
    if (left == result.metrics.end() || right == result.metrics.end() ||
        right->second == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s = %.2gx %s; ",
                  assertion.left.c_str(), left->second / right->second,
                  assertion.right.c_str());
    summary += buf;
    have_headline = true;
  }
  for (size_t i = 0; !have_headline && i < spec.assertions.size(); ++i) {
    const ShapeAssertion& assertion = spec.assertions[i];
    if (assertion.kind != ShapeAssertion::Kind::kChain ||
        assertion.chain.size() < 2) {
      continue;
    }
    const auto first = result.metrics.find(assertion.chain.front());
    const auto last = result.metrics.find(assertion.chain.back());
    if (first == result.metrics.end() || last == result.metrics.end() ||
        first->second == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s = %.2gx %s; ",
                  assertion.chain.back().c_str(),
                  last->second / first->second,
                  assertion.chain.front().c_str());
    summary += buf;
    have_headline = true;
  }

  int passed = 0;
  for (const AssertionResult& assertion : result.assertions) {
    if (assertion.ok) ++passed;
  }
  std::snprintf(buf, sizeof(buf), "%d/%zu shape assertions pass", passed,
                result.assertions.size());
  summary += buf;
  return summary;
}

std::string MarkdownRows(const std::vector<const FigureSpec*>& specs,
                         const std::vector<FigureResult>& results) {
  SCRACK_CHECK(specs.size() == results.size());
  std::string out;
  for (size_t i = 0; i < specs.size(); ++i) {
    const FigureSpec& spec = *specs[i];
    std::string figure_cell;
    if (spec.figures.empty()) {
      figure_cell = spec.title;
    } else {
      figure_cell = "Fig.";
      for (size_t f = 0; f < spec.figures.size(); ++f) {
        figure_cell += (f == 0 ? " " : "/") +
                       std::to_string(spec.figures[f]);
      }
    }
    out += "| " + figure_cell + " | " + spec.claim + " | `scrack_repro "
           "--figure=" + spec.id + "` | " +
           MeasuredSummary(spec, results[i]) + " |\n";
  }
  return out;
}

void PrintFigure(const FigureSpec& spec, const FigureResult& result) {
  std::printf("\n=== %s — %s (n=%lld, q=%lld) ===\n", spec.id.c_str(),
              spec.title.c_str(), static_cast<long long>(result.n),
              static_cast<long long>(result.q));
  if (!result.runs.empty()) {
    TextTable table({"run", "engine", "cum secs", "cum touched", "touched@1",
                     "count", "materialized"});
    for (const RunSeries& series : result.runs) {
      const auto& metrics = result.metrics;
      const std::string& p = series.decl.label;
      const auto metric = [&](const std::string& name) {
        const auto it = metrics.find(p + name);
        return it == metrics.end() ? 0.0 : it->second;
      };
      table.AddRow({series.decl.label, series.engine_name,
                    TextTable::Num(metric(".cum_seconds")),
                    std::to_string(
                        static_cast<long long>(metric(".cum_touched"))),
                    std::to_string(
                        static_cast<long long>(metric(".touched_at_1"))),
                    std::to_string(
                        static_cast<long long>(metric(".checksum_count"))),
                    std::to_string(
                        static_cast<long long>(metric(".materialized")))});
    }
    table.Print();
  }
  for (const AssertionResult& assertion : result.assertions) {
    std::printf("  [%s] %s: %s\n", assertion.ok ? "PASS" : "FAIL",
                assertion.name.c_str(), assertion.measured.c_str());
  }
}

}  // namespace repro
}  // namespace scrack
