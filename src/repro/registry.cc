#include "repro/registry.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <memory>
#include <set>
#include <thread>

#include "cracking/crack_engine.h"
#include "cracking/kernel.h"
#include "cracking/stochastic_engine.h"
#include "distributed/coordinator_engine.h"
#include "harness/engine_factory.h"
#include "progressive/budgeted_engine.h"
#include "repro/runner.h"
#include "sideways/cracker_map.h"

namespace scrack {
namespace repro {
namespace {

// ------------------------------------------------------------ builders ----

RunDecl Run(std::string label, std::string engine, WorkloadKind workload) {
  RunDecl decl;
  decl.label = std::move(label);
  decl.engine = std::move(engine);
  decl.workload = workload;
  return decl;
}

ShapeAssertion Less(std::string name, std::string description,
                    std::string left, double factor, std::string right = "") {
  ShapeAssertion a;
  a.name = std::move(name);
  a.description = std::move(description);
  a.kind = ShapeAssertion::Kind::kLess;
  a.left = std::move(left);
  a.factor = factor;
  a.right = std::move(right);
  return a;
}

ShapeAssertion Greater(std::string name, std::string description,
                       std::string left, double factor,
                       std::string right = "") {
  ShapeAssertion a = Less(std::move(name), std::move(description),
                          std::move(left), factor, std::move(right));
  a.kind = ShapeAssertion::Kind::kGreater;
  return a;
}

ShapeAssertion Equal(std::string name, std::string description,
                     std::string left, std::string right) {
  ShapeAssertion a;
  a.name = std::move(name);
  a.description = std::move(description);
  a.kind = ShapeAssertion::Kind::kEqual;
  a.left = std::move(left);
  a.right = std::move(right);
  return a;
}

ShapeAssertion Chain(std::string name, std::string description,
                     std::vector<std::string> chain, double slack) {
  ShapeAssertion a;
  a.name = std::move(name);
  a.description = std::move(description);
  a.kind = ShapeAssertion::Kind::kChain;
  a.chain = std::move(chain);
  a.slack = slack;
  return a;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// ---------------------------------------------------------- fig specs ----

FigureSpec Fig02() {
  FigureSpec spec;
  spec.id = "fig02";
  spec.figures = {2};
  spec.title = "Basic cracking performance";
  spec.claim =
      "Crack starts near Scan and converges toward Sort under random; "
      "fails to improve (stays Scan-like) under sequential";
  for (const char* engine : {"scan", "sort", "crack"}) {
    spec.runs.push_back(
        Run(std::string(engine) + ".rnd", engine, WorkloadKind::kRandom));
    spec.runs.push_back(
        Run(std::string(engine) + ".seq", engine, WorkloadKind::kSequential));
  }
  spec.assertions = {
      Greater("crack_fails_on_sequential",
              "sequential keeps re-scanning the giant residual piece: crack "
              "touches >5x what it touches under random",
              "crack.seq.cum_touched", 5, "crack.rnd.cum_touched"),
      Less("crack_converges_on_random",
           "random converges: total touched ~2N ln Q, far below Q*N/2",
           "crack.rnd.cum_touched", 20, "n"),
      Greater("crack_scanlike_on_sequential",
              "under sequential, crack stays within a small factor of scan "
              "instead of converging",
              "crack.seq.cum_touched", 0.2, "scan.seq.cum_touched"),
      Equal("answers_match_random",
            "crack returns exactly scan's qualifying tuples (random)",
            "crack.rnd.checksum_sum", "scan.rnd.checksum_sum"),
      Equal("answers_match_sequential",
            "sort returns exactly scan's qualifying tuples (sequential)",
            "sort.seq.checksum_sum", "scan.seq.checksum_sum"),
  };
  return spec;
}

FigureSpec Fig03() {
  FigureSpec spec;
  spec.id = "fig03";
  spec.figures = {3};
  spec.title = "Cracking algorithms (kernel + hybrid-partition ablation)";
  spec.claim =
      "Single-pass crack-in-three beats two crack-in-two passes for a "
      "both-bounds-in-one-piece query";
  spec.default_q = 500;
  spec.quick_q = 200;
  // Hybrid initial-partition sweep rides along for the data (the paper's
  // Fig. 3 is a design sketch; this is the repo's ablation grid for it).
  for (const Index partition : {1 << 12, 1 << 14, 1 << 16}) {
    RunDecl decl = Run("aicc.p" + std::to_string(partition >> 10) + "k",
                       "aicc", WorkloadKind::kSequential);
    decl.hybrid_partition_values = partition;
    spec.runs.push_back(decl);
  }
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    const Index n = context.n;
    {
      std::vector<Value> data = context.base->values();
      KernelCounters counters;
      CrackInThree(data.data(), 0, n, n / 3, 2 * n / 3, &counters);
      result->metrics["single_pass.touched"] =
          static_cast<double>(counters.touched);
    }
    {
      std::vector<Value> data = context.base->values();
      KernelCounters counters;
      const Index p1 = CrackInTwo(data.data(), 0, n, n / 3, &counters);
      CrackInTwo(data.data(), p1, n, 2 * n / 3, &counters);
      result->metrics["two_pass.touched"] =
          static_cast<double>(counters.touched);
    }
    return Status::OK();
  };
  spec.assertions = {
      Less("single_pass_touches_less",
           "crack-in-three touches ~n where two crack-in-two passes touch "
           "~n + 2n/3",
           "single_pass.touched", 1.0, "two_pass.touched"),
      Greater("two_pass_overhead",
              "the second pass re-reads a constant fraction of the region",
              "two_pass.touched", 1.3, "single_pass.touched"),
  };
  return spec;
}

FigureSpec Fig05() {
  FigureSpec spec;
  spec.id = "fig05";
  spec.figures = {5};
  spec.title = "MDD1R and the piece-size distribution behind convergence";
  spec.claim =
      "Random cracks dismantle the giant unindexed piece that query-driven "
      "cracking leaves behind on sequential workloads";
  spec.runs = {
      Run("crack.seq", "crack", WorkloadKind::kSequential),
      Run("dd1r.seq", "dd1r", WorkloadKind::kSequential),
      Run("mdd1r.seq", "mdd1r", WorkloadKind::kSequential),
  };
  // Mid-run piece-size snapshot: the pathology is a transient (the default
  // sequential sweep finishes the domain at Q, so end-state pieces are
  // small); at Q/2 crack still holds a giant residual piece while the
  // stochastic variants have already dismantled it.
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    RunDecl decl = Run("", "", WorkloadKind::kSequential);
    const auto queries =
        BuildWorkload(decl, context.n, context.q, context.seed);
    const QueryId half = static_cast<QueryId>(queries.size()) / 2;
    const auto mid_max_piece = [&](auto* engine) -> double {
      for (QueryId i = 0; i < half; ++i) {
        QueryResult ignored;
        const Status status =
            engine->Select(queries[static_cast<size_t>(i)].low,
                           queries[static_cast<size_t>(i)].high, &ignored);
        SCRACK_CHECK(status.ok());
      }
      return static_cast<double>(engine->column().DescribePieces().max_size);
    };
    {
      CrackEngine engine(context.base, config);
      result->metrics["crack.seq.mid_max_piece"] = mid_max_piece(&engine);
    }
    {
      DataDrivenEngine engine(context.base, config, /*center_pivot=*/false,
                              /*recursive=*/false);
      result->metrics["dd1r.seq.mid_max_piece"] = mid_max_piece(&engine);
    }
    {
      Mdd1rEngine engine(context.base, config);
      result->metrics["mdd1r.seq.mid_max_piece"] = mid_max_piece(&engine);
    }
    return Status::OK();
  };
  spec.assertions = {
      Greater("crack_keeps_giant_piece",
              "halfway through the sequential sweep, crack's largest piece "
              "still spans over a third of the column",
              "crack.seq.mid_max_piece", 0.33, "n"),
      Less("mdd1r_dismantles_giant_piece",
           "MDD1R's random cracks break the residual piece down (a random "
           "split may leave one large-but-untouched fragment, so the bound "
           "is a factor, not near-zero)",
           "mdd1r.seq.mid_max_piece", 0.6, "crack.seq.mid_max_piece"),
      Less("dd1r_converges",
           "DD1R's cumulative cost collapses even while a large untouched "
           "fragment may linger",
           "dd1r.seq.cum_touched", 0.25, "crack.seq.cum_touched"),
      Less("mdd1r_bounded_per_query",
           "MDD1R's first query does bounded work (one partition pass plus "
           "materialization), not a full sort",
           "mdd1r.seq.touched_at_1", 4, "n"),
  };
  return spec;
}

FigureSpec Fig08() {
  FigureSpec spec;
  spec.id = "fig08";
  spec.figures = {4, 8};
  spec.title = "DDC piece-size threshold sweep";
  spec.claim =
      "L1-sized stop threshold is the sweet spot; L2 degrades and 3xL2 "
      "degrades badly (large uncracked pieces keep getting re-scanned)";
  const EngineConfig detected = EngineConfig::Detected();
  const Index l1 = detected.crack_threshold_values;
  const Index l2 = detected.progressive_min_values;
  const struct {
    const char* label;
    Index threshold;
  } cells[] = {
      {"ddc.l1_4", std::max<Index>(1, l1 / 4)},
      {"ddc.l1_2", std::max<Index>(1, l1 / 2)},
      {"ddc.l1", l1},
      {"ddc.l2", l2},
      {"ddc.l2x3", 3 * l2},
  };
  for (const auto& cell : cells) {
    RunDecl decl = Run(cell.label, "ddc", WorkloadKind::kSequential);
    decl.crack_threshold_values = cell.threshold;
    spec.runs.push_back(decl);
  }
  spec.assertions = {
      Chain("touched_grows_with_threshold",
            "cost is flat up to L1 and degrades monotonically beyond",
            {"ddc.l1.cum_touched", "ddc.l2.cum_touched",
             "ddc.l2x3.cum_touched"},
            /*slack=*/0.05),
      Greater("beyond_l2_degrades",
              "a 3xL2 threshold leaves pieces that are re-scanned query "
              "after query",
              "ddc.l2x3.cum_touched", 1.3, "ddc.l1.cum_touched"),
      Less("below_l1_is_flat",
           "shrinking the threshold below L1 buys little (already "
           "cache-resident pieces)",
           "ddc.l1_4.cum_touched", 1.25, "ddc.l1.cum_touched"),
  };
  return spec;
}

FigureSpec Fig09() {
  FigureSpec spec;
  spec.id = "fig09";
  spec.figures = {9};
  spec.title = "Sequential workload: stochastic variants";
  spec.claim =
      "DDC/DDR/DD1C/DD1R and the progressive variants all converge on the "
      "sequential workload where Crack degrades to Scan";
  for (const char* engine :
       {"sort", "crack", "ddc", "ddr", "dd1c", "dd1r", "pmdd1r:100",
        "pmdd1r:50", "pmdd1r:10", "pmdd1r:1"}) {
    std::string label = engine;
    std::replace(label.begin(), label.end(), ':', '_');
    spec.runs.push_back(
        Run(label + ".seq", engine, WorkloadKind::kSequential));
  }
  for (const char* engine : {"ddc", "ddr", "dd1c", "dd1r"}) {
    spec.assertions.push_back(Less(
        std::string(engine) + "_beats_crack",
        std::string(engine) + " converges where crack keeps climbing",
        std::string(engine) + ".seq.cum_touched", 0.25,
        "crack.seq.cum_touched"));
  }
  spec.assertions.push_back(Less(
      "mdd1r_below_half_crack",
      "cumulative stochastic cost under sequential is below half of "
      "crack's (paper: orders of magnitude at full scale)",
      "pmdd1r_100.seq.cum_touched", 0.5, "crack.seq.cum_touched"));
  for (const char* p : {"pmdd1r_50", "pmdd1r_10", "pmdd1r_1"}) {
    spec.assertions.push_back(Less(
        std::string(p) + "_beats_crack",
        "every progressive budget still converges",
        std::string(p) + ".seq.cum_touched", 0.5, "crack.seq.cum_touched"));
  }
  spec.assertions.push_back(
      Equal("answers_match", "dd1r returns exactly sort's qualifying tuples",
            "dd1r.seq.checksum_sum", "sort.seq.checksum_sum"));
  return spec;
}

FigureSpec Fig10() {
  FigureSpec spec;
  spec.id = "fig10";
  spec.figures = {10};
  spec.title = "Random workload: stochastic keeps cracking's adaptivity";
  spec.claim =
      "All stochastic variants track Crack's cumulative curve on random "
      "workloads; overhead is marginal";
  for (const char* engine :
       {"sort", "crack", "ddc", "dd1c", "ddr", "dd1r", "pmdd1r:50"}) {
    std::string label = engine;
    std::replace(label.begin(), label.end(), ':', '_');
    spec.runs.push_back(Run(label + ".rnd", engine, WorkloadKind::kRandom));
  }
  for (const char* engine : {"ddc", "dd1c", "ddr", "dd1r", "pmdd1r_50"}) {
    spec.assertions.push_back(Less(
        std::string(engine) + "_stays_competitive",
        "same order of magnitude as crack on random",
        std::string(engine) + ".rnd.cum_touched", 3,
        "crack.rnd.cum_touched"));
  }
  return spec;
}

FigureSpec Fig11() {
  FigureSpec spec;
  spec.id = "fig11";
  spec.figures = {11};
  spec.title = "Varying selectivity";
  spec.claim =
      "Cracking-family cost is insensitive to selectivity; under "
      "sequential Crack stays orders above DD1R at every selectivity";
  spec.default_q = 300;
  spec.quick_q = 200;
  const struct {
    const char* key;
    double percent;  // negative = random widths
  } sels[] = {
      {"s1e7", 1e-7}, {"s1e2", 1e-2}, {"s10", 10}, {"s50", 50},
      {"srand", -1},
  };
  const struct {
    const char* key;
    WorkloadKind kind;
  } workloads[] = {{"rnd", WorkloadKind::kRandom},
                   {"seq", WorkloadKind::kSequential}};
  for (const auto& workload : workloads) {
    for (const char* engine : {"scan", "sort", "crack", "dd1r", "pmdd1r:10"}) {
      for (const auto& sel : sels) {
        std::string label = engine;
        std::replace(label.begin(), label.end(), ':', '_');
        RunDecl decl = Run(label + "." + workload.key + "." + sel.key,
                           engine, workload.kind);
        decl.selectivity_percent = sel.percent;
        spec.runs.push_back(decl);
      }
    }
  }
  spec.assertions = {
      Less("crack_insensitive_to_selectivity",
           "crack's random-workload cost varies by < 3x from the lowest to "
           "the highest selectivity",
           "crack.rnd.s50.cum_touched", 3, "crack.rnd.s1e7.cum_touched"),
  };
  for (const auto& sel : sels) {
    if (sel.percent < 0) continue;  // Rand handled separately below
    spec.assertions.push_back(Less(
        std::string("dd1r_robust_at_") + sel.key,
        "robustness holds at every fixed selectivity",
        std::string("dd1r.seq.") + sel.key + ".cum_touched", 0.3,
        std::string("crack.seq.") + sel.key + ".cum_touched"));
  }
  // Random widths inject randomness into the bounds themselves, which
  // (at bench scale) already cures crack — the check is that dd1r stays
  // in the same order, never worse.
  spec.assertions.push_back(Less(
      "dd1r_same_order_at_srand",
      "with random per-query widths the workload itself carries "
      "randomness; dd1r must not fall behind crack",
      "dd1r.seq.srand.cum_touched", 1.5, "crack.seq.srand.cum_touched"));
  return spec;
}

FigureSpec Fig12() {
  FigureSpec spec;
  spec.id = "fig12";
  spec.figures = {12};
  spec.title = "Naive random injection (RkCrack)";
  spec.claim =
      "Forced random queries help by an order of magnitude but do not "
      "converge; integrated stochastic cracking gains another order";
  for (const char* engine : {"crack", "r1crack", "r2crack", "r4crack",
                             "r8crack", "mdd1r", "pmdd1r:10"}) {
    std::string label = engine;
    std::replace(label.begin(), label.end(), ':', '_');
    spec.runs.push_back(
        Run(label + ".seq", engine, WorkloadKind::kSequential));
  }
  spec.assertions = {
      Less("injection_helps", "R2crack beats plain crack by a wide margin",
           "r2crack.seq.cum_touched", 0.25, "crack.seq.cum_touched"),
      Less("integrated_at_least_matches",
           "integrated stochastic cracking (MDD1R) matches the best naive "
           "injection on work done (the paper's extra order of magnitude "
           "is in response time, which forced extra queries cannot reach)",
           "mdd1r.seq.cum_touched", 1.1, "r2crack.seq.cum_touched"),
  };
  return spec;
}

FigureSpec Fig13() {
  FigureSpec spec;
  spec.id = "fig13";
  spec.figures = {6, 7, 13};
  spec.title = "Focused workload patterns";
  spec.claim =
      "Scrack (P10%) is robust on Periodic/ZoomOut/ZoomIn/ZoomInAlt; "
      "original cracking fails on the deterministic focus patterns";
  spec.default_q = 2000;
  const struct {
    const char* key;
    WorkloadKind kind;
  } workloads[] = {{"periodic", WorkloadKind::kPeriodic},
                   {"zoomout", WorkloadKind::kZoomOut},
                   {"zoomin", WorkloadKind::kZoomIn},
                   {"zoominalt", WorkloadKind::kZoomInAlt}};
  for (const auto& workload : workloads) {
    for (const char* engine : {"sort", "crack", "pmdd1r:10"}) {
      std::string label = engine;
      std::replace(label.begin(), label.end(), ':', '_');
      spec.runs.push_back(
          Run(label + "." + workload.key, engine, workload.kind));
    }
  }
  // Figs. 6/7 (the workload formula table) ride along as generator sanity:
  // every generated query of every pattern lies inside the domain.
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    WorkloadParams params;
    params.n = context.n;
    params.num_queries = std::min<QueryId>(context.q, 500);
    params.seed = context.seed + 1;
    auto kinds = Fig17SyntheticKinds();
    kinds.push_back(WorkloadKind::kMixed);
    kinds.push_back(WorkloadKind::kSkyServer);
    int64_t violations = 0;
    for (const WorkloadKind kind : kinds) {
      for (const RangeQuery& query : MakeWorkload(kind, params)) {
        if (query.low < 0 || query.high > context.n ||
            query.low >= query.high) {
          ++violations;
        }
      }
    }
    result->metrics["workloads.domain_violations"] =
        static_cast<double>(violations);
    return Status::OK();
  };
  spec.assertions = {
      Greater("crack_fails_on_zoomout",
              "deterministic focus defeats query-driven cracking",
              "crack.zoomout.cum_touched", 4, "pmdd1r_10.zoomout.cum_touched"),
      Greater("crack_fails_on_zoominalt",
              "alternating zoom defeats query-driven cracking",
              "crack.zoominalt.cum_touched", 4,
              "pmdd1r_10.zoominalt.cum_touched"),
      Less("scrack_robust_on_zoomout", "stochastic cracking converges",
           "pmdd1r_10.zoomout.cum_touched", 25, "n"),
      Less("scrack_robust_on_zoominalt", "stochastic cracking converges",
           "pmdd1r_10.zoominalt.cum_touched", 25, "n"),
      Less("generators_stay_in_domain",
           "every query of every Fig. 7 pattern lies inside [0, N)",
           "workloads.domain_violations", 1),
  };
  return spec;
}

FigureSpec Fig14() {
  FigureSpec spec;
  spec.id = "fig14";
  spec.figures = {14};
  spec.title = "Partition/merge hybrids (AICC/AICS +- 1R)";
  spec.claim =
      "Plain hybrids inherit cracking's blinkered behaviour on sequential; "
      "grafting DD1R-style random cracks restores robustness";
  for (const char* engine : {"aics", "aicc", "crack", "aics1r", "aicc1r"}) {
    spec.runs.push_back(
        Run(std::string(engine) + ".seq", engine, WorkloadKind::kSequential));
  }
  spec.assertions = {
      Less("aicc1r_fixes_aicc", "stochastic partition cracks converge",
           "aicc1r.seq.cum_touched", 0.5, "aicc.seq.cum_touched"),
      Less("aics1r_fixes_aics", "stochastic partition cracks converge",
           "aics1r.seq.cum_touched", 0.5, "aics.seq.cum_touched"),
  };
  return spec;
}

FigureSpec Fig15() {
  FigureSpec spec;
  spec.id = "fig15";
  spec.figures = {15};
  spec.title = "High-frequency low-volume updates";
  spec.claim =
      "Scrack keeps its robust flat curve under an interleaved insert "
      "stream; Crack shows the same sequential-workload failure";
  for (const char* engine : {"crack", "pmdd1r:10"}) {
    std::string label = engine;
    std::replace(label.begin(), label.end(), ':', '_');
    RunDecl decl = Run(label + ".seq", engine, WorkloadKind::kSequential);
    decl.update_period = 10;
    decl.updates_per_batch = 10;
    spec.runs.push_back(decl);
  }
  spec.assertions = {
      Less("scrack_robust_under_updates",
           "the update stream does not disturb stochastic convergence",
           "pmdd1r_10.seq.cum_touched", 0.25, "crack.seq.cum_touched"),
      Greater("crack_merged_updates", "the insert stream actually merged",
              "crack.seq.updates_merged", 0),
      Greater("scrack_merged_updates", "the insert stream actually merged",
              "pmdd1r_10.seq.updates_merged", 0),
  };
  return spec;
}

FigureSpec Fig16() {
  FigureSpec spec;
  spec.id = "fig16";
  spec.figures = {16};
  spec.title = "SkyServer workload";
  spec.claim =
      "Queries dwell on one region at a time; Crack pays for every region "
      "change (paper: 2274s vs Scrack's 25s), Scrack does not";
  spec.default_q = 10'000;
  spec.quick_q = 2000;
  for (const char* engine : {"sort", "crack", "pmdd1r:10"}) {
    std::string label = engine;
    std::replace(label.begin(), label.end(), ':', '_');
    spec.runs.push_back(Run(label + ".sky", engine, WorkloadKind::kSkyServer));
  }
  spec.assertions = {
      Greater("crack_pays_for_region_changes",
              "crack re-scans on every dwell-region change",
              "crack.sky.cum_touched", 3, "pmdd1r_10.sky.cum_touched"),
      Equal("answers_match", "scrack returns exactly sort's tuples",
            "pmdd1r_10.sky.checksum_sum", "sort.sky.checksum_sum"),
  };
  return spec;
}

FigureSpec Fig17() {
  FigureSpec spec;
  spec.id = "fig17";
  spec.figures = {17};
  spec.title = "Every workload x {Crack, Scrack, FiftyFifty, FlipCoin}";
  spec.claim =
      "Scrack (MDD1R) wins or ties nearly every cell; Crack collapses on "
      "focused patterns; FiftyFifty fails on the *Alt patterns";
  auto kinds = Fig17SyntheticKinds();
  kinds.push_back(WorkloadKind::kMixed);
  kinds.push_back(WorkloadKind::kSkyServer);
  for (const WorkloadKind kind : kinds) {
    const std::string wl = Lower(WorkloadName(kind));
    for (const char* engine : {"crack", "mdd1r", "fiftyfifty", "flipcoin"}) {
      spec.runs.push_back(Run(wl + "." + engine, engine, kind));
    }
  }
  for (const char* wl :
       {"sequential", "seqreverse", "zoomout", "zoominalt",
        "skewzoomoutalt"}) {
    spec.assertions.push_back(Greater(
        std::string("crack_fails_on_") + wl,
        "focused pattern: crack re-scans the unindexed region every query",
        std::string(wl) + ".crack.cum_touched", 4,
        std::string(wl) + ".mdd1r.cum_touched"));
  }
  spec.assertions.push_back(Greater(
      "fiftyfifty_fails_on_alternation",
      "deterministic alternation aligns with FiftyFifty's own period",
      "skewzoomoutalt.fiftyfifty.cum_touched", 4,
      "skewzoomoutalt.flipcoin.cum_touched"));
  spec.assertions.push_back(Less(
      "scrack_competitive_on_random",
      "inherently random workloads: scrack stays within 3x of crack",
      "random.mdd1r.cum_touched", 3, "random.crack.cum_touched"));
  return spec;
}

FigureSpec Fig18() {
  FigureSpec spec;
  spec.id = "fig18";
  spec.figures = {18};
  spec.title = "Selective stochastic cracking: varying period";
  spec.claim =
      "Applying stochastic cracking every X-th query degrades "
      "monotonically with X; X=1 (always) wins";
  spec.default_q = 10'000;
  spec.quick_q = 2000;
  spec.runs = {
      Run("x1.sky", "mdd1r", WorkloadKind::kSkyServer),
      Run("x4.sky", "everyx:4", WorkloadKind::kSkyServer),
      Run("x16.sky", "everyx:16", WorkloadKind::kSkyServer),
      Run("x32.sky", "everyx:32", WorkloadKind::kSkyServer),
  };
  spec.assertions = {
      Chain("degrades_with_period",
            "less frequent stochastic cracking costs monotonically more",
            {"x1.sky.cum_touched", "x4.sky.cum_touched",
             "x16.sky.cum_touched", "x32.sky.cum_touched"},
            /*slack=*/0.05),
  };
  return spec;
}

FigureSpec Fig19() {
  FigureSpec spec;
  spec.id = "fig19";
  spec.figures = {19};
  spec.title = "Selective stochastic cracking via monitoring";
  spec.claim =
      "Raising the per-piece crack counter threshold before stochastic "
      "kicks in degrades monotonically; X=1 wins";
  spec.default_q = 10'000;
  spec.quick_q = 2000;
  spec.runs = {
      Run("x1.sky", "scrackmon:1", WorkloadKind::kSkyServer),
      Run("x50.sky", "scrackmon:50", WorkloadKind::kSkyServer),
      Run("x500.sky", "scrackmon:500", WorkloadKind::kSkyServer),
  };
  spec.assertions = {
      Chain("degrades_with_threshold",
            "higher monitoring thresholds defer the fix and cost more",
            {"x1.sky.cum_touched", "x50.sky.cum_touched",
             "x500.sky.cum_touched"},
            /*slack=*/0.05),
  };
  return spec;
}

FigureSpec Fig20() {
  FigureSpec spec;
  spec.id = "fig20";
  spec.figures = {20};
  spec.title = "Total cost vs initialization cost";
  spec.claim =
      "DD1R minimizes total cost; progressive variants minimize the burden "
      "on the first queries at a small total-cost premium";
  spec.default_q = 2000;
  spec.runs = {
      Run("crack.seq", "crack", WorkloadKind::kSequential),
      Run("dd1r.seq", "dd1r", WorkloadKind::kSequential),
      Run("p5.seq", "pmdd1r:5", WorkloadKind::kSequential),
      Run("p10.seq", "pmdd1r:10", WorkloadKind::kSequential),
  };
  spec.assertions = {
      Less("dd1r_total_converges", "every point of the trade-off converges",
           "dd1r.seq.cum_touched", 0.25, "crack.seq.cum_touched"),
      Less("p5_total_converges", "every point of the trade-off converges",
           "p5.seq.cum_touched", 0.25, "crack.seq.cum_touched"),
      Less("totals_same_order",
           "the budgets trade initialization for total cost within a small "
           "constant, not orders of magnitude (the per-query latency side "
           "of the trade-off is a wall-clock effect; the JSON curves carry "
           "it, the gate asserts only the deterministic work totals)",
           "dd1r.seq.cum_touched", 3.0, "p5.seq.cum_touched"),
  };
  return spec;
}

// ----------------------------------------------------- beyond the paper ----

FigureSpec Pushdown() {
  FigureSpec spec;
  spec.id = "pushdown";
  spec.title = "Aggregate pushdown across output modes";
  spec.claim =
      "Aggregate modes on crack-family engines allocate no owned buffers "
      "and batch execution answers exactly like sequential execution";
  spec.default_q = 2000;
  const struct {
    const char* key;
    OutputMode mode;
  } modes[] = {{"mat", OutputMode::kMaterialize},
               {"count", OutputMode::kCount},
               {"sum", OutputMode::kSum},
               {"minmax", OutputMode::kMinMax},
               {"exists", OutputMode::kExists}};
  const struct {
    const char* key;
    const char* engine;
  } engines[] = {{"scan", "scan"},
                 {"crack", "crack"},
                 {"mdd1r", "mdd1r"},
                 {"sharded4", "sharded(4,crack)"}};
  for (const auto& engine : engines) {
    for (const auto& mode : modes) {
      RunDecl decl = Run(std::string(engine.key) + "." + mode.key,
                         engine.engine, WorkloadKind::kRandom);
      decl.mode = mode.mode;
      spec.runs.push_back(decl);
    }
  }
  // Batch-vs-sequential kCount checksums, per engine.
  spec.extra = [engines](const ReproContext& context, FigureResult* result) {
    RunDecl decl = Run("", "", WorkloadKind::kRandom);
    const auto queries =
        BuildWorkload(decl, context.n, context.q, context.seed);
    std::vector<Query> batch;
    batch.reserve(queries.size());
    for (const RangeQuery& query : queries) {
      batch.push_back(Query{query.low, query.high, OutputMode::kCount, 1});
    }
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    for (const auto& engine : engines) {
      std::unique_ptr<SelectEngine> sequential;
      SCRACK_RETURN_NOT_OK(
          CreateEngine(engine.engine, context.base, config, &sequential));
      int64_t seq_checksum = 0;
      for (const Query& query : batch) {
        QueryOutput output;
        SCRACK_RETURN_NOT_OK(sequential->Execute(query, &output));
        seq_checksum += output.count;
      }
      std::unique_ptr<SelectEngine> batched;
      SCRACK_RETURN_NOT_OK(
          CreateEngine(engine.engine, context.base, config, &batched));
      std::vector<QueryOutput> outputs;
      SCRACK_RETURN_NOT_OK(batched->ExecuteBatch(batch, &outputs));
      int64_t batch_checksum = 0;
      for (const QueryOutput& output : outputs) batch_checksum += output.count;
      result->metrics[std::string(engine.key) + ".seq_count_checksum"] =
          static_cast<double>(seq_checksum);
      result->metrics[std::string(engine.key) + ".batch_count_checksum"] =
          static_cast<double>(batch_checksum);
    }
    return Status::OK();
  };
  spec.assertions = {
      Less("crack_count_materializes_nothing",
           "aggregates on a cracked column never copy tuples",
           "crack.count.materialized", 1),
      Less("sharded_count_materializes_nothing",
           "per-shard partial aggregates never copy tuples",
           "sharded4.count.materialized", 1),
      Greater("crack_count_pushed_every_query",
              "every aggregate query is answered below the "
              "materialization boundary",
              "crack.count.aggregates_pushed", 0.99, "q"),
      Less("scan_exists_early_exits",
           "the LIMIT-1 probe stops at the first hit instead of scanning",
           "scan.exists.cum_touched", 0.5, "scan.count.cum_touched"),
      Equal("answers_match",
            "crack's materialized answers equal scan's",
            "crack.mat.checksum_sum", "scan.mat.checksum_sum"),
  };
  for (const char* engine : {"scan", "crack", "mdd1r", "sharded4"}) {
    spec.assertions.push_back(Equal(
        std::string(engine) + "_batch_equals_sequential",
        "ExecuteBatch answers exactly like one-by-one Execute",
        std::string(engine) + ".batch_count_checksum",
        std::string(engine) + ".seq_count_checksum"));
  }
  return spec;
}

FigureSpec Parallel() {
  FigureSpec spec;
  spec.id = "parallel";
  spec.title = "Sharded engine vs single-lock baseline";
  spec.claim =
      "Range-partitioned shards answer exactly like the single engine; "
      "each shard cracks a column 1/P-th the size";
  spec.default_q = 2000;
  const struct {
    const char* label;
    const char* engine;
  } cells[] = {{"mdd1r", "mdd1r"},
               {"threadsafe_mdd1r", "threadsafe:mdd1r"},
               {"sharded_2_mdd1r", "sharded(2,mdd1r)"},
               {"sharded_4_mdd1r", "sharded(4,mdd1r)"}};
  for (const auto& cell : cells) {
    spec.runs.push_back(
        Run(std::string(cell.label) + ".rnd", cell.engine,
            WorkloadKind::kRandom));
  }
  spec.assertions = {
      Equal("sharded4_matches_single",
            "the 4-shard merge returns exactly the single engine's tuples",
            "sharded_4_mdd1r.rnd.checksum_sum", "mdd1r.rnd.checksum_sum"),
      Equal("sharded2_matches_single",
            "the 2-shard merge returns exactly the single engine's tuples",
            "sharded_2_mdd1r.rnd.checksum_sum", "mdd1r.rnd.checksum_sum"),
      Equal("threadsafe_matches_inner",
            "the locking wrapper is answer-transparent",
            "threadsafe_mdd1r.rnd.checksum_sum", "mdd1r.rnd.checksum_sum"),
      Equal("sharded4_counts_match",
            "qualifying counts survive the shard merge",
            "sharded_4_mdd1r.rnd.checksum_count",
            "mdd1r.rnd.checksum_count"),
  };
  return spec;
}

FigureSpec ParallelCrack() {
  FigureSpec spec;
  spec.id = "parallelcrack";
  spec.title = "Parallel first-touch convergence";
  spec.claim =
      "Intra-query parallel cracking is answer- and cost-transparent: "
      "per-query convergence curves at 1/2/4/8 threads return exactly the "
      "sequential engine's tuples and touch exactly as many";
  spec.default_q = 1000;
  // Pin the cutover far below L3 so the quick/full grids exercise the
  // parallel kernels on their first-touch sweeps regardless of host cache.
  const Index cutover = 4096;
  const struct {
    const char* label;
    const char* engine;
  } cells[] = {{"seq", "crack"},
               {"t1", "crack-p1"},
               {"t2", "crack-p2"},
               {"t4", "crack-p4"},
               {"t8", "crack-p8"}};
  for (const auto& cell : cells) {
    RunDecl decl = Run(cell.label, cell.engine, WorkloadKind::kRandom);
    decl.parallel_min_values = cutover;
    spec.runs.push_back(decl);
  }
  spec.assertions = {
      Equal("t2_answers_match_sequential",
            "2-thread parallel cracking returns exactly the sequential "
            "engine's tuples",
            "t2.checksum_sum", "seq.checksum_sum"),
      Equal("t4_answers_match_sequential",
            "4-thread parallel cracking returns exactly the sequential "
            "engine's tuples",
            "t4.checksum_sum", "seq.checksum_sum"),
      Equal("t8_answers_match_sequential",
            "8-thread parallel cracking returns exactly the sequential "
            "engine's tuples",
            "t8.checksum_sum", "seq.checksum_sum"),
      Equal("t8_counts_match_sequential",
            "qualifying counts survive the parallel partition",
            "t8.checksum_count", "seq.checksum_count"),
      Equal("t2_touched_invariant",
            "tuples touched are thread-count-invariant (2 threads)",
            "t2.cum_touched", "seq.cum_touched"),
      Equal("t4_touched_invariant",
            "tuples touched are thread-count-invariant (4 threads)",
            "t4.cum_touched", "seq.cum_touched"),
      Equal("t8_touched_invariant",
            "tuples touched are thread-count-invariant (8 threads)",
            "t8.cum_touched", "seq.cum_touched"),
      Equal("t1_is_sequential",
            "a 1-thread parallel config stays on the sequential kernels "
            "and matches them exactly",
            "t1.cum_touched", "seq.cum_touched"),
      Less("t1_never_fans_out",
           "the 1-thread config never runs a parallel pass",
           "t1.parallel_cracks", 1),
      Greater("t8_used_parallel_kernels",
              "past the cutover the 8-thread config actually runs the "
              "parallel partition kernels",
              "t8.parallel_cracks", 0.5),
      Equal("t8_first_touch_cost_invariant",
            "the first query's whole-column sweep costs the same tuples "
            "at 8 threads as sequentially",
            "t8.touched_at_1", "seq.touched_at_1"),
  };
  return spec;
}

FigureSpec Sideways() {
  FigureSpec spec;
  spec.id = "sideways";
  spec.title = "Sideways cracking: robustness carries over to maps";
  spec.claim =
      "Query-driven map cracking degenerates on sequential patterns; the "
      "stochastic map modes stay flat (extension beyond the paper's "
      "single-column selects)";
  spec.default_q = 1000;
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    const Index n = context.n;
    std::vector<Value> tail_values(static_cast<size_t>(n));
    for (Index i = 0; i < n; ++i) {
      tail_values[static_cast<size_t>(i)] = (*context.base)[i] * 2 + 1;
    }
    const Column tail(std::move(tail_values));
    RunDecl decl = Run("", "", WorkloadKind::kSequential);
    const auto queries = BuildWorkload(decl, n, context.q, context.seed);
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    const struct {
      const char* key;
      CrackerMap::Mode mode;
    } modes[] = {{"map_crack", CrackerMap::Mode::kCrack},
                 {"map_dd1r", CrackerMap::Mode::kDd1r},
                 {"map_mdd1r", CrackerMap::Mode::kMdd1r}};
    for (const auto& mode : modes) {
      CrackerMap map(context.base, &tail, config, mode.mode);
      for (const RangeQuery& query : queries) {
        QueryResult ignored;
        SCRACK_RETURN_NOT_OK(map.Select(query.low, query.high, &ignored));
      }
      result->metrics[std::string(mode.key) + ".touched"] =
          static_cast<double>(map.stats().tuples_touched);
    }
    return Status::OK();
  };
  spec.assertions = {
      Greater("map_crack_degenerates",
              "the paper's robustness pathology reappears in the "
              "multi-column projection path",
              "map_crack.touched", 4, "map_mdd1r.touched"),
      Less("map_dd1r_robust", "stochastic map cracking converges",
           "map_dd1r.touched", 4, "map_mdd1r.touched"),
  };
  return spec;
}

FigureSpec Serving() {
  FigureSpec spec;
  spec.id = "serving";
  spec.title = "Epoch serving: convergence turns reads concurrent";
  spec.claim =
      "Once cracking converges, the epoch layer answers queries as shared "
      "readers with zero escalations and thread-count-invariant answers, "
      "while matching the exclusive-lock baseline answer for answer "
      "(beyond the paper: its §6 defers concurrency to future work)";
  spec.default_q = 1000;
  spec.runs = {
      Run("ts", "threadsafe:crack", WorkloadKind::kRandom),
      Run("ep", "epoch(crack)", WorkloadKind::kRandom),
  };
  // The lifecycle phases need checkpointed counters and a multi-threaded
  // replay, which the single-pass grid cannot express; all hook metrics
  // are deterministic (counter checkpoints and commutative checksums), so
  // the assertions are exact at any scale.
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    std::unique_ptr<SelectEngine> engine;
    SCRACK_RETURN_NOT_OK(
        CreateEngine("epoch(crack)", context.base, config, &engine));
    RunDecl decl = Run("", "", WorkloadKind::kRandom);
    const auto queries =
        BuildWorkload(decl, context.n, context.q, context.seed);
    const auto fold = [](const QueryOutput& output) {
      return static_cast<uint64_t>(output.sum) * 31u +
             static_cast<uint64_t>(output.count);
    };
    const auto sum_query = [](const RangeQuery& rq) {
      Query query;
      query.low = rq.low;
      query.high = rq.high;
      query.mode = OutputMode::kSum;
      return query;
    };

    // Phase 1, cold: every fresh bound cracks (exclusive).
    for (const RangeQuery& rq : queries) {
      QueryOutput output;
      SCRACK_RETURN_NOT_OK(engine->Execute(sum_query(rq), &output));
    }
    const EngineStats cold = engine->CurrentStats();
    result->metrics["serving.shared_reads_cold"] =
        static_cast<double>(cold.shared_reads);
    result->metrics["serving.escalations_cold"] =
        static_cast<double>(cold.escalations);

    // Phase 2, converged replay: every bound is a crack position.
    uint64_t checksum_t1 = 0;
    for (const RangeQuery& rq : queries) {
      QueryOutput output;
      SCRACK_RETURN_NOT_OK(engine->Execute(sum_query(rq), &output));
      checksum_t1 += fold(output);
    }
    const EngineStats converged = engine->CurrentStats();
    result->metrics["serving.shared_reads_converged"] =
        static_cast<double>(converged.shared_reads);
    result->metrics["serving.phase2_escalations"] =
        static_cast<double>(converged.escalations - cold.escalations);
    result->metrics["serving.checksum_t1"] =
        static_cast<double>(checksum_t1 % 2147483647u);

    // Phase 3, the same replay partitioned round-robin over 4 threads:
    // the commutative checksum must be bit-identical to the sequential
    // pass (thread-count-invariant answers).
    std::atomic<uint64_t> checksum_t4{0};
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        uint64_t local = 0;
        for (size_t i = static_cast<size_t>(t); i < queries.size(); i += 4) {
          QueryOutput output;
          if (!engine->Execute(sum_query(queries[i]), &output).ok()) {
            errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          local += fold(output);
        }
        checksum_t4.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (errors.load() != 0) {
      return Status::Internal("serving: threaded replay failed");
    }
    result->metrics["serving.checksum_t4"] =
        static_cast<double>(checksum_t4.load() % 2147483647u);
    result->metrics["serving.shared_reads_final"] =
        static_cast<double>(engine->CurrentStats().shared_reads);
    return Status::OK();
  };
  spec.assertions = {
      Equal("epoch_matches_threadsafe",
            "the epoch layer returns exactly the exclusive-lock baseline's "
            "tuples on the grid workload",
            "ep.checksum_sum", "ts.checksum_sum"),
      Equal("epoch_counts_match_threadsafe",
            "qualifying counts survive the reader/writer classification",
            "ep.checksum_count", "ts.checksum_count"),
      Chain("shared_reads_monotone",
            "shared reads only accumulate across the serving lifecycle",
            {"serving.shared_reads_cold", "serving.shared_reads_converged",
             "serving.shared_reads_final"},
            0.0),
      Greater("cold_phase_escalates",
              "fresh bounds force writer escalations during the cold phase",
              "serving.escalations_cold", 0.5),
      Less("escalations_vanish_after_convergence",
           "a converged replay runs entirely as shared readers",
           "serving.phase2_escalations", 0.5),
      Greater("converged_replay_is_shared",
              "the replay grows shared reads past the cold phase's count",
              "serving.shared_reads_converged", 1.0,
              "serving.shared_reads_cold"),
      Equal("checksums_thread_count_invariant",
            "4-thread replay answers fold to the 1-thread checksum exactly",
            "serving.checksum_t1", "serving.checksum_t4"),
  };
  return spec;
}

FigureSpec Robustness() {
  FigureSpec spec;
  spec.id = "robustness";
  spec.title = "Budgeted progressive cracking: bounded per-query work";
  spec.claim =
      "prog(B,crack) caps every query's reorganization at B swaps plus one "
      "small-piece overdraw per bound, answers bit-identically to "
      "unbudgeted cracking at every budget, and converges to the identical "
      "final piece layout at a total cost within 2x of plain cracking";
  spec.default_q = 1000;
  // Pin the small-piece cutoff so the per-query ceiling constants below
  // are host-independent (the detected L1 threshold varies by machine).
  const Index cutoff = 4096;
  const struct {
    const char* label;
    const char* engine;
  } cells[] = {{"crack", "crack"},
               {"prog_tiny", "prog(2000,crack)"},
               {"prog_piece", "prog(8192,crack)"},
               {"prog_inf", "prog(inf,crack)"}};
  for (const auto& cell : cells) {
    RunDecl decl = Run(cell.label, cell.engine, WorkloadKind::kRandom);
    decl.crack_threshold_values = cutoff;
    spec.runs.push_back(decl);
  }
  // Convergence needs a replay past the workload (drain the backlog) and a
  // layout fingerprint, which the single-pass grid cannot express. All
  // hook metrics are deterministic counters/hashes, exact at any scale.
  spec.extra = [cutoff](const ReproContext& context, FigureResult* result) {
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    config.crack_threshold_values = cutoff;
    RunDecl decl = Run("", "", WorkloadKind::kRandom);
    const auto queries =
        BuildWorkload(decl, context.n, context.q, context.seed);
    const auto sum_query = [](const RangeQuery& rq) {
      Query query;
      query.low = rq.low;
      query.high = rq.high;
      query.mode = OutputMode::kSum;
      return query;
    };
    // FNV-1a over the sorted (crack key, crack position) pairs: equal
    // hashes mean the two indexes partition the array identically.
    const auto fingerprint = [](const CrackerColumn& column) {
      const CrackerIndex& index = column.index();
      uint64_t h = 1469598103934665603ull;
      for (size_t i = 0; i < index.num_cracks(); ++i) {
        h = (h ^ static_cast<uint64_t>(index.crack_key(i))) *
            1099511628211ull;
        h = (h ^ static_cast<uint64_t>(index.crack_pos(i))) *
            1099511628211ull;
      }
      return static_cast<double>(h % 2147483647ull);
    };
    const auto fold = [](const QueryOutput& output) {
      return static_cast<uint64_t>(output.sum) * 31u +
             static_cast<uint64_t>(output.count);
    };

    uint64_t crack_checksum = 0;
    {
      CrackEngine engine(context.base, config);
      for (const RangeQuery& rq : queries) {
        QueryOutput output;
        SCRACK_RETURN_NOT_OK(engine.Execute(sum_query(rq), &output));
        crack_checksum += fold(output);
      }
      result->metrics["hook.crack_swaps"] =
          static_cast<double>(engine.CurrentStats().swaps);
      result->metrics["hook.crack_fingerprint"] = fingerprint(engine.column());
    }

    EngineConfig prog_config = config;
    prog_config.swap_budget = 2000;
    BudgetedEngine engine(context.base, prog_config, "crack");
    uint64_t prog_checksum = 0;
    for (const RangeQuery& rq : queries) {
      QueryOutput output;
      SCRACK_RETURN_NOT_OK(engine.Execute(sum_query(rq), &output));
      prog_checksum += fold(output);
    }
    // Generous round cap: each round grants a full budget and at worst
    // finishes one backlog entry, of which there are at most 2 per query.
    SCRACK_RETURN_NOT_OK(
        engine.DrainDeferred(4 * static_cast<int64_t>(context.q) + 64));
    if (!engine.Converged()) {
      return Status::Internal("robustness: backlog failed to drain");
    }
    SCRACK_RETURN_NOT_OK(engine.Validate());
    result->metrics["hook.prog_converged_swaps"] =
        static_cast<double>(engine.CurrentStats().swaps);
    result->metrics["hook.prog_deferred_after_drain"] =
        static_cast<double>(engine.CurrentStats().deferred_swaps);
    result->metrics["hook.prog_fingerprint"] = fingerprint(engine.column());
    result->metrics["hook.crack_sum_checksum"] =
        static_cast<double>(crack_checksum % 2147483647u);
    result->metrics["hook.prog_sum_checksum"] =
        static_cast<double>(prog_checksum % 2147483647u);
    return Status::OK();
  };
  spec.assertions = {
      Equal("tiny_answers_match",
            "a 2000-swap budget returns exactly plain cracking's tuples",
            "prog_tiny.checksum_sum", "crack.checksum_sum"),
      Equal("tiny_counts_match",
            "qualifying counts survive the scan fallback",
            "prog_tiny.checksum_count", "crack.checksum_count"),
      Equal("piece_answers_match",
            "a piece-sized budget returns exactly plain cracking's tuples",
            "prog_piece.checksum_sum", "crack.checksum_sum"),
      Equal("inf_answers_match",
            "the unbudgeted engine returns exactly plain cracking's tuples",
            "prog_inf.checksum_sum", "crack.checksum_sum"),
      // Ceilings: B + 2 * min(cutoff, B), the law audit(prog) enforces.
      Less("tiny_per_query_swaps_bounded",
           "no query swaps more than budget 2000 plus one clamped-cutoff "
           "overdraw per bound",
           "prog_tiny.max_swaps_per_query", 2000 + 2 * 2000 + 1),
      Less("piece_per_query_swaps_bounded",
           "no query swaps more than budget 8192 plus one cutoff overdraw "
           "per bound",
           "prog_piece.max_swaps_per_query", 8192 + 2 * 4096 + 1),
      Greater("tiny_budget_binds",
              "the 2000-swap budget actually ran out on cold queries "
              "(otherwise the ceiling holds vacuously)",
              "prog_tiny.budget_exhausted", 0.5),
      Less("inf_budget_never_binds",
           "the unbudgeted engine never defers work",
           "prog_inf.budget_exhausted", 0.5),
      Equal("aggregate_answers_match",
            "budgeted aggregate pushdown folds to plain cracking's sums",
            "hook.prog_sum_checksum", "hook.crack_sum_checksum"),
      Equal("layout_converges_to_crack",
            "after draining the backlog, the budgeted index holds exactly "
            "plain cracking's (key, position) partition",
            "hook.prog_fingerprint", "hook.crack_fingerprint"),
      Less("deferred_drains_to_zero",
           "the deferred_swaps gauge returns to exactly 0 at convergence",
           "hook.prog_deferred_after_drain", 0.5),
      Less("convergence_cost_bounded",
           "reaching the converged layout under a budget costs at most 2x "
           "plain cracking's total swaps",
           "hook.prog_converged_swaps", 2.0, "hook.crack_swaps"),
  };
  return spec;
}

FigureSpec Distributed() {
  FigureSpec spec;
  spec.id = "distributed";
  spec.title = "Distributed serving: coordinator parity, pruning, degradation";
  spec.claim =
      "A coordinator over K wire-connected storage nodes answers exactly "
      "like the in-process sharded engine (identical boundaries, identical "
      "inner seeds), prunes nodes whose value range cannot match, and "
      "degrades to a reported-partial answer instead of failing when a "
      "node dies (beyond the paper: NeedleTail-style routing over the "
      "paper's cracking engines)";
  spec.default_q = 1000;
  spec.runs = {
      Run("sc", "scan", WorkloadKind::kRandom),
      Run("co_c", "coord(4,crack)", WorkloadKind::kRandom),
      Run("sh_c", "sharded(4,crack)", WorkloadKind::kRandom),
      Run("co_m", "coord(4,mdd1r)", WorkloadKind::kRandom),
      Run("sh_m", "sharded(4,mdd1r)", WorkloadKind::kRandom),
      Run("co_q", "coord(4,crack)", WorkloadKind::kSequential),
      Run("sh_q", "sharded(4,crack)", WorkloadKind::kSequential),
  };
  // Pruning and failure handling need transport-level chaos hooks
  // (KillNode) that the single-pass grid cannot reach; every hook metric
  // is a deterministic counter or exact count, so assertions are exact.
  spec.extra = [](const ReproContext& context, FigureResult* result) {
    EngineConfig config = EngineConfig::Detected();
    config.seed = context.seed;
    std::unique_ptr<SelectEngine> engine;
    SCRACK_RETURN_NOT_OK(
        CreateEngine("coord(4,crack)", context.base, config, &engine));
    auto* coord = dynamic_cast<CoordinatorEngine*>(engine.get());
    if (coord == nullptr || coord->inproc_transport() == nullptr) {
      return Status::Internal("distributed: hook engine is not a coordinator");
    }
    const double nodes = static_cast<double>(coord->num_nodes());
    result->metrics["dist.cluster_nodes"] = nodes;

    // A needle query inside one equi-depth partition routes to < K nodes.
    const EngineStats before = engine->CurrentStats();
    Query query;
    query.low = context.n / 8;
    query.high = context.n / 8 + std::max<Value>(1, context.n / 64);
    query.mode = OutputMode::kCount;
    QueryOutput narrow;
    SCRACK_RETURN_NOT_OK(engine->Execute(query, &narrow));
    const EngineStats selective = engine->CurrentStats();
    result->metrics["dist.selective_routed"] =
        static_cast<double>(selective.nodes_routed - before.nodes_routed);

    // A full-domain sweep routes everywhere.
    query.low = -1;
    query.high = context.n + 1;
    QueryOutput wide;
    SCRACK_RETURN_NOT_OK(engine->Execute(query, &wide));
    const EngineStats swept = engine->CurrentStats();
    result->metrics["dist.wide_routed"] =
        static_cast<double>(swept.nodes_routed - selective.nodes_routed);
    result->metrics["dist.full_count"] = static_cast<double>(wide.count);

    // Seeded node kill: reads must degrade to a reported-partial answer,
    // not fail; revival must restore complete answers.
    const int victim =
        static_cast<int>(context.seed % static_cast<uint64_t>(
                                            coord->num_nodes()));
    coord->inproc_transport()->KillNode(victim);
    query.mode = OutputMode::kMaterialize;
    QueryOutput degraded;
    SCRACK_RETURN_NOT_OK(engine->Execute(query, &degraded));
    result->metrics["dist.degraded_nodes_during_kill"] =
        static_cast<double>(degraded.degraded_nodes);
    result->metrics["dist.killed_partial_count"] =
        static_cast<double>(degraded.result.count());
    coord->inproc_transport()->ReviveNode(victim);
    QueryOutput recovered;
    SCRACK_RETURN_NOT_OK(engine->Execute(query, &recovered));
    if (recovered.degraded_nodes != 0) {
      return Status::Internal("distributed: answer still partial after "
                              "node revival");
    }
    result->metrics["dist.recovered_count"] =
        static_cast<double>(recovered.result.count());

    const EngineStats last = engine->CurrentStats();
    result->metrics["dist.route_lhs"] =
        static_cast<double>(last.nodes_routed + last.nodes_pruned);
    result->metrics["dist.route_rhs"] =
        static_cast<double>(last.fan_outs) * nodes;
    result->metrics["dist.wire_bytes"] =
        static_cast<double>(last.wire_bytes);
    result->metrics["dist.node_failures"] =
        static_cast<double>(last.node_failures);
    return Status::OK();
  };
  spec.assertions = {
      Equal("coord_crack_parity",
            "coord(4,crack) folds bit-identical sums to sharded(4,crack)",
            "co_c.checksum_sum", "sh_c.checksum_sum"),
      Equal("coord_crack_count_parity",
            "qualifying counts survive the wire boundary exactly",
            "co_c.checksum_count", "sh_c.checksum_count"),
      Equal("coord_matches_scan",
            "the coordinator's answers fold to the scan reference",
            "co_c.checksum_sum", "sc.checksum_sum"),
      Equal("coord_stochastic_parity",
            "identical per-node seed decorrelation keeps even random-pivot "
            "engines bit-identical across the wire",
            "co_m.checksum_sum", "sh_m.checksum_sum"),
      Equal("coord_sequential_parity",
            "parity holds on the sequential workload too",
            "co_q.checksum_sum", "sh_q.checksum_sum"),
      Greater("grid_prunes",
              "the random grid workload prunes at least one node call",
              "co_c.nodes_pruned", 0.5),
      Less("selective_query_prunes",
           "a needle query routes to fewer nodes than the cluster holds",
           "dist.selective_routed", 1.0, "dist.cluster_nodes"),
      Equal("wide_query_routes_all",
            "a full-domain sweep cannot prune anything",
            "dist.wide_routed", "dist.cluster_nodes"),
      Equal("route_conservation",
            "routed + pruned node decisions equal fan-outs times cluster "
            "size exactly",
            "dist.route_lhs", "dist.route_rhs"),
      Greater("wire_bytes_flow",
              "every hop serializes through the byte transport",
              "dist.wire_bytes", 0.5),
      Greater("node_kill_degrades_not_fails",
              "killing a node leaves reads answering with a reported "
              "partial node set",
              "dist.degraded_nodes_during_kill", 0.5),
      Less("degraded_answer_is_partial",
           "the degraded answer covers strictly less than the full column",
           "dist.killed_partial_count", 1.0, "dist.full_count"),
      Equal("revival_restores_complete_answers",
            "after revival the same sweep returns every tuple again",
            "dist.recovered_count", "dist.full_count"),
  };
  return spec;
}

std::vector<FigureSpec> Build() {
  std::vector<FigureSpec> specs;
  specs.push_back(Fig02());
  specs.push_back(Fig03());
  specs.push_back(Fig05());
  specs.push_back(Fig08());
  specs.push_back(Fig09());
  specs.push_back(Fig10());
  specs.push_back(Fig11());
  specs.push_back(Fig12());
  specs.push_back(Fig13());
  specs.push_back(Fig14());
  specs.push_back(Fig15());
  specs.push_back(Fig16());
  specs.push_back(Fig17());
  specs.push_back(Fig18());
  specs.push_back(Fig19());
  specs.push_back(Fig20());
  specs.push_back(Pushdown());
  specs.push_back(Parallel());
  specs.push_back(ParallelCrack());
  specs.push_back(Sideways());
  specs.push_back(Serving());
  specs.push_back(Robustness());
  specs.push_back(Distributed());
  return specs;
}

}  // namespace

const std::vector<FigureSpec>& Registry() {
  static const std::vector<FigureSpec>* specs =
      new std::vector<FigureSpec>(Build());  // lint:allow(naked-new)
  return *specs;
}

const FigureSpec* FindSpec(const std::string& id) {
  for (const FigureSpec& spec : Registry()) {
    if (spec.id == id) return &spec;
  }
  return nullptr;
}

std::vector<const FigureSpec*> SelectSpecs(const std::string& selector,
                                           std::string* error) {
  std::vector<const FigureSpec*> selected;
  if (selector == "all") {
    for (const FigureSpec& spec : Registry()) selected.push_back(&spec);
    return selected;
  }
  if (const FigureSpec* spec = FindSpec(selector)) {
    selected.push_back(spec);
    return selected;
  }
  // Bare figure number: select every spec covering it. The length cap
  // keeps std::stoi in range (figure numbers are two digits).
  bool numeric = !selector.empty() && selector.size() <= 4;
  for (const char c : selector) {
    numeric = numeric && std::isdigit(static_cast<unsigned char>(c)) != 0;
  }
  if (numeric) {
    const int figure = std::stoi(selector);
    for (const FigureSpec& spec : Registry()) {
      if (std::find(spec.figures.begin(), spec.figures.end(), figure) !=
          spec.figures.end()) {
        selected.push_back(&spec);
      }
    }
    if (!selected.empty()) return selected;
  }
  if (error != nullptr) {
    *error = "unknown figure selector '" + selector +
             "' (use 'all', a spec id like 'fig09', or a figure number)";
  }
  return {};
}

std::vector<int> CoveredFigures() {
  std::set<int> covered;
  for (const FigureSpec& spec : Registry()) {
    covered.insert(spec.figures.begin(), spec.figures.end());
  }
  return std::vector<int>(covered.begin(), covered.end());
}

}  // namespace repro
}  // namespace scrack
