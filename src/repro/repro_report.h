// Report emitters for the reproduction driver: the merged BENCH_repro.json
// document, ready-to-paste EXPERIMENTS.md table rows, and the console
// rendering.
#pragma once

#include <string>
#include <vector>

#include "repro/json.h"
#include "repro/spec.h"

namespace scrack {
namespace repro {

/// Builds the full BENCH_repro.json document:
/// { "meta": {...}, "figures": [ {id, figures, title, n, q, runs: [...],
///   assertions: [...], ok}, ... ], "assertions_total", "assertions_failed",
///   "ok" }.
Json BuildReport(const std::vector<const FigureSpec*>& specs,
                 const std::vector<FigureResult>& results,
                 const ReproOptions& options);

/// Renders the EXPERIMENTS.md "paper vs measured" rows for `results`
/// (markdown table body, one `| Fig. N | claim | driver | measured |` row
/// per covered paper figure, beyond-paper scenarios after).
std::string MarkdownRows(const std::vector<const FigureSpec*>& specs,
                         const std::vector<FigureResult>& results);

/// Prints one figure's runs and assertion verdicts to stdout.
void PrintFigure(const FigureSpec& spec, const FigureResult& result);

/// One-line measured summary for a figure (used in the markdown rows),
/// e.g. "n=100000, q=400: crack.seq/crack.rnd touched = 21x; 5/5 shape
/// assertions pass".
std::string MeasuredSummary(const FigureSpec& spec,
                            const FigureResult& result);

}  // namespace repro
}  // namespace scrack
