// Executes a FigureSpec: materializes the dataset, runs every grid cell
// through the experiment harness, records metrics and curves, runs the
// spec's extra hook, and evaluates its shape assertions.
#pragma once

#include "repro/spec.h"
#include "util/status.h"

namespace scrack {
namespace repro {

/// Resolved scale for a spec under the given options.
struct Scale {
  Index n;
  QueryId q;
};
Scale ResolveScale(const FigureSpec& spec, const ReproOptions& options);

/// Builds the query sequence for one grid cell at scale (n, q).
std::vector<RangeQuery> BuildWorkload(const RunDecl& decl, Index n, QueryId q,
                                      uint64_t seed);

/// Runs the whole figure. Returns a non-OK status only on harness errors
/// (bad engine spec, failed update merge) — assertion violations are
/// reported in result->ok / result->assertions, not as a Status.
Status RunFigure(const FigureSpec& spec, const ReproOptions& options,
                 FigureResult* result);

}  // namespace repro
}  // namespace scrack
