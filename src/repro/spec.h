// Declarative reproduction specs: every Fig. 2-20 scenario of the paper
// (plus the beyond-paper scenarios the repo has accumulated) encoded as
// data — workload pattern x engine grid x N/Q/selectivity — with the
// paper's qualitative claims attached as machine-checkable ShapeAssertions.
//
// A FigureSpec is mostly a grid of RunDecls; the runner executes each cell
// against a fresh engine and records a flat metric map
// (`<label>.cum_touched`, `<label>.checksum_sum`, ...) that the assertions
// are evaluated over. Assertions deliberately compare the deterministic
// tuples-touched / checksum metrics, never wall-clock, so the repro gate
// has no timing flake: the *shape* of every figure — who wins, by what
// factor, what stays flat — is exactly what the paper argues from its cost
// model (§3).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "harness/experiment.h"
#include "storage/column.h"
#include "workload/workload.h"

namespace scrack {
namespace repro {

/// One cell of a figure's grid: an engine spec run against one workload.
struct RunDecl {
  std::string label;    ///< unique within the figure; prefixes metric names
  std::string engine;   ///< engine-factory spec, e.g. "pmdd1r:10"
  WorkloadKind workload = WorkloadKind::kRandom;

  /// Query width as a percentage of the domain; 0 keeps the generator's
  /// default fixed width (S = 10 values). Negative means Fig. 11's "Rand"
  /// column: re-draw every query's width uniformly from [1, N/2).
  double selectivity_percent = 0;

  /// EngineConfig overrides; 0 keeps the detected default.
  Index crack_threshold_values = 0;   ///< Fig. 8 DDC threshold sweep
  Index hybrid_partition_values = 0;  ///< hybrid partition-size ablation
  Index parallel_min_values = 0;      ///< parallel-crack cutover (the
                                      ///  parallelcrack figure pins it far
                                      ///  below L3 so quick scale still
                                      ///  exercises the parallel kernels)

  /// Output mode the queries run in (aggregate-pushdown scenarios).
  OutputMode mode = OutputMode::kMaterialize;

  /// Fig. 15 update stream: stage `updates_per_batch` random inserts
  /// before every `update_period`-th query (0 = no updates).
  int update_period = 0;
  int updates_per_batch = 0;
};

/// A machine-checkable claim over a figure's metric map. Assertions are
/// data, not code, so they serialize into BENCH_repro.json verbatim.
struct ShapeAssertion {
  enum class Kind {
    kLess,     ///< metric(left) <  factor * (right empty ? 1 : metric(right))
    kGreater,  ///< metric(left) >  factor * (right empty ? 1 : metric(right))
    kEqual,    ///< metric(left) == metric(right) exactly (checksums)
    kChain,    ///< chain[i+1] >= chain[i] * (1 - slack) for all i
  };

  std::string name;         ///< stable id, e.g. "seq_mdd1r_below_half_crack"
  std::string description;  ///< the paper claim this encodes, one sentence
  Kind kind = Kind::kLess;
  std::string left;
  std::string right;               ///< empty = compare against `factor`
  double factor = 1.0;
  std::vector<std::string> chain;  ///< kChain only
  double slack = 0.0;              ///< kChain tolerance
};

/// Outcome of evaluating one ShapeAssertion.
struct AssertionResult {
  std::string name;
  std::string description;
  bool ok = false;
  std::string measured;  ///< e.g. "crack.seq.cum_touched=8.1e9 >= 5x 1.2e9"
};

/// Scale and overrides for a repro invocation.
struct ReproOptions {
  bool quick = false;       ///< CI scale (each spec declares its quick N/Q)
  Index n_override = 0;     ///< 0 = use the spec's scale
  QueryId q_override = 0;
  uint64_t seed = 42;

  /// Audit mode: every grid cell's engine spec is rewritten through
  /// WrapSpecInAudit so each column-owning leaf runs under the invariant
  /// auditor; the first violation fails the figure with a diagnostic
  /// naming the figure/cell, query, piece and rule. The deterministic
  /// metrics (touched/checksums) are identical with or without — audit
  /// only observes.
  bool audit = false;
};

/// Everything a custom measurement hook gets to see.
struct ReproContext {
  const ReproOptions* options;
  Index n;
  QueryId q;
  uint64_t seed;
  const Column* base;  ///< the figure's dataset (unique permutation of [0,n))
};

/// Log-spaced checkpoint of one run's cumulative curves.
struct CurvePoint {
  QueryId query;
  double cum_seconds;
  int64_t cum_touched;
};

/// One executed grid cell.
struct RunSeries {
  RunDecl decl;
  std::string engine_name;  ///< engine->name() (decl.engine is the spec)
  std::vector<CurvePoint> points;
  EngineStats final_stats;
};

/// Everything measured for one figure.
struct FigureResult {
  std::string id;
  Index n = 0;
  QueryId q = 0;
  std::vector<RunSeries> runs;
  /// Flat metric map the assertions read. Grid runs contribute
  /// `<label>.{cum_seconds,cum_touched,touched_per_sec,touched_at_1,
  /// swaps_at_1,max_swaps_per_query,cum_touched_at_8,checksum_count,
  /// checksum_sum,materialized,aggregates_pushed,updates_merged,
  /// parallel_cracks,threads_used,shared_reads,exclusive_cracks,
  /// escalations}`; the
  /// pseudo-metrics `n` and `q` are always present; `extra` hooks may add
  /// more. checksum_sum is reduced mod 2^31 so it stays exact in a double
  /// at any scale (kEqual compares exactly).
  std::map<std::string, double> metrics;
  std::vector<AssertionResult> assertions;
  bool ok = false;  ///< all assertions passed
};

/// One reproduction scenario: a paper figure (or beyond-paper experiment).
struct FigureSpec {
  std::string id;             ///< "fig09", "pushdown", ...
  std::vector<int> figures;   ///< paper figure numbers covered (empty for
                              ///  beyond-paper scenarios)
  std::string title;
  std::string claim;          ///< the paper's qualitative claim (docs row)

  Index default_n = 1'000'000;
  QueryId default_q = 1000;
  Index quick_n = 100'000;
  QueryId quick_q = 400;

  std::vector<RunDecl> runs;
  std::vector<ShapeAssertion> assertions;

  /// Optional hook run after the grid, for measurements the declarative
  /// grid cannot express (piece-size distributions, kernel ablations,
  /// batch-vs-sequential checksums). Adds metrics to `result->metrics`.
  std::function<Status(const ReproContext&, FigureResult*)> extra;
};

/// Evaluates one assertion against a metric map. A metric named by the
/// assertion but absent from the map fails the assertion (never passes
/// silently) and says so in `measured`.
AssertionResult Evaluate(const ShapeAssertion& assertion,
                         const std::map<std::string, double>& metrics);

/// Human name for an assertion kind ("less", "greater", "equal", "chain").
std::string KindName(ShapeAssertion::Kind kind);

}  // namespace repro
}  // namespace scrack
