#include "repro/spec.h"

#include <cmath>
#include <cstdio>

namespace scrack {
namespace repro {

namespace {

std::string Num(double v) {
  char buf[40];
  // Range guard before the cast (casting >= 2^63 to long long is UB).
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  }
  return buf;
}

/// Looks up a metric; records a failure message on absence.
bool Lookup(const std::map<std::string, double>& metrics,
            const std::string& name, double* out, std::string* error) {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    *error = "metric '" + name + "' not recorded";
    return false;
  }
  *out = it->second;
  return true;
}

}  // namespace

std::string KindName(ShapeAssertion::Kind kind) {
  switch (kind) {
    case ShapeAssertion::Kind::kLess: return "less";
    case ShapeAssertion::Kind::kGreater: return "greater";
    case ShapeAssertion::Kind::kEqual: return "equal";
    case ShapeAssertion::Kind::kChain: return "chain";
  }
  return "unknown";
}

AssertionResult Evaluate(const ShapeAssertion& assertion,
                         const std::map<std::string, double>& metrics) {
  AssertionResult result;
  result.name = assertion.name;
  result.description = assertion.description;
  std::string error;

  switch (assertion.kind) {
    case ShapeAssertion::Kind::kLess:
    case ShapeAssertion::Kind::kGreater: {
      double left = 0;
      if (!Lookup(metrics, assertion.left, &left, &error)) {
        result.measured = error;
        return result;
      }
      double bound = assertion.factor;
      std::string bound_text = Num(bound);
      if (!assertion.right.empty()) {
        double right = 0;
        if (!Lookup(metrics, assertion.right, &right, &error)) {
          result.measured = error;
          return result;
        }
        bound = assertion.factor * right;
        bound_text = Num(assertion.factor) + " * " + assertion.right + " (" +
                     Num(bound) + ")";
      }
      const bool less = assertion.kind == ShapeAssertion::Kind::kLess;
      result.ok = less ? left < bound : left > bound;
      result.measured = assertion.left + " = " + Num(left) +
                        (less ? " < " : " > ") + bound_text +
                        (result.ok ? "" : "  [VIOLATED]");
      return result;
    }

    case ShapeAssertion::Kind::kEqual: {
      double left = 0;
      double right = 0;
      if (!Lookup(metrics, assertion.left, &left, &error) ||
          !Lookup(metrics, assertion.right, &right, &error)) {
        result.measured = error;
        return result;
      }
      result.ok = left == right;
      result.measured = assertion.left + " = " + Num(left) +
                        (result.ok ? " == " : " != ") + assertion.right +
                        " = " + Num(right);
      return result;
    }

    case ShapeAssertion::Kind::kChain: {
      if (assertion.chain.size() < 2) {
        result.measured = "chain needs at least two metrics";
        return result;
      }
      std::vector<double> values(assertion.chain.size());
      for (size_t i = 0; i < assertion.chain.size(); ++i) {
        if (!Lookup(metrics, assertion.chain[i], &values[i], &error)) {
          result.measured = error;
          return result;
        }
      }
      result.ok = true;
      std::string text;
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) {
          const bool step_ok =
              values[i] >= values[i - 1] * (1.0 - assertion.slack);
          result.ok = result.ok && step_ok;
          text += step_ok ? " <= " : " !<= ";
        }
        text += Num(values[i]);
      }
      result.measured = "chain " + text;
      return result;
    }
  }
  result.measured = "unknown assertion kind";
  return result;
}

}  // namespace repro
}  // namespace scrack
