#include "repro/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/common.h"

namespace scrack {
namespace repro {

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void Json::Set(const std::string& key, Json value) {
  SCRACK_CHECK(type_ == Type::kObject || type_ == Type::kNull);
  type_ = Type::kObject;
  object_.emplace_back(key, std::move(value));
}

void Json::Append(Json value) {
  SCRACK_CHECK(type_ == Type::kArray || type_ == Type::kNull);
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {  // JSON has no inf/nan; report as null
    *out += "null";
    return;
  }
  // Integral values print without a fraction so counters stay readable.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    *out += buf;
    return;
  }
  // Shortest representation that parses back to exactly `d`, so
  // Dump -> Parse -> Dump is the identity (the schema round-trip test
  // relies on it).
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", d);
  if (std::strtod(buf, nullptr) != d) {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  *out += buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string inner_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull: *out += "null"; return;
    case Type::kBool: *out += bool_ ? "true" : "false"; return;
    case Type::kNumber: AppendNumber(number_, out); return;
    case Type::kString: AppendEscaped(string_, out); return;
    case Type::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        *out += inner_pad;
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      return;
    }
    case Type::kObject: {
      if (object_.empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < object_.size(); ++i) {
        *out += inner_pad;
        AppendEscaped(object_[i].first, out);
        *out += ": ";
        object_[i].second.DumpTo(out, indent + 1);
        if (i + 1 < object_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      return;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a NUL-terminated buffer.
class Parser {
 public:
  explicit Parser(const std::string& text) : p_(text.c_str()) {}

  Status Parse(Json* out) {
    SCRACK_RETURN_NOT_OK(ParseValue(out));
    SkipWs();
    if (*p_ != '\0') return Err("trailing characters after JSON value");
    return Status::OK();
  }

 private:
  Status Err(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error: " + what);
  }

  void SkipWs() {
    while (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r') ++p_;
  }

  bool Consume(const char* token) {
    const size_t len = std::strlen(token);
    if (std::strncmp(p_, token, len) != 0) return false;
    p_ += len;
    return true;
  }

  Status ParseValue(Json* out) {
    SkipWs();
    switch (*p_) {
      case '\0': return Err("unexpected end of input");
      case 'n':
        if (!Consume("null")) return Err("bad literal");
        *out = Json();
        return Status::OK();
      case 't':
        if (!Consume("true")) return Err("bad literal");
        *out = Json(true);
        return Status::OK();
      case 'f':
        if (!Consume("false")) return Err("bad literal");
        *out = Json(false);
        return Status::OK();
      case '"': {
        std::string s;
        SCRACK_RETURN_NOT_OK(ParseString(&s));
        *out = Json(std::move(s));
        return Status::OK();
      }
      case '[': return ParseArray(out);
      case '{': return ParseObject(out);
      default: return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    if (*p_ != '"') return Err("expected string");
    ++p_;
    out->clear();
    while (*p_ != '"') {
      if (*p_ == '\0') return Err("unterminated string");
      if (*p_ == '\\') {
        ++p_;
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++p_;
              if (!std::isxdigit(static_cast<unsigned char>(*p_))) {
                return Err("bad \\u escape");
              }
              const char c = *p_;
              code = code * 16 +
                     static_cast<unsigned>(
                         c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
            }
            // The driver only emits \u00XX control escapes; other code
            // points are stored as their low byte (good enough for a
            // report format that never emits them).
            out->push_back(static_cast<char>(code & 0xFF));
            break;
          }
          default: return Err("bad escape");
        }
        ++p_;
      } else {
        out->push_back(*p_++);
      }
    }
    ++p_;
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    char* end = nullptr;
    const double d = std::strtod(p_, &end);
    if (end == p_) return Err("expected value");
    p_ = end;
    *out = Json(d);
    return Status::OK();
  }

  Status ParseArray(Json* out) {
    ++p_;  // '['
    JsonArray items;
    SkipWs();
    if (*p_ == ']') {
      ++p_;
      *out = Json(std::move(items));
      return Status::OK();
    }
    while (true) {
      Json item;
      SCRACK_RETURN_NOT_OK(ParseValue(&item));
      items.push_back(std::move(item));
      SkipWs();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        *out = Json(std::move(items));
        return Status::OK();
      }
      return Err("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out) {
    ++p_;  // '{'
    JsonObject members;
    SkipWs();
    if (*p_ == '}') {
      ++p_;
      *out = Json(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      SCRACK_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (*p_ != ':') return Err("expected ':' in object");
      ++p_;
      Json value;
      SCRACK_RETURN_NOT_OK(ParseValue(&value));
      members.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        *out = Json(std::move(members));
        return Status::OK();
      }
      return Err("expected ',' or '}' in object");
    }
  }

  const char* p_;
};

}  // namespace

Status Json::Parse(const std::string& text, Json* out) {
  return Parser(text).Parse(out);
}

Status WriteJsonFile(const Json& json, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const std::string text = json.Dump() + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::InvalidArgument("short write to " + path);
  }
  return Status::OK();
}

}  // namespace repro
}  // namespace scrack
