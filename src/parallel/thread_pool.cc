#include "parallel/thread_pool.h"

namespace scrack {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace scrack
