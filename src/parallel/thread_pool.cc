#include "parallel/thread_pool.h"

#include <cstdlib>

#include "util/common.h"

namespace scrack {

namespace {

// Set for the lifetime of every pool worker thread; read by the nesting
// checks. A plain thread_local bool: no ordering requirements.
thread_local bool t_on_worker_thread = false;

int SharedPoolThreads() {
  const char* env = std::getenv("SCRACK_THREADS");
  if (env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= 1024) return static_cast<int>(v);
  }
  return ThreadPool::DefaultThreads();
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(int64_t num_tasks, int max_concurrency,
                             const std::function<void(int64_t)>& fn) {
  if (num_tasks <= 0) return;
  // Fan-out width counts the caller; never submit more helpers than there
  // are workers or tasks.
  int64_t width = max_concurrency;
  if (width > num_tasks) width = num_tasks;
  if (width > num_threads() + 1) width = num_threads() + 1;
  if (num_tasks == 1 || width <= 1 || OnWorkerThread()) {
    for (int64_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  // Dynamic distribution off one shared counter. Helpers claim indices
  // until the counter is exhausted and then return — they never wait on
  // anything, so a helper that only gets scheduled after the caller drained
  // the loop simply exits, and the final future wait below always
  // terminates.
  std::atomic<int64_t> next{0};
  const auto drain = [&next, num_tasks, &fn] {
    for (;;) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      fn(i);
    }
  };

  std::vector<std::future<void>> pending;
  pending.reserve(static_cast<size_t>(width - 1));
  // Every helper references this frame; nothing — not even an exception
  // from the caller-run drain — may unwind it before all helpers finish.
  struct WaitAll {
    std::vector<std::future<void>>& futures;
    ~WaitAll() {
      for (std::future<void>& f : futures) {
        if (f.valid()) f.wait();
      }
    }
  } wait_all{pending};
  for (int64_t k = 0; k + 1 < width; ++k) {
    pending.push_back(Submit(drain));
  }
  drain();  // the caller works too instead of idling
  for (std::future<void>& f : pending) f.get();  // rethrows task exceptions
}

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: workers may outlive static destruction order.
  static ThreadPool* pool =
      new ThreadPool(SharedPoolThreads());  // lint:allow(naked-new)
  return *pool;
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

std::vector<int64_t>& ThreadPool::ThreadScratch(int slot) {
  SCRACK_CHECK(slot >= 0 && slot < kScratchSlots);
  thread_local std::vector<int64_t> scratch[kScratchSlots];
  return scratch[slot];
}

}  // namespace scrack
