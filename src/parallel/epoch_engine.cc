#include "parallel/epoch_engine.h"

#include <mutex>
#include <utility>

namespace scrack {

namespace {

/// Scoped active-reader accounting for the shared path: bumps the live
/// count on entry, folds the peak into the high-water mark, drops the
/// count on exit. The high-water mark is how the hammer test proves
/// readers genuinely overlap.
class ReaderScope {
 public:
  ReaderScope(std::atomic<int64_t>* active, std::atomic<int64_t>* high_water)
      : active_(active) {
    const int64_t now = active_->fetch_add(1, std::memory_order_acq_rel) + 1;
    int64_t seen = high_water->load(std::memory_order_relaxed);
    while (now > seen && !high_water->compare_exchange_weak(
                             seen, now, std::memory_order_relaxed)) {
    }
  }
  ~ReaderScope() { active_->fetch_sub(1, std::memory_order_acq_rel); }

  ReaderScope(const ReaderScope&) = delete;
  ReaderScope& operator=(const ReaderScope&) = delete;

 private:
  std::atomic<int64_t>* active_;
};

}  // namespace

EpochEngine::EpochEngine(std::unique_ptr<SelectEngine> inner)
    : inner_(std::move(inner)) {
  SCRACK_CHECK(inner_ != nullptr);
  column_ = inner_->audit_column();
}

Status EpochEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  {
    std::shared_lock<std::shared_mutex> lock(rw_mutex_);
    if (column_ != nullptr && column_->CanAnswerWithoutReorg(low, high)) {
      ReaderScope scope(&active_readers_, &reader_high_water_);
      Index begin = 0;
      Index end = 0;
      column_->ReadRegion(low, high, &begin, &end);
      const Value* data = column_->data();
      // Deep copy under the shared lock: a view would dangle the moment a
      // later query escalates and re-cracks the column.
      result->AddOwned(std::vector<Value>(data + begin, data + end));
      const int64_t n = end - begin;
      shared_reads_.fetch_add(1, std::memory_order_relaxed);
      shared_touched_.fetch_add(n, std::memory_order_relaxed);
      shared_materialized_.fetch_add(n, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  // No re-probe after the lock upgrade: the window between dropping the
  // shared lock and acquiring the exclusive one can only make the query
  // *cheaper* for the inner engine (someone else cracked the bounds), and
  // an already-cracked bound costs the inner engine two index lookups.
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  escalations_.fetch_add(1, std::memory_order_relaxed);
  exclusive_cracks_.fetch_add(1, std::memory_order_relaxed);
  return SelectExclusive(low, high, result);
}

Status EpochEngine::Execute(const Query& query, QueryOutput* output) {
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  {
    std::shared_lock<std::shared_mutex> lock(rw_mutex_);
    if (column_ != nullptr &&
        column_->CanAnswerWithoutReorg(query.low, query.high)) {
      AnswerShared(query, output);
      return Status::OK();
    }
  }
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  escalations_.fetch_add(1, std::memory_order_relaxed);
  exclusive_cracks_.fetch_add(1, std::memory_order_relaxed);
  return ExecuteExclusive(query, output);
}

Status EpochEngine::ExecuteBatch(const std::vector<Query>& queries,
                                 std::vector<QueryOutput>* outputs) {
  if (outputs == nullptr) {
    return Status::InvalidArgument("null batch outputs");
  }
  SCRACK_RETURN_NOT_OK(CheckBatch(queries));
  {
    std::shared_lock<std::shared_mutex> lock(rw_mutex_);
    bool all_shared = column_ != nullptr;
    for (const Query& query : queries) {
      if (!all_shared) break;
      all_shared = column_->CanAnswerWithoutReorg(query.low, query.high);
    }
    if (all_shared) {
      outputs->clear();
      outputs->resize(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        AnswerShared(queries[i], &(*outputs)[i]);
      }
      return Status::OK();
    }
  }
  // Whole-batch escalation: one exclusive acquisition, then exactly
  // ThreadSafeEngine's batch rules (see threadsafe_engine.h for the
  // multiset-stability argument behind the end-of-batch deep copy).
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  escalations_.fetch_add(1, std::memory_order_relaxed);
  exclusive_cracks_.fetch_add(static_cast<int64_t>(queries.size()),
                              std::memory_order_relaxed);
  bool any_materialize = false;
  for (const Query& query : queries) {
    if (query.mode == OutputMode::kMaterialize) any_materialize = true;
  }
  if (!any_materialize) return inner_->ExecuteBatch(queries, outputs);
  if (inner_->audit_column() != nullptr) {
    SCRACK_RETURN_NOT_OK(inner_->ExecuteBatch(queries, outputs));
    for (size_t i = 0; i < queries.size(); ++i) {
      if (queries[i].mode != OutputMode::kMaterialize) continue;
      QueryResult owned;
      owned.AddOwned((*outputs)[i].result.Collect());
      (*outputs)[i].result = std::move(owned);
    }
    return Status::OK();
  }
  outputs->clear();
  outputs->resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    SCRACK_RETURN_NOT_OK(ExecuteExclusive(queries[i], &(*outputs)[i]));
  }
  return Status::OK();
}

Status EpochEngine::StageInsert(Value v) {
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  escalations_.fetch_add(1, std::memory_order_relaxed);
  SCRACK_RETURN_NOT_OK(inner_->StageInsert(v));
  ResortPendingLocked();
  return Status::OK();
}

Status EpochEngine::StageDelete(Value v) {
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  escalations_.fetch_add(1, std::memory_order_relaxed);
  SCRACK_RETURN_NOT_OK(inner_->StageDelete(v));
  ResortPendingLocked();
  return Status::OK();
}

Status EpochEngine::Validate() const {
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  return inner_->Validate();
}

EngineStats EpochEngine::CurrentStats() const {
  std::unique_lock<std::shared_mutex> lock(rw_mutex_);
  EngineStats stats = inner_->CurrentStats();
  const int64_t reads = shared_reads_.load(std::memory_order_relaxed);
  stats.queries += reads;
  stats.tuples_touched += shared_touched_.load(std::memory_order_relaxed);
  stats.materialized += shared_materialized_.load(std::memory_order_relaxed);
  stats.aggregates_pushed +=
      shared_aggregates_.load(std::memory_order_relaxed);
  stats.shared_reads += reads;
  stats.exclusive_cracks += exclusive_cracks_.load(std::memory_order_relaxed);
  stats.escalations += escalations_.load(std::memory_order_relaxed);
  return stats;
}

void EpochEngine::AnswerShared(const Query& query, QueryOutput* output) const {
  ReaderScope scope(&active_readers_, &reader_high_water_);
  Index begin = 0;
  Index end = 0;
  column_->ReadRegion(query.low, query.high, &begin, &end);
  const Value* data = column_->data();
  if (query.mode == OutputMode::kMaterialize) {
    output->result.AddOwned(std::vector<Value>(data + begin, data + end));
    const int64_t n = end - begin;
    shared_touched_.fetch_add(n, std::memory_order_relaxed);
    shared_materialized_.fetch_add(n, std::memory_order_relaxed);
  } else {
    int64_t touched = 0;
    AggregateRegion(data, begin, end, query, output, &touched);
    shared_touched_.fetch_add(touched, std::memory_order_relaxed);
    shared_aggregates_.fetch_add(1, std::memory_order_relaxed);
  }
  shared_reads_.fetch_add(1, std::memory_order_relaxed);
}

Status EpochEngine::SelectExclusive(Value low, Value high,
                                    QueryResult* result) {
  QueryResult unsafe;
  SCRACK_RETURN_NOT_OK(inner_->Select(low, high, &unsafe));
  // Deep-copy while still exclusive: views into the inner column are only
  // valid until the next reorganization.
  result->AddOwned(unsafe.Collect());
  return Status::OK();
}

Status EpochEngine::ExecuteExclusive(const Query& query, QueryOutput* output) {
  if (query.mode != OutputMode::kMaterialize) {
    return inner_->Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  return SelectExclusive(query.low, query.high, &output->result);
}

void EpochEngine::ResortPendingLocked() {
  if (column_ == nullptr) return;
  // PendingUpdates sorts lazily on first read through mutable members;
  // forcing the sort here, still exclusive, is what turns the shared
  // readers' IntersectsRange probe into a genuine const read.
  (void)column_->pending().inserts();
  (void)column_->pending().deletes();
}

}  // namespace scrack
