// ShardedEngine: range-partitioned parallel adaptive indexing.
//
// The paper's engines serve one query stream over one cracker column; a
// production deployment serves many concurrent clients. ShardedEngine
// range-partitions the base column into P shards by value (equi-depth
// boundaries from a one-off sort, so skewed data still yields balanced
// shards) and gives each shard its own independent inner SelectEngine —
// any strategy the factory knows (crack, mdd1r, ddc, ...). A Select fans
// out only to the shards whose value range intersects the query, runs them
// on a persistent ThreadPool, and merges the per-shard results.
//
// Two properties fall out of the value-range partitioning:
//   * each shard cracks a column 1/P-th the size, so per-shard
//     reorganization converges P times faster (smaller pieces sooner);
//   * selective queries touch a single shard and skip the pool entirely.
//
// Concurrency contract: ShardedEngine is safe for concurrent Select /
// StageInsert / StageDelete callers. Each shard is guarded by its own
// mutex, so queries over disjoint value ranges proceed in parallel —
// the finer-grained locking the paper defers to future work (§6), realized
// at shard granularity. Like ThreadSafeEngine, results are materialized
// (deep-copied) while the shard lock is held: borrowed views would be
// invalidated by the next reorganization of the shard. Aggregate queries
// (Execute with kCount/kSum/kMinMax/kExists) skip that cost entirely —
// each shard returns a partial aggregate and only scalars are merged.
//
// Thread budget: shard tasks run on the process-wide ThreadPool::Shared()
// rather than a private pool, so any number of sharded engines — and the
// intra-query parallel partition kernels their inner engines may use —
// draw from one machine-sized worker set instead of multiplying it. Fan-
// outs issued from a pool worker (nested sharded engines, parallel-crack
// inners) run inline on that worker, which both prevents oversubscription
// and makes nesting deadlock-free.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "parallel/thread_pool.h"
#include "storage/column.h"

namespace scrack {

class ShardedEngine : public SelectEngine {
 public:
  /// Builds the inner engine of shard `shard_index` over that shard's
  /// private base column. Lets the factory layer inject spec parsing
  /// without a dependency cycle (parallel/ must not include harness/).
  using InnerFactory = std::function<Status(
      const Column* shard_base, int shard_index,
      std::unique_ptr<SelectEngine>* out)>;

  /// Creates a sharded engine over `base`. The data is copied into
  /// per-shard private columns during Create, so `base` need not outlive
  /// the engine. `num_shards` is the requested P in [1, kMaxShards].
  /// Duplicate-heavy
  /// data may yield fewer effective shards (all copies of a value live in
  /// one shard, so boundaries can collapse); `name()` still reports the
  /// requested P. `inner_name` is the spec used for display.
  static Status Create(const Column* base, int num_shards,
                       const InnerFactory& make_inner,
                       const std::string& inner_name,
                       std::unique_ptr<SelectEngine>* out);

  /// Upper bound on P: a shard per value is never useful and unbounded P
  /// would let a spec string exhaust threads.
  static constexpr int kMaxShards = 1024;

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown across shards: each intersecting shard answers the
  /// aggregate through its inner engine (inheriting any inner pushdown)
  /// and only the partial aggregates — a handful of scalars per shard —
  /// are merged, instead of merged materialized segments. kMaterialize
  /// falls back to the Select fan-out.
  Status Execute(const Query& query, QueryOutput* output) override;

  /// Batched execution with one shard fan-out for the whole batch: every
  /// shard receives its intersecting subset of the queries under one
  /// shard-lock acquisition — forwarded as one inner batch when the subset
  /// is aggregate-only, or one query at a time when it contains
  /// kMaterialize (each result must be deep-copied before the next query's
  /// reorganization invalidates its views). Per-query partial aggregates
  /// are then merged in shard order. Answers match issuing the queries one
  /// by one — including kMaterialize, whose outputs here are deep copies
  /// and so survive the rest of the batch.
  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override;

  std::string name() const override;
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;
  Status Validate() const override;

  /// Number of effective shards (<= requested P; see Create).
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Consistent snapshot of the cumulative counters, safe to call while
  /// other threads query. The inherited stats() reference is only stable
  /// at quiescence (no in-flight Selects), which is how the single-threaded
  /// harness uses it.
  EngineStats StatsSnapshot() const;

  /// Reporting accessor: the locked snapshot.
  EngineStats CurrentStats() const override { return StatsSnapshot(); }

 private:
  struct Shard {
    Column base;        ///< this shard's private slice of the data
    Value lower = 0;    ///< inclusive lower bound of the owned value range
                        ///  (shard 0 conceptually owns down to -inf)
    std::unique_ptr<SelectEngine> engine;
    mutable std::mutex mutex;  ///< serializes reorganization of this shard

    // Snapshot of engine->CurrentStats() taken each time the shard mutex
    // is released, so aggregation never has to wait on an in-flight
    // reorganization of another shard. Guarded by cache_mutex (always
    // acquired after `mutex` when both are held). CurrentStats (not the
    // raw stats() reference) so decorator inners — sharded(P,audit(X)) —
    // report the wrapped engine's counters.
    mutable std::mutex cache_mutex;
    EngineStats cached_stats;

    /// Refreshes cached_stats; call with `mutex` held.
    void UpdateStatsCache() {
      std::lock_guard<std::mutex> lock(cache_mutex);
      cached_stats = engine->CurrentStats();
    }
  };

  ShardedEngine(int requested_shards, std::string inner_name);

  /// Index of the shard owning value `v`.
  int ShardFor(Value v) const;

  /// True if shard `i`'s value range intersects [low, high).
  bool Intersects(int i, Value low, Value high) const;

  /// Runs run_task(0..num_tasks-1), fanning out on the pool with the
  /// caller's thread working too; a single task runs inline. Does not
  /// return until every task finished (even on exception).
  void FanOut(size_t num_tasks,
              const std::function<void(size_t)>& run_task) const;

  /// Recomputes stats_ as the sum of inner-engine stats plus this engine's
  /// own query / materialization / pushdown counters.
  void RefreshStats(int64_t new_queries, int64_t newly_materialized,
                    int64_t newly_pushed);

  const int requested_shards_;
  const std::string inner_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ThreadPool* pool_ = nullptr;  ///< the shared pool; null when one shard
                                ///  (never fans out)

  mutable std::mutex stats_mutex_;  // guards stats_ and the own_* counters
  int64_t own_queries_ = 0;       // Select/Execute queries served
  int64_t own_materialized_ = 0;  // tuples deep-copied during merges
  int64_t own_aggregates_pushed_ = 0;  // queries answered by merging
                                       // per-shard partial aggregates
};

}  // namespace scrack
