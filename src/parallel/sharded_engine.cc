#include "parallel/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace scrack {

ShardedEngine::ShardedEngine(int requested_shards, std::string inner_name)
    : requested_shards_(requested_shards),
      inner_name_(std::move(inner_name)) {}

Status ShardedEngine::Create(const Column* base, int num_shards,
                             const InnerFactory& make_inner,
                             const std::string& inner_name,
                             std::unique_ptr<SelectEngine>* out) {
  if (base == nullptr || out == nullptr) {
    return Status::InvalidArgument("null base column or output");
  }
  if (!make_inner) {
    return Status::InvalidArgument("sharded engine needs an inner factory");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("shard count out of range [1, 1024]");
  }

  // Equi-depth boundaries: boundary i is the value at rank i*n/P. Selected
  // with successive nth_element passes over one scratch copy — each pass
  // leaves everything before the rank <= the rank value, so the next pass
  // only partitions the tail. No full up-front sort (that would be the very
  // cost adaptive indexing exists to avoid). All duplicates of a value
  // belong to one shard (the ranges are [b_i, b_{i+1}) over *values*), so
  // consecutive equal boundaries collapse and heavy duplication can reduce
  // the effective P.
  std::vector<Value> scratch = base->values();
  std::vector<Value> lowers;  // lowers[i] = lower bound of shard i; [0] is
                              // the data minimum but acts as -inf in routing
  lowers.push_back(
      scratch.empty() ? 0
                      : *std::min_element(scratch.begin(), scratch.end()));
  size_t prev_rank = 0;
  for (int i = 1; i < num_shards && !scratch.empty(); ++i) {
    const size_t rank = std::min(
        static_cast<size_t>((static_cast<long double>(i) * scratch.size()) /
                            num_shards),
        scratch.size() - 1);
    std::nth_element(scratch.begin() + static_cast<Index>(prev_rank),
                     scratch.begin() + static_cast<Index>(rank),
                     scratch.end());
    const Value boundary = scratch[rank];
    prev_rank = rank;
    if (boundary > lowers.back()) lowers.push_back(boundary);
  }

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(num_shards, inner_name));  // lint:allow(naked-new)
  if (lowers.size() > 1) {
    // A single effective shard never fans out. Multi-shard engines draw on
    // the process-wide pool: constructing one pool per engine (the old
    // scheme) oversubscribed the machine as soon as several sharded
    // engines — or shards over parallel-crack inners — were alive at once.
    engine->pool_ = &ThreadPool::Shared();
  }
  engine->shards_.reserve(lowers.size());
  for (Value lower : lowers) {
    auto shard = std::make_unique<Shard>();
    shard->lower = lower;
    engine->shards_.push_back(std::move(shard));
  }

  // Distribute the base data into per-shard columns, preserving the base
  // order within each shard (the inner engine copies and cracks it).
  std::vector<std::vector<Value>> slices(engine->shards_.size());
  for (Value v : base->values()) {
    slices[static_cast<size_t>(engine->ShardFor(v))].push_back(v);
  }
  for (size_t i = 0; i < engine->shards_.size(); ++i) {
    Shard& shard = *engine->shards_[i];
    shard.base = Column(std::move(slices[i]));
    SCRACK_RETURN_NOT_OK(
        make_inner(&shard.base, static_cast<int>(i), &shard.engine));
    if (shard.engine == nullptr) {
      return Status::Internal("inner factory produced no engine");
    }
    shard.cached_stats = shard.engine->CurrentStats();
  }
  *out = std::move(engine);
  return Status::OK();
}

int ShardedEngine::ShardFor(Value v) const {
  // Largest i with lower_i <= v; values below shard 0's lower (possible
  // after inserts) route to shard 0, values past the last boundary to the
  // last shard.
  int lo = 0;
  int hi = static_cast<int>(shards_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (shards_[static_cast<size_t>(mid)]->lower <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

bool ShardedEngine::Intersects(int i, Value low, Value high) const {
  // Shard i owns [lower_i, lower_{i+1}), widened to -inf / +inf at the ends.
  const size_t n = shards_.size();
  const bool above_lower =
      (i == 0) || high > shards_[static_cast<size_t>(i)]->lower;
  const bool below_upper =
      (static_cast<size_t>(i) + 1 == n) ||
      low < shards_[static_cast<size_t>(i) + 1]->lower;
  return above_lower && below_upper;
}

void ShardedEngine::FanOut(
    size_t num_tasks, const std::function<void(size_t)>& run_task) const {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || pool_ == nullptr || ThreadPool::OnWorkerThread()) {
    // Selective work inside one shard runs on the caller's thread to skip
    // the pool round-trip; so does a fan-out issued from a pool worker
    // (a nested sharded engine), which must not block a worker on tasks
    // queued behind other blocked workers.
    for (size_t k = 0; k < num_tasks; ++k) run_task(k);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(num_tasks - 1);
  // Every pool task references this frame, so nothing — not even an
  // exception out of the caller-run task below — may unwind it before
  // all tasks finish; the guard's destructor enforces that.
  struct WaitAll {
    std::vector<std::future<void>>& futures;
    ~WaitAll() {
      for (std::future<void>& f : futures) {
        if (f.valid()) f.wait();
      }
    }
  } wait_all{pending};
  for (size_t k = 0; k + 1 < num_tasks; ++k) {
    pending.push_back(pool_->Submit([&run_task, k] { run_task(k); }));
  }
  run_task(num_tasks - 1);  // caller works too instead of idling
  for (std::future<void>& f : pending) f.get();
}

Status ShardedEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  if (result == nullptr) {
    return Status::InvalidArgument("null result");
  }

  std::vector<int> hits;
  if (low < high) {
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      if (Intersects(i, low, high)) hits.push_back(i);
    }
  }

  struct ShardOutput {
    Status status;
    std::vector<Value> values;
  };
  std::vector<ShardOutput> outputs(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    Shard& shard = *shards_[static_cast<size_t>(hits[k])];
    std::lock_guard<std::mutex> lock(shard.mutex);
    QueryResult local;
    outputs[k].status = shard.engine->Select(low, high, &local);
    // Deep-copy while holding the shard lock: views into the shard's
    // cracker column die at its next reorganization.
    if (outputs[k].status.ok()) outputs[k].values = local.Collect();
    shard.UpdateStatsCache();
  });

  int64_t copied = 0;
  for (ShardOutput& output : outputs) {
    SCRACK_RETURN_NOT_OK(output.status);
  }
  for (ShardOutput& output : outputs) {
    copied += static_cast<int64_t>(output.values.size());
    result->AddOwned(std::move(output.values));
  }
  RefreshStats(/*new_queries=*/1, copied, /*newly_pushed=*/0);
  return Status::OK();
}

Status ShardedEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    // The Select fan-out already merges materialized shard results.
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));

  std::vector<int> hits;
  if (query.low < query.high) {
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      if (Intersects(i, query.low, query.high)) hits.push_back(i);
    }
  }

  struct ShardPartial {
    Status status;
    QueryOutput partial;
  };
  std::vector<ShardPartial> partials(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    Shard& shard = *shards_[static_cast<size_t>(hits[k])];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Inner pushdown (crack-from-piece-bounds, scan single pass) applies
    // per shard; the partial is plain scalars, so no deep copy is needed.
    partials[k].status = shard.engine->Execute(query, &partials[k].partial);
    shard.UpdateStatsCache();
  });

  for (const ShardPartial& entry : partials) {
    SCRACK_RETURN_NOT_OK(entry.status);
  }
  for (const ShardPartial& entry : partials) {
    MergePartial(query, entry.partial, output);
  }
  RefreshStats(/*new_queries=*/1, /*newly_materialized=*/0,
               /*newly_pushed=*/1);
  return Status::OK();
}

Status ShardedEngine::ExecuteBatch(const std::vector<Query>& queries,
                                   std::vector<QueryOutput>* outputs) {
  if (outputs == nullptr) {
    return Status::InvalidArgument("null batch outputs");
  }
  SCRACK_RETURN_NOT_OK(CheckBatch(queries));
  outputs->clear();
  outputs->resize(queries.size());

  // One fan-out for the whole batch: each shard gets its intersecting
  // subset as one inner batch under one lock acquisition.
  std::vector<std::vector<size_t>> shard_queries(shards_.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& query = queries[qi];
    if (query.low >= query.high) continue;  // empty range hits no shard
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      if (Intersects(i, query.low, query.high)) {
        shard_queries[static_cast<size_t>(i)].push_back(qi);
      }
    }
  }
  std::vector<int> hits;
  for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
    if (!shard_queries[static_cast<size_t>(i)].empty()) hits.push_back(i);
  }

  struct ShardBatch {
    Status status;
    std::vector<QueryOutput> partials;           // one per assigned query
    std::vector<std::vector<Value>> collected;   // kMaterialize deep copies
  };
  std::vector<ShardBatch> batches(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    const std::vector<size_t>& assigned =
        shard_queries[static_cast<size_t>(hits[k])];
    Shard& shard = *shards_[static_cast<size_t>(hits[k])];
    ShardBatch& batch = batches[k];
    std::lock_guard<std::mutex> lock(shard.mutex);
    bool any_materialize = false;
    for (size_t qi : assigned) {
      if (queries[qi].mode == OutputMode::kMaterialize) {
        any_materialize = true;
      }
    }
    if (!any_materialize) {
      // Aggregate-only subset: forward as one inner batch, so the inner
      // engine's own amortizations (pending-update hull merge) apply.
      std::vector<Query> sub;
      sub.reserve(assigned.size());
      for (size_t qi : assigned) sub.push_back(queries[qi]);
      batch.status = shard.engine->ExecuteBatch(sub, &batch.partials);
      batch.collected.resize(assigned.size());
      shard.UpdateStatsCache();
      return;
    }
    batch.partials.resize(assigned.size());
    batch.collected.resize(assigned.size());
    // With kMaterialize present, queries run one at a time so each result
    // is deep-copied before the next query's reorganization invalidates
    // its views; aggregates are scalars and need no copy.
    for (size_t j = 0; j < assigned.size(); ++j) {
      const Query& query = queries[assigned[j]];
      batch.status = shard.engine->Execute(query, &batch.partials[j]);
      if (!batch.status.ok()) break;
      if (query.mode == OutputMode::kMaterialize) {
        batch.collected[j] = batch.partials[j].result.Collect();
      }
    }
    shard.UpdateStatsCache();
  });

  for (const ShardBatch& batch : batches) {
    SCRACK_RETURN_NOT_OK(batch.status);
  }
  // Merge in shard order, matching the segment order Select produces.
  int64_t copied = 0;
  int64_t pushed = 0;
  for (size_t k = 0; k < hits.size(); ++k) {
    const std::vector<size_t>& assigned =
        shard_queries[static_cast<size_t>(hits[k])];
    ShardBatch& batch = batches[k];
    for (size_t j = 0; j < assigned.size(); ++j) {
      const Query& query = queries[assigned[j]];
      QueryOutput& merged = (*outputs)[assigned[j]];
      if (query.mode == OutputMode::kMaterialize) {
        copied += static_cast<int64_t>(batch.collected[j].size());
        merged.result.AddOwned(std::move(batch.collected[j]));
      } else {
        MergePartial(query, batch.partials[j], &merged);
      }
    }
  }
  for (const Query& query : queries) {
    if (query.mode != OutputMode::kMaterialize) ++pushed;
  }
  RefreshStats(static_cast<int64_t>(queries.size()), copied, pushed);
  return Status::OK();
}

Status ShardedEngine::StageInsert(Value v) {
  Shard& shard = *shards_[static_cast<size_t>(ShardFor(v))];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Status status = shard.engine->StageInsert(v);
  shard.UpdateStatsCache();
  return status;
}

Status ShardedEngine::StageDelete(Value v) {
  Shard& shard = *shards_[static_cast<size_t>(ShardFor(v))];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Status status = shard.engine->StageDelete(v);
  shard.UpdateStatsCache();
  return status;
}

Status ShardedEngine::Validate() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Routing invariant: every value a shard was dealt belongs to its
    // range. Inserts staged later route by the same boundaries, so only
    // the dealt base needs checking.
    for (Value v : shard.base.values()) {
      if (i > 0 && v < shard.lower) {
        return Status::Internal("shard holds value below its lower bound");
      }
      if (i + 1 < shards_.size() && v >= shards_[i + 1]->lower) {
        return Status::Internal("shard holds value above its range");
      }
    }
    SCRACK_RETURN_NOT_OK(shard.engine->Validate());
  }
  return Status::OK();
}

std::string ShardedEngine::name() const {
  return "sharded(" + std::to_string(requested_shards_) + "," + inner_name_ +
         ")";
}

void ShardedEngine::RefreshStats(int64_t new_queries,
                                 int64_t newly_materialized,
                                 int64_t newly_pushed) {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  own_queries_ += new_queries;
  own_materialized_ += newly_materialized;
  own_aggregates_pushed_ += newly_pushed;
  // Sum the per-shard caches rather than the live inner stats: a cache
  // read never waits on another shard's in-flight reorganization, so
  // finishing queries do not convoy behind the busiest shard.
  EngineStats aggregate;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> cache_lock(shard->cache_mutex);
    const EngineStats& inner = shard->cached_stats;
    aggregate.tuples_touched += inner.tuples_touched;
    aggregate.swaps += inner.swaps;
    aggregate.cracks += inner.cracks;
    aggregate.materialized += inner.materialized;
    aggregate.updates_merged += inner.updates_merged;
    aggregate.random_pivots += inner.random_pivots;
    aggregate.parallel_cracks += inner.parallel_cracks;
    aggregate.threads_used =
        std::max(aggregate.threads_used, inner.threads_used);
    aggregate.shared_reads += inner.shared_reads;
    aggregate.exclusive_cracks += inner.exclusive_cracks;
    aggregate.escalations += inner.escalations;
    aggregate.budget_exhausted += inner.budget_exhausted;
    aggregate.deferred_swaps += inner.deferred_swaps;
    aggregate.scan_fallback_tuples += inner.scan_fallback_tuples;
    // A range query may crack bounds in every intersecting shard, so the
    // ceiling the whole engine enforces per query is the shard sum.
    aggregate.swap_budget += inner.swap_budget;
  }
  aggregate.queries = own_queries_;
  aggregate.materialized += own_materialized_;
  // aggregates_pushed counts *user-level* queries this engine answered via
  // partial-aggregate merge; the per-shard inner pushes that serve one such
  // query are implementation detail and would double-count.
  aggregate.aggregates_pushed = own_aggregates_pushed_;
  stats_ = aggregate;
}

EngineStats ShardedEngine::StatsSnapshot() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  return stats_;
}

}  // namespace scrack
