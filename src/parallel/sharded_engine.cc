#include "parallel/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace scrack {

ShardedEngine::ShardedEngine(int requested_shards, std::string inner_name)
    : requested_shards_(requested_shards),
      inner_name_(std::move(inner_name)) {}

Status ShardedEngine::Create(const Column* base, int num_shards,
                             const InnerFactory& make_inner,
                             const std::string& inner_name,
                             std::unique_ptr<SelectEngine>* out) {
  if (base == nullptr || out == nullptr) {
    return Status::InvalidArgument("null base column or output");
  }
  if (!make_inner) {
    return Status::InvalidArgument("sharded engine needs an inner factory");
  }
  if (num_shards < 1 || num_shards > kMaxShards) {
    return Status::InvalidArgument("shard count out of range [1, 1024]");
  }

  // Equi-depth boundaries: boundary i is the value at rank i*n/P. Selected
  // with successive nth_element passes over one scratch copy — each pass
  // leaves everything before the rank <= the rank value, so the next pass
  // only partitions the tail. No full up-front sort (that would be the very
  // cost adaptive indexing exists to avoid). All duplicates of a value
  // belong to one shard (the ranges are [b_i, b_{i+1}) over *values*), so
  // consecutive equal boundaries collapse and heavy duplication can reduce
  // the effective P.
  std::vector<Value> scratch = base->values();
  std::vector<Value> lowers;  // lowers[i] = lower bound of shard i; [0] is
                              // the data minimum but acts as -inf in routing
  lowers.push_back(
      scratch.empty() ? 0
                      : *std::min_element(scratch.begin(), scratch.end()));
  size_t prev_rank = 0;
  for (int i = 1; i < num_shards && !scratch.empty(); ++i) {
    const size_t rank = std::min(
        static_cast<size_t>((static_cast<long double>(i) * scratch.size()) /
                            num_shards),
        scratch.size() - 1);
    std::nth_element(scratch.begin() + static_cast<Index>(prev_rank),
                     scratch.begin() + static_cast<Index>(rank),
                     scratch.end());
    const Value boundary = scratch[rank];
    prev_rank = rank;
    if (boundary > lowers.back()) lowers.push_back(boundary);
  }

  std::unique_ptr<ShardedEngine> engine(
      new ShardedEngine(num_shards, inner_name));
  if (lowers.size() > 1) {
    // A single effective shard never fans out; skip the idle worker.
    engine->pool_ = std::make_unique<ThreadPool>(
        std::min<int>(static_cast<int>(lowers.size()),
                      ThreadPool::DefaultThreads()));
  }
  engine->shards_.reserve(lowers.size());
  for (Value lower : lowers) {
    auto shard = std::make_unique<Shard>();
    shard->lower = lower;
    engine->shards_.push_back(std::move(shard));
  }

  // Distribute the base data into per-shard columns, preserving the base
  // order within each shard (the inner engine copies and cracks it).
  std::vector<std::vector<Value>> slices(engine->shards_.size());
  for (Value v : base->values()) {
    slices[static_cast<size_t>(engine->ShardFor(v))].push_back(v);
  }
  for (size_t i = 0; i < engine->shards_.size(); ++i) {
    Shard& shard = *engine->shards_[i];
    shard.base = Column(std::move(slices[i]));
    SCRACK_RETURN_NOT_OK(
        make_inner(&shard.base, static_cast<int>(i), &shard.engine));
    if (shard.engine == nullptr) {
      return Status::Internal("inner factory produced no engine");
    }
    shard.cached_stats = shard.engine->stats();
  }
  *out = std::move(engine);
  return Status::OK();
}

int ShardedEngine::ShardFor(Value v) const {
  // Largest i with lower_i <= v; values below shard 0's lower (possible
  // after inserts) route to shard 0, values past the last boundary to the
  // last shard.
  int lo = 0;
  int hi = static_cast<int>(shards_.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (shards_[static_cast<size_t>(mid)]->lower <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

bool ShardedEngine::Intersects(int i, Value low, Value high) const {
  // Shard i owns [lower_i, lower_{i+1}), widened to -inf / +inf at the ends.
  const size_t n = shards_.size();
  const bool above_lower =
      (i == 0) || high > shards_[static_cast<size_t>(i)]->lower;
  const bool below_upper =
      (static_cast<size_t>(i) + 1 == n) ||
      low < shards_[static_cast<size_t>(i) + 1]->lower;
  return above_lower && below_upper;
}

Status ShardedEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  if (result == nullptr) {
    return Status::InvalidArgument("null result");
  }

  std::vector<int> hits;
  if (low < high) {
    for (int i = 0; i < static_cast<int>(shards_.size()); ++i) {
      if (Intersects(i, low, high)) hits.push_back(i);
    }
  }

  struct ShardOutput {
    Status status;
    std::vector<Value> values;
  };
  std::vector<ShardOutput> outputs(hits.size());
  auto run_shard = [&](size_t k) {
    Shard& shard = *shards_[static_cast<size_t>(hits[k])];
    std::lock_guard<std::mutex> lock(shard.mutex);
    QueryResult local;
    outputs[k].status = shard.engine->Select(low, high, &local);
    // Deep-copy while holding the shard lock: views into the shard's
    // cracker column die at its next reorganization.
    if (outputs[k].status.ok()) outputs[k].values = local.Collect();
    shard.UpdateStatsCache();
  };

  if (hits.size() == 1) {
    // Selective query inside one shard: run on the caller's thread and
    // skip the pool round-trip.
    run_shard(0);
  } else if (!hits.empty()) {
    std::vector<std::future<void>> pending;
    pending.reserve(hits.size() - 1);
    // Every pool task references this frame, so nothing — not even an
    // exception out of the caller-run task below — may unwind it before
    // all tasks finish; the guard's destructor enforces that.
    struct WaitAll {
      std::vector<std::future<void>>& futures;
      ~WaitAll() {
        for (std::future<void>& f : futures) {
          if (f.valid()) f.wait();
        }
      }
    } wait_all{pending};
    for (size_t k = 0; k + 1 < hits.size(); ++k) {
      pending.push_back(pool_->Submit([&run_shard, k] { run_shard(k); }));
    }
    run_shard(hits.size() - 1);  // caller works too instead of idling
    for (std::future<void>& f : pending) f.get();
  }

  int64_t copied = 0;
  for (ShardOutput& output : outputs) {
    SCRACK_RETURN_NOT_OK(output.status);
  }
  for (ShardOutput& output : outputs) {
    copied += static_cast<int64_t>(output.values.size());
    result->AddOwned(std::move(output.values));
  }
  RefreshStats(copied);
  return Status::OK();
}

Status ShardedEngine::StageInsert(Value v) {
  Shard& shard = *shards_[static_cast<size_t>(ShardFor(v))];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Status status = shard.engine->StageInsert(v);
  shard.UpdateStatsCache();
  return status;
}

Status ShardedEngine::StageDelete(Value v) {
  Shard& shard = *shards_[static_cast<size_t>(ShardFor(v))];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const Status status = shard.engine->StageDelete(v);
  shard.UpdateStatsCache();
  return status;
}

Status ShardedEngine::Validate() const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mutex);
    // Routing invariant: every value a shard was dealt belongs to its
    // range. Inserts staged later route by the same boundaries, so only
    // the dealt base needs checking.
    for (Value v : shard.base.values()) {
      if (i > 0 && v < shard.lower) {
        return Status::Internal("shard holds value below its lower bound");
      }
      if (i + 1 < shards_.size() && v >= shards_[i + 1]->lower) {
        return Status::Internal("shard holds value above its range");
      }
    }
    SCRACK_RETURN_NOT_OK(shard.engine->Validate());
  }
  return Status::OK();
}

std::string ShardedEngine::name() const {
  return "sharded(" + std::to_string(requested_shards_) + "," + inner_name_ +
         ")";
}

void ShardedEngine::RefreshStats(int64_t newly_materialized) {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++own_queries_;
  own_materialized_ += newly_materialized;
  // Sum the per-shard caches rather than the live inner stats: a cache
  // read never waits on another shard's in-flight reorganization, so
  // finishing queries do not convoy behind the busiest shard.
  EngineStats aggregate;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> cache_lock(shard->cache_mutex);
    const EngineStats& inner = shard->cached_stats;
    aggregate.tuples_touched += inner.tuples_touched;
    aggregate.swaps += inner.swaps;
    aggregate.cracks += inner.cracks;
    aggregate.materialized += inner.materialized;
    aggregate.updates_merged += inner.updates_merged;
    aggregate.random_pivots += inner.random_pivots;
  }
  aggregate.queries = own_queries_;
  aggregate.materialized += own_materialized_;
  stats_ = aggregate;
}

EngineStats ShardedEngine::StatsSnapshot() const {
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  return stats_;
}

}  // namespace scrack
