// EpochEngine: reader-writer concurrency for the read-mostly phase of
// adaptive indexing (paper §6's deferred "finer-grained" direction).
//
// ThreadSafeEngine treats every query as a write because in cracking every
// read *may* be one. But the whole point of adaptive indexing is that
// reorganization decays: once the pieces covering a range are fully cracked
// and no staged update intersects it, a Select over that range reorganizes
// nothing — it is a pure read of a contiguous region. This adapter makes
// that phase concurrent. Each query is classified with an exact probe
// (CrackerColumn::CanAnswerWithoutReorg over the flat CrackerIndex):
//
//   * answerable without reorganization -> SHARED reader. Takes the shared
//     side of a std::shared_mutex; aggregates fold the region via
//     AggregateRegion, materializations deep-copy it. Arbitrarily many such
//     queries run concurrently.
//   * must crack (unresolved bound, intersecting staged update, lazy
//     first-touch copy) -> EXCLUSIVE writer. Escalates to the unique side,
//     runs the inner engine exactly as ThreadSafeEngine would (results
//     materialized under the lock), and counts one escalation.
//
// Staged updates always escalate. After every stage the adapter re-sorts
// the pending pools *while still exclusive* (PendingUpdates sorts lazily
// through mutable members on first read — forcing the sort here is what
// makes the shared readers' IntersectsRange probe a genuine const read).
//
// The correctness oracle is the column's WriterTag: shared readers never
// enter it, every reorganizing path does, so any classification bug that
// lets a reader reorganize — or any lock bug that overlaps two writers —
// surfaces as writer_tag().violations() != 0 under the concurrency hammer.
//
// Stats: the inner engine's counters are reported through CurrentStats()
// with the shared-phase work folded in from engine-level atomics (the
// inner stats_ cannot be touched by concurrent readers). Three counters
// are specific to this layer: shared_reads (queries answered under the
// shared lock), exclusive_cracks (queries that escalated and ran the inner
// engine; shared_reads + exclusive_cracks == total queries), and
// escalations (exclusive-lock acquisitions: escalated queries plus staged
// updates).
#pragma once

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cracking/cracker_column.h"
#include "cracking/engine.h"

namespace scrack {

class EpochEngine : public SelectEngine {
 public:
  /// Wraps `inner`. When the inner engine reports no cracker column
  /// (audit_column() == nullptr: scan/sort baselines, hybrids) the probe
  /// has nothing to inspect and every query escalates — the adapter then
  /// degenerates to ThreadSafeEngine behaviour.
  explicit EpochEngine(std::unique_ptr<SelectEngine> inner);

  Status Select(Value low, Value high, QueryResult* result) override;
  Status Execute(const Query& query, QueryOutput* output) override;

  /// A batch in which *every* query is answerable without reorganization
  /// runs under one shared-lock acquisition (concurrent with other
  /// readers); any other batch escalates wholesale and follows
  /// ThreadSafeEngine's batch rules (inner batch path plus one
  /// end-of-batch deep copy of materialize results when the inner engine
  /// owns a cracker column — see threadsafe_engine.h for why that is
  /// sound — else the conservative per-query loop).
  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override;

  std::string name() const override { return "epoch(" + inner_->name() + ")"; }

  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;

  Status Validate() const override;

  /// Inner counters plus the shared-phase work (queries, tuples_touched,
  /// materialized, aggregates_pushed) and this layer's shared_reads /
  /// exclusive_cracks / escalations, snapshotted under the exclusive lock.
  /// The outer stats_ stays untouched, as for every wrapper.
  EngineStats CurrentStats() const override;

  const CrackerColumn* audit_column() const override {
    return inner_->audit_column();
  }

  /// High-water mark of simultaneously active shared readers. The hammer
  /// test asserts > 1 after convergence: proof the shared path actually
  /// overlaps rather than serializing.
  int64_t reader_high_water() const {
    return reader_high_water_.load(std::memory_order_relaxed);
  }

 private:
  // Answers `query` from the region the probe certified, with rw_mutex_
  // held shared; folds the work into the shared-phase atomics.
  void AnswerShared(const Query& query, QueryOutput* output) const;

  // Select/Execute/batch bodies with rw_mutex_ held exclusive (mirrors
  // ThreadSafeEngine's *Locked helpers).
  Status SelectExclusive(Value low, Value high, QueryResult* result);
  Status ExecuteExclusive(const Query& query, QueryOutput* output);

  // Forces the pending pools sorted while exclusive (see file comment).
  void ResortPendingLocked();

  std::unique_ptr<SelectEngine> inner_;
  const CrackerColumn* column_;  // inner_->audit_column(); may be nullptr

  mutable std::shared_mutex rw_mutex_;

  // Shared-phase work counters; plain atomics because shared readers run
  // concurrently. Folded into CurrentStats(), never into inner stats.
  mutable std::atomic<int64_t> shared_reads_{0};
  mutable std::atomic<int64_t> shared_touched_{0};
  mutable std::atomic<int64_t> shared_materialized_{0};
  mutable std::atomic<int64_t> shared_aggregates_{0};
  std::atomic<int64_t> exclusive_cracks_{0};
  std::atomic<int64_t> escalations_{0};

  // Reader-overlap telemetry (see reader_high_water()).
  mutable std::atomic<int64_t> active_readers_{0};
  mutable std::atomic<int64_t> reader_high_water_{0};
};

}  // namespace scrack
