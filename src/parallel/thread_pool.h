// ThreadPool: a persistent fixed-size worker pool.
//
// The sharded engine fans one Select out across its shards; spawning a
// thread per shard per query would dominate the cost of the small
// reorganization steps cracking performs, so shard tasks run on a pool of
// long-lived workers instead. The pool is deliberately minimal: FIFO queue,
// one condition variable, futures for completion — the fan-out/fan-in shape
// is the only pattern the engine needs.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scrack {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it finishes
  /// (or rethrows what it threw). Safe to call from multiple threads.
  std::future<void> Submit(std::function<void()> fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency with a sane floor (>= 1).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace scrack
