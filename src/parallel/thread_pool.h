// ThreadPool: a persistent fixed-size worker pool.
//
// The sharded engine fans one Select out across its shards, and the
// parallel partition kernels (cracking/kernel_parallel.h) fan one crack out
// across cache-sized chunks; spawning a thread per task would dominate the
// cost of the small reorganization steps cracking performs, so tasks run on
// a pool of long-lived workers instead. The pool is deliberately minimal:
// FIFO queue, one condition variable, futures for completion.
//
// Two fan-out shapes are supported:
//   * Submit            one task, one future — the sharded fan-out/fan-in.
//   * ParallelFor       an indexed loop distributed over the workers with
//                       the calling thread participating. Work is claimed
//                       from a shared atomic counter, so tasks never block
//                       on each other and the loop is deadlock-free even
//                       when the queue is congested.
//
// Nesting contract: a ParallelFor (or ShardedEngine fan-out) issued *from a
// pool worker thread* runs inline on that worker instead of re-submitting.
// This is what lets every layer — sharded engines over parallel-crack
// inners, parallel engines inside pool-driven tests — share one
// process-wide pool (Shared()) without oversubscribing the machine or
// deadlocking on a saturated queue.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace scrack {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks are still executed, then workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future that becomes ready when it finishes
  /// (or rethrows what it threw). Safe to call from multiple threads.
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(0), ..., fn(num_tasks - 1), returning when all calls have
  /// finished. At most `max_concurrency` threads (the caller plus pool
  /// workers) execute tasks at any moment; indices are claimed from a
  /// shared atomic counter, so distribution is dynamic but each index runs
  /// exactly once. The result of the loop must not depend on which thread
  /// runs which index — the parallel kernels guarantee that by deriving
  /// every destination from the index alone.
  ///
  /// Runs entirely inline (no submission) when num_tasks <= 1,
  /// max_concurrency <= 1, or the caller is itself a pool worker thread
  /// (see the nesting contract above). Exceptions from tasks propagate to
  /// the caller after all tasks finish.
  void ParallelFor(int64_t num_tasks, int max_concurrency,
                   const std::function<void(int64_t)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency with a sane floor (>= 1).
  static int DefaultThreads();

  /// The process-wide shared pool, sized by SCRACK_THREADS (env) or
  /// DefaultThreads(). Lazily constructed on first use and intentionally
  /// leaked: workers park on the condition variable, and joining during
  /// static destruction would race with other translation units' teardown.
  /// Every consumer — ShardedEngine, the parallel kernels, applications —
  /// shares this pool, so stacking them cannot oversubscribe the machine.
  static ThreadPool& Shared();

  /// True when the calling thread is a worker of *any* ThreadPool. Fan-out
  /// primitives check this to run nested parallelism inline.
  static bool OnWorkerThread();

  /// Reusable per-thread scratch registry: each OS thread (worker or
  /// caller) owns one buffer per slot, grown on demand and reused across
  /// ParallelFor invocations so steady-state parallel kernels allocate
  /// nothing. Slots let one task hold several live buffers at once.
  static constexpr int kScratchSlots = 2;
  static std::vector<int64_t>& ThreadScratch(int slot);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace scrack
