#include "distributed/tcp_transport.h"

#include <chrono>
#include <thread>
#include <utility>

namespace scrack {

namespace {

Status AnnotateNode(const Status& status, int node) {
  return Status::FromCode(status.code(), "storage node " +
                                             std::to_string(node) + ": " +
                                             status.message());
}

}  // namespace

TcpTransport::TcpTransport(std::vector<TcpEndpoint> endpoints,
                           TcpTransportOptions options)
    : endpoints_(std::move(endpoints)), options_(options) {
  conns_.reserve(endpoints_.size());
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    auto conn = std::make_unique<Conn>();
    // Per-node jitter streams: deterministic, but no two nodes back off in
    // lockstep.
    conn->jitter.Seed(options_.jitter_seed + i * 0x9E3779B97F4A7C15ULL);
    conns_.push_back(std::move(conn));
  }
}

int64_t TcpTransport::RemainingMs(const Timer& timer) const {
  if (options_.call_timeout_ms <= 0) return 0;  // 0 = wait forever downstream
  const int64_t elapsed_ms = timer.ElapsedNanos() / 1000000;
  if (elapsed_ms >= options_.call_timeout_ms) return -1;  // expired
  return options_.call_timeout_ms - elapsed_ms;
}

void TcpTransport::SleepBackoff(Conn* conn, int attempt,
                                const Timer& timer) const {
  int64_t delay = options_.backoff_base_ms;
  for (int i = 0; i < attempt && delay < options_.backoff_max_ms; ++i) {
    delay *= 2;
  }
  if (delay > options_.backoff_max_ms) delay = options_.backoff_max_ms;
  if (delay <= 0) return;
  // Jitter into [delay/2, delay]: enough spread to de-synchronize a fleet,
  // deterministic under the seed so tests replay the exact schedule.
  delay = delay / 2 +
          static_cast<int64_t>(conn->jitter.Uniform(
              static_cast<uint64_t>(delay - delay / 2) + 1));
  const int64_t budget = RemainingMs(timer);
  if (budget == -1) return;  // deadline already spent; let the caller see it
  if (budget > 0 && delay > budget) delay = budget;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

Status TcpTransport::Call(int node, const std::vector<uint8_t>& request,
                          std::vector<uint8_t>* response) {
  if (node < 0 || node >= num_nodes()) {
    return Status::InvalidArgument("transport: node index out of range");
  }
  if (response == nullptr) {
    return Status::InvalidArgument("transport: null response buffer");
  }
  Conn& conn = *conns_[static_cast<size_t>(node)];
  const TcpEndpoint& endpoint = endpoints_[static_cast<size_t>(node)];

  std::lock_guard<std::mutex> lock(conn.mutex);
  Timer timer;
  bool resend = false;  // a previous attempt in this Call failed mid-send
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    int64_t budget = RemainingMs(timer);
    if (budget == -1) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      conn.socket.Close();
      return AnnotateNode(
          Status::DeadlineExceeded("call deadline expired"), node);
    }

    if (!conn.socket.valid()) {
      Status status =
          net::Connect(endpoint.host, endpoint.port, budget, &conn.socket);
      if (!status.ok()) {
        conn.socket.Close();
        if (net::IsTimeout(status)) {
          // The whole call budget went into this connect; no attempt left.
          timeouts_.fetch_add(1, std::memory_order_relaxed);
          return AnnotateNode(status, node);
        }
        if (attempt + 1 >= options_.max_attempts) {
          return AnnotateNode(status, node);
        }
        SleepBackoff(&conn, attempt, timer);
        continue;
      }
      if (conn.ever_connected) {
        reconnects_.fetch_add(1, std::memory_order_relaxed);
        // A resend only happens on a freshly established connection, so
        // this ordering keeps retries <= reconnects an invariant, not a
        // coincidence.
        if (resend) {
          retries_.fetch_add(1, std::memory_order_relaxed);
          resend = false;
        }
      } else {
        conn.ever_connected = true;
      }
    }

    budget = RemainingMs(timer);
    if (budget == -1) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      conn.socket.Close();
      return AnnotateNode(
          Status::DeadlineExceeded("call deadline expired"), node);
    }
    Status status = net::SendFrame(conn.socket, request, budget);
    if (!status.ok()) {
      conn.socket.Close();
      if (net::IsTimeout(status)) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return AnnotateNode(status, node);
      }
      // Safe-retry zone: the send failed before the full frame reached the
      // kernel, so the node can never assemble this request — a partial
      // frame dies as mid-frame EOF on its side. Reconnect and resend.
      if (attempt + 1 >= options_.max_attempts) {
        return AnnotateNode(status, node);
      }
      resend = true;
      SleepBackoff(&conn, attempt, timer);
      continue;
    }

    budget = RemainingMs(timer);
    if (budget == -1) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      conn.socket.Close();
      return AnnotateNode(
          Status::DeadlineExceeded("response deadline expired"), node);
    }
    status = net::RecvFrame(conn.socket, response, budget,
                            options_.max_frame_bytes);
    if (!status.ok()) {
      // Ambiguous zone: the full request frame was delivered, so the node
      // may have executed it. Never resend from here — surface the failure
      // and let the coordinator's read-retry / write-once policy decide.
      conn.socket.Close();
      if (net::IsTimeout(status)) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
      }
      return AnnotateNode(status, node);
    }
    return Status::OK();
  }
  return AnnotateNode(Status::Internal("unreachable after " +
                                       std::to_string(options_.max_attempts) +
                                       " attempts"),
                      node);
}

TransportCounters TcpTransport::counters() const {
  TransportCounters counters;
  counters.timeouts = timeouts_.load(std::memory_order_relaxed);
  counters.reconnects = reconnects_.load(std::memory_order_relaxed);
  counters.retries = retries_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace scrack
