#include "distributed/tcp_server.h"

#include <utility>

namespace scrack {

namespace {

/// Poll granularity of the accept and connection loops: the latency bound
/// on noticing Stop().
constexpr int64_t kPollMs = 100;

/// Budget for finishing a frame whose first byte has arrived, and for
/// writing a response. Bounds how long a mid-frame stall (a chaos
/// truncation that keeps the connection open) can hold a drain.
constexpr int64_t kFrameMs = 5000;

}  // namespace

Status TcpNodeServer::Start(StorageNode* node, uint16_t port) {
  if (node == nullptr) {
    return Status::InvalidArgument("tcp server: null storage node");
  }
  if (running_) {
    return Status::FailedPrecondition("tcp server: already running");
  }
  SCRACK_RETURN_NOT_OK(net::Listen(port, &listener_));
  SCRACK_RETURN_NOT_OK(net::BoundPort(listener_, &port_));
  node_ = node;
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return Status::OK();
}

void TcpNodeServer::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  accept_thread_.join();
  // Joining the accept thread first makes conn_threads_ safe to read: only
  // the accept thread ever grows it.
  for (std::thread& thread : conn_threads_) thread.join();
  conn_threads_.clear();
  listener_.Close();
  running_ = false;
}

void TcpNodeServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    net::Socket socket;
    const Status status = net::Accept(listener_, kPollMs, &socket);
    if (!status.ok()) continue;  // poll tick or transient accept failure
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    conn_threads_.emplace_back(
        [this, sock = std::move(socket)]() mutable {
          ConnLoop(std::move(sock));
        });
  }
}

void TcpNodeServer::ConnLoop(net::Socket socket) {
  std::vector<uint8_t> request;
  while (!stop_.load(std::memory_order_acquire)) {
    bool readable = false;
    if (!net::PollReadable(socket, kPollMs, &readable).ok()) return;
    if (!readable) continue;  // poll tick; re-check the stop flag
    request.clear();
    const Status received = net::RecvFrame(socket, &request, kFrameMs);
    if (!received.ok()) {
      // Clean disconnect (NotFound) just ends the connection; anything
      // else — mid-frame EOF, oversized or garbage length prefix, read
      // timeout — is a frame error. Either way only this connection dies.
      if (received.code() != StatusCode::kNotFound) {
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    std::vector<uint8_t> response;
    node_->Serve(request, &response);
    if (!net::SendFrame(socket, response, kFrameMs).ok()) return;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace scrack
