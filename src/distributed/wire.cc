#include "distributed/wire.h"

#include <cstring>

namespace scrack {
namespace wire {
namespace {

// ---- primitive writers: little-endian, fixed width, no alignment ----

void PutU8(uint8_t v, std::vector<uint8_t>* out) { out->push_back(v); }

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(int64_t v, std::vector<uint8_t>* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

// ---- primitive readers: every read is bounds-checked through a cursor ----

struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  Status Need(size_t n) {
    if (size - pos < n) {
      return Status::InvalidArgument("wire: truncated message");
    }
    return Status::OK();
  }
  Status GetU8(uint8_t* v) {
    SCRACK_RETURN_NOT_OK(Need(1));
    *v = data[pos++];
    return Status::OK();
  }
  Status GetU32(uint32_t* v) {
    SCRACK_RETURN_NOT_OK(Need(4));
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    *v = r;
    return Status::OK();
  }
  Status GetU64(uint64_t* v) {
    SCRACK_RETURN_NOT_OK(Need(8));
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    *v = r;
    return Status::OK();
  }
  Status GetI64(int64_t* v) {
    uint64_t u = 0;
    SCRACK_RETURN_NOT_OK(GetU64(&u));
    std::memcpy(v, &u, sizeof(*v));
    return Status::OK();
  }
  Status Done() {
    if (pos != size) {
      return Status::InvalidArgument("wire: trailing bytes after message");
    }
    return Status::OK();
  }
};

// ---- compound fields ----

constexpr uint8_t kMaxMessageType = static_cast<uint8_t>(MessageType::kValidate);
constexpr uint8_t kMaxOutputMode = static_cast<uint8_t>(OutputMode::kExists);
constexpr uint8_t kMaxStatusCode =
    static_cast<uint8_t>(StatusCode::kDeadlineExceeded);

// EngineStats fields in declaration order. Adding a field here (and in the
// two functions below) changes kStatsFields, which Decode checks — so a
// sender/receiver mismatch is rejected, not misparsed.
constexpr uint32_t kStatsFields = 27;

void PutStats(const EngineStats& s, std::vector<uint8_t>* out) {
  PutU32(kStatsFields, out);
  PutI64(s.queries, out);
  PutI64(s.tuples_touched, out);
  PutI64(s.swaps, out);
  PutI64(s.cracks, out);
  PutI64(s.materialized, out);
  PutI64(s.updates_merged, out);
  PutI64(s.random_pivots, out);
  PutI64(s.aggregates_pushed, out);
  PutI64(s.parallel_cracks, out);
  PutI64(s.threads_used, out);
  PutI64(s.shared_reads, out);
  PutI64(s.exclusive_cracks, out);
  PutI64(s.escalations, out);
  PutI64(s.budget_exhausted, out);
  PutI64(s.deferred_swaps, out);
  PutI64(s.scan_fallback_tuples, out);
  PutI64(s.swap_budget, out);
  PutI64(s.fan_outs, out);
  PutI64(s.nodes_routed, out);
  PutI64(s.nodes_pruned, out);
  PutI64(s.wire_bytes, out);
  PutI64(s.node_failures, out);
  PutI64(s.degraded_queries, out);
  PutI64(s.cluster_nodes, out);
  PutI64(s.transport_timeouts, out);
  PutI64(s.transport_reconnects, out);
  PutI64(s.transport_retries, out);
}

Status GetStats(Reader* r, EngineStats* s) {
  uint32_t fields = 0;
  SCRACK_RETURN_NOT_OK(r->GetU32(&fields));
  if (fields != kStatsFields) {
    return Status::InvalidArgument("wire: stats field-count mismatch");
  }
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->queries));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->tuples_touched));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->swaps));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->cracks));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->materialized));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->updates_merged));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->random_pivots));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->aggregates_pushed));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->parallel_cracks));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->threads_used));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->shared_reads));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->exclusive_cracks));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->escalations));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->budget_exhausted));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->deferred_swaps));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->scan_fallback_tuples));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->swap_budget));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->fan_outs));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->nodes_routed));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->nodes_pruned));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->wire_bytes));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->node_failures));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->degraded_queries));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->cluster_nodes));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->transport_timeouts));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->transport_reconnects));
  SCRACK_RETURN_NOT_OK(r->GetI64(&s->transport_retries));
  return Status::OK();
}

void PutQuery(const Query& q, std::vector<uint8_t>* out) {
  PutI64(q.low, out);
  PutI64(q.high, out);
  PutU8(static_cast<uint8_t>(q.mode), out);
  PutI64(q.limit, out);
}

Status GetQuery(Reader* r, Query* q) {
  SCRACK_RETURN_NOT_OK(r->GetI64(&q->low));
  SCRACK_RETURN_NOT_OK(r->GetI64(&q->high));
  uint8_t mode = 0;
  SCRACK_RETURN_NOT_OK(r->GetU8(&mode));
  if (mode > kMaxOutputMode) {
    return Status::InvalidArgument("wire: unknown output mode");
  }
  q->mode = static_cast<OutputMode>(mode);
  SCRACK_RETURN_NOT_OK(r->GetI64(&q->limit));
  return Status::OK();
}

void PutOutput(const Output& o, std::vector<uint8_t>* out) {
  PutI64(o.count, out);
  PutI64(o.sum, out);
  PutI64(o.min, out);
  PutI64(o.max, out);
  PutU8(o.exists ? 1 : 0, out);
  PutU32(static_cast<uint32_t>(o.values.size()), out);
  for (Value v : o.values) PutI64(v, out);
}

Status GetOutput(Reader* r, Output* o) {
  SCRACK_RETURN_NOT_OK(r->GetI64(&o->count));
  SCRACK_RETURN_NOT_OK(r->GetI64(&o->sum));
  SCRACK_RETURN_NOT_OK(r->GetI64(&o->min));
  SCRACK_RETURN_NOT_OK(r->GetI64(&o->max));
  uint8_t exists = 0;
  SCRACK_RETURN_NOT_OK(r->GetU8(&exists));
  if (exists > 1) {
    return Status::InvalidArgument("wire: bool field out of range");
  }
  o->exists = exists == 1;
  uint32_t n = 0;
  SCRACK_RETURN_NOT_OK(r->GetU32(&n));
  // Each value occupies 8 bytes, so the remaining size bounds the count; a
  // corrupt length can't trigger a huge allocation before the Need() check.
  SCRACK_RETURN_NOT_OK(r->Need(static_cast<size_t>(n) * 8));
  o->values.clear();
  o->values.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v = 0;
    SCRACK_RETURN_NOT_OK(r->GetI64(&v));
    o->values.push_back(v);
  }
  return Status::OK();
}

void PutString(const std::string& s, std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->insert(out->end(), s.begin(), s.end());
}

Status GetString(Reader* r, std::string* s) {
  uint32_t n = 0;
  SCRACK_RETURN_NOT_OK(r->GetU32(&n));
  SCRACK_RETURN_NOT_OK(r->Need(n));
  s->assign(reinterpret_cast<const char*>(r->data + r->pos), n);
  r->pos += n;
  return Status::OK();
}

Status CheckHeader(Reader* r, uint8_t* type) {
  uint32_t version = 0;
  SCRACK_RETURN_NOT_OK(r->GetU32(&version));
  if (version != kProtocolVersion) {
    return Status::InvalidArgument("wire: unsupported protocol version");
  }
  return r->GetU8(type);
}

}  // namespace

void Encode(const Request& request, std::vector<uint8_t>* out) {
  PutU32(kProtocolVersion, out);
  PutU8(static_cast<uint8_t>(request.type), out);
  PutI64(request.deadline_us, out);
  switch (request.type) {
    case MessageType::kQuery:
      PutQuery(request.query, out);
      break;
    case MessageType::kBatch:
      PutU32(static_cast<uint32_t>(request.batch.size()), out);
      for (const Query& q : request.batch) PutQuery(q, out);
      break;
    case MessageType::kStageInsert:
    case MessageType::kStageDelete:
      PutI64(request.update_value, out);
      break;
    case MessageType::kStats:
    case MessageType::kValidate:
      break;  // header only
  }
}

Status Decode(const std::vector<uint8_t>& buffer, Request* out) {
  Reader r{buffer.data(), buffer.size()};
  uint8_t type = 0;
  SCRACK_RETURN_NOT_OK(CheckHeader(&r, &type));
  if (type > kMaxMessageType) {
    return Status::InvalidArgument("wire: unknown request type");
  }
  *out = Request{};
  out->type = static_cast<MessageType>(type);
  SCRACK_RETURN_NOT_OK(r.GetI64(&out->deadline_us));
  if (out->deadline_us < 0) {
    return Status::InvalidArgument("wire: negative deadline hint");
  }
  switch (out->type) {
    case MessageType::kQuery:
      SCRACK_RETURN_NOT_OK(GetQuery(&r, &out->query));
      break;
    case MessageType::kBatch: {
      uint32_t n = 0;
      SCRACK_RETURN_NOT_OK(r.GetU32(&n));
      SCRACK_RETURN_NOT_OK(r.Need(static_cast<size_t>(n) * 25));
      out->batch.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        SCRACK_RETURN_NOT_OK(GetQuery(&r, &out->batch[i]));
      }
      break;
    }
    case MessageType::kStageInsert:
    case MessageType::kStageDelete:
      SCRACK_RETURN_NOT_OK(r.GetI64(&out->update_value));
      break;
    case MessageType::kStats:
    case MessageType::kValidate:
      break;
  }
  return r.Done();
}

void Encode(const Response& response, std::vector<uint8_t>* out) {
  PutU32(kProtocolVersion, out);
  PutU8(static_cast<uint8_t>(response.status_code), out);
  PutString(response.status_message, out);
  PutU32(static_cast<uint32_t>(response.outputs.size()), out);
  for (const Output& o : response.outputs) PutOutput(o, out);
  PutStats(response.stats, out);
}

Status Decode(const std::vector<uint8_t>& buffer, Response* out) {
  Reader r{buffer.data(), buffer.size()};
  uint8_t code = 0;
  SCRACK_RETURN_NOT_OK(CheckHeader(&r, &code));
  if (code > kMaxStatusCode) {
    return Status::InvalidArgument("wire: unknown status code");
  }
  *out = Response{};
  out->status_code = static_cast<StatusCode>(code);
  SCRACK_RETURN_NOT_OK(GetString(&r, &out->status_message));
  uint32_t n = 0;
  SCRACK_RETURN_NOT_OK(r.GetU32(&n));
  // An Output is at least 41 bytes, bounding the count by the buffer size.
  SCRACK_RETURN_NOT_OK(r.Need(static_cast<size_t>(n) * 41));
  out->outputs.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    SCRACK_RETURN_NOT_OK(GetOutput(&r, &out->outputs[i]));
  }
  SCRACK_RETURN_NOT_OK(GetStats(&r, &out->stats));
  return r.Done();
}

Output ToOutput(const QueryOutput& output) {
  Output o;
  o.count = output.count;
  o.sum = output.sum;
  o.min = output.min;
  o.max = output.max;
  o.exists = output.exists;
  o.values = output.result.Collect();
  return o;
}

void FromOutput(const Output& wire_output, QueryOutput* out) {
  *out = QueryOutput{};
  out->count = wire_output.count;
  out->sum = wire_output.sum;
  out->min = wire_output.min;
  out->max = wire_output.max;
  out->exists = wire_output.exists;
  if (!wire_output.values.empty()) {
    out->result.AddOwned(wire_output.values);
  }
}

}  // namespace wire
}  // namespace scrack
