// TcpTransport: the real-network Transport — one TCP connection per node.
//
// Each Call frames the encoded wire::Request as u32 length + bytes over the
// node's connection (socket.h), waits for the response frame, and hands the
// bytes back to the coordinator — which cannot tell it apart from the
// in-process transport, exactly as the Transport contract promises.
//
// Robustness policy, layered here so neither the coordinator nor the node
// changes:
//
//   - Per-call deadline: every Call is bounded by `call_timeout_ms` end to
//     end (connect + send + recv). Expiry returns kDeadlineExceeded and
//     counts a timeout; it never blocks past the budget.
//   - Bounded reconnect with exponential backoff + deterministic seeded
//     jitter: a broken connection is re-established at most
//     `max_attempts` times per Call, sleeping base*2^attempt (capped,
//     jittered by a per-node Rng seeded from `jitter_seed`) between
//     attempts — reproducible in tests, thundering-herd-safe in a fleet.
//   - Ambiguous-write detection: a failure is retried inside the Call ONLY
//     when it provably precedes full-frame delivery — a connect failure, or
//     a send error partway through the frame (the node can never assemble a
//     partial frame; mid-frame EOF just closes its connection). Once the
//     full request frame has been handed to the kernel, any failure is
//     ambiguous (the node may have executed the request), so Call returns
//     non-OK immediately and the coordinator's existing policy decides:
//     reads retry via CallNode, writes surface the error (PR 9's rule).
//
// Concurrency: a per-node mutex serializes same-node calls (the contract
// explicitly blesses this); different nodes proceed in parallel. The mutex
// is confined to this class.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "distributed/socket.h"
#include "distributed/transport.h"
#include "util/rng.h"
#include "util/timer.h"

namespace scrack {

/// One storage node's address.
struct TcpEndpoint {
  std::string host;
  uint16_t port = 0;
};

struct TcpTransportOptions {
  /// End-to-end budget of one Call in milliseconds (connect + send + recv).
  /// <= 0 waits forever — tests only; production keeps a real bound.
  int64_t call_timeout_ms = 2000;

  /// Connection attempts per Call before giving up (>= 1).
  int max_attempts = 3;

  /// Backoff between attempts: base * 2^attempt ms, capped at `max`, then
  /// jittered to [delay/2, delay] by the per-node seeded Rng.
  int64_t backoff_base_ms = 5;
  int64_t backoff_max_ms = 100;

  /// Seed of the backoff jitter (per-node streams derive from it), so a
  /// test run's reconnect schedule is reproducible.
  uint64_t jitter_seed = 42;

  /// Response frames above this are rejected before allocation.
  size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
};

class TcpTransport : public Transport {
 public:
  TcpTransport(std::vector<TcpEndpoint> endpoints,
               TcpTransportOptions options);

  int num_nodes() const override {
    return static_cast<int>(endpoints_.size());
  }

  Status Call(int node, const std::vector<uint8_t>& request,
              std::vector<uint8_t>* response) override;

  TransportCounters counters() const override;

 private:
  /// Per-node connection state, guarded by its own mutex so same-node calls
  /// serialize while different nodes fan out in parallel.
  struct Conn {
    std::mutex mutex;
    net::Socket socket;
    bool ever_connected = false;
    Rng jitter;
  };

  int64_t RemainingMs(const Timer& timer) const;
  void SleepBackoff(Conn* conn, int attempt, const Timer& timer) const;

  const std::vector<TcpEndpoint> endpoints_;
  const TcpTransportOptions options_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::atomic<int64_t> timeouts_{0};
  std::atomic<int64_t> reconnects_{0};
  std::atomic<int64_t> retries_{0};
};

}  // namespace scrack
