// TcpNodeServer: serves one StorageNode over TCP.
//
// The reusable server core shared by the `scrack_node` binary and the
// self-hosted TCP mode of `scrack_serve --dist`: an accept-loop thread plus
// one thread per connection, each running RecvFrame -> StorageNode::Serve
// -> SendFrame until the peer disconnects. Framing mirrors the client side
// (socket.h): u32 length prefix, oversized frames rejected before
// allocation, a mid-frame EOF or corrupt prefix closes only that
// connection — the node itself is untouched, which is what lets a
// ChaosProxy mangle traffic without ever wedging the server.
//
// Stop() is a clean drain: the accept loop stops admitting connections,
// per-connection threads finish their in-flight request (frames in
// progress are bounded by a read deadline) and exit at the next poll tick,
// and Stop() joins them all before returning. Start() may be called again
// afterwards — on the same port, thanks to SO_REUSEADDR — which is how the
// serving harness revives a "crashed" node.
//
// Concurrency: no mutex. The stop flag and counters are atomics; the
// connection-thread vector is written only by the accept thread and read
// by Stop() strictly after joining it.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "distributed/socket.h"
#include "distributed/storage_node.h"
#include "util/status.h"

namespace scrack {

class TcpNodeServer {
 public:
  TcpNodeServer() = default;
  ~TcpNodeServer() { Stop(); }
  TcpNodeServer(const TcpNodeServer&) = delete;
  TcpNodeServer& operator=(const TcpNodeServer&) = delete;

  /// Binds `port` (0 = kernel-assigned; see port()) and starts accepting.
  /// `node` must outlive the server; it is not owned.
  Status Start(StorageNode* node, uint16_t port);

  /// The bound port, valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests, joins every thread.
  /// Idempotent.
  void Stop();

  bool running() const { return running_; }

  int64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Connections dropped on a malformed, truncated, or oversized frame.
  int64_t frame_errors() const {
    return frame_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ConnLoop(net::Socket socket);

  StorageNode* node_ = nullptr;
  net::Socket listener_;
  uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::vector<std::thread> conn_threads_;  // accept-thread-owned until join

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> frame_errors_{0};
};

}  // namespace scrack
