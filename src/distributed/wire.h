// Wire schema for the coordinator / storage-node boundary.
//
// The Query/QueryOutput API (PR 2) is an in-memory object graph; a node
// boundary needs an explicit, versioned byte encoding. This header defines
// that encoding: `wire::Request` and `wire::Response` are plain structs with
// Encode/Decode round-trip guarantees, so any Transport that can move a byte
// buffer can carry a query. The format is deliberately trivial:
//
//   - little-endian fixed-width integers, no alignment, no padding
//   - every message starts with a u32 protocol version and a u8 message type
//   - variable-length payloads (materialized values, batch queries, status
//     messages) are u32-count-prefixed
//   - EngineStats travels as a u32 field count followed by the fields in
//     declaration order, so a version bump is detected before misparsing
//
// Decode is defensive: truncated buffers, trailing garbage, unknown
// versions, and out-of-range enum values are all rejected with
// InvalidArgument rather than UB — the corruption fuzz tests in
// tests/wire_test.cc rely on this. Encoding the same struct twice yields
// byte-identical buffers (no map iteration, no pointers), which keeps the
// coordinator parity checks deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "storage/query.h"
#include "util/status.h"

namespace scrack {
namespace wire {

/// Bump on any layout change; Decode rejects other versions outright.
/// v2: Request carries a per-hop deadline_us hint after the type byte.
constexpr uint32_t kProtocolVersion = 2;

/// What a Request asks the storage node to do.
enum class MessageType : uint8_t {
  kQuery = 0,        ///< execute one Query (any OutputMode)
  kBatch = 1,        ///< execute queries[] in order, one output each
  kStageInsert = 2,  ///< stage a pending insert of `update_value`
  kStageDelete = 3,  ///< stage a pending delete of `update_value`
  kStats = 4,        ///< no work; respond with the node's stats snapshot
  kValidate = 5,     ///< run the inner engine's Validate()
};

/// One coordinator -> node message.
struct Request {
  MessageType type = MessageType::kQuery;
  /// Per-hop deadline hint in microseconds (0 = none). Advisory, like
  /// EngineConfig::deadline_us: the node records it for SLO observability
  /// but never cuts work short against the wall clock — answers stay
  /// schedule-independent. Present on every message type since protocol v2.
  int64_t deadline_us = 0;
  Query query;                ///< kQuery only
  std::vector<Query> batch;   ///< kBatch only
  Value update_value = 0;     ///< kStageInsert / kStageDelete only
};

/// A QueryOutput that owns its tuples — materialized results cross the wire
/// as copies, never as views into node memory.
struct Output {
  Index count = 0;
  int64_t sum = 0;
  Value min = 0;
  Value max = 0;
  bool exists = false;
  std::vector<Value> values;  ///< kMaterialize payload
};

/// One node -> coordinator message. `status_code`/`status_message` carry
/// application-level failures (bad query, unimplemented update) across the
/// wire; transport-level failures (node down) never produce a Response at
/// all. Every response — including errors — piggybacks the node's cumulative
/// EngineStats snapshot so the coordinator's stat cache stays fresh without
/// extra round trips.
struct Response {
  StatusCode status_code = StatusCode::kOk;
  std::string status_message;
  std::vector<Output> outputs;  ///< one per query answered (empty on error)
  EngineStats stats;
};

/// Serializes onto the end of `*out` (callers pass an empty buffer for a
/// fresh message). Encoding never fails.
void Encode(const Request& request, std::vector<uint8_t>* out);
void Encode(const Response& response, std::vector<uint8_t>* out);

/// Parses a complete message. Rejects truncated input, trailing bytes,
/// version mismatches, and out-of-range enums with InvalidArgument; `*out`
/// is left in an unspecified-but-valid state on failure.
Status Decode(const std::vector<uint8_t>& buffer, Request* out);
Status Decode(const std::vector<uint8_t>& buffer, Response* out);

/// Conversion helpers between the wire Output and the in-memory QueryOutput.
/// ToOutput deep-copies materialized tuples (result.Collect()); FromOutput
/// rebuilds a QueryOutput whose result owns its buffer.
Output ToOutput(const QueryOutput& output);
void FromOutput(const Output& wire_output, QueryOutput* out);

}  // namespace wire
}  // namespace scrack
