// Transport: the pluggable byte-moving layer under the coordinator.
//
// The coordinator never touches a storage node directly — every interaction
// is an encoded wire::Request sent through this interface and an encoded
// wire::Response coming back. That keeps the coordinator transport-agnostic:
// the in-process transport (inproc_transport.h) ships today so CI stays
// hermetic, and a socket transport slots in later without changing the
// coordinator at all.
//
// Contract for implementations:
//   - Call() is synchronous: it returns once `*response` holds a complete
//     encoded wire::Response, or with a non-OK Status on *transport-level*
//     failure (node unreachable, connection lost, corrupt frame). A non-OK
//     return means `*response` is meaningless and the request may or may
//     not have reached the node — exactly the at-most-once ambiguity a
//     socket gives you, which is why the coordinator only retries reads.
//   - Application-level failures (bad query, unimplemented update) are NOT
//     transport failures: they travel inside the encoded Response as a
//     status code, and Call() returns OK.
//   - Call() must be safe to invoke concurrently from multiple threads,
//     including for the same node — the coordinator fans out over the
//     shared ThreadPool. Serializing per-node calls internally (as the
//     in-process transport does with a per-node mutex) satisfies this.
//   - Node ids are dense: 0 <= node < num_nodes(), fixed for the lifetime
//     of the transport. Membership changes are a follow-up.
//
// Socket follow-up (documented, not implemented): a TCP transport frames
// each message as u32 length + bytes, one connection per node with
// reconnect-on-error; the wire schema already versions itself, so mixed
// coordinator/node builds fail clean with "unsupported protocol version".
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace scrack {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of storage nodes reachable through this transport.
  virtual int num_nodes() const = 0;

  /// Delivers `request` (an encoded wire::Request) to `node` and fills
  /// `*response` with the node's encoded wire::Response. See the contract
  /// above for failure semantics and thread safety.
  virtual Status Call(int node, const std::vector<uint8_t>& request,
                      std::vector<uint8_t>* response) = 0;
};

}  // namespace scrack
