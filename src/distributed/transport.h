// Transport: the pluggable byte-moving layer under the coordinator.
//
// The coordinator never touches a storage node directly — every interaction
// is an encoded wire::Request sent through this interface and an encoded
// wire::Response coming back. That keeps the coordinator transport-agnostic:
// the in-process transport (inproc_transport.h) ships today so CI stays
// hermetic, and a socket transport slots in later without changing the
// coordinator at all.
//
// Contract for implementations:
//   - Call() is synchronous: it returns once `*response` holds a complete
//     encoded wire::Response, or with a non-OK Status on *transport-level*
//     failure (node unreachable, connection lost, corrupt frame). A non-OK
//     return means `*response` is meaningless and the request may or may
//     not have reached the node — exactly the at-most-once ambiguity a
//     socket gives you, which is why the coordinator only retries reads.
//   - Application-level failures (bad query, unimplemented update) are NOT
//     transport failures: they travel inside the encoded Response as a
//     status code, and Call() returns OK.
//   - Call() must be safe to invoke concurrently from multiple threads,
//     including for the same node — the coordinator fans out over the
//     shared ThreadPool. Serializing per-node calls internally (as the
//     in-process transport does with a per-node mutex) satisfies this.
//   - Node ids are dense: 0 <= node < num_nodes(), fixed for the lifetime
//     of the transport. Membership changes are a follow-up.
//
// Two implementations ship: the in-process transport (inproc_transport.h,
// hermetic CI) and the TCP transport (tcp_transport.h: u32 length-prefixed
// frames, one connection per node with bounded reconnect-on-error). The
// wire schema versions itself, so mixed coordinator/node builds fail clean
// with "unsupported protocol version".
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace scrack {

/// Connection-robustness counters a transport accumulates across Calls.
/// The coordinator folds them into EngineStats (transport_timeouts /
/// transport_reconnects / transport_retries), where the auditor checks
/// their conservation laws.
struct TransportCounters {
  int64_t timeouts = 0;    ///< calls that expired against a per-call deadline
  int64_t reconnects = 0;  ///< re-establishments beyond each node's first
                           ///  successful connect
  int64_t retries = 0;     ///< in-call resends after a provably-safe send
                           ///  failure (each rides a fresh connection, so
                           ///  retries <= reconnects always)
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Number of storage nodes reachable through this transport.
  virtual int num_nodes() const = 0;

  /// Delivers `request` (an encoded wire::Request) to `node` and fills
  /// `*response` with the node's encoded wire::Response. See the contract
  /// above for failure semantics and thread safety.
  virtual Status Call(int node, const std::vector<uint8_t>& request,
                      std::vector<uint8_t>* response) = 0;

  /// Snapshot of the robustness counters. Transports without a connection
  /// concept (in-process) report zeros.
  virtual TransportCounters counters() const { return TransportCounters{}; }
};

}  // namespace scrack
