// ChaosProxy: an in-repo TCP forwarder that misbehaves on a seeded schedule.
//
// Sits between a TcpTransport and a node server, forwarding bytes in both
// directions while injecting the network failures a clean loopback never
// shows: added delays, dropped byte runs (framing desync), mid-frame
// truncations, and severed connections. Tests point the transport at the
// proxy's port and get the full failure surface hermetically — no tc/iptables,
// no root, no flakiness.
//
// Determinism: TCP chunk boundaries depend on timing, so scheduling faults
// "every Nth read" would not reproduce. Faults are instead scheduled at
// absolute BYTE OFFSETS of each direction's stream, drawn from an Rng
// seeded per connection and direction — the same seed injects faults at
// the same stream positions regardless of how the kernel slices the
// transfers. What stays timing-dependent is only which request a fault
// lands on, which is why the soak tests assert outcome *classes* (bit-
// identical answer after retry, or structured error — never a crash or a
// hang) rather than exact outcomes.
//
// Concurrency: no mutex — stop/enabled flags and fault counters are
// atomics; per-connection state is owned by the accept thread and joined
// by Stop() strictly after it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distributed/socket.h"
#include "util/rng.h"
#include "util/status.h"

namespace scrack {

/// What an injected fault does to the stream at its scheduled offset.
enum class ChaosFault : int {
  kDelay = 0,     ///< sleep delay_ms, then keep forwarding
  kDrop = 1,      ///< swallow the rest of the in-flight chunk
  kTruncate = 2,  ///< forward a partial frame, then sever both directions
  kSever = 3,     ///< sever both directions immediately
};

struct ChaosProxyOptions {
  uint64_t seed = 42;

  /// Mean gap between injected faults, in stream bytes per direction.
  /// 0 disables injection entirely (transparent forwarder).
  int64_t fault_every_bytes = 4096;

  /// Duration of a kDelay fault.
  int64_t delay_ms = 5;

  /// Which directions inject faults: bit 0 = client->upstream (requests),
  /// bit 1 = upstream->client (responses). Both by default; tests that
  /// need a specific ambiguity (e.g. "the write arrived but the response
  /// died") target one direction.
  int direction_mask = 3;

  /// Force every fault to one kind (cast of ChaosFault); -1 = seeded mix.
  int force_kind = -1;
};

class ChaosProxy {
 public:
  ChaosProxy() = default;
  ~ChaosProxy() { Stop(); }
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Listens on `listen_port` (0 = ephemeral) and forwards every accepted
  /// connection to upstream_host:upstream_port.
  Status Start(const std::string& upstream_host, uint16_t upstream_port,
               const ChaosProxyOptions& options, uint16_t listen_port = 0);

  /// The proxy's listening port, valid after a successful Start.
  uint16_t port() const { return port_; }

  /// Stops accepting, severs every proxied connection, joins all threads.
  void Stop();

  /// Injection toggle: while disabled the proxy forwards transparently.
  /// Tests use this to run clean setup/verify traffic through the same
  /// connections chaos just mangled.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }

  int64_t faults_injected() const {
    return delays() + drops() + truncations() + severs();
  }
  int64_t delays() const { return delays_.load(std::memory_order_relaxed); }
  int64_t drops() const { return drops_.load(std::memory_order_relaxed); }
  int64_t truncations() const {
    return truncations_.load(std::memory_order_relaxed);
  }
  int64_t severs() const { return severs_.load(std::memory_order_relaxed); }

 private:
  /// One proxied connection: the socket pair plus a pump thread per
  /// direction. Pumps only Shutdown() the sockets (never Close), so either
  /// pump can sever both directions without racing the other's fd.
  struct Conn {
    net::Socket client;
    net::Socket upstream;
    std::thread pump_to_upstream;
    std::thread pump_to_client;
  };

  void AcceptLoop();
  void Pump(Conn* conn, bool to_upstream, uint64_t conn_id);
  void InjectFault(ChaosFault kind);

  ChaosProxyOptions options_;
  std::string upstream_host_;
  uint16_t upstream_port_ = 0;
  net::Socket listener_;
  uint16_t port_ = 0;
  bool running_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<bool> enabled_{true};
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Conn>> conns_;  // accept-thread-owned

  std::atomic<int64_t> delays_{0};
  std::atomic<int64_t> drops_{0};
  std::atomic<int64_t> truncations_{0};
  std::atomic<int64_t> severs_{0};
};

}  // namespace scrack
