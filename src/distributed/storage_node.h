// StorageNode: one value-range shard of the cluster, behind the wire.
//
// A node owns its slice of the data (a Column) and an inner SelectEngine
// over it — any engine the factory can build, so a node can run plain
// cracking, epoch serving, budgeted progressive cracking, or an audited
// stack. Its only entry point is Serve(): decode a wire::Request, dispatch
// to the engine, encode a wire::Response. Nothing else about the node is
// visible across the boundary, which is what makes the coordinator
// transport-independent.
//
// Error model: Serve() never throws across the "wire" and never leaves the
// response empty. Decode failures and engine errors are encoded as an error
// Response (status code + message); every response — errors included —
// carries the node's cumulative EngineStats snapshot.
//
// Concurrency: a node serializes its own requests with an internal mutex
// (the mutex never leaves this class — see the mutex-confinement lint
// rule), so Serve() is safe from any thread even when the inner engine is
// not thread-safe. Cross-node parallelism is the coordinator's job.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cracking/engine.h"
#include "distributed/wire.h"
#include "storage/column.h"

namespace scrack {

class StorageNode {
 public:
  /// Builds the inner engine of node `node_index` over that node's private
  /// base column. Same shape as ShardedEngine::InnerFactory, and for the
  /// same reason: the factory layer injects spec parsing without a
  /// dependency cycle (distributed/ must not include harness/).
  using InnerFactory = std::function<Status(
      const Column* node_base, int node_index,
      std::unique_ptr<SelectEngine>* out)>;

  /// Creates a node owning `slice` and an inner engine built over it.
  static Status Create(Column slice, int node_index,
                       const InnerFactory& make_inner,
                       std::unique_ptr<StorageNode>* out);

  StorageNode(const StorageNode&) = delete;
  StorageNode& operator=(const StorageNode&) = delete;

  /// Handles one request: decode, dispatch, encode. Appends the encoded
  /// wire::Response to `*response` (callers pass an empty buffer).
  void Serve(const std::vector<uint8_t>& request,
             std::vector<uint8_t>* response);

  /// Tuples this node owned at creation (staged updates excluded).
  Index slice_size() const { return slice_.size(); }

  /// The engine, for white-box test assertions only — production traffic
  /// goes through Serve().
  SelectEngine* engine() { return engine_.get(); }

  /// The per-hop deadline hint of the most recent well-formed request
  /// (wire::Request::deadline_us; 0 = none seen). Observability only —
  /// like EngineConfig::deadline_us, the node never cuts work short
  /// against the wall clock.
  int64_t last_deadline_us() const {
    return last_deadline_us_.load(std::memory_order_relaxed);
  }

 private:
  explicit StorageNode(Column slice) : slice_(std::move(slice)) {}

  wire::Response Dispatch(const wire::Request& request);

  std::mutex mutex_;  // serializes Serve(); confined to this class
  Column slice_;      // the node's private data; engine_ reads through it
  std::unique_ptr<SelectEngine> engine_;
  std::atomic<int64_t> last_deadline_us_{0};
};

}  // namespace scrack
