#include "distributed/coordinator_engine.h"

#include <algorithm>
#include <future>
#include <utility>

namespace scrack {

CoordinatorEngine::CoordinatorEngine(int requested_nodes,
                                     std::string inner_name)
    : requested_nodes_(requested_nodes), inner_name_(std::move(inner_name)) {}

std::vector<Value> CoordinatorEngine::ComputeLowers(const Column& base,
                                                    int num_nodes) {
  // Equi-depth boundaries, byte-for-byte the ShardedEngine algorithm (see
  // the comment there): successive nth_element passes over one scratch
  // copy, duplicates collapse boundaries. Identical boundaries + identical
  // deal order is what makes coord(K,X) answers bit-identical to
  // sharded(K,X) — and what lets an out-of-process scrack_node recompute
  // its own slice from the same (n, seed) column.
  std::vector<Value> scratch = base.values();
  std::vector<Value> lowers;
  lowers.push_back(
      scratch.empty() ? 0
                      : *std::min_element(scratch.begin(), scratch.end()));
  size_t prev_rank = 0;
  for (int i = 1; i < num_nodes && !scratch.empty(); ++i) {
    const size_t rank = std::min(
        static_cast<size_t>((static_cast<long double>(i) * scratch.size()) /
                            num_nodes),
        scratch.size() - 1);
    std::nth_element(scratch.begin() + static_cast<Index>(prev_rank),
                     scratch.begin() + static_cast<Index>(rank),
                     scratch.end());
    const Value boundary = scratch[rank];
    prev_rank = rank;
    if (boundary > lowers.back()) lowers.push_back(boundary);
  }
  return lowers;
}

std::vector<std::vector<Value>> CoordinatorEngine::DealSlices(
    const Column& base, const std::vector<Value>& lowers) {
  std::vector<std::vector<Value>> slices(lowers.size());
  for (Value v : base.values()) {
    slices[static_cast<size_t>(NodeForValue(lowers, v))].push_back(v);
  }
  return slices;
}

Status CoordinatorEngine::Create(const Column* base, int num_nodes,
                                 const InnerFactory& make_inner,
                                 const std::string& inner_name,
                                 std::unique_ptr<SelectEngine>* out,
                                 int64_t deadline_us) {
  if (base == nullptr || out == nullptr) {
    return Status::InvalidArgument("null base column or output");
  }
  if (!make_inner) {
    return Status::InvalidArgument("coordinator needs an inner factory");
  }
  if (num_nodes < 1 || num_nodes > kMaxNodes) {
    return Status::InvalidArgument("node count out of range [1, 64]");
  }

  std::vector<Value> lowers = ComputeLowers(*base, num_nodes);

  // Deal the base data into per-node slices, preserving base order within
  // each slice (the inner engine copies and cracks it).
  std::vector<std::vector<Value>> slices = DealSlices(*base, lowers);
  std::vector<std::unique_ptr<StorageNode>> nodes;
  nodes.reserve(slices.size());
  for (size_t i = 0; i < slices.size(); ++i) {
    std::unique_ptr<StorageNode> node;
    SCRACK_RETURN_NOT_OK(StorageNode::Create(Column(std::move(slices[i])),
                                             static_cast<int>(i), make_inner,
                                             &node));
    nodes.push_back(std::move(node));
  }
  return CreateOverTransport(
      std::move(lowers),
      std::make_unique<InProcTransport>(std::move(nodes)), inner_name,
      num_nodes, out, deadline_us);
}

Status CoordinatorEngine::CreateOverTransport(
    std::vector<Value> lowers, std::unique_ptr<Transport> transport,
    const std::string& inner_name, int requested_nodes,
    std::unique_ptr<SelectEngine>* out, int64_t deadline_us,
    bool tolerate_unreachable) {
  if (transport == nullptr || out == nullptr) {
    return Status::InvalidArgument("null transport or output");
  }
  if (lowers.empty() ||
      transport->num_nodes() != static_cast<int>(lowers.size())) {
    return Status::InvalidArgument(
        "boundary count does not match the transport's node count");
  }
  if (requested_nodes < 1 || requested_nodes > kMaxNodes) {
    return Status::InvalidArgument("node count out of range [1, 64]");
  }
  if (deadline_us < 0) {
    return Status::InvalidArgument("negative deadline hint");
  }

  std::unique_ptr<CoordinatorEngine> engine(
      new CoordinatorEngine(requested_nodes,  // lint:allow(naked-new)
                            inner_name));
  engine->deadline_us_ = deadline_us;
  engine->lowers_ = std::move(lowers);
  engine->inproc_ = dynamic_cast<InProcTransport*>(transport.get());
  engine->transport_ = std::move(transport);
  if (engine->lowers_.size() > 1) {
    engine->pool_ = &ThreadPool::Shared();
  }
  engine->node_stats_.resize(engine->lowers_.size());

  // Prime the per-node stat caches with one kStats round trip each — the
  // first wire traffic the cluster sees, proving transport, framing, and
  // protocol version end to end before any query arrives.
  std::vector<uint8_t> encoded;
  wire::Encode(engine->NewRequest(wire::MessageType::kStats), &encoded);
  for (int i = 0; i < engine->num_nodes(); ++i) {
    wire::Response response;
    int64_t bytes = 0;
    int64_t failures = 0;
    const Status primed =
        engine->CallNode(i, encoded, &response, &bytes, &failures);
    engine->wire_bytes_ += bytes;
    if (!primed.ok()) {
      if (!tolerate_unreachable) return primed;
      // Admitted degraded: the stat cache stays empty and reads touching
      // this node report degraded_nodes until it comes back.
      engine->node_failures_ += failures;
      continue;
    }
    engine->node_stats_[static_cast<size_t>(i)] = response.stats;
  }
  {
    std::lock_guard<std::mutex> lock(engine->stats_mutex_);
    engine->RecomputeStatsLocked();
  }
  *out = std::move(engine);
  return Status::OK();
}

int CoordinatorEngine::NodeForValue(const std::vector<Value>& lowers,
                                    Value v) {
  int lo = 0;
  int hi = static_cast<int>(lowers.size()) - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (lowers[static_cast<size_t>(mid)] <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int CoordinatorEngine::NodeFor(Value v) const {
  return NodeForValue(lowers_, v);
}

wire::Request CoordinatorEngine::NewRequest(wire::MessageType type) const {
  wire::Request request;
  request.type = type;
  request.deadline_us = deadline_us_;
  return request;
}

bool CoordinatorEngine::Intersects(int i, Value low, Value high) const {
  const size_t n = lowers_.size();
  const bool above_lower =
      (i == 0) || high > lowers_[static_cast<size_t>(i)];
  const bool below_upper = (static_cast<size_t>(i) + 1 == n) ||
                           low < lowers_[static_cast<size_t>(i) + 1];
  return above_lower && below_upper;
}

void CoordinatorEngine::FanOut(
    size_t num_tasks, const std::function<void(size_t)>& run_task) const {
  if (num_tasks == 0) return;
  if (num_tasks == 1 || pool_ == nullptr || ThreadPool::OnWorkerThread()) {
    for (size_t k = 0; k < num_tasks; ++k) run_task(k);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(num_tasks - 1);
  // Same discipline as ShardedEngine::FanOut: every pool task references
  // this frame, so the guard keeps the frame alive until all tasks finish
  // even if the caller-run task throws (e.g. an injected fault).
  struct WaitAll {
    std::vector<std::future<void>>& futures;
    ~WaitAll() {
      for (std::future<void>& f : futures) {
        if (f.valid()) f.wait();
      }
    }
  } wait_all{pending};
  for (size_t k = 0; k + 1 < num_tasks; ++k) {
    pending.push_back(pool_->Submit([&run_task, k] { run_task(k); }));
  }
  run_task(num_tasks - 1);
  for (std::future<void>& f : pending) f.get();
}

Status CoordinatorEngine::CallNode(int node,
                                   const std::vector<uint8_t>& request,
                                   wire::Response* response, int64_t* bytes,
                                   int64_t* failures) const {
  *bytes += static_cast<int64_t>(request.size());
  std::vector<uint8_t> buffer;
  Status status = transport_->Call(node, request, &buffer);
  if (!status.ok()) {
    ++*failures;
    // One retry: reads are idempotent and the in-flight request may simply
    // have raced a transient drop. Writes never reach this helper twice —
    // StageInsert/StageDelete call the transport directly, once.
    *bytes += static_cast<int64_t>(request.size());
    status = transport_->Call(node, request, &buffer);
    if (!status.ok()) {
      ++*failures;
      return status;
    }
  }
  *bytes += static_cast<int64_t>(buffer.size());
  const Status decoded = wire::Decode(buffer, response);
  if (!decoded.ok()) {
    ++*failures;
    return decoded;
  }
  return Status::OK();
}

namespace {

/// Per-node result of one fan-out task.
struct NodeReply {
  Status transport_status;  ///< non-OK: node unreachable after retry
  wire::Response response;
  int64_t bytes = 0;
  int64_t failures = 0;
};

/// First application-level error across replies, if any.
Status FirstAppError(const std::vector<NodeReply>& replies) {
  for (const NodeReply& reply : replies) {
    if (reply.transport_status.ok() &&
        reply.response.status_code != StatusCode::kOk) {
      return Status::FromCode(reply.response.status_code,
                              reply.response.status_message);
    }
  }
  return Status::OK();
}

}  // namespace

Status CoordinatorEngine::Select(Value low, Value high, QueryResult* result) {
  int degraded = 0;
  return DoSelect(low, high, result, &degraded);
}

Status CoordinatorEngine::DoSelect(Value low, Value high, QueryResult* result,
                                   int* degraded_out) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  if (result == nullptr) {
    return Status::InvalidArgument("null result");
  }

  std::vector<int> hits;
  if (low < high) {
    for (int i = 0; i < num_nodes(); ++i) {
      if (Intersects(i, low, high)) hits.push_back(i);
    }
  }

  wire::Request request = NewRequest(wire::MessageType::kQuery);
  request.query = Query{low, high, OutputMode::kMaterialize, 1};
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);

  std::vector<NodeReply> replies(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    NodeReply& reply = replies[k];
    reply.transport_status = CallNode(hits[k], encoded, &reply.response,
                                      &reply.bytes, &reply.failures);
  });

  SCRACK_RETURN_NOT_OK(FirstAppError(replies));
  int64_t copied = 0;
  int degraded = 0;
  for (size_t k = 0; k < hits.size(); ++k) {
    NodeReply& reply = replies[k];
    if (!reply.transport_status.ok()) {
      ++degraded;
      continue;
    }
    if (reply.response.outputs.size() != 1) {
      return Status::Internal("node returned a malformed query response");
    }
    std::vector<Value>& values = reply.response.outputs[0].values;
    copied += static_cast<int64_t>(values.size());
    result->AddOwned(std::move(values));
  }
  *degraded_out = degraded;

  std::lock_guard<std::mutex> lock(stats_mutex_);
  own_queries_ += 1;
  own_materialized_ += copied;
  fan_outs_ += 1;
  nodes_routed_ += static_cast<int64_t>(hits.size());
  nodes_pruned_ += num_nodes() - static_cast<int64_t>(hits.size());
  if (degraded > 0) degraded_queries_ += 1;
  for (size_t k = 0; k < hits.size(); ++k) {
    wire_bytes_ += replies[k].bytes;
    node_failures_ += replies[k].failures;
    if (replies[k].transport_status.ok()) {
      node_stats_[static_cast<size_t>(hits[k])] = replies[k].response.stats;
    }
  }
  RecomputeStatsLocked();
  return Status::OK();
}

Status CoordinatorEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    // The Select fan-out already merges materialized node results (owned
    // copies, as in ShardedEngine), and reports degradation directly.
    SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
    int degraded = 0;
    SCRACK_RETURN_NOT_OK(
        DoSelect(query.low, query.high, &output->result, &degraded));
    output->degraded_nodes = degraded;
    return Status::OK();
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));

  std::vector<int> hits;
  if (query.low < query.high) {
    for (int i = 0; i < num_nodes(); ++i) {
      if (Intersects(i, query.low, query.high)) hits.push_back(i);
    }
  }

  wire::Request request = NewRequest(wire::MessageType::kQuery);
  request.query = query;
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);

  std::vector<NodeReply> replies(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    NodeReply& reply = replies[k];
    reply.transport_status = CallNode(hits[k], encoded, &reply.response,
                                      &reply.bytes, &reply.failures);
  });

  SCRACK_RETURN_NOT_OK(FirstAppError(replies));
  int degraded = 0;
  for (size_t k = 0; k < hits.size(); ++k) {
    NodeReply& reply = replies[k];
    if (!reply.transport_status.ok()) {
      ++degraded;
      continue;
    }
    if (reply.response.outputs.size() != 1) {
      return Status::Internal("node returned a malformed query response");
    }
    QueryOutput partial;
    wire::FromOutput(reply.response.outputs[0], &partial);
    MergePartial(query, partial, output);
  }
  output->degraded_nodes = degraded;

  std::lock_guard<std::mutex> lock(stats_mutex_);
  own_queries_ += 1;
  own_aggregates_pushed_ += 1;
  fan_outs_ += 1;
  nodes_routed_ += static_cast<int64_t>(hits.size());
  nodes_pruned_ += num_nodes() - static_cast<int64_t>(hits.size());
  if (degraded > 0) degraded_queries_ += 1;
  for (size_t k = 0; k < hits.size(); ++k) {
    wire_bytes_ += replies[k].bytes;
    node_failures_ += replies[k].failures;
    if (replies[k].transport_status.ok()) {
      node_stats_[static_cast<size_t>(hits[k])] = replies[k].response.stats;
    }
  }
  RecomputeStatsLocked();
  return Status::OK();
}

Status CoordinatorEngine::ExecuteBatch(const std::vector<Query>& queries,
                                       std::vector<QueryOutput>* outputs) {
  if (outputs == nullptr) {
    return Status::InvalidArgument("null batch outputs");
  }
  SCRACK_RETURN_NOT_OK(CheckBatch(queries));
  outputs->clear();
  outputs->resize(queries.size());

  // One fan-out for the whole batch: each node receives its intersecting
  // subset as one kBatch request — one wire round trip per node.
  std::vector<std::vector<size_t>> node_queries(
      static_cast<size_t>(num_nodes()));
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const Query& query = queries[qi];
    if (query.low >= query.high) continue;  // empty range hits no node
    for (int i = 0; i < num_nodes(); ++i) {
      if (Intersects(i, query.low, query.high)) {
        node_queries[static_cast<size_t>(i)].push_back(qi);
      }
    }
  }
  std::vector<int> hits;
  for (int i = 0; i < num_nodes(); ++i) {
    if (!node_queries[static_cast<size_t>(i)].empty()) hits.push_back(i);
  }

  std::vector<std::vector<uint8_t>> encoded(hits.size());
  for (size_t k = 0; k < hits.size(); ++k) {
    wire::Request request = NewRequest(wire::MessageType::kBatch);
    for (size_t qi : node_queries[static_cast<size_t>(hits[k])]) {
      request.batch.push_back(queries[qi]);
    }
    wire::Encode(request, &encoded[k]);
  }

  std::vector<NodeReply> replies(hits.size());
  FanOut(hits.size(), [&](size_t k) {
    NodeReply& reply = replies[k];
    reply.transport_status = CallNode(hits[k], encoded[k], &reply.response,
                                      &reply.bytes, &reply.failures);
  });

  SCRACK_RETURN_NOT_OK(FirstAppError(replies));
  // Merge in node order, matching the segment order Select produces.
  int64_t copied = 0;
  int64_t degraded_total = 0;
  for (size_t k = 0; k < hits.size(); ++k) {
    const std::vector<size_t>& assigned =
        node_queries[static_cast<size_t>(hits[k])];
    NodeReply& reply = replies[k];
    if (!reply.transport_status.ok()) {
      for (size_t qi : assigned) (*outputs)[qi].degraded_nodes += 1;
      continue;
    }
    if (reply.response.outputs.size() != assigned.size()) {
      return Status::Internal("node returned a malformed batch response");
    }
    for (size_t j = 0; j < assigned.size(); ++j) {
      const Query& query = queries[assigned[j]];
      QueryOutput& merged = (*outputs)[assigned[j]];
      if (query.mode == OutputMode::kMaterialize) {
        std::vector<Value>& values = reply.response.outputs[j].values;
        copied += static_cast<int64_t>(values.size());
        merged.result.AddOwned(std::move(values));
      } else {
        QueryOutput partial;
        wire::FromOutput(reply.response.outputs[j], &partial);
        MergePartial(query, partial, &merged);
      }
    }
  }
  for (const QueryOutput& output : *outputs) {
    if (output.degraded_nodes > 0) ++degraded_total;
  }

  int64_t routed = 0;
  for (const std::vector<size_t>& assigned : node_queries) {
    routed += static_cast<int64_t>(assigned.size());
  }
  int64_t pushed = 0;
  for (const Query& query : queries) {
    if (query.mode != OutputMode::kMaterialize) ++pushed;
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  own_queries_ += static_cast<int64_t>(queries.size());
  own_materialized_ += copied;
  own_aggregates_pushed_ += pushed;
  fan_outs_ += static_cast<int64_t>(queries.size());
  nodes_routed_ += routed;
  nodes_pruned_ +=
      static_cast<int64_t>(queries.size()) * num_nodes() - routed;
  degraded_queries_ += degraded_total;
  for (size_t k = 0; k < hits.size(); ++k) {
    wire_bytes_ += replies[k].bytes;
    node_failures_ += replies[k].failures;
    if (replies[k].transport_status.ok()) {
      node_stats_[static_cast<size_t>(hits[k])] = replies[k].response.stats;
    }
  }
  RecomputeStatsLocked();
  return Status::OK();
}

Status CoordinatorEngine::StageInsert(Value v) {
  wire::Request request = NewRequest(wire::MessageType::kStageInsert);
  request.update_value = v;
  return StageUpdate(request, v);
}

Status CoordinatorEngine::StageDelete(Value v) {
  wire::Request request = NewRequest(wire::MessageType::kStageDelete);
  request.update_value = v;
  return StageUpdate(request, v);
}

Status CoordinatorEngine::StageUpdate(const wire::Request& request, Value v) {
  const int node = NodeFor(v);
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  std::vector<uint8_t> buffer;
  // Writes go out exactly once: a retry after an ambiguous transport
  // failure could double-apply the update on a real network.
  const Status transport_status = transport_->Call(node, encoded, &buffer);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  wire_bytes_ += static_cast<int64_t>(encoded.size());
  if (!transport_status.ok()) {
    node_failures_ += 1;
    RecomputeStatsLocked();
    return transport_status;
  }
  wire_bytes_ += static_cast<int64_t>(buffer.size());
  wire::Response response;
  const Status decoded = wire::Decode(buffer, &response);
  if (!decoded.ok()) {
    node_failures_ += 1;
    RecomputeStatsLocked();
    return decoded;
  }
  node_stats_[static_cast<size_t>(node)] = response.stats;
  RecomputeStatsLocked();
  if (response.status_code != StatusCode::kOk) {
    return Status::FromCode(response.status_code, response.status_message);
  }
  return Status::OK();
}

Status CoordinatorEngine::Validate() const {
  wire::Request request = NewRequest(wire::MessageType::kValidate);
  std::vector<uint8_t> encoded;
  wire::Encode(request, &encoded);
  for (int i = 0; i < num_nodes(); ++i) {
    wire::Response response;
    int64_t bytes = 0;
    int64_t failures = 0;
    SCRACK_RETURN_NOT_OK(CallNode(i, encoded, &response, &bytes, &failures));
    if (response.status_code != StatusCode::kOk) {
      return Status::FromCode(response.status_code, response.status_message);
    }
  }
  return Status::OK();
}

std::string CoordinatorEngine::name() const {
  return "coord(" + std::to_string(requested_nodes_) + "," + inner_name_ +
         ")";
}

EngineStats CoordinatorEngine::CurrentStats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void CoordinatorEngine::RecomputeStatsLocked() {
  EngineStats aggregate;
  for (const EngineStats& inner : node_stats_) {
    aggregate.tuples_touched += inner.tuples_touched;
    aggregate.swaps += inner.swaps;
    aggregate.cracks += inner.cracks;
    aggregate.materialized += inner.materialized;
    aggregate.updates_merged += inner.updates_merged;
    aggregate.random_pivots += inner.random_pivots;
    aggregate.parallel_cracks += inner.parallel_cracks;
    aggregate.threads_used =
        std::max(aggregate.threads_used, inner.threads_used);
    aggregate.shared_reads += inner.shared_reads;
    aggregate.exclusive_cracks += inner.exclusive_cracks;
    aggregate.escalations += inner.escalations;
    aggregate.budget_exhausted += inner.budget_exhausted;
    aggregate.deferred_swaps += inner.deferred_swaps;
    aggregate.scan_fallback_tuples += inner.scan_fallback_tuples;
    // As in ShardedEngine: a query may crack bounds in every routed node,
    // so the enforced per-query ceiling is the node sum.
    aggregate.swap_budget += inner.swap_budget;
  }
  aggregate.queries = own_queries_;
  aggregate.materialized += own_materialized_;
  aggregate.aggregates_pushed = own_aggregates_pushed_;
  // Distributed counters are coordinator-own, never summed from inners:
  // the route-conservation law (pruned + routed == fan_outs *
  // cluster_nodes) only holds for counters produced by one cluster size.
  aggregate.fan_outs = fan_outs_;
  aggregate.nodes_routed = nodes_routed_;
  aggregate.nodes_pruned = nodes_pruned_;
  aggregate.wire_bytes = wire_bytes_;
  aggregate.node_failures = node_failures_;
  aggregate.degraded_queries = degraded_queries_;
  aggregate.cluster_nodes = num_nodes();
  // Transport robustness counters are transport-own (the only layer that
  // sees connections); the coordinator just publishes the snapshot.
  const TransportCounters transport_counters = transport_->counters();
  aggregate.transport_timeouts = transport_counters.timeouts;
  aggregate.transport_reconnects = transport_counters.reconnects;
  aggregate.transport_retries = transport_counters.retries;
  stats_ = aggregate;
}

}  // namespace scrack
