// Thin POSIX TCP layer for the distributed transport.
//
// Everything the rest of the tree needs from the socket API lives behind
// these helpers: a move-only RAII fd, deadline-bounded connect/accept, and
// robust partial-read/partial-write loops (EINTR retried, short transfers
// resumed) with `SO_RCVTIMEO`-style per-call deadlines implemented via
// poll(2) so one slow peer cannot wedge a caller forever.
//
// Framing: a frame is a u32 little-endian payload length followed by the
// payload bytes — the same trivial shape as the wire protocol itself. A
// length prefix above `max_frame_bytes` is rejected *before* any allocation,
// so a corrupt or hostile peer cannot OOM the receiver with five bytes.
//
// Deadline semantics everywhere: `deadline_ms <= 0` means wait forever;
// expiry returns StatusCode::kDeadlineExceeded (see IsTimeout), which the
// transport maps onto the `transport_timeouts` counter. Raw ::socket /
// ::connect / ::poll calls are confined to socket.cc — the project lint
// (socket-confinement) enforces that every other TU goes through this
// header.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace scrack {
namespace net {

/// Frames larger than this are rejected before allocation. Generous: a
/// 64 MiB response materializes ~8M tuples, far above any test workload.
constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Move-only owner of one socket fd. Closing is idempotent; a
/// default-constructed Socket is invalid.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Half-closes both directions without releasing the fd — unblocks any
  /// thread currently polling this socket (used to interrupt server pumps).
  void Shutdown();

 private:
  int fd_ = -1;
};

/// Opens a listening TCP socket on `port` (0 = kernel-assigned ephemeral
/// port) bound to all interfaces, with SO_REUSEADDR so a restarted node can
/// rebind its old port immediately.
Status Listen(uint16_t port, Socket* out);

/// The locally bound port of a listening (or connected) socket.
Status BoundPort(const Socket& socket, uint16_t* port);

/// Accepts one connection, waiting at most `deadline_ms`.
Status Accept(const Socket& listener, int64_t deadline_ms, Socket* out);

/// Connects to host:port within `deadline_ms` (non-blocking connect +
/// poll). `host` is a numeric IPv4 address or a resolvable name.
Status Connect(const std::string& host, uint16_t port, int64_t deadline_ms,
               Socket* out);

/// Waits until the socket is readable (data, EOF, or error pending).
/// Returns OK with *readable=false on deadline expiry — unlike the
/// transfer loops, a poll timeout here is not an error, it is how server
/// loops interleave stop-flag checks with blocking reads.
Status PollReadable(const Socket& socket, int64_t deadline_ms,
                    bool* readable);

/// Writes all `size` bytes, resuming partial writes, within `deadline_ms`.
Status SendAll(const Socket& socket, const uint8_t* data, size_t size,
               int64_t deadline_ms);

/// Reads exactly `size` bytes, resuming partial reads, within
/// `deadline_ms`. EOF before `size` bytes is an error ("peer closed
/// mid-read").
Status RecvAll(const Socket& socket, uint8_t* data, size_t size,
               int64_t deadline_ms);

/// Reads whatever is available (at most `max` bytes) within `deadline_ms`.
/// Clean EOF is OK with *received == 0 — the chaos proxy pumps use this.
Status RecvSome(const Socket& socket, uint8_t* data, size_t max,
                size_t* received, int64_t deadline_ms);

/// Writes one length-prefixed frame.
Status SendFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                 int64_t deadline_ms);

/// Reads one length-prefixed frame. A prefix above `max_frame_bytes` is
/// rejected before the payload buffer is allocated; EOF cleanly *between*
/// frames is NotFound("connection closed") so servers can tell a finished
/// peer from a mid-frame truncation (Internal).
Status RecvFrame(const Socket& socket, std::vector<uint8_t>* payload,
                 int64_t deadline_ms,
                 size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// True iff `status` is a deadline expiry from one of the calls above.
inline bool IsTimeout(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace net
}  // namespace scrack
