// CoordinatorEngine: range queries over K storage nodes behind a wire.
//
// The distributed face of the library, registered as `coord(K,<inner>)`.
// Data is partitioned across K value-range storage nodes with the same
// equi-depth boundaries ShardedEngine uses — deliberately the same
// algorithm, so `coord(K,X)` and `sharded(K,X)` deal identical slices to
// identical inner engines and return bit-identical answers (the parity
// suite in tests/distributed_test.cc and the `distributed` repro figure
// both assert this). What differs is the boundary: every node interaction
// is an encoded wire::Request/wire::Response through a pluggable Transport,
// never a C++ call into node internals.
//
// Routing: a query only visits nodes whose owned value range [lower_i,
// lower_{i+1}) can intersect its predicate; the rest are pruned without any
// traffic (NeedleTail's locality argument: shards that cannot match are
// never touched). Per dispatched query, nodes_routed + nodes_pruned ==
// cluster_nodes — the auditor enforces this as the route-conservation law.
// Fan-out to routed nodes runs on the shared ThreadPool; kCount/kSum/
// kMinMax/kExists partials merge through MergePartial, materialized rows
// arrive as owned copies (serialization deep-copies by construction).
//
// Failure semantics: a transport-level failure is retried once per node;
// a node that stays unreachable degrades *reads* rather than failing them —
// the query returns OK with `output->degraded_nodes > 0` and the
// coordinator counts `degraded_queries` — while writes (StageInsert/
// StageDelete) and Validate propagate the error, since a silently dropped
// write is not a degraded answer. Application-level errors inside a
// Response (bad query, unimplemented update) propagate unchanged.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cracking/engine.h"
#include "distributed/inproc_transport.h"
#include "distributed/storage_node.h"
#include "distributed/transport.h"
#include "parallel/thread_pool.h"
#include "storage/column.h"

namespace scrack {

class CoordinatorEngine : public SelectEngine {
 public:
  using InnerFactory = StorageNode::InnerFactory;

  /// Creates a coordinator over `base`: computes equi-depth value-range
  /// boundaries (duplicates can collapse them, reducing the effective node
  /// count), deals the data into per-node slices preserving base order,
  /// builds a StorageNode + inner engine per slice, and wires them behind
  /// an in-process transport. `base` need not outlive the engine.
  /// `deadline_us` (0 = none) is stamped on every outgoing wire::Request as
  /// the per-hop deadline hint nodes observe.
  static Status Create(const Column* base, int num_nodes,
                       const InnerFactory& make_inner,
                       const std::string& inner_name,
                       std::unique_ptr<SelectEngine>* out,
                       int64_t deadline_us = 0);

  /// Creates a coordinator over an arbitrary pre-built Transport whose
  /// nodes already hold their slices (e.g. scrack_node processes behind a
  /// TcpTransport). `lowers` must be the boundaries the node slices were
  /// dealt with — ComputeLowers(base, K) on both sides of the wire
  /// guarantees that — and must match transport->num_nodes() exactly.
  /// Primes the per-node stat caches with one kStats round trip each, so a
  /// dead or protocol-mismatched node fails creation loudly. Passing
  /// `tolerate_unreachable` downgrades that boot check: a node whose
  /// priming call fails is admitted with an empty stat cache and every
  /// read touching it degrades, exactly as if it died after boot — the
  /// harness uses this to probe a cluster whose node was killed *before*
  /// the coordinator started (a coordinator restart mid-outage).
  static Status CreateOverTransport(std::vector<Value> lowers,
                                    std::unique_ptr<Transport> transport,
                                    const std::string& inner_name,
                                    int requested_nodes,
                                    std::unique_ptr<SelectEngine>* out,
                                    int64_t deadline_us = 0,
                                    bool tolerate_unreachable = false);

  /// Equi-depth value-range boundaries over `base` for a K-node cluster —
  /// byte-for-byte the ShardedEngine algorithm (successive nth_element
  /// passes over one scratch copy; duplicates collapse boundaries).
  /// Exposed so out-of-process nodes (scrack_node) can recompute the exact
  /// boundaries the coordinator will route with, from the same (n, seed)
  /// column, without any data exchange.
  static std::vector<Value> ComputeLowers(const Column& base, int num_nodes);

  /// Deals `base` into one slice per boundary, preserving base order
  /// within each slice — the coordinator-side deal that scrack_node
  /// replicates to own exactly its slice.
  static std::vector<std::vector<Value>> DealSlices(
      const Column& base, const std::vector<Value>& lowers);

  /// Upper bound on K. Smaller than ShardedEngine::kMaxShards: every node
  /// adds serialization work per hop, and a cluster wider than this wants
  /// real machines, not in-process nodes.
  static constexpr int kMaxNodes = 64;

  Status Select(Value low, Value high, QueryResult* result) override;
  Status Execute(const Query& query, QueryOutput* output) override;
  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override;

  std::string name() const override;
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;
  Status Validate() const override;

  /// Effective node count (<= requested K; duplicate-heavy data collapses
  /// boundaries exactly as in ShardedEngine).
  int num_nodes() const { return static_cast<int>(lowers_.size()); }

  /// Locked snapshot of the aggregated counters (node stats ride on every
  /// wire response and are cached here), safe during concurrent queries.
  EngineStats CurrentStats() const override;

  /// The in-process transport, for chaos hooks (KillNode/FailNextCalls) in
  /// tests and the serving harness. Null when the coordinator is built
  /// over a different transport (CreateOverTransport + TcpTransport).
  InProcTransport* inproc_transport() { return inproc_; }

  /// The transport itself, for white-box counter assertions in tests.
  Transport* transport() { return transport_.get(); }

 private:
  CoordinatorEngine(int requested_nodes, std::string inner_name);

  /// Largest i with lowers[i] <= v (ShardedEngine::ShardFor).
  static int NodeForValue(const std::vector<Value>& lowers, Value v);

  /// Largest i with lowers_[i] <= v.
  int NodeFor(Value v) const;

  /// A fresh request of `type` carrying the coordinator's deadline hint.
  wire::Request NewRequest(wire::MessageType type) const;
  /// Can node i's owned range intersect [low, high)? Ends widened to +-inf.
  bool Intersects(int i, Value low, Value high) const;
  /// Runs tasks on the shared pool, caller participating; same nesting and
  /// exception discipline as ShardedEngine::FanOut.
  void FanOut(size_t num_tasks,
              const std::function<void(size_t)>& run_task) const;

  /// One node call with retry: encodes nothing (callers pass encoded
  /// bytes), decodes the response, counts bytes and failures into `*bytes`
  /// and `*failures`. Returns non-OK only if the node stayed unreachable
  /// after the retry or sent an undecodable response.
  Status CallNode(int node, const std::vector<uint8_t>& request,
                  wire::Response* response, int64_t* bytes,
                  int64_t* failures) const;

  /// Shared fan-out body of Select and kMaterialize Execute; reports how
  /// many routed nodes stayed unreachable through `*degraded_out`.
  Status DoSelect(Value low, Value high, QueryResult* result,
                  int* degraded_out);

  /// Shared single-shot write path of StageInsert/StageDelete.
  Status StageUpdate(const wire::Request& request, Value v);

  /// Folds per-node stat caches + own counters into stats_; callers hold
  /// stats_mutex_.
  void RecomputeStatsLocked();

  const int requested_nodes_;
  const std::string inner_name_;
  int64_t deadline_us_ = 0;    ///< per-hop hint stamped on every request
  std::vector<Value> lowers_;  ///< lowers_[i] = lower bound of node i's range
  std::unique_ptr<Transport> transport_;
  InProcTransport* inproc_ = nullptr;  ///< transport_ downcast, if in-proc
  ThreadPool* pool_ = nullptr;

  // All mutable coordinator state lives under one mutex, written only after
  // a fan-out has joined (so an InjectedFault unwinding a fan-out leaves
  // every counter untouched and the conservation laws intact). The mutex is
  // confined to this class.
  mutable std::mutex stats_mutex_;
  std::vector<EngineStats> node_stats_;  ///< last snapshot seen per node
  int64_t own_queries_ = 0;
  int64_t own_materialized_ = 0;
  int64_t own_aggregates_pushed_ = 0;
  int64_t fan_outs_ = 0;
  int64_t nodes_routed_ = 0;
  int64_t nodes_pruned_ = 0;
  int64_t wire_bytes_ = 0;
  int64_t node_failures_ = 0;
  int64_t degraded_queries_ = 0;
};

}  // namespace scrack
