#include "distributed/inproc_transport.h"

#include <string>

#include "util/fault.h"

namespace scrack {

InProcTransport::InProcTransport(
    std::vector<std::unique_ptr<StorageNode>> nodes)
    : nodes_(std::move(nodes)),
      alive_(std::make_unique<std::atomic<bool>[]>(nodes_.size())),
      fail_next_(std::make_unique<std::atomic<int>[]>(nodes_.size())) {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    alive_[i].store(true, std::memory_order_relaxed);
    fail_next_[i].store(0, std::memory_order_relaxed);
  }
}

Status InProcTransport::Call(int node, const std::vector<uint8_t>& request,
                             std::vector<uint8_t>* response) {
  SCRACK_CHECK(node >= 0 && node < num_nodes());
  SCRACK_FAULT_POINT("transport");
  if (!alive_[node].load(std::memory_order_acquire)) {
    return Status::Internal("storage node " + std::to_string(node) +
                            " unreachable");
  }
  int pending = fail_next_[node].load(std::memory_order_acquire);
  while (pending > 0) {
    if (fail_next_[node].compare_exchange_weak(pending, pending - 1,
                                               std::memory_order_acq_rel)) {
      return Status::Internal("storage node " + std::to_string(node) +
                              " dropped the connection");
    }
  }
  response->clear();
  nodes_[static_cast<size_t>(node)]->Serve(request, response);
  return Status::OK();
}

void InProcTransport::KillNode(int node) {
  SCRACK_CHECK(node >= 0 && node < num_nodes());
  alive_[node].store(false, std::memory_order_release);
}

void InProcTransport::ReviveNode(int node) {
  SCRACK_CHECK(node >= 0 && node < num_nodes());
  alive_[node].store(true, std::memory_order_release);
}

bool InProcTransport::NodeAlive(int node) const {
  SCRACK_CHECK(node >= 0 && node < num_nodes());
  return alive_[node].load(std::memory_order_acquire);
}

void InProcTransport::FailNextCalls(int node, int count) {
  SCRACK_CHECK(node >= 0 && node < num_nodes());
  fail_next_[node].store(count, std::memory_order_release);
}

}  // namespace scrack
