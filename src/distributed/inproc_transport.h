// InProcTransport: message-passing transport over in-process storage nodes.
//
// The hermetic transport that ships with the coordinator: nodes live in
// this process, but every call still serializes the request into a byte
// buffer, hands the bytes to the node, and deserializes the node's encoded
// response — so the wire schema is exercised on every hop and a socket
// transport can replace this one without the coordinator noticing.
//
// Chaos hooks: KillNode()/ReviveNode() make a node unreachable (every Call
// fails with Internal, as a dead TCP peer would), and FailNextCalls()
// injects transient per-node failures for retry testing. Both are
// deterministic. Call() also crosses the "transport" fault point, so
// chaos(<inner>) (PR 8) can inject faults into the fan-out path of a
// wrapped coordinator.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "distributed/storage_node.h"
#include "distributed/transport.h"

namespace scrack {

class InProcTransport : public Transport {
 public:
  explicit InProcTransport(std::vector<std::unique_ptr<StorageNode>> nodes);

  int num_nodes() const override { return static_cast<int>(nodes_.size()); }

  Status Call(int node, const std::vector<uint8_t>& request,
              std::vector<uint8_t>* response) override;

  /// Makes `node` unreachable: every Call fails until ReviveNode. Safe to
  /// call while queries are in flight (the flag is atomic; in-flight calls
  /// complete or fail, they never crash).
  void KillNode(int node);
  void ReviveNode(int node);
  bool NodeAlive(int node) const;

  /// Test hook: the next `count` Calls to `node` fail as if the connection
  /// dropped, then service resumes — the transient-failure shape that
  /// exercises the coordinator's retry path.
  void FailNextCalls(int node, int count);

  /// White-box access for tests; production traffic goes through Call().
  StorageNode* node(int i) { return nodes_[static_cast<size_t>(i)].get(); }

 private:
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  std::unique_ptr<std::atomic<bool>[]> alive_;
  std::unique_ptr<std::atomic<int>[]> fail_next_;
};

}  // namespace scrack
