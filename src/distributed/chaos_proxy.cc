#include "distributed/chaos_proxy.h"

#include <chrono>
#include <cstring>

namespace scrack {

namespace {

constexpr int64_t kPollMs = 100;    ///< stop-flag latency bound
constexpr int64_t kWriteMs = 5000;  ///< stalled-destination bound
constexpr size_t kChunkBytes = 4096;

}  // namespace

Status ChaosProxy::Start(const std::string& upstream_host,
                         uint16_t upstream_port,
                         const ChaosProxyOptions& options,
                         uint16_t listen_port) {
  if (running_) {
    return Status::FailedPrecondition("chaos proxy: already running");
  }
  options_ = options;
  upstream_host_ = upstream_host;
  upstream_port_ = upstream_port;
  SCRACK_RETURN_NOT_OK(net::Listen(listen_port, &listener_));
  SCRACK_RETURN_NOT_OK(net::BoundPort(listener_, &port_));
  stop_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_release);
  accept_thread_.join();
  // Safe after the join: only the accept thread grows conns_.
  for (std::unique_ptr<Conn>& conn : conns_) {
    conn->client.Shutdown();
    conn->upstream.Shutdown();
  }
  for (std::unique_ptr<Conn>& conn : conns_) {
    conn->pump_to_upstream.join();
    conn->pump_to_client.join();
  }
  conns_.clear();
  listener_.Close();
  running_ = false;
}

void ChaosProxy::AcceptLoop() {
  uint64_t conn_id = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    net::Socket client;
    if (!net::Accept(listener_, kPollMs, &client).ok()) continue;
    auto conn = std::make_unique<Conn>();
    const Status connected =
        net::Connect(upstream_host_, upstream_port_, kWriteMs,
                     &conn->upstream);
    if (!connected.ok()) continue;  // upstream down: drop the client
    conn->client = std::move(client);
    Conn* raw = conn.get();
    const uint64_t id = conn_id++;
    conn->pump_to_upstream =
        std::thread([this, raw, id] { Pump(raw, true, id); });
    conn->pump_to_client =
        std::thread([this, raw, id] { Pump(raw, false, id); });
    conns_.push_back(std::move(conn));
  }
}

void ChaosProxy::InjectFault(ChaosFault kind) {
  switch (kind) {
    case ChaosFault::kDelay:
      delays_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ChaosFault::kDrop:
      drops_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ChaosFault::kTruncate:
      truncations_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ChaosFault::kSever:
      severs_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void ChaosProxy::Pump(Conn* conn, bool to_upstream, uint64_t conn_id) {
  net::Socket& src = to_upstream ? conn->client : conn->upstream;
  net::Socket& dst = to_upstream ? conn->upstream : conn->client;
  const bool inject_here =
      (options_.direction_mask & (to_upstream ? 1 : 2)) != 0;

  // Per-connection, per-direction fault schedule in absolute stream-byte
  // offsets — reproducible under the seed no matter how the kernel chunks
  // the transfers.
  Rng rng(options_.seed + conn_id * 0x9E3779B97F4A7C15ULL +
          (to_upstream ? 0 : 1));
  auto next_gap = [&]() -> int64_t {
    const int64_t mean = options_.fault_every_bytes;
    return mean / 2 + static_cast<int64_t>(
                          rng.Uniform(static_cast<uint64_t>(mean) + 1));
  };
  int64_t offset = 0;
  int64_t next_fault_at =
      options_.fault_every_bytes > 0 ? next_gap() : -1;

  uint8_t buffer[kChunkBytes];
  while (!stop_.load(std::memory_order_acquire)) {
    size_t received = 0;
    const Status status =
        net::RecvSome(src, buffer, sizeof(buffer), &received, kPollMs);
    if (!status.ok()) {
      if (net::IsTimeout(status)) continue;  // poll tick
      break;
    }
    if (received == 0) break;  // EOF

    size_t begin = 0;
    while (begin < received) {
      const bool armed = inject_here && next_fault_at >= 0 &&
                         enabled_.load(std::memory_order_acquire);
      // Bytes until the scheduled fault; the whole chunk if none hits it.
      size_t take = received - begin;
      const bool fault_now =
          armed && offset + static_cast<int64_t>(take) > next_fault_at;
      if (fault_now) {
        // The schedule can already be behind the stream when injection was
        // disabled while bytes flowed past the scheduled offset; fire the
        // fault immediately rather than letting the subtraction go negative.
        take = next_fault_at > offset
                   ? static_cast<size_t>(next_fault_at - offset)
                   : 0;
      }
      if (take > 0) {
        if (!net::SendAll(dst, buffer + begin, take, kWriteMs).ok()) {
          src.Shutdown();
          dst.Shutdown();
          return;
        }
        begin += take;
        offset += static_cast<int64_t>(take);
      }
      if (!fault_now) continue;

      const ChaosFault kind =
          options_.force_kind >= 0
              ? static_cast<ChaosFault>(options_.force_kind)
              : static_cast<ChaosFault>(rng.Uniform(4));
      InjectFault(kind);
      next_fault_at = offset + next_gap();
      switch (kind) {
        case ChaosFault::kDelay:
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.delay_ms));
          break;
        case ChaosFault::kDrop: {
          // Swallow the rest of this chunk: the destination's framing
          // desyncs — it reads a garbage length prefix (rejected before
          // allocation) or starves past its deadline.
          const size_t dropped = received - begin;
          offset += static_cast<int64_t>(dropped);
          begin = received;
          break;
        }
        case ChaosFault::kTruncate:
          // The partial frame up to the fault offset was already
          // forwarded; severing now leaves the destination with a
          // mid-frame EOF.
        case ChaosFault::kSever:
          src.Shutdown();
          dst.Shutdown();
          return;
      }
    }
  }
  // Propagate EOF/teardown to the destination so its reader unblocks.
  src.Shutdown();
  dst.Shutdown();
}

}  // namespace scrack
