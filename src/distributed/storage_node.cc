#include "distributed/storage_node.h"

namespace scrack {

Status StorageNode::Create(Column slice, int node_index,
                           const InnerFactory& make_inner,
                           std::unique_ptr<StorageNode>* out) {
  // Allocate first so the column has its final address before the engine
  // is built over it (engines keep a pointer to their base column).
  std::unique_ptr<StorageNode> node(
      new StorageNode(std::move(slice)));  // lint:allow(naked-new)
  SCRACK_RETURN_NOT_OK(make_inner(&node->slice_, node_index, &node->engine_));
  *out = std::move(node);
  return Status::OK();
}

void StorageNode::Serve(const std::vector<uint8_t>& request,
                        std::vector<uint8_t>* response) {
  wire::Request decoded;
  wire::Response reply;
  const Status parsed = wire::Decode(request, &decoded);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!parsed.ok()) {
      reply.status_code = parsed.code();
      reply.status_message = parsed.message();
    } else {
      last_deadline_us_.store(decoded.deadline_us, std::memory_order_relaxed);
      reply = Dispatch(decoded);
    }
    reply.stats = engine_->CurrentStats();
  }
  wire::Encode(reply, response);
}

wire::Response StorageNode::Dispatch(const wire::Request& request) {
  wire::Response reply;
  Status status = Status::OK();
  switch (request.type) {
    case wire::MessageType::kQuery: {
      QueryOutput output;
      status = engine_->Execute(request.query, &output);
      if (status.ok()) reply.outputs.push_back(wire::ToOutput(output));
      break;
    }
    case wire::MessageType::kBatch: {
      // One query at a time, serializing each output before the next
      // query's reorganization can invalidate materialized views. Answers
      // match a one-by-one issue order by construction.
      reply.outputs.reserve(request.batch.size());
      for (const Query& query : request.batch) {
        QueryOutput output;
        status = engine_->Execute(query, &output);
        if (!status.ok()) {
          reply.outputs.clear();
          break;
        }
        reply.outputs.push_back(wire::ToOutput(output));
      }
      break;
    }
    case wire::MessageType::kStageInsert:
      status = engine_->StageInsert(request.update_value);
      break;
    case wire::MessageType::kStageDelete:
      status = engine_->StageDelete(request.update_value);
      break;
    case wire::MessageType::kStats:
      break;  // the stats snapshot rides on every response anyway
    case wire::MessageType::kValidate:
      status = engine_->Validate();
      break;
  }
  reply.status_code = status.code();
  reply.status_message = status.message();
  return reply;
}

}  // namespace scrack
