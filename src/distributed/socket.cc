#include "distributed/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "util/timer.h"

namespace scrack {
namespace net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Remaining poll budget in ms: -1 (infinite) when no deadline was set,
// 0 when the deadline already passed.
int RemainingMs(const Timer& timer, int64_t deadline_ms) {
  if (deadline_ms <= 0) return -1;
  const int64_t elapsed_ms = timer.ElapsedNanos() / 1000000;
  if (elapsed_ms >= deadline_ms) return 0;
  const int64_t left = deadline_ms - elapsed_ms;
  return left > 1000000 ? 1000000 : static_cast<int>(left);
}

// Waits for `events` on fd. Returns 1 ready, 0 deadline expired; EINTR is
// retried against the same deadline.
Status WaitFd(int fd, short events, const Timer& timer, int64_t deadline_ms,
              int* ready) {
  for (;;) {
    const int budget = RemainingMs(timer, deadline_ms);
    if (budget == 0) {
      *ready = 0;
      return Status::OK();
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) {
      *ready = 1;
      return Status::OK();
    }
    if (rc == 0) continue;  // poll slice expired; re-check the deadline
    if (errno == EINTR) continue;
    return Status::Internal(Errno("poll"));
  }
}

Status SetNonBlocking(int fd, bool non_blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Status::Internal(Errno("fcntl(F_GETFL)"));
  const int want = non_blocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, want) < 0) {
    return Status::Internal(Errno("fcntl(F_SETFL)"));
  }
  return Status::OK();
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Listen(uint16_t port, Socket* out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  Socket sock(fd);
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return Status::Internal(Errno("setsockopt(SO_REUSEADDR)"));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(Errno("bind"));
  }
  if (::listen(fd, 64) < 0) return Status::Internal(Errno("listen"));
  // Non-blocking so a poll/accept race (peer aborts first) cannot block.
  SCRACK_RETURN_NOT_OK(SetNonBlocking(fd, true));
  *out = std::move(sock);
  return Status::OK();
}

Status BoundPort(const Socket& socket, uint16_t* port) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return Status::Internal(Errno("getsockname"));
  }
  *port = ntohs(addr.sin_port);
  return Status::OK();
}

Status Accept(const Socket& listener, int64_t deadline_ms, Socket* out) {
  Timer timer;
  for (;;) {
    int ready = 0;
    SCRACK_RETURN_NOT_OK(
        WaitFd(listener.fd(), POLLIN, timer, deadline_ms, &ready));
    if (ready == 0) {
      return Status::DeadlineExceeded("accept: deadline expired");
    }
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket sock(fd);
      // Data sockets stay non-blocking for their whole life: the transfer
      // loops poll with the remaining deadline before every send/recv, so
      // a stalled peer can never sink a call past its budget.
      SCRACK_RETURN_NOT_OK(SetNonBlocking(fd, true));
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = std::move(sock);
      return Status::OK();
    }
    if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN ||
        errno == EWOULDBLOCK) {
      continue;
    }
    return Status::Internal(Errno("accept"));
  }
}

Status Connect(const std::string& host, uint16_t port, int64_t deadline_ms,
               Socket* out) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    // Not numeric; resolve (e.g. "localhost"). Numeric-first keeps the
    // common loopback path free of resolver calls.
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* result = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
    if (rc != 0 || result == nullptr) {
      return Status::InvalidArgument("connect: cannot resolve host \"" +
                                     host + "\": " + ::gai_strerror(rc));
    }
    addr.sin_addr =
        reinterpret_cast<struct sockaddr_in*>(result->ai_addr)->sin_addr;
    ::freeaddrinfo(result);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(Errno("socket"));
  Socket sock(fd);
  SCRACK_RETURN_NOT_OK(SetNonBlocking(fd, true));
  Timer timer;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) return Status::Internal(Errno("connect"));
    int ready = 0;
    SCRACK_RETURN_NOT_OK(WaitFd(fd, POLLOUT, timer, deadline_ms, &ready));
    if (ready == 0) {
      return Status::DeadlineExceeded("connect: deadline expired");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return Status::Internal(Errno("getsockopt(SO_ERROR)"));
    }
    if (err != 0) {
      return Status::Internal(std::string("connect: ") + std::strerror(err));
    }
  }
  // Stays non-blocking: see Accept on why data sockets never block.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return Status::OK();
}

Status PollReadable(const Socket& socket, int64_t deadline_ms,
                    bool* readable) {
  Timer timer;
  int ready = 0;
  SCRACK_RETURN_NOT_OK(
      WaitFd(socket.fd(), POLLIN, timer, deadline_ms, &ready));
  *readable = ready != 0;
  return Status::OK();
}

Status SendAll(const Socket& socket, const uint8_t* data, size_t size,
               int64_t deadline_ms) {
  Timer timer;
  size_t sent = 0;
  while (sent < size) {
    int ready = 0;
    SCRACK_RETURN_NOT_OK(
        WaitFd(socket.fd(), POLLOUT, timer, deadline_ms, &ready));
    if (ready == 0) {
      return Status::DeadlineExceeded("send: deadline expired");
    }
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not process-wide SIGPIPE.
    const ssize_t n =
        ::send(socket.fd(), data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Status::Internal(Errno("send"));
  }
  return Status::OK();
}

Status RecvAll(const Socket& socket, uint8_t* data, size_t size,
               int64_t deadline_ms) {
  Timer timer;
  size_t received = 0;
  while (received < size) {
    int ready = 0;
    SCRACK_RETURN_NOT_OK(
        WaitFd(socket.fd(), POLLIN, timer, deadline_ms, &ready));
    if (ready == 0) {
      return Status::DeadlineExceeded("recv: deadline expired");
    }
    const ssize_t n =
        ::recv(socket.fd(), data + received, size - received, 0);
    if (n > 0) {
      received += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Internal("recv: peer closed mid-read");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Internal(Errno("recv"));
  }
  return Status::OK();
}

Status RecvSome(const Socket& socket, uint8_t* data, size_t max,
                size_t* received, int64_t deadline_ms) {
  Timer timer;
  *received = 0;
  for (;;) {
    int ready = 0;
    SCRACK_RETURN_NOT_OK(
        WaitFd(socket.fd(), POLLIN, timer, deadline_ms, &ready));
    if (ready == 0) {
      return Status::DeadlineExceeded("recv: deadline expired");
    }
    const ssize_t n = ::recv(socket.fd(), data, max, 0);
    if (n >= 0) {
      *received = static_cast<size_t>(n);
      return Status::OK();  // n == 0 is clean EOF
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Status::Internal(Errno("recv"));
  }
}

Status SendFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                 int64_t deadline_ms) {
  uint8_t prefix[4];
  const uint32_t size = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<uint8_t>(size >> (8 * i));
  }
  // One timer budget covers prefix + payload: frame both within deadline.
  Timer timer;
  SCRACK_RETURN_NOT_OK(SendAll(socket, prefix, sizeof(prefix), deadline_ms));
  const int64_t elapsed_ms = timer.ElapsedNanos() / 1000000;
  const int64_t left =
      deadline_ms <= 0 ? 0
                       : (elapsed_ms >= deadline_ms ? 1
                                                    : deadline_ms - elapsed_ms);
  return SendAll(socket, payload.data(), payload.size(), left);
}

Status RecvFrame(const Socket& socket, std::vector<uint8_t>* payload,
                 int64_t deadline_ms, size_t max_frame_bytes) {
  uint8_t prefix[4];
  Timer timer;
  // Distinguish a peer that closed cleanly between frames (first prefix
  // byte is EOF) from one that died mid-frame (any later byte is EOF).
  size_t first = 0;
  SCRACK_RETURN_NOT_OK(RecvSome(socket, prefix, 1, &first, deadline_ms));
  if (first == 0) {
    return Status::NotFound("recv: connection closed");
  }
  int64_t left = deadline_ms;
  if (deadline_ms > 0) {
    const int64_t elapsed_ms = timer.ElapsedNanos() / 1000000;
    left = elapsed_ms >= deadline_ms ? 1 : deadline_ms - elapsed_ms;
  }
  SCRACK_RETURN_NOT_OK(RecvAll(socket, prefix + 1, sizeof(prefix) - 1, left));
  uint32_t size = 0;
  for (int i = 0; i < 4; ++i) {
    size |= static_cast<uint32_t>(prefix[i]) << (8 * i);
  }
  if (size > max_frame_bytes) {
    return Status::InvalidArgument("recv: frame length " +
                                   std::to_string(size) +
                                   " exceeds the frame-size limit");
  }
  payload->resize(size);
  if (size == 0) return Status::OK();
  if (deadline_ms > 0) {
    const int64_t elapsed_ms = timer.ElapsedNanos() / 1000000;
    left = elapsed_ms >= deadline_ms ? 1 : deadline_ms - elapsed_ms;
  }
  return RecvAll(socket, payload->data(), size, left);
}

}  // namespace net
}  // namespace scrack
