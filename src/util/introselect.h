// Introselect: worst-case linear selection with quickselect speed.
//
// DDC (Data Driven Center cracking) must split array pieces at their median
// (paper §4). The paper uses Musser's Introselect, which runs quickselect
// with smart pivots and falls back to the BFPRT median-of-medians algorithm
// when progress stalls, guaranteeing O(n) worst-case time. This is a
// from-scratch implementation of exactly that scheme.
//
// Beyond plain selection, DDC needs the *partition position* of the median so
// it can register a crack: IntroselectPartition reports the equal-range of
// the selected value, which makes the resulting crack correct even when the
// array contains duplicates.
#pragma once

#include "util/common.h"

namespace scrack {

/// Result of a partitioning selection.
///
/// After the call, the array range [lo, hi) is rearranged such that
///   * every element in [lo, eq_begin)  is  < value,
///   * every element in [eq_begin, eq_end) is == value,
///   * every element in [eq_end, hi)    is  > value,
/// and `value` is the k-th smallest element (k is a global index into the
/// array, lo <= k < hi).
struct SelectionResult {
  Value value;
  Index eq_begin;
  Index eq_end;
};

/// Rearranges [data[lo], data[hi]) so the element of rank k (global index)
/// is in its sorted position, with the three-way partition postcondition
/// described on SelectionResult. Average O(hi-lo), worst-case O(hi-lo) via
/// the median-of-medians fallback.
SelectionResult IntroselectPartition(Value* data, Index lo, Index hi,
                                     Index k);

/// Convenience wrapper: returns the k-th smallest of data[0..n) (0-based),
/// rearranging the array as a side effect.
Value SelectNth(Value* data, Index n, Index k);

}  // namespace scrack
