// Deterministic fault injection for degradation testing.
//
// A fault *point* is a named place in a mutating path where something could
// genuinely go wrong in production — an allocation, a partition pass, an
// index registration. Instrumented code crosses points with
// SCRACK_FAULT_POINT("name"); crossing is free (one thread-local integer
// test) unless the calling thread has been *armed*, in which case the n-th
// crossing throws InjectedFault. All state is thread-local: worker threads
// of the parallel kernels never observe an armed injector, so instrumented
// code stays TSan-clean and faults only ever unwind the thread that asked
// for them.
//
// Determinism: a test (or the chaos(<inner>) engine) arms a countdown,
// runs one operation, and disarms. The same arm count on the same input
// always faults at the same point — no wall clock, no global RNG.
//
// Exception-safety contract being tested: every CrackerColumn mutation must
// leave the column in an invariant-preserving state when a point throws
// (partition work without a registered crack only permutes within piece
// bounds; the multiset, index order, and piece partitions all still hold).
// The invariant auditor verifies exactly that after each injected abort.
#pragma once

#include <cstdint>
#include <exception>

namespace scrack {
namespace fault {

/// Thrown by an armed fault point. Stands in for the real-world failures a
/// point models (std::bad_alloc at "alloc", a crash mid-partition at
/// "slice") while keeping what() informative in test logs.
class InjectedFault : public std::exception {
 public:
  explicit InjectedFault(const char* point) : point_(point) {}
  /// Name of the point that fired.
  const char* point() const { return point_; }
  const char* what() const noexcept override { return "scrack injected fault"; }

 private:
  const char* point_;
};

/// Arms the calling thread: the nth fault point crossed from now on
/// (1-based) throws InjectedFault. Re-arming replaces the pending countdown.
void ArmCountdown(int64_t nth);

/// Disarms the calling thread; crossing points becomes free again.
void Disarm();

/// True while this thread has an armed countdown that has not yet fired.
bool Armed();

/// Total points this thread has crossed since thread start (armed or not,
/// fired or not). Lets tests enumerate how many points one operation
/// crosses so every one of them can be targeted in turn.
int64_t PointsCrossed();

/// Resets the PointsCrossed counter for the calling thread.
void ResetPointsCrossed();

/// Implementation of SCRACK_FAULT_POINT. Throws InjectedFault(point) when
/// this crossing consumes the countdown.
void CrossPoint(const char* point);

}  // namespace fault
}  // namespace scrack

/// Marks one named fault point. Costs a thread-local integer test when
/// disarmed; must only appear where an exception unwinds to an
/// invariant-preserving state.
#define SCRACK_FAULT_POINT(point_name) ::scrack::fault::CrossPoint(point_name)
