#include "util/simd.h"

#include <cstdlib>

namespace scrack {
namespace simd {

bool CompiledWithAvx2() {
#if defined(SCRACK_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Supported() {
#if defined(SCRACK_HAVE_AVX2)
  static const bool supported = [] {
    if (std::getenv("SCRACK_NO_AVX2") != nullptr) return false;
#if defined(__GNUC__) || defined(__clang__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return supported;
#else
  return false;
#endif
}

}  // namespace simd
}  // namespace scrack
