#include "util/introselect.h"

#include <algorithm>
#include <utility>

namespace scrack {

namespace {

// Insertion sort for the tiny subarrays where quadratic beats clever.
void InsertionSort(Value* a, Index lo, Index hi) {
  for (Index i = lo + 1; i < hi; ++i) {
    Value v = a[i];
    Index j = i - 1;
    while (j >= lo && a[j] > v) {
      a[j + 1] = a[j];
      --j;
    }
    a[j + 1] = v;
  }
}

// Median of three values, by value.
Value Median3(Value a, Value b, Value c) {
  if (a < b) {
    if (b < c) return b;
    return a < c ? c : a;
  }
  if (a < c) return a;
  return b < c ? c : b;
}

// Tukey's ninther: median of three medians-of-three, sampled across the
// range. Good pivot for large ranges at negligible cost.
Value Ninther(const Value* a, Index lo, Index hi) {
  const Index n = hi - lo;
  const Index step = n / 8;
  const Value m1 = Median3(a[lo], a[lo + step], a[lo + 2 * step]);
  const Value m2 =
      Median3(a[lo + 3 * step], a[lo + 4 * step], a[lo + 5 * step]);
  const Value m3 = Median3(a[lo + 6 * step], a[lo + 7 * step], a[hi - 1]);
  return Median3(m1, m2, m3);
}

// Dutch-national-flag three-way partition of [lo, hi) around `pivot`.
// Returns the equal range [lt, gt): elements < pivot end up in [lo, lt),
// elements == pivot in [lt, gt), elements > pivot in [gt, hi).
std::pair<Index, Index> Partition3(Value* a, Index lo, Index hi,
                                   Value pivot) {
  Index lt = lo;    // a[lo, lt) <  pivot
  Index i = lo;     // a[lt, i)  == pivot
  Index gt = hi;    // a[gt, hi) >  pivot
  while (i < gt) {
    if (a[i] < pivot) {
      std::swap(a[lt], a[i]);
      ++lt;
      ++i;
    } else if (a[i] > pivot) {
      --gt;
      std::swap(a[i], a[gt]);
    } else {
      ++i;
    }
  }
  return {lt, gt};
}

// Forward declaration for the BFPRT pivot, which recurses into selection.
SelectionResult SelectLoop(Value* a, Index lo, Index hi, Index k,
                           int depth_budget);

// BFPRT median-of-medians: picks a pivot guaranteed to be within the 30th
// and 70th percentile of [lo, hi). Linear time. Groups of five are sorted in
// place and their medians compacted to the front of the range, then the
// median of the medians is found recursively.
Value MedianOfMedians(Value* a, Index lo, Index hi) {
  Index n = hi - lo;
  if (n <= 5) {
    InsertionSort(a, lo, hi);
    return a[lo + (n - 1) / 2];
  }
  Index num_medians = 0;
  for (Index i = lo; i < hi; i += 5) {
    Index group_hi = std::min(i + 5, hi);
    InsertionSort(a, i, group_hi);
    Index median_pos = i + (group_hi - i - 1) / 2;
    std::swap(a[lo + num_medians], a[median_pos]);
    ++num_medians;
  }
  // Recursive selection over the compacted medians. Depth budget is
  // irrelevant here: the recursion shrinks by 5x each level.
  return SelectLoop(a, lo, lo + num_medians, lo + (num_medians - 1) / 2,
                    64)
      .value;
}

int FloorLog2(Index n) {
  int log = 0;
  while (n > 1) {
    n >>= 1;
    ++log;
  }
  return log;
}

SelectionResult SelectLoop(Value* a, Index lo, Index hi, Index k,
                           int depth_budget) {
  SCRACK_DCHECK(lo <= k && k < hi);
  while (true) {
    const Index n = hi - lo;
    if (n <= 16) {
      InsertionSort(a, lo, hi);
      // Expand the equal range around position k.
      Index eq_begin = k;
      while (eq_begin > lo && a[eq_begin - 1] == a[k]) --eq_begin;
      Index eq_end = k + 1;
      while (eq_end < hi && a[eq_end] == a[k]) ++eq_end;
      return {a[k], eq_begin, eq_end};
    }
    Value pivot;
    if (depth_budget <= 0) {
      // Quickselect degenerated; switch to the BFPRT guaranteed pivot.
      pivot = MedianOfMedians(a, lo, hi);
    } else {
      --depth_budget;
      pivot = Ninther(a, lo, hi);
    }
    auto [lt, gt] = Partition3(a, lo, hi, pivot);
    if (k < lt) {
      hi = lt;
    } else if (k >= gt) {
      lo = gt;
    } else {
      // k lands inside the equal range: done. Elements outside [lo, hi) of
      // the current segment were placed strictly below/above by earlier
      // partitions, so [lt, gt) is the global equal range of the value.
      return {pivot, lt, gt};
    }
  }
}

}  // namespace

SelectionResult IntroselectPartition(Value* data, Index lo, Index hi,
                                     Index k) {
  SCRACK_CHECK(data != nullptr);
  SCRACK_CHECK(lo <= k && k < hi);
  // Musser's budget: 2*floor(log2(n)) partitioning rounds before the
  // worst-case fallback engages.
  return SelectLoop(data, lo, hi, k, 2 * FloorLog2(hi - lo) + 2);
}

Value SelectNth(Value* data, Index n, Index k) {
  return IntroselectPartition(data, 0, n, k).value;
}

}  // namespace scrack
