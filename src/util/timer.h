// Monotonic wall-clock timing for the experiment harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace scrack {

/// Thin wrapper over std::chrono::steady_clock. Start() resets the epoch;
/// ElapsedSeconds()/ElapsedNanos() read without resetting, so one timer can
/// produce both per-query and cumulative figures.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scrack
