// Deterministic pseudo-random number generation.
//
// Everything stochastic in the library (random pivots in DDR/DD1R/MDD1R,
// FlipCoin decisions, workload generators, dataset shuffles) draws from Rng
// so that experiments are reproducible given a seed. The generator is
// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64 — fast,
// high-quality, and trivially embeddable, which matters because MDD1R calls
// rand() once per crack on the query hot path (Fig. 5 line 13 of the paper).
#pragma once

#include <cstdint>

#include "util/common.h"

namespace scrack {

/// xoshiro256** pseudo-random generator with convenience helpers for the
/// ranges the cracking algorithms need. Not thread-safe; each engine owns
/// its own instance.
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with equal seeds produce
  /// identical streams.
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) { Seed(seed); }

  /// Re-seeds in place using SplitMix64 expansion of `seed`.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit output.
  uint64_t Next64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  /// multiply-shift rejection method to avoid modulo bias.
  uint64_t Uniform(uint64_t bound) {
    SCRACK_DCHECK(bound > 0);
    // Lemire, "Fast Random Integer Generation in an Interval" (2019).
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t t = -bound % bound;
      while (l < t) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform Index in [lo, hi] inclusive. Requires lo <= hi.
  Index UniformIndex(Index lo, Index hi) {
    SCRACK_DCHECK(lo <= hi);
    return lo + static_cast<Index>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform Value in [lo, hi) half-open. Requires lo < hi.
  Value UniformValue(Value lo, Value hi) {
    SCRACK_DCHECK(lo < hi);
    return lo +
           static_cast<Value>(Uniform(static_cast<uint64_t>(hi - lo)));
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool Coin(double p = 0.5) {
    // 53-bit mantissa double in [0, 1).
    double u = static_cast<double>(Next64() >> 11) * 0x1.0p-53;
    return u < p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace scrack
