#include "util/cache_info.h"

#include <cctype>
#include <fstream>
#include <string>

namespace scrack {

namespace {

// Parses sysfs cache size strings such as "32K" or "1M". Returns 0 on
// failure.
size_t ParseSizeString(const std::string& text) {
  if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0]))) {
    return 0;
  }
  size_t value = 0;
  size_t i = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<size_t>(text[i] - '0');
    ++i;
  }
  if (i < text.size()) {
    char suffix = static_cast<char>(
        std::toupper(static_cast<unsigned char>(text[i])));
    if (suffix == 'K') {
      value *= 1024;
    } else if (suffix == 'M') {
      value *= 1024 * 1024;
    }
  }
  return value;
}

// Reads one line from `path`; empty string on failure.
std::string ReadLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) return line;
  return "";
}

}  // namespace

CacheInfo CacheInfo::Detect() {
  CacheInfo info;
  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  // Scan index0..index7 looking for a level-1 data cache and a level-2
  // (unified or data) cache.
  for (int i = 0; i < 8; ++i) {
    const std::string dir = base + "index" + std::to_string(i) + "/";
    const std::string level = ReadLine(dir + "level");
    const std::string type = ReadLine(dir + "type");
    const size_t size = ParseSizeString(ReadLine(dir + "size"));
    if (size == 0) continue;
    if (level == "1" && (type == "Data" || type == "Unified")) {
      info.l1_bytes = size;
    } else if (level == "2" && (type == "Data" || type == "Unified")) {
      info.l2_bytes = size;
    } else if (level == "3" && (type == "Data" || type == "Unified")) {
      info.l3_bytes = size;
    }
  }
  return info;
}

}  // namespace scrack
