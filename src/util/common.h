// Core shared definitions for the scrack library.
//
// Every other header in the library includes this file. It defines the
// element type stored in columns, the index type used for positions, and the
// assertion macros used to enforce internal invariants.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace scrack {

/// The element type stored in a column. The paper's datasets are unique
/// integers in [0, N); we use a 64-bit signed integer so domains up to the
/// paper's N = 10^8 (and far beyond) are representable without overflow in
/// sums and offsets.
using Value = int64_t;

/// Index into a column. Signed, so that empty-piece arithmetic such as
/// `end - 1` never wraps.
using Index = int64_t;

/// Number of queries in a workload sequence.
using QueryId = int64_t;

namespace internal {

[[noreturn]] inline void AssertionFailure(const char* expr, const char* file,
                                          int line) {
  std::fprintf(stderr, "scrack assertion failed: %s at %s:%d\n", expr, file,
               line);
  std::abort();
}

}  // namespace internal

// SCRACK_CHECK is always on: it guards invariants whose violation would
// corrupt data (e.g. piece boundaries out of range). SCRACK_DCHECK compiles
// away in release builds and is used on hot paths.
#define SCRACK_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::scrack::internal::AssertionFailure(#expr, __FILE__, __LINE__);  \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define SCRACK_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SCRACK_DCHECK(expr) SCRACK_CHECK(expr)
#endif

}  // namespace scrack
