// Runtime SIMD capability detection for the cracking kernels.
//
// The AVX2 kernels live in their own translation unit (kernel_avx2.cc),
// compiled with -mavx2 only when the build enables SCRACK_ENABLE_AVX2 and
// the compiler targets x86-64; that build also defines SCRACK_HAVE_AVX2.
// At run time, Supported() gates every dispatch: it requires the compiled-in
// path, a CPU that reports AVX2, and the absence of the SCRACK_NO_AVX2
// environment kill switch. The dispatched kernels fall back to the
// predicated scalar implementations, which produce bit-identical results
// and counters, so flipping the switch never changes query answers.
#pragma once

namespace scrack {
namespace simd {

/// True when the library was built with the AVX2 kernel translation unit.
bool CompiledWithAvx2();

/// True when the AVX2 kernels may be dispatched: compiled in, CPU support
/// detected, and SCRACK_NO_AVX2 not set in the environment. The decision is
/// computed once and cached; it is thread-safe to call from any thread.
bool Supported();

}  // namespace simd
}  // namespace scrack
