#include "util/fault.h"

namespace scrack {
namespace fault {

namespace {

struct ThreadState {
  int64_t countdown = 0;  // 0 = disarmed; fires when it decrements to 0
  int64_t crossed = 0;
};

ThreadState& State() {
  static thread_local ThreadState state;
  return state;
}

}  // namespace

void ArmCountdown(int64_t nth) {
  State().countdown = nth > 0 ? nth : 0;
}

void Disarm() { State().countdown = 0; }

bool Armed() { return State().countdown > 0; }

int64_t PointsCrossed() { return State().crossed; }

void ResetPointsCrossed() { State().crossed = 0; }

void CrossPoint(const char* point) {
  ThreadState& state = State();
  ++state.crossed;
  if (state.countdown > 0 && --state.countdown == 0) {
    throw InjectedFault(point);
  }
}

}  // namespace fault
}  // namespace scrack
