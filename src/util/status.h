// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: fallible operations return a Status (or a
// value wrapped in StatusOr-like out-parameters); callers branch on ok().
// The core cracking hot paths are infallible by construction and do not pay
// for Status; it appears on configuration, update staging, and harness APIs.
#pragma once

#include <string>
#include <utility>

namespace scrack {

/// Error codes used across the library. Kept deliberately small; the message
/// string carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

/// Value-semantics error holder. Cheap to move; the OK status allocates
/// nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// Rebuilds a status from its parts — for statuses that crossed a
  /// serialization boundary (see distributed/wire.h). FromCode(kOk, ...)
  /// is OK with the message dropped, preserving `ok() == (code == kOk)`.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: low > high".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Mirrors ARROW_RETURN_NOT_OK.
#define SCRACK_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::scrack::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace scrack
