// CPU cache-size discovery.
//
// Stochastic cracking parameterizes several decisions on cache sizes:
//   * DDC stops recursive halving when a piece fits the L1 cache
//     (paper §4, Fig. 8 sweeps this threshold);
//   * progressive cracking switches to plain MDD1R below the L2 size;
//   * the selective "size threshold" variant stops stochastic actions for
//     pieces below L1;
//   * the parallel partition kernels take over only for pieces larger than
//     the L3 cache — below that a single core already runs at cache
//     bandwidth and fan-out overhead would only slow the crack down.
// CacheInfo reads the host's cache hierarchy from sysfs when available and
// falls back to the paper's machine (Intel E5620: 32 KiB L1d, 256 KiB L2,
// 12 MiB L3) otherwise, so experiments are reproducible on any box.
#pragma once

#include <cstddef>

#include "util/common.h"

namespace scrack {

/// Sizes in bytes of the relevant data caches.
struct CacheInfo {
  size_t l1_bytes = 32 * 1024;
  size_t l2_bytes = 256 * 1024;
  size_t l3_bytes = 12 * 1024 * 1024;

  /// Number of Value elements that fit in L1 / L2 / L3.
  Index L1Values() const {
    return static_cast<Index>(l1_bytes / sizeof(Value));
  }
  Index L2Values() const {
    return static_cast<Index>(l2_bytes / sizeof(Value));
  }
  Index L3Values() const {
    return static_cast<Index>(l3_bytes / sizeof(Value));
  }

  /// Detects the host caches via sysfs
  /// (/sys/devices/system/cpu/cpu0/cache). Falls back to the defaults above
  /// for any level that cannot be read.
  static CacheInfo Detect();
};

}  // namespace scrack
