// Query / QueryOutput: the first-class request form of a range select.
//
// The paper's cost argument (§3) is that the *form* of a select's answer
// matters: cracking returns contiguous views while Scan and the MDD1R end
// pieces must materialize. Aggregate-heavy workloads (COUNT/SUM dashboards,
// LIMIT-k existence probes) never need the tuples at all — so a Query pairs
// a half-open range [low, high) with an OutputMode, letting engines push
// the aggregation below the materialization boundary: cracking answers
// kCount straight from index piece bounds, Scan folds in its single pass,
// ShardedEngine merges per-shard partial aggregates instead of copies.
//
// Batches: ExecuteBatch(vector<Query>) amortizes per-query overhead (one
// lock acquisition in ThreadSafeEngine, one shard fan-out in ShardedEngine,
// one pending-update intersection pass in the cracking engines). Updates
// staged before a batch are visible to every query in it; the per-query
// answers are identical to issuing the same queries one by one.
#pragma once

#include <algorithm>

#include "storage/query_result.h"
#include "util/common.h"
#include "util/status.h"

namespace scrack {

/// What a query wants back. Everything except kMaterialize is an aggregate
/// that engines may compute without allocating owned result buffers.
enum class OutputMode {
  kMaterialize,  ///< full QueryResult (views and/or owned buffers)
  kCount,        ///< number of qualifying tuples
  kSum,          ///< sum of qualifying values (plus their count)
  kMinMax,       ///< min and max qualifying value (plus their count)
  kExists,       ///< LIMIT-k probe: are there at least `limit` hits?
};

/// Display name, e.g. "count".
inline const char* OutputModeName(OutputMode mode) {
  switch (mode) {
    case OutputMode::kMaterialize: return "materialize";
    case OutputMode::kCount: return "count";
    case OutputMode::kSum: return "sum";
    case OutputMode::kMinMax: return "minmax";
    case OutputMode::kExists: return "exists";
  }
  return "?";
}

/// One range-select request: half-open [low, high) plus an output mode.
struct Query {
  Value low = 0;
  Value high = 0;
  OutputMode mode = OutputMode::kMaterialize;

  /// kExists only: the query succeeds once this many qualifying tuples are
  /// known to exist (LIMIT-k / NeedleTail-style early termination). Must be
  /// >= 1.
  Index limit = 1;
};

/// Answer to one Query. Which fields are meaningful depends on the mode:
///   kMaterialize — `result` (count/sum available via result.count()/Sum())
///   kCount       — `count`
///   kSum         — `count`, `sum`
///   kMinMax      — `count`; `min`/`max` valid iff count > 0
///   kExists      — `exists`; `count` = hits found, capped at query.limit
/// Aggregate fields are plain values with no pointers into engine state, so
/// unlike borrowed views they survive later reorganizing queries.
struct QueryOutput {
  Index count = 0;
  int64_t sum = 0;
  Value min = 0;
  Value max = 0;
  bool exists = false;
  int degraded_nodes = 0;  ///< distributed serving only: storage nodes that
                           ///  stayed unreachable after retry, so this answer
                           ///  covers a partial node set (0 = complete)
  QueryResult result;  ///< kMaterialize only; move-only, like QueryResult
};

/// Validates a query: low <= high, and limit >= 1 for kExists.
inline Status CheckQuery(const Query& query) {
  if (query.low > query.high) {
    return Status::InvalidArgument("query range has low > high");
  }
  if (query.mode == OutputMode::kExists && query.limit < 1) {
    return Status::InvalidArgument("kExists query needs limit >= 1");
  }
  return Status::OK();
}

/// Folds a contiguous region data[begin, end) in which *every* value
/// qualifies — the shape cracking produces: after cracks exist at both
/// bounds the answer is exactly one piece range. kCount and kExists read
/// zero tuples (the piece bounds are the answer); kSum/kMinMax read the
/// region but copy nothing. `*touched` is incremented by the number of
/// tuples actually read, so engine accounting stays comparable with Scan's
/// full-pass pushdown (pass nullptr to skip).
inline void AggregateRegion(const Value* data, Index begin, Index end,
                            const Query& query, QueryOutput* output,
                            int64_t* touched = nullptr) {
  const Index count = end > begin ? end - begin : 0;
  switch (query.mode) {
    case OutputMode::kMaterialize:
      break;  // callers materialize through QueryResult instead
    case OutputMode::kCount:
      output->count = count;
      break;
    case OutputMode::kSum: {
      int64_t sum = 0;
      for (Index i = begin; i < end; ++i) sum += data[i];
      output->count = count;
      output->sum = sum;
      if (touched != nullptr) *touched += count;
      break;
    }
    case OutputMode::kMinMax:
      output->count = count;
      if (count > 0) {
        Value mn = data[begin];
        Value mx = data[begin];
        for (Index i = begin + 1; i < end; ++i) {
          mn = std::min(mn, data[i]);
          mx = std::max(mx, data[i]);
        }
        output->min = mn;
        output->max = mx;
      }
      if (touched != nullptr) *touched += count;
      break;
    case OutputMode::kExists:
      output->count = std::min(count, query.limit);
      output->exists = count >= query.limit;
      break;
  }
}

/// Folds an already-assembled QueryResult into an aggregate — the default
/// path for engines without a pushdown override. Reads the segments in
/// place; copies nothing beyond what Select itself materialized.
inline void FoldResult(const QueryResult& result, const Query& query,
                       QueryOutput* output) {
  switch (query.mode) {
    case OutputMode::kMaterialize:
      break;  // caller keeps the QueryResult itself
    case OutputMode::kCount:
      output->count = result.count();
      break;
    case OutputMode::kSum:
      output->count = result.count();
      output->sum = result.Sum();
      break;
    case OutputMode::kMinMax: {
      output->count = result.count();
      bool first = true;
      result.ForEachSegment([&](const Value* data, Index len) {
        for (Index i = 0; i < len; ++i) {
          if (first || data[i] < output->min) output->min = data[i];
          if (first || data[i] > output->max) output->max = data[i];
          first = false;
        }
      });
      break;
    }
    case OutputMode::kExists: {
      const Index hits = result.count();
      output->count = std::min(hits, query.limit);
      output->exists = hits >= query.limit;
      break;
    }
  }
}

/// Merges a partial aggregate into `output` — how ShardedEngine combines
/// per-shard answers without merging materialized segments. Requires every
/// partial to follow the QueryOutput conventions above (in particular,
/// kExists counts capped at query.limit, which keeps the merged count
/// well-defined: the capped sum reaches limit iff the true total does).
/// kMaterialize is not merged here; buffer ownership stays with the caller.
inline void MergePartial(const Query& query, const QueryOutput& partial,
                         QueryOutput* output) {
  switch (query.mode) {
    case OutputMode::kMaterialize:
      break;
    case OutputMode::kCount:
      output->count += partial.count;
      break;
    case OutputMode::kSum:
      output->count += partial.count;
      output->sum += partial.sum;
      break;
    case OutputMode::kMinMax:
      if (partial.count > 0) {
        if (output->count == 0) {
          output->min = partial.min;
          output->max = partial.max;
        } else {
          output->min = std::min(output->min, partial.min);
          output->max = std::max(output->max, partial.max);
        }
      }
      output->count += partial.count;
      break;
    case OutputMode::kExists:
      output->count =
          std::min(query.limit, output->count + partial.count);
      output->exists = output->count >= query.limit;
      break;
  }
}

/// Bounding hull [*lo, *hi) of the non-empty ranges in `queries`; false if
/// every range is empty. Lets batch entry points run one pending-update
/// intersection pass for the whole batch.
template <typename QueryContainer>
inline bool QueryHull(const QueryContainer& queries, Value* lo, Value* hi) {
  bool any = false;
  for (const Query& query : queries) {
    if (query.low >= query.high) continue;
    if (!any || query.low < *lo) *lo = query.low;
    if (!any || query.high > *hi) *hi = query.high;
    any = true;
  }
  return any;
}

}  // namespace scrack
