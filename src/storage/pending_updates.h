// Staging area for updates against a cracked column.
//
// Following "Updating a cracked database" (Idreos et al., SIGMOD 2007),
// which the paper reuses for its Fig. 15 experiment: updates are not applied
// eagerly. Inserts and deletes are collected in pending buffers; when a
// query requests a range that intersects a pending update, the qualifying
// updates are merged into the cracker column during that query (the
// merge itself is the Ripple shift implemented by the engines).
#pragma once

#include <algorithm>
#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace scrack {

/// Pending inserts and deletes for one column. Not thread-safe.
///
/// Both pools are read in sorted order, so the hot per-query operation —
/// "does any pending update fall in [lo, hi)?" — is an O(log pending)
/// binary search instead of a full scan, and a take locates its run the
/// same way (the erase still shifts the tail behind the run, but that cost
/// only arises on queries that actually merge updates). Sorting is lazy:
/// staging appends in O(1) (bulk-loading k updates stays O(k)) and the
/// first read after out-of-order staging pays one sort.
class PendingUpdates {
 public:
  /// Stages a value for insertion.
  void StageInsert(Value v) { inserts_.Stage(v); }

  /// Stages a value for deletion. The value is matched against the cracker
  /// column at merge time; deleting a value that never existed surfaces as a
  /// NotFound status from the merge.
  void StageDelete(Value v) { deletes_.Stage(v); }

  Index num_pending_inserts() const {
    return static_cast<Index>(inserts_.values.size());
  }
  Index num_pending_deletes() const {
    return static_cast<Index>(deletes_.values.size());
  }
  bool empty() const {
    return inserts_.values.empty() && deletes_.values.empty();
  }

  /// True if any pending insert or delete has a value in [lo, hi).
  /// Amortized O(log pending): one lower_bound per pool.
  bool IntersectsRange(Value lo, Value hi) const {
    return inserts_.Intersects(lo, hi) || deletes_.Intersects(lo, hi);
  }

  /// Removes and returns all pending inserts with value in [lo, hi), in
  /// ascending value order.
  std::vector<Value> TakeInsertsIn(Value lo, Value hi) {
    return inserts_.TakeIn(lo, hi);
  }

  /// Removes and returns all pending deletes with value in [lo, hi), in
  /// ascending value order.
  std::vector<Value> TakeDeletesIn(Value lo, Value hi) {
    return deletes_.TakeIn(lo, hi);
  }

  /// The pending values, sorted ascending.
  const std::vector<Value>& inserts() const { return inserts_.Sorted(); }
  const std::vector<Value>& deletes() const { return deletes_.Sorted(); }

 private:
  // One staging pool. `values` is sorted whenever `sorted` is true; every
  // read goes through EnsureSorted. Members are mutable so const readers
  // can settle the lazy sort (the class is documented single-threaded).
  struct Pool {
    mutable std::vector<Value> values;
    mutable bool sorted = true;

    void Stage(Value v) {
      if (!values.empty() && v < values.back()) sorted = false;
      values.push_back(v);
    }

    void EnsureSorted() const {
      if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
      }
    }

    const std::vector<Value>& Sorted() const {
      EnsureSorted();
      return values;
    }

    bool Intersects(Value lo, Value hi) const {
      EnsureSorted();
      const auto it = std::lower_bound(values.begin(), values.end(), lo);
      return it != values.end() && *it < hi;
    }

    // The matching values form one contiguous run [lower_bound(lo),
    // lower_bound(hi)): copy it out and erase it. Locating the run is
    // O(log pending); the erase shifts the tail behind it.
    std::vector<Value> TakeIn(Value lo, Value hi) {
      EnsureSorted();
      const auto first = std::lower_bound(values.begin(), values.end(), lo);
      const auto last = std::lower_bound(first, values.end(), hi);
      std::vector<Value> taken(first, last);
      values.erase(first, last);
      return taken;
    }
  };

  Pool inserts_;
  Pool deletes_;
};

}  // namespace scrack
