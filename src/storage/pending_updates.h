// Staging area for updates against a cracked column.
//
// Following "Updating a cracked database" (Idreos et al., SIGMOD 2007),
// which the paper reuses for its Fig. 15 experiment: updates are not applied
// eagerly. Inserts and deletes are collected in pending buffers; when a
// query requests a range that intersects a pending update, the qualifying
// updates are merged into the cracker column during that query (the
// merge itself is the Ripple shift implemented by the engines).
#pragma once

#include <vector>

#include "util/common.h"
#include "util/status.h"

namespace scrack {

/// Pending inserts and deletes for one column. Not thread-safe.
class PendingUpdates {
 public:
  /// Stages a value for insertion.
  void StageInsert(Value v) { inserts_.push_back(v); }

  /// Stages a value for deletion. The value is matched against the cracker
  /// column at merge time; deleting a value that never existed surfaces as a
  /// NotFound status from the merge.
  void StageDelete(Value v) { deletes_.push_back(v); }

  Index num_pending_inserts() const {
    return static_cast<Index>(inserts_.size());
  }
  Index num_pending_deletes() const {
    return static_cast<Index>(deletes_.size());
  }
  bool empty() const { return inserts_.empty() && deletes_.empty(); }

  /// True if any pending insert or delete has a value in [lo, hi).
  bool IntersectsRange(Value lo, Value hi) const {
    for (Value v : inserts_) {
      if (v >= lo && v < hi) return true;
    }
    for (Value v : deletes_) {
      if (v >= lo && v < hi) return true;
    }
    return false;
  }

  /// Removes and returns all pending inserts with value in [lo, hi).
  std::vector<Value> TakeInsertsIn(Value lo, Value hi) {
    return TakeIn(&inserts_, lo, hi);
  }

  /// Removes and returns all pending deletes with value in [lo, hi).
  std::vector<Value> TakeDeletesIn(Value lo, Value hi) {
    return TakeIn(&deletes_, lo, hi);
  }

  const std::vector<Value>& inserts() const { return inserts_; }
  const std::vector<Value>& deletes() const { return deletes_; }

 private:
  static std::vector<Value> TakeIn(std::vector<Value>* pool, Value lo,
                                   Value hi) {
    std::vector<Value> taken;
    size_t keep = 0;
    for (size_t i = 0; i < pool->size(); ++i) {
      Value v = (*pool)[i];
      if (v >= lo && v < hi) {
        taken.push_back(v);
      } else {
        (*pool)[keep++] = v;
      }
    }
    pool->resize(keep);
    return taken;
  }

  std::vector<Value> inserts_;
  std::vector<Value> deletes_;
};

}  // namespace scrack
