// Column: the dense fixed-width array at the heart of a column-store.
//
// Database cracking operates on exactly this representation (paper §2,
// "Column-Stores"): a single attribute stored as a contiguous array that can
// be physically reorganized in place. A cracking engine takes a *copy* of
// the base column (the "cracker column" of Fig. 1) and reorders it; the base
// column itself stays untouched, as in MonetDB.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.h"
#include "util/rng.h"
#include "util/status.h"

namespace scrack {

/// A dense, in-memory, fixed-width column of Values.
class Column {
 public:
  Column() = default;

  /// Takes ownership of `values`.
  explicit Column(std::vector<Value> values) : values_(std::move(values)) {}

  /// The paper's dataset: a uniformly shuffled permutation of the unique
  /// integers [0, n). Deterministic in `seed` (Fisher-Yates driven by Rng).
  static Column UniquePermutation(Index n, uint64_t seed);

  /// n values drawn uniformly from [lo, hi) with repetition. Used by tests
  /// to exercise duplicate handling, which the paper's datasets avoid.
  static Column UniformRandom(Index n, Value lo, Value hi, uint64_t seed);

  Index size() const { return static_cast<Index>(values_.size()); }
  bool empty() const { return values_.empty(); }

  Value* data() { return values_.data(); }
  const Value* data() const { return values_.data(); }

  Value operator[](Index i) const {
    SCRACK_DCHECK(i >= 0 && i < size());
    return values_[static_cast<size_t>(i)];
  }
  Value& operator[](Index i) {
    SCRACK_DCHECK(i >= 0 && i < size());
    return values_[static_cast<size_t>(i)];
  }

  void Append(Value v) { values_.push_back(v); }

  /// Removes the last element. Precondition: not empty.
  Value PopBack() {
    SCRACK_CHECK(!values_.empty());
    Value v = values_.back();
    values_.pop_back();
    return v;
  }

  /// Min / max value present. Status is NotFound on an empty column.
  Status MinMax(Value* min_out, Value* max_out) const;

  std::vector<Value>& values() { return values_; }
  const std::vector<Value>& values() const { return values_; }

 private:
  std::vector<Value> values_;
};

}  // namespace scrack
