// Minimal named-column catalog.
//
// Cracking is a per-attribute technique (paper §2): a query reorganizes only
// the columns it touches. Table is the thin catalog used by the examples to
// hold several attributes of a relation; the adaptive machinery itself lives
// in AdaptiveStore (src/cracking/adaptive_store.h), which binds a cracking
// engine to each attribute on first touch.
#pragma once

#include <map>
#include <string>

#include "storage/column.h"
#include "util/status.h"

namespace scrack {

/// An immutable-schema collection of named columns of equal length.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a column. All columns must have the same number of rows;
  /// the first column added fixes the row count.
  Status AddColumn(const std::string& column_name, Column column);

  /// Looks up a column; nullptr if absent.
  const Column* GetColumn(const std::string& column_name) const;

  Index num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Names of all columns, sorted.
  std::vector<std::string> ColumnNames() const;

 private:
  std::string name_;
  Index num_rows_ = -1;  // -1 until the first column is added
  std::map<std::string, Column> columns_;
};

}  // namespace scrack
