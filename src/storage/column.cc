#include "storage/column.h"

#include <algorithm>

namespace scrack {

Column Column::UniquePermutation(Index n, uint64_t seed) {
  SCRACK_CHECK(n >= 0);
  std::vector<Value> values(static_cast<size_t>(n));
  for (Index i = 0; i < n; ++i) values[static_cast<size_t>(i)] = i;
  Rng rng(seed);
  // Fisher-Yates. std::shuffle is avoided so the permutation is stable
  // across standard library implementations.
  for (Index i = n - 1; i > 0; --i) {
    Index j = static_cast<Index>(rng.Uniform(static_cast<uint64_t>(i) + 1));
    std::swap(values[static_cast<size_t>(i)], values[static_cast<size_t>(j)]);
  }
  return Column(std::move(values));
}

Column Column::UniformRandom(Index n, Value lo, Value hi, uint64_t seed) {
  SCRACK_CHECK(n >= 0);
  SCRACK_CHECK(lo < hi);
  std::vector<Value> values(static_cast<size_t>(n));
  Rng rng(seed);
  for (Index i = 0; i < n; ++i) {
    values[static_cast<size_t>(i)] = rng.UniformValue(lo, hi);
  }
  return Column(std::move(values));
}

Status Column::MinMax(Value* min_out, Value* max_out) const {
  if (values_.empty()) {
    return Status::NotFound("MinMax on empty column");
  }
  auto [min_it, max_it] = std::minmax_element(values_.begin(), values_.end());
  if (min_out != nullptr) *min_out = *min_it;
  if (max_out != nullptr) *max_out = *max_it;
  return Status::OK();
}

}  // namespace scrack
