#include "storage/table.h"

namespace scrack {

Status Table::AddColumn(const std::string& column_name, Column column) {
  if (columns_.count(column_name) > 0) {
    return Status::InvalidArgument("duplicate column: " + column_name);
  }
  if (num_rows_ >= 0 && column.size() != num_rows_) {
    return Status::InvalidArgument(
        "column " + column_name + " has " + std::to_string(column.size()) +
        " rows, table has " + std::to_string(num_rows_));
  }
  if (num_rows_ < 0) num_rows_ = column.size();
  columns_.emplace(column_name, std::move(column));
  return Status::OK();
}

const Column* Table::GetColumn(const std::string& column_name) const {
  auto it = columns_.find(column_name);
  if (it == columns_.end()) return nullptr;
  return &it->second;
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& [name, column] : columns_) names.push_back(name);
  return names;
}

}  // namespace scrack
