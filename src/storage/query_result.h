// QueryResult: what a select operator hands back.
//
// The paper is explicit that the *form* of a result matters for cost
// (§3): cracking and full-index approaches return a view of a contiguous
// qualifying area, while Scan — and the end-pieces of MDD1R — must
// materialize qualifying tuples into a fresh array. QueryResult models both:
// it is an ordered list of segments, each either a borrowed view into the
// cracker column or an owned buffer. Aggregations (count / sum checksum)
// iterate the segments.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/common.h"

namespace scrack {

/// Result of one range-select. Cheap to move. Borrowed views are valid only
/// until the underlying cracker column is next reorganized, matching
/// column-store semantics where a select's output is consumed by the next
/// operator in the same query plan.
class QueryResult {
 public:
  QueryResult() = default;

  QueryResult(const QueryResult&) = delete;
  QueryResult& operator=(const QueryResult&) = delete;
  // Explicit moves so the moved-from result reports count() == 0 rather
  // than the stale cached total of the segments it no longer holds.
  QueryResult(QueryResult&& other) noexcept
      : segments_(std::move(other.segments_)),
        owned_(std::move(other.owned_)),
        total_(std::exchange(other.total_, 0)) {
    other.segments_.clear();
    other.owned_.clear();
  }
  QueryResult& operator=(QueryResult&& other) noexcept {
    if (this != &other) {
      segments_ = std::move(other.segments_);
      owned_ = std::move(other.owned_);
      total_ = std::exchange(other.total_, 0);
      other.segments_.clear();
      other.owned_.clear();
    }
    return *this;
  }

  /// Appends a borrowed view of `len` values starting at `data`. Zero-length
  /// views are accepted and ignored.
  void AddView(const Value* data, Index len) {
    SCRACK_DCHECK(len >= 0);
    if (len > 0) {
      segments_.push_back(Segment{data, len, kBorrowed});
      total_ += len;
    }
  }

  /// Appends an owned buffer of qualifying values (materialized result).
  void AddOwned(std::vector<Value> buffer) {
    if (buffer.empty()) return;
    owned_.push_back(std::move(buffer));
    const std::vector<Value>& stored = owned_.back();
    const Index len = static_cast<Index>(stored.size());
    segments_.push_back(
        Segment{stored.data(), len, static_cast<int>(owned_.size()) - 1});
    total_ += len;
  }

  /// Total number of qualifying tuples. O(1): maintained as segments are
  /// added rather than recomputed per call.
  Index count() const { return total_; }

  /// Sum of all qualifying values; used as an order-insensitive checksum in
  /// tests and benches.
  int64_t Sum() const {
    int64_t sum = 0;
    for (const Segment& seg : segments_) {
      for (Index i = 0; i < seg.len; ++i) sum += seg.data[i];
    }
    return sum;
  }

  /// Copies all qualifying values into one vector (test convenience; this is
  /// NOT on any measured path).
  std::vector<Value> Collect() const {
    std::vector<Value> out;
    out.reserve(static_cast<size_t>(count()));
    for (const Segment& seg : segments_) {
      out.insert(out.end(), seg.data, seg.data + seg.len);
    }
    return out;
  }

  /// Number of segments (views + owned buffers).
  size_t num_segments() const { return segments_.size(); }

  /// Calls fn(data, len) for every segment in order — in-place consumption
  /// (aggregation folds) without copying.
  template <typename Fn>
  void ForEachSegment(Fn&& fn) const {
    for (const Segment& seg : segments_) fn(seg.data, seg.len);
  }

  /// True if any segment is an owned (materialized) buffer.
  bool materialized() const {
    for (const Segment& seg : segments_) {
      if (seg.owned_index != kBorrowed) return true;
    }
    return false;
  }

 private:
  static constexpr int kBorrowed = -1;

  struct Segment {
    const Value* data;
    Index len;
    int owned_index;  // kBorrowed, or index into owned_
  };

  // owned_ uses stable storage: buffers are never mutated after AddOwned, so
  // Segment::data pointers into them stay valid as the deque-like vector of
  // vectors grows (the inner vectors' heap buffers do not move).
  std::vector<Segment> segments_;
  std::vector<std::vector<Value>> owned_;
  Index total_ = 0;  // running count() over all segments
};

}  // namespace scrack
