#include "audit/invariant_auditor.h"

#include <string>

#include "cracking/cracker_column.h"
#include "index/cracker_index.h"

namespace scrack {

namespace {

// SplitMix64 finalizer: the value mixer behind the multiset hash and the
// deterministic sampling streams (never a wall clock, never std::rand —
// audit probes are reproducible given the audit epoch).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::string FingerprintDelta(const MultisetFingerprint& got,
                             const MultisetFingerprint& want) {
  return "count " + std::to_string(got.count) + " vs " +
         std::to_string(want.count) + ", sum " + std::to_string(got.sum) +
         " vs " + std::to_string(want.sum) + ", hash " +
         std::to_string(got.hash) + " vs " + std::to_string(want.hash);
}

}  // namespace

std::string AuditFinding::ToString() const {
  std::string out = "audit";
  if (!context.empty()) out += "[" + context + "]";
  out += " " + rule;
  if (query >= 0) out += " at query " + std::to_string(query);
  if (piece >= 0) out += ", piece " + std::to_string(piece);
  out += ": " + detail;
  return out;
}

void MultisetFingerprint::Add(Value v) {
  ++count;
  sum += static_cast<uint64_t>(v);
  hash += Mix64(static_cast<uint64_t>(v));
}

MultisetFingerprint& MultisetFingerprint::operator+=(
    const MultisetFingerprint& o) {
  count += o.count;
  sum += o.sum;
  hash += o.hash;
  return *this;
}

MultisetFingerprint& MultisetFingerprint::operator-=(
    const MultisetFingerprint& o) {
  count -= o.count;
  sum -= o.sum;
  hash -= o.hash;
  return *this;
}

MultisetFingerprint MultisetFingerprint::Of(const Value* data, Index n) {
  MultisetFingerprint fp;
  for (Index i = 0; i < n; ++i) fp.Add(data[i]);
  return fp;
}

MultisetFingerprint MultisetFingerprint::Of(const std::vector<Value>& values) {
  return Of(values.data(), static_cast<Index>(values.size()));
}

size_t InvariantAuditor::Audit(const CrackerColumn* column,
                               const EngineStats& stats, int64_t calls,
                               const std::string& context,
                               std::vector<AuditFinding>* findings) {
  context_ = context;
  if (calls > 0) calls_seen_ += calls;
  ++audits_;
  const size_t before = findings->size();
  CheckStats(column, stats, calls, findings);
  if (column != nullptr && column->initialized()) {
    CheckWriterTag(*column, findings);
    CheckIndexOrder(*column, findings);
    CheckPartition(*column, findings);
    CheckMultiset(*column, findings);
  }
  last_stats_ = stats;
  return findings->size() - before;
}

// Appends one finding unless the per-engine cap is reached.
#define SCRACK_AUDIT_EMIT(out, rule_id, piece_ordinal, message)       \
  do {                                                                \
    if ((out)->size() < options_.max_findings) {                      \
      AuditFinding finding;                                           \
      finding.rule = (rule_id);                                       \
      finding.query = calls_seen_ - 1;                                \
      finding.piece = (piece_ordinal);                                \
      finding.detail = (message);                                     \
      finding.context = context_;                                     \
      (out)->push_back(std::move(finding));                           \
    }                                                                 \
  } while (0)

void InvariantAuditor::CheckStats(const CrackerColumn* column,
                                  const EngineStats& stats, int64_t calls,
                                  std::vector<AuditFinding>* out) {
  const struct {
    const char* name;
    int64_t was;
    int64_t now;
  } counters[] = {
      {"queries", last_stats_.queries, stats.queries},
      {"tuples_touched", last_stats_.tuples_touched, stats.tuples_touched},
      {"swaps", last_stats_.swaps, stats.swaps},
      {"cracks", last_stats_.cracks, stats.cracks},
      {"materialized", last_stats_.materialized, stats.materialized},
      {"updates_merged", last_stats_.updates_merged, stats.updates_merged},
      {"random_pivots", last_stats_.random_pivots, stats.random_pivots},
      {"aggregates_pushed", last_stats_.aggregates_pushed,
       stats.aggregates_pushed},
      {"parallel_cracks", last_stats_.parallel_cracks, stats.parallel_cracks},
      {"threads_used", last_stats_.threads_used, stats.threads_used},
      {"budget_exhausted", last_stats_.budget_exhausted,
       stats.budget_exhausted},
      {"scan_fallback_tuples", last_stats_.scan_fallback_tuples,
       stats.scan_fallback_tuples},
      {"fan_outs", last_stats_.fan_outs, stats.fan_outs},
      {"nodes_routed", last_stats_.nodes_routed, stats.nodes_routed},
      {"nodes_pruned", last_stats_.nodes_pruned, stats.nodes_pruned},
      {"wire_bytes", last_stats_.wire_bytes, stats.wire_bytes},
      {"node_failures", last_stats_.node_failures, stats.node_failures},
      {"degraded_queries", last_stats_.degraded_queries,
       stats.degraded_queries},
      {"transport_timeouts", last_stats_.transport_timeouts,
       stats.transport_timeouts},
      {"transport_reconnects", last_stats_.transport_reconnects,
       stats.transport_reconnects},
      {"transport_retries", last_stats_.transport_retries,
       stats.transport_retries},
  };
  for (const auto& counter : counters) {
    if (counter.now < counter.was) {
      SCRACK_AUDIT_EMIT(out, "stats-conservation", -1,
                        std::string(counter.name) + " went backwards: " +
                            std::to_string(counter.was) + " -> " +
                            std::to_string(counter.now));
    }
  }
  const int64_t touched_delta =
      stats.tuples_touched - last_stats_.tuples_touched;
  const int64_t swaps_delta = stats.swaps - last_stats_.swaps;
  if (swaps_delta > touched_delta && swaps_delta > 0) {
    SCRACK_AUDIT_EMIT(out, "stats-conservation", -1,
                      "swapped more tuples than touched: +" +
                          std::to_string(swaps_delta) + " swaps vs +" +
                          std::to_string(touched_delta) + " touched");
  }
  if (options_.strict_query_count && calls >= 0 &&
      stats.queries - last_stats_.queries != calls) {
    SCRACK_AUDIT_EMIT(out, "stats-conservation", -1,
                      "queries counter advanced by " +
                          std::to_string(stats.queries - last_stats_.queries) +
                          " across " + std::to_string(calls) +
                          " forwarded call(s)");
  }
  // Budget laws (prog(B,...) engines). deferred_swaps is a gauge, not a
  // counter: it must stay non-negative, drains back to exactly 0 at
  // convergence, and can only be owed by queries that ran out of budget.
  if (stats.deferred_swaps < 0) {
    SCRACK_AUDIT_EMIT(out, "budget-conservation", -1,
                      "deferred_swaps gauge is negative: " +
                          std::to_string(stats.deferred_swaps));
  }
  if (stats.deferred_swaps > 0 && stats.budget_exhausted == 0) {
    SCRACK_AUDIT_EMIT(out, "budget-conservation", -1,
                      "deferred_swaps = " +
                          std::to_string(stats.deferred_swaps) +
                          " owed but no query ever exhausted its budget");
  }
  if (stats.budget_exhausted > 0 && stats.swap_budget == 0) {
    SCRACK_AUDIT_EMIT(out, "budget-conservation", -1,
                      "budget_exhausted = " +
                          std::to_string(stats.budget_exhausted) +
                          " on an engine that publishes no swap budget");
  }
  if (stats.swap_budget > 0 && calls > 0 &&
      swaps_delta > calls * stats.swap_budget) {
    SCRACK_AUDIT_EMIT(out, "budget-conservation", -1,
                      "+" + std::to_string(swaps_delta) + " swaps across " +
                          std::to_string(calls) +
                          " call(s) exceeds the published per-query ceiling " +
                          std::to_string(stats.swap_budget));
  }
  // Route-conservation law (coord(K,...) engines): every dispatched query
  // makes one routing decision per storage node — routed or pruned, never
  // both, never neither. The counters are coordinator-own (nodes never
  // contribute), so the law is exact, not approximate.
  if (stats.cluster_nodes > 0 &&
      stats.nodes_routed + stats.nodes_pruned !=
          stats.fan_outs * stats.cluster_nodes) {
    SCRACK_AUDIT_EMIT(out, "route-conservation", -1,
                      "routed " + std::to_string(stats.nodes_routed) +
                          " + pruned " + std::to_string(stats.nodes_pruned) +
                          " != " + std::to_string(stats.fan_outs) +
                          " fan-out(s) x " +
                          std::to_string(stats.cluster_nodes) + " node(s)");
  }
  if (stats.cluster_nodes == 0 &&
      (stats.fan_outs > 0 || stats.nodes_routed > 0 ||
       stats.nodes_pruned > 0)) {
    SCRACK_AUDIT_EMIT(out, "route-conservation", -1,
                      "routing counters advanced on an engine that "
                      "publishes no cluster size");
  }
  if (stats.degraded_queries > 0 && stats.node_failures == 0) {
    SCRACK_AUDIT_EMIT(out, "route-conservation", -1,
                      "degraded_queries = " +
                          std::to_string(stats.degraded_queries) +
                          " but no node call ever failed");
  }
  // Transport-conservation laws (TcpTransport robustness counters). A
  // retry is an in-call resend, and the transport only resends on a
  // freshly re-established connection — so cumulative retries can never
  // outrun cumulative reconnects. And like the routing counters, only an
  // engine that publishes a cluster size may advance them.
  if (stats.transport_retries > stats.transport_reconnects) {
    SCRACK_AUDIT_EMIT(out, "transport-conservation", -1,
                      "transport_retries = " +
                          std::to_string(stats.transport_retries) +
                          " exceeds transport_reconnects = " +
                          std::to_string(stats.transport_reconnects) +
                          " (a resend must ride a fresh connection)");
  }
  if (stats.cluster_nodes == 0 &&
      (stats.transport_timeouts > 0 || stats.transport_reconnects > 0 ||
       stats.transport_retries > 0)) {
    SCRACK_AUDIT_EMIT(out, "transport-conservation", -1,
                      "transport counters advanced on an engine that "
                      "publishes no cluster size");
  }
  if (stats.parallel_cracks > last_stats_.parallel_cracks &&
      stats.threads_used < 2) {
    SCRACK_AUDIT_EMIT(out, "stats-conservation", -1,
                      "parallel passes recorded with threads_used = " +
                          std::to_string(stats.threads_used));
  }
  if (column != nullptr && column->initialized()) {
    const int64_t cracks_in_index =
        static_cast<int64_t>(column->index().num_cracks());
    if (cracks_in_index > stats.cracks) {
      SCRACK_AUDIT_EMIT(out, "stats-conservation", -1,
                        "index holds " + std::to_string(cracks_in_index) +
                            " cracks but only " +
                            std::to_string(stats.cracks) +
                            " were ever registered");
    }
  }
}

void InvariantAuditor::CheckWriterTag(const CrackerColumn& column,
                                      std::vector<AuditFinding>* out) {
  const int64_t violations = column.writer_tag().violations();
  if (violations > last_tag_violations_) {
    SCRACK_AUDIT_EMIT(
        out, "single-writer", -1,
        std::to_string(violations - last_tag_violations_) +
            " concurrent mutating entr(ies); last conflict: owner thread " +
            std::to_string(column.writer_tag().last_conflict_owner()) +
            ", intruder thread " +
            std::to_string(column.writer_tag().last_conflict_intruder()));
    last_tag_violations_ = violations;
  }
}

void InvariantAuditor::CheckIndexOrder(const CrackerColumn& column,
                                       std::vector<AuditFinding>* out) {
  const CrackerIndex& index = column.index();
  const size_t cracks = index.num_cracks();
  if (index.column_size() != column.size()) {
    SCRACK_AUDIT_EMIT(out, "index-order", -1,
                      "index column size " +
                          std::to_string(index.column_size()) +
                          " != data size " + std::to_string(column.size()));
  }
  if (index.meta_count() != cracks + 1) {
    SCRACK_AUDIT_EMIT(out, "index-order", -1,
                      "metadata slots " + std::to_string(index.meta_count()) +
                          " != pieces " + std::to_string(cracks + 1));
  }
  Index prev_pos = 0;
  for (size_t i = 0; i < cracks; ++i) {
    const Value key = index.crack_key(i);
    const Index pos = index.crack_pos(i);
    if (i > 0 && key <= index.crack_key(i - 1)) {
      SCRACK_AUDIT_EMIT(out, "index-order", static_cast<int64_t>(i),
                        "crack keys not strictly ascending: key[" +
                            std::to_string(i - 1) + "] = " +
                            std::to_string(index.crack_key(i - 1)) +
                            ", key[" + std::to_string(i) + "] = " +
                            std::to_string(key));
      break;
    }
    if (pos < prev_pos || pos > column.size()) {
      SCRACK_AUDIT_EMIT(out, "index-order", static_cast<int64_t>(i),
                        "crack position " + std::to_string(pos) +
                            " out of order (previous " +
                            std::to_string(prev_pos) + ", column size " +
                            std::to_string(column.size()) + ")");
      break;
    }
    prev_pos = pos;
  }
}

void InvariantAuditor::CheckPartition(const CrackerColumn& column,
                                      std::vector<AuditFinding>* out) {
  const Value* data = column.data();
  const bool full = column.size() <= options_.full_check_max_values;
  int64_t ordinal = -1;
  column.index().ForEachPiece([&](const Piece& piece) {
    ++ordinal;
    if (out->size() >= options_.max_findings || piece.size() == 0) return;
    const auto check_at = [&](Index i) {
      const Value v = data[i];
      if (piece.has_lower && v < piece.lower) {
        SCRACK_AUDIT_EMIT(out, "piece-partition", ordinal,
                          "element " + std::to_string(v) + " at position " +
                              std::to_string(i) + " below piece bound " +
                              std::to_string(piece.lower));
        return false;
      }
      if (piece.has_upper && v >= piece.upper) {
        SCRACK_AUDIT_EMIT(out, "piece-partition", ordinal,
                          "element " + std::to_string(v) + " at position " +
                              std::to_string(i) + " not below piece bound " +
                              std::to_string(piece.upper));
        return false;
      }
      return true;
    };
    if (full) {
      for (Index i = piece.begin; i < piece.end; ++i) {
        if (!check_at(i)) return;
      }
      return;
    }
    // Sampled: both boundary elements (the strongest points — they abut
    // the cracks) plus a deterministic SplitMix64 probe stream seeded by
    // (audit epoch, piece ordinal), so repeated audits walk different
    // positions but a given run is exactly reproducible.
    if (!check_at(piece.begin) || !check_at(piece.end - 1)) return;
    uint64_t stream = Mix64(static_cast<uint64_t>(audits_) * 0x51ED2701ULL +
                            static_cast<uint64_t>(ordinal));
    for (int s = 0; s < options_.sample_per_piece; ++s) {
      stream = Mix64(stream);
      const Index i =
          piece.begin +
          static_cast<Index>(stream % static_cast<uint64_t>(piece.size()));
      if (!check_at(i)) return;
    }
  });
}

void InvariantAuditor::CheckMultiset(const CrackerColumn& column,
                                     std::vector<AuditFinding>* out) {
  const bool full = column.size() <= options_.full_check_max_values;
  if (baseline_set_ && !full && audits_ % options_.checksum_period != 0) {
    return;
  }
  // Conservation law: column + pending inserts - pending deletes is a
  // constant multiset once staged-update drift is subtracted. Cracks,
  // progressive passes and Ripple merges may only permute or move values
  // between the column and the pending pools.
  MultisetFingerprint state =
      MultisetFingerprint::Of(column.data(), column.size());
  state += MultisetFingerprint::Of(column.pending().inserts());
  state -= MultisetFingerprint::Of(column.pending().deletes());
  state -= staged_inserts_;
  state += staged_deletes_;
  if (!baseline_set_) {
    baseline_ = state;
    baseline_set_ = true;
    return;
  }
  if (state != baseline_) {
    SCRACK_AUDIT_EMIT(out, "multiset-conservation", -1,
                      "column multiset drifted from baseline: " +
                          FingerprintDelta(state, baseline_));
    // Re-anchor so one corruption reports once, not on every later query.
    baseline_ = state;
  }
}

#undef SCRACK_AUDIT_EMIT

}  // namespace scrack
