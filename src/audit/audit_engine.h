// AuditEngine: a decorator that audits an engine after every call.
//
// Wraps any SelectEngine and, after each successful Select / Execute /
// ExecuteBatch, runs the InvariantAuditor over the inner engine's cracker
// column (when it exposes one via audit_column()) and its stats snapshot.
// Violations become structured AuditFindings; with fail_fast (the default)
// the first finding of a call is also surfaced as an Internal Status, so
// the repro gate and CI exit nonzero on the exact query that corrupted the
// structure.
//
// Composes with the other wrappers through the engine factory:
//   audit(crack)            — audited sequential cracking
//   audit(crack-p4)         — audited intra-query-parallel cracking
//   sharded(4,audit(ddc))   — every shard audited independently
// (`audit(sharded(...))` parses too, but the factory pushes the audit
// inside the shards — ShardedEngine exposes no single column, so the
// outer position could check only stats.)
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "audit/invariant_auditor.h"
#include "cracking/engine.h"

namespace scrack {

class AuditEngine : public SelectEngine {
 public:
  explicit AuditEngine(std::unique_ptr<SelectEngine> inner,
                       const AuditOptions& options = AuditOptions{})
      : inner_(std::move(inner)), options_(options), auditor_(options) {
    SCRACK_CHECK(inner_ != nullptr);
  }

  Status Select(Value low, Value high, QueryResult* result) override {
    SCRACK_RETURN_NOT_OK(inner_->Select(low, high, result));
    return AfterCalls(1);
  }

  Status Execute(const Query& query, QueryOutput* output) override {
    SCRACK_RETURN_NOT_OK(inner_->Execute(query, output));
    return AfterCalls(1);
  }

  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override {
    SCRACK_RETURN_NOT_OK(inner_->ExecuteBatch(queries, outputs));
    return AfterCalls(static_cast<int64_t>(queries.size()));
  }

  Status StageInsert(Value v) override {
    SCRACK_RETURN_NOT_OK(inner_->StageInsert(v));
    auditor_.NoteStagedInsert(v);  // only accepted updates shift the law
    return Status::OK();
  }

  Status StageDelete(Value v) override {
    SCRACK_RETURN_NOT_OK(inner_->StageDelete(v));
    auditor_.NoteStagedDelete(v);
    return Status::OK();
  }

  std::string name() const override {
    return "audit(" + inner_->name() + ")";
  }

  EngineStats CurrentStats() const override { return inner_->CurrentStats(); }

  Status Validate() const override { return inner_->Validate(); }

  const CrackerColumn* audit_column() const override {
    return inner_->audit_column();
  }

  /// Labels subsequent findings with a run context, e.g. "fig02/crack.seq".
  void SetContext(std::string context) { context_ = std::move(context); }

  /// Runs one audit pass outside a query (no forwarded calls — query
  /// accounting is not checked). Used by the repro runner for an
  /// end-of-run sweep and by tests after direct corruption of the inner
  /// engine's structures.
  Status AuditNow() { return AfterCalls(-1); }

  /// Findings so far (capped at options.max_findings).
  const std::vector<AuditFinding>& findings() const { return findings_; }

  /// Total audited forwarded calls.
  int64_t calls_audited() const { return auditor_.calls_seen(); }

  /// The wrapped engine. Tests use this to reach concrete accessors (and
  /// to corrupt structures the audit must then report).
  SelectEngine* inner() { return inner_.get(); }
  const SelectEngine* inner() const { return inner_.get(); }

 private:
  Status AfterCalls(int64_t calls);

  std::unique_ptr<SelectEngine> inner_;
  AuditOptions options_;
  InvariantAuditor auditor_;
  std::string context_;
  std::vector<AuditFinding> findings_;
};

}  // namespace scrack
