// InvariantAuditor: validates the structural invariants of a cracked
// column and its engine statistics after every query.
//
// The repo's differential tests check *answers* after the fact; the
// auditor checks the *structures the answers depend on* at the point of
// mutation, so a corruption is reported on the query that introduced it —
// with the figure/query/piece it happened in — rather than three PRs later
// when an answer finally drifts. Five rule families:
//
//   index-order        the flat CrackerIndex SoA stays strictly key-sorted
//                      with monotone, in-range positions and a metadata
//                      slot per piece;
//   piece-partition    every recorded crack actually partitions its region
//                      (each element within its piece's [lower, upper)
//                      value bounds) — exhaustively at small N,
//                      deterministically sampled above the cutoff;
//   multiset-conservation
//                      cracks only permute: fingerprint(column)
//                      + fingerprint(pending inserts) - fingerprint(pending
//                      deletes) - staged-update drift stays equal to the
//                      baseline captured at initialization;
//   stats-conservation the EngineStats counters obey their laws (all
//                      cumulative counters monotone, swaps <= touched per
//                      step, queries advance one per call, parallel passes
//                      imply threads, registered cracks bound index size);
//   single-writer      the column's WriterTag recorded no concurrent
//                      mutating entries.
//
// The auditor is engine-agnostic: it reads a CrackerColumn (when the
// audited engine exposes one) plus an EngineStats snapshot, and appends
// structured AuditFindings. AuditEngine (audit_engine.h) owns the
// per-query driving.
#pragma once

#include <string>
#include <vector>

#include "audit/audit.h"
#include "cracking/engine.h"

namespace scrack {

class CrackerColumn;

class InvariantAuditor {
 public:
  explicit InvariantAuditor(const AuditOptions& options)
      : options_(options) {}

  /// Folds a staged update into the expected-multiset drift (call on every
  /// StageInsert/StageDelete the audited engine accepts).
  void NoteStagedInsert(Value v) { staged_inserts_.Add(v); }
  void NoteStagedDelete(Value v) { staged_deletes_.Add(v); }

  /// Audits the current state after `calls` more forwarded calls finished
  /// (`calls` < 0: outside a query — strict query accounting is skipped).
  /// `column` may be null (wrapped engine exposes none): only the stats
  /// laws run. Appends findings labelled with `context`; returns how many
  /// were appended.
  size_t Audit(const CrackerColumn* column, const EngineStats& stats,
               int64_t calls, const std::string& context,
               std::vector<AuditFinding>* findings);

  /// Total audited calls so far (the query ordinal of findings).
  int64_t calls_seen() const { return calls_seen_; }

 private:
  void CheckStats(const CrackerColumn* column, const EngineStats& stats,
                  int64_t calls, std::vector<AuditFinding>* out);
  void CheckWriterTag(const CrackerColumn& column,
                      std::vector<AuditFinding>* out);
  void CheckIndexOrder(const CrackerColumn& column,
                       std::vector<AuditFinding>* out);
  void CheckPartition(const CrackerColumn& column,
                      std::vector<AuditFinding>* out);
  void CheckMultiset(const CrackerColumn& column,
                     std::vector<AuditFinding>* out);

  AuditOptions options_;
  int64_t calls_seen_ = 0;
  int64_t audits_ = 0;
  std::string context_;

  EngineStats last_stats_;
  int64_t last_tag_violations_ = 0;

  bool baseline_set_ = false;
  MultisetFingerprint baseline_;
  MultisetFingerprint staged_inserts_;
  MultisetFingerprint staged_deletes_;
};

}  // namespace scrack
