// Structured diagnostics and options for the invariant auditor.
//
// A finding names the rule that fired, where (query ordinal, piece
// ordinal), in what run context (the repro runner labels findings with
// "figure/cell"), and carries a human-readable detail with the offending
// values — enough to reproduce the violation without re-running under a
// debugger.
#pragma once

#include <string>
#include <vector>

#include "util/common.h"

namespace scrack {

/// One invariant violation detected by the auditor.
struct AuditFinding {
  std::string rule;     ///< stable rule id, e.g. "piece-partition"
  QueryId query = -1;   ///< ordinal of the audited call (0-based; -1 n/a)
  int64_t piece = -1;   ///< piece ordinal within the index (-1 n/a)
  std::string detail;   ///< offending values, human-readable
  std::string context;  ///< run label, e.g. "fig02/crack.seq" (may be empty)

  /// "audit[fig02/crack.seq] piece-partition at query 17, piece 3: ..."
  std::string ToString() const;
};

/// Tuning knobs for the auditor. The defaults audit every structural
/// invariant exhaustively at small column sizes and fall back to
/// deterministic sampling / periodic full passes above the cutoff, so
/// audit mode stays usable at bench scale.
struct AuditOptions {
  /// Columns of at most this many values get the full O(n) partition and
  /// multiset checks after every audited call.
  Index full_check_max_values = 128 * 1024;

  /// Above the cutoff: positions probed per piece, drawn from a SplitMix64
  /// stream seeded by (audit epoch, piece ordinal) — deterministic across
  /// runs, different across queries.
  int sample_per_piece = 4;

  /// Above the cutoff: a full multiset-conservation pass every this many
  /// audited calls (the sampled partition probes still run every call).
  int64_t checksum_period = 16;

  /// Surface the first finding of an audited call as an error Status from
  /// Select/Execute/ExecuteBatch (the repro gate exits nonzero on it).
  /// Mutation tests switch this off and inspect findings() instead.
  bool fail_fast = true;

  /// Verify that the inner engine's `queries` counter advances by exactly
  /// the number of forwarded calls. Holds for every factory spec; switch
  /// off when wrapping an engine with bespoke query accounting.
  bool strict_query_count = true;

  /// Findings kept per engine (oldest kept; later ones only counted).
  size_t max_findings = 64;
};

/// Order-independent multiset fingerprint: element count, wrapping value
/// sum, and a wrapping sum of SplitMix64-mixed values. Two multisets are
/// equal iff (count, sum, hash) match, up to 2^-64-grade hash collisions —
/// and the components are additive, so conservation laws over
/// column/pending/staged pools are linear equations over fingerprints.
struct MultisetFingerprint {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t hash = 0;

  void Add(Value v);
  MultisetFingerprint& operator+=(const MultisetFingerprint& o);
  MultisetFingerprint& operator-=(const MultisetFingerprint& o);
  bool operator==(const MultisetFingerprint& o) const {
    return count == o.count && sum == o.sum && hash == o.hash;
  }
  bool operator!=(const MultisetFingerprint& o) const { return !(*this == o); }

  static MultisetFingerprint Of(const Value* data, Index n);
  static MultisetFingerprint Of(const std::vector<Value>& values);
};

}  // namespace scrack
