// WriterTag: a lightweight single-writer race detector for CrackerColumn.
//
// In cracking, *every read is a write*: a Select physically reorganizes the
// column, so the concurrency contract of every CrackerColumn is single-
// writer (wrappers like ThreadSafeEngine and ShardedEngine provide the
// exclusion; pool workers running whole inner engines take it over shard
// locks). TSan verifies that contract in one CI leg, but only when the
// racing schedules actually happen under instrumentation. WriterTag is the
// always-on complement: every mutating CrackerColumn entry point tags
// itself with the current thread, and a second thread entering while the
// first is still inside is recorded as a violation — one CAS per entry, no
// locks, no TSan required. Violations are *recorded, not fatal* so the
// InvariantAuditor can surface them as structured diagnostics (and so a
// deliberate violation in a test cannot abort the process).
//
// Reentrancy: the owning thread may nest entry points freely
// (SelectWithPolicy -> CrackBound -> MergePendingIn ...); a depth counter —
// only ever touched by the owning thread while it holds the tag — tracks
// the nesting. ThreadPool workers are full citizens: a worker that runs a
// shard's inner engine acquires and releases the tag like any other thread,
// and the intra-query parallel kernels never re-enter the column's entry
// points (the fan-out happens *inside* one held entry), so a correctly
// synchronized program never reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/common.h"

namespace scrack {

class WriterTag {
 public:
  /// Number of conflicting entries observed so far (0 in a correctly
  /// synchronized program).
  int64_t violations() const {
    return violations_.load(std::memory_order_acquire);
  }

  /// Owner/intruder ids of the most recent violation (valid when
  /// violations() > 0). Ids are hashes of std::thread::id — stable within
  /// a run, meaningful only for "same thread or not" and diagnostics.
  uint64_t last_conflict_owner() const {
    return last_owner_.load(std::memory_order_acquire);
  }
  uint64_t last_conflict_intruder() const {
    return last_intruder_.load(std::memory_order_acquire);
  }

  /// Entry protocol of a mutating path. Returns true when this thread now
  /// holds (or already held) the tag; false when another thread holds it —
  /// the conflict is recorded and the caller proceeds anyway (the tag
  /// detects, it does not lock).
  bool Enter() {
    const uint64_t self = SelfId();
    uint64_t expected = 0;
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      depth_ = 1;
      return true;
    }
    if (expected == self) {
      ++depth_;  // nested entry by the owner
      return true;
    }
    last_owner_.store(expected, std::memory_order_release);
    last_intruder_.store(self, std::memory_order_release);
    violations_.fetch_add(1, std::memory_order_acq_rel);
    return false;
  }

  /// Exit protocol; only meaningful when the matching Enter returned true.
  void Exit() {
    if (--depth_ == 0) {
      owner_.store(0, std::memory_order_release);
    }
  }

  /// Nonzero hash of the calling thread's id.
  static uint64_t SelfId() {
    static thread_local uint64_t id = [] {
      const uint64_t h = static_cast<uint64_t>(
          std::hash<std::thread::id>{}(std::this_thread::get_id()));
      return h == 0 ? uint64_t{1} : h;
    }();
    return id;
  }

 private:
  std::atomic<uint64_t> owner_{0};
  int64_t depth_ = 0;  // guarded by ownership of owner_
  std::atomic<int64_t> violations_{0};
  std::atomic<uint64_t> last_owner_{0};
  std::atomic<uint64_t> last_intruder_{0};
};

/// RAII guard for one mutating entry point. Exit only runs when the Enter
/// actually took or nested ownership — a conflicting (detected) entry must
/// not release the real owner's tag on scope exit.
class WriterGuard {
 public:
  explicit WriterGuard(WriterTag* tag) : tag_(tag), held_(tag->Enter()) {}
  ~WriterGuard() {
    if (held_) tag_->Exit();
  }

  WriterGuard(const WriterGuard&) = delete;
  WriterGuard& operator=(const WriterGuard&) = delete;

 private:
  WriterTag* tag_;
  bool held_;
};

}  // namespace scrack
