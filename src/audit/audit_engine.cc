#include "audit/audit_engine.h"

namespace scrack {

Status AuditEngine::AfterCalls(int64_t calls) {
  const size_t appended = auditor_.Audit(
      inner_->audit_column(), inner_->CurrentStats(), calls, context_,
      &findings_);
  if (appended > 0 && options_.fail_fast) {
    return Status::Internal(
        findings_[findings_.size() - appended].ToString());
  }
  return Status::OK();
}

}  // namespace scrack
