// ScanEngine: the no-index baseline.
//
// Always scans the full column and materializes qualifying tuples into a
// fresh array — the paper stresses that Scan, unlike cracking/sort, cannot
// return a view (§3). Its stable cost is the upper bound adaptive indexing
// must not exceed while adapting.
#pragma once

#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class ScanEngine : public SelectEngine {
 public:
  /// Copies the base column so updates can be applied; the copy happens at
  /// construction and is not part of any query's cost.
  ScanEngine(const Column* base, const EngineConfig& config);

  /// Full pass over the column through the dispatched FilterInto kernel:
  /// counts qualifying tuples first, then materializes into an
  /// exactly-sized buffer (vectorized when AVX2 is available).
  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown: one mode-specific fold kernel per query
  /// (cracking/kernel.h — SIMD lanes when available), never allocating an
  /// owned result buffer. kExists stops scanning at the `limit`-th hit
  /// (LIMIT-k early termination), touching only the prefix it examined;
  /// the vectorized fold early-exits per block with scalar-exact counters.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override { return "scan"; }

  /// Scan has no deferred machinery: updates apply immediately.
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;

 private:
  std::vector<Value> data_;
};

}  // namespace scrack
