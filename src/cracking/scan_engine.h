// ScanEngine: the no-index baseline.
//
// Always scans the full column and materializes qualifying tuples into a
// fresh array — the paper stresses that Scan, unlike cracking/sort, cannot
// return a view (§3). Its stable cost is the upper bound adaptive indexing
// must not exceed while adapting.
#pragma once

#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class ScanEngine : public SelectEngine {
 public:
  /// Copies the base column so updates can be applied; the copy happens at
  /// construction and is not part of any query's cost.
  ScanEngine(const Column* base, const EngineConfig& config);

  Status Select(Value low, Value high, QueryResult* result) override;
  std::string name() const override { return "scan"; }

  /// Scan has no deferred machinery: updates apply immediately.
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;

 private:
  std::vector<Value> data_;
};

}  // namespace scrack
