// ScanEngine: the no-index baseline.
//
// Always scans the full column and materializes qualifying tuples into a
// fresh array — the paper stresses that Scan, unlike cracking/sort, cannot
// return a view (§3). Its stable cost is the upper bound adaptive indexing
// must not exceed while adapting.
#pragma once

#include <vector>

#include "cracking/engine.h"
#include "storage/column.h"

namespace scrack {

class ScanEngine : public SelectEngine {
 public:
  /// Copies the base column so updates can be applied; the copy happens at
  /// construction and is not part of any query's cost.
  ScanEngine(const Column* base, const EngineConfig& config);

  Status Select(Value low, Value high, QueryResult* result) override;

  /// Aggregate pushdown: folds count/sum/min/max in the same single
  /// short-circuiting pass Select uses, but never allocates an owned result
  /// buffer. kExists stops scanning at the `limit`-th hit (LIMIT-k early
  /// termination), touching only the prefix it examined.
  Status Execute(const Query& query, QueryOutput* output) override;

  std::string name() const override { return "scan"; }

  /// Scan has no deferred machinery: updates apply immediately.
  Status StageInsert(Value v) override;
  Status StageDelete(Value v) override;

 private:
  std::vector<Value> data_;
};

}  // namespace scrack
