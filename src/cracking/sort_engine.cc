#include "cracking/sort_engine.h"

#include <algorithm>

namespace scrack {

SortEngine::SortEngine(const Column* base, const EngineConfig& config)
    : base_(base) {
  (void)config;
  SCRACK_CHECK(base_ != nullptr);
}

void SortEngine::EnsureSorted() {
  if (sorted_) return;
  data_.assign(base_->data(), base_->data() + base_->size());
  data_.insert(data_.end(), pre_init_inserts_.begin(),
               pre_init_inserts_.end());
  std::sort(data_.begin(), data_.end());
  for (Value v : pre_init_deletes_) {
    auto it = std::lower_bound(data_.begin(), data_.end(), v);
    if (it != data_.end() && *it == v) data_.erase(it);
  }
  pre_init_inserts_.clear();
  pre_init_deletes_.clear();
  stats_.tuples_touched += static_cast<int64_t>(data_.size());
  sorted_ = true;
}

Status SortEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  EnsureSorted();
  const auto begin =
      std::lower_bound(data_.begin(), data_.end(), low) - data_.begin();
  const auto end =
      std::lower_bound(data_.begin(), data_.end(), high) - data_.begin();
  if (end > begin) {
    result->AddView(data_.data() + begin, end - begin);
  }
  return Status::OK();
}

Status SortEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  ++stats_.queries;
  EnsureSorted();
  const Index begin = static_cast<Index>(
      std::lower_bound(data_.begin(), data_.end(), query.low) -
      data_.begin());
  const Index end = static_cast<Index>(
      std::lower_bound(data_.begin(), data_.end(), query.high) -
      data_.begin());
  if (query.mode == OutputMode::kMinMax && end > begin) {
    // Sorted run: the endpoints are the extrema — no scan at all.
    output->count = end - begin;
    output->min = data_[static_cast<size_t>(begin)];
    output->max = data_[static_cast<size_t>(end - 1)];
    stats_.tuples_touched += 2;
  } else {
    AggregateRegion(data_.data(), begin, end, query, output,
                    &stats_.tuples_touched);
  }
  ++stats_.aggregates_pushed;
  return Status::OK();
}

Status SortEngine::StageInsert(Value v) {
  if (!sorted_) {
    pre_init_inserts_.push_back(v);
    return Status::OK();
  }
  auto it = std::upper_bound(data_.begin(), data_.end(), v);
  data_.insert(it, v);
  ++stats_.updates_merged;
  return Status::OK();
}

Status SortEngine::StageDelete(Value v) {
  if (!sorted_) {
    pre_init_deletes_.push_back(v);
    return Status::OK();
  }
  auto it = std::lower_bound(data_.begin(), data_.end(), v);
  if (it == data_.end() || *it != v) {
    return Status::NotFound("delete of absent value " + std::to_string(v));
  }
  data_.erase(it);
  ++stats_.updates_merged;
  return Status::OK();
}

Status SortEngine::Validate() const {
  if (sorted_ && !std::is_sorted(data_.begin(), data_.end())) {
    return Status::Internal("sorted column lost sortedness");
  }
  return Status::OK();
}

}  // namespace scrack
