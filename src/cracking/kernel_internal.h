// Shared internals of the predicated and AVX2 kernel translation units.
//
// Everything here is inline and branch-free so both TUs stamp out the exact
// same element-level behavior: the AVX2 kernels use these loops for their
// scalar tails, which is one of the two ingredients (with the deterministic
// layout contract, kernel.h) that make dispatch bit-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/common.h"

namespace scrack {
namespace kernel_internal {

/// Extra writable elements the AVX2 kernels require beyond the logical size
/// of an output region: full-vector stores may spill up to one vector of
/// garbage lanes past the last valid element (always overwritten or
/// trimmed before anything reads them).
constexpr Index kSimdSlack = 8;

/// Sizes a scratch vector for a request of `n` elements. Grows on demand;
/// shrinks when the request is under a quarter of capacity, so the
/// column-sized buffer a first cold-column crack allocates is released
/// once the index converges to small pieces (piece sizes only shrink, so
/// this doesn't thrash).
inline Value* SizedScratch(std::vector<Value>& scratch, Index n) {
  const size_t need = static_cast<size_t>(n);
  if (scratch.size() < need) {
    scratch.resize(need);
  } else if (scratch.size() / 4 > need + 4096) {
    std::vector<Value>(need).swap(scratch);
  }
  return scratch.data();
}

/// Per-thread scratch for out-of-place partitioning, reused across queries
/// instead of reallocating per call (each pool/shard thread gets its own,
/// so the sharded and threadsafe engines stay race-free).
inline Value* MainScratch(Index n) {
  thread_local std::vector<Value> scratch;
  return SizedScratch(scratch, n);
}

/// Second per-thread scratch for the middle region of CrackInThree.
inline Value* MidScratch(Index n) {
  thread_local std::vector<Value> scratch;
  return SizedScratch(scratch, n);
}

/// Branch-free three-way partition step: < lo_v to scratch front (scan
/// order, cursor *a), >= hi_v to scratch back (reversed scan order, cursor
/// *c_hi exclusive), the rest to mid front (scan order, cursor *b).
inline void PartitionTailThreeWay(const Value* data, Index begin, Index end,
                                  Value lo_v, Value hi_v, Value* scratch,
                                  Value* mid, Index* a, Index* c_hi,
                                  Index* b) {
  Index av = *a;
  Index ch = *c_hi;
  Index bv = *b;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    const bool is_a = v < lo_v;
    const bool is_c = v >= hi_v;
    Value* base = (!is_a && !is_c) ? mid : scratch;
    const Index idx = is_a ? av : (is_c ? ch - 1 : bv);
    base[idx] = v;
    av += is_a ? 1 : 0;
    ch -= is_c ? 1 : 0;
    bv += (!is_a && !is_c) ? 1 : 0;
  }
  *a = av;
  *c_hi = ch;
  *b = bv;
}

/// Branch-free filtered append: writes every qualifying element of
/// [begin, end) at out[*cursor...] in scan order. `out` must have one
/// element of slack past the expected hit count (the unconditional store).
inline void FilterTail(const Value* data, Index begin, Index end, Value qlo,
                       Value qhi, Value* out, Index* cursor) {
  Index c = *cursor;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    const bool hit = qlo <= v && v < qhi;
    out[c] = v;
    c += hit ? 1 : 0;
  }
  *cursor = c;
}

/// Branch-free count of qualifying elements in [begin, end).
inline Index CountTail(const Value* data, Index begin, Index end, Value qlo,
                       Value qhi) {
  Index count = 0;
  for (Index i = begin; i < end; ++i) {
    const Value v = data[i];
    count += (qlo <= v && v < qhi) ? 1 : 0;
  }
  return count;
}

/// Elements per side-block of the in-place blocked partition (fits a
/// uint8_t offset; two blocks stay L1-resident).
constexpr Index kPartitionBlock = 128;

/// In-place blocked two-way partition (the BlockQuicksort scheme): scan a
/// block from each end collecting the *offsets* of misplaced elements with
/// a branch-free cursor, then swap misplaced pairs across the blocks, and
/// finish the sub-2-block remainder with a predicated two-cursor pass.
/// In-place means half the memory traffic of the out-of-place scheme, which
/// is what decides throughput once the piece exceeds the cache.
///
/// The gather functors fill `out` with the ascending offsets of elements
/// that are >= pivot (gather_ge) or < pivot (gather_lt) within one block of
/// kPartitionBlock elements, returning the count; `out` has 8 bytes of
/// slack for word-at-a-time writers. The swap sequence — and therefore the
/// final layout — depends only on the offset lists, so any two gather
/// implementations that produce the same lists (scalar predicated, AVX2
/// movemask) yield bit-identical partitions. That is the dispatch contract.
///
/// Returns the split position; adds the element exchanges performed to
/// *swaps (self-swaps in the compaction step excluded).
template <typename GatherGe, typename GatherLt>
inline Index BlockPartitionTwoWay(Value* data, Index begin, Index end,
                                  Value pivot, int64_t* swaps,
                                  GatherGe gather_ge, GatherLt gather_lt) {
  constexpr Index B = kPartitionBlock;
  Index l = begin;
  Index r = end;
  int nl = 0;
  int nr = 0;
  int sl = 0;
  int sr = 0;
  uint8_t left_off[B + 8];
  uint8_t right_off[B + 8];
  int64_t exchanges = 0;
  while (r - l > 2 * B) {
    if (nl == 0) {
      sl = 0;
      nl = gather_ge(data + l, pivot, left_off);
    }
    if (nr == 0) {
      sr = 0;
      nr = gather_lt(data + r - B, pivot, right_off);
    }
    const int m = nl < nr ? nl : nr;
    for (int t = 0; t < m; ++t) {
      std::swap(data[l + left_off[sl + t]], data[r - B + right_off[sr + t]]);
    }
    exchanges += m;
    nl -= m;
    nr -= m;
    sl += m;
    sr += m;
    if (nl == 0) l += B;
    if (nr == 0) r -= B;
  }
  // At most one side has leftover offsets (the swap loop zeroes the
  // smaller side and only zeroed sides advance). Compact the leftover
  // misplaced elements against the inner edge of their block so the
  // remainder is one contiguous unpartitioned region.
  Index region_lo = l;
  Index region_hi = r;
  if (nl > 0) {
    for (int t = nl - 1; t >= 0; --t) {
      const Index from = l + left_off[sl + t];
      const Index to = l + B - static_cast<Index>(nl - t);
      if (from != to) {
        std::swap(data[from], data[to]);
        ++exchanges;
      }
    }
    region_lo = l + B - nl;
  }
  if (nr > 0) {
    for (int t = 0; t < nr; ++t) {
      const Index from = r - B + right_off[sr + t];
      const Index to = r - B + t;
      if (from != to) {
        std::swap(data[from], data[to]);
        ++exchanges;
      }
    }
    region_hi = r - B + nr;
  }
  // Predicated two-cursor finish (exact Hoare layout on the remainder,
  // which is the whole input when n <= 2 blocks).
  Index left = region_lo;
  Index right = region_hi - 1;
  while (left <= right) {
    const Value a = data[left];
    const Value b = data[right];
    const bool l_ok = a < pivot;
    const bool r_ok = b >= pivot;
    const bool exchange = !l_ok && !r_ok;
    data[left] = exchange ? b : a;
    data[right] = exchange ? a : b;
    left += (l_ok || exchange) ? 1 : 0;
    right -= (r_ok || exchange) ? 1 : 0;
    exchanges += exchange ? 1 : 0;
  }
  *swaps += exchanges;
  return left;
}

/// Shared blocked early-exit scan behind CountPrefixHits: counts
/// qualifying hits per block with `count_range(data, begin, end)` until the
/// block containing the limit-th hit, then re-scans that block with the
/// exact scalar semantics so `examined` stops at the limit-th hit. The
/// result is independent of the block size and of the counting primitive,
/// which is how the predicated and AVX2 variants stay bit-identical.
template <typename CountRange>
inline void BlockedPrefixHits(const Value* data, Index begin, Index end,
                              Value qlo, Value qhi, Index limit, Index* hits,
                              int64_t* examined, CountRange count_range) {
  *hits = 0;
  *examined = 0;
  if (limit <= 0) {
    // The scalar loop never satisfies ++hits == limit: it scans everything.
    *hits = count_range(data, begin, end);
    *examined = end - begin;
    return;
  }
  constexpr Index kBlock = 256;
  Index i = begin;
  while (i < end) {
    const Index block_end = i + kBlock < end ? i + kBlock : end;
    const Index block_hits = count_range(data, i, block_end);
    if (*hits + block_hits >= limit) {
      for (Index j = i; j < block_end; ++j) {
        ++*examined;
        const Value v = data[j];
        if (qlo <= v && v < qhi && ++*hits == limit) return;
      }
      SCRACK_CHECK(false);  // block_hits promised the limit-th hit
    }
    *hits += block_hits;
    *examined += block_end - i;
    i = block_end;
  }
}

/// Hoare-equivalent exchange count for a two-way partition of the original
/// (pre-partition) data: the number of elements >= pivot in the original
/// prefix of length `split_len`. This is exactly how many swaps the scalar
/// two-cursor kernel performs, so the out-of-place kernels report the same
/// KernelCounters::swaps the seed kernels did.
inline int64_t HoareSwapCount(const Value* data, Index begin, Index split_len,
                              Value pivot) {
  int64_t k = 0;
  for (Index i = begin; i < begin + split_len; ++i) {
    k += (data[i] >= pivot) ? 1 : 0;
  }
  return k;
}

}  // namespace kernel_internal
}  // namespace scrack
