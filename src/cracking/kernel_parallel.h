// Parallel partition kernels: multi-threaded CrackInTwo / CrackInThree /
// FilterInto / fold kernels for the large pieces a cold column's first few
// queries sweep.
//
// The cracking engines pay almost their entire cost up front — the first
// query partitions the whole column, the next few partition near-whole
// pieces — yet the PR 3 SIMD kernels still run those sweeps on one core.
// These kernels spread one partition over every core via a two-pass scheme:
//
//   pass 1  per-chunk counting. The region is cut into fixed cache-sized
//           chunks (kParallelChunkValues, independent of the thread count)
//           and each chunk's side counts are computed with the dispatched
//           AVX2/predicated CountInRange fold.
//   prefix  an exclusive prefix sum over the chunk counts assigns every
//           chunk a private destination range per side.
//   pass 2  parallel scatter. Each chunk partitions itself into its
//           destination ranges with the PR 3 branch-free inner loops
//           (kernel_internal::PartitionTailThreeWay / FilterTail), then the
//           result is copied back in parallel.
//
// Layout contract — the property every test and bench gates on: all
// destinations are derived from the chunk index and the data alone, never
// from thread scheduling, so the output is **deterministic and identical
// for every thread count** (including the inline ctx.pool == nullptr
// path) and for both SIMD dispatch tiers. Concretely:
//
//   ParallelCrackInThree   bit-identical to the sequential dispatched
//                          CrackInThree: below-lo in scan order, middle in
//                          scan order, at-or-above-hi in reversed scan
//                          order; same split pair, same touched/swap
//                          counters (Hoare-equivalent swaps).
//   ParallelCrackInTwo     out-of-place contract: below-pivot in scan
//                          order, at-or-above in reversed scan order. Same
//                          split, multiset, and touched as the sequential
//                          dispatched kernel; swaps are Hoare-equivalent
//                          (the sequential in-place blocked kernel reports
//                          its actual exchanges, which track the Hoare
//                          count to within a block).
//   ParallelCrackInTwoInPlace
//                          memory-constrained variant: each chunk is
//                          partitioned in place with the dispatched
//                          CrackInTwo, then a fix-up pass swaps the
//                          misplaced elements across the global split. No
//                          scratch column, at the price of a sequential
//                          fix-up. Layout depends only on the fixed chunk
//                          geometry — still thread-count-invariant.
//   ParallelFilterInto,    exactly the sequential results (scan order /
//   Parallel folds         the same scalars), computed from per-chunk
//                          partials merged in chunk order.
//
// Thread-safety: pass 1 writes disjoint per-chunk count slots, pass 2
// writes disjoint destination ranges; the ParallelFor barrier between the
// passes publishes everything. No locks, no atomics beyond the work
// counter.
#pragma once

#include <utility>
#include <vector>

#include "cracking/kernel.h"
#include "parallel/thread_pool.h"
#include "util/common.h"

namespace scrack {

/// Elements per parallel chunk (64 Ki values = 512 KiB: streams through L2
/// while giving a 100M-element first touch ~1.5k chunks to balance).
/// Fixed — never derived from the thread count — so layouts cannot depend
/// on how many threads ran.
constexpr Index kParallelChunkValues = Index{1} << 16;

/// How a parallel kernel invocation fans out. Default-constructed context
/// runs inline (single thread) but still through the chunked two-pass
/// scheme, so the layout matches any parallel run bit for bit.
struct ParallelContext {
  ThreadPool* pool = nullptr;  ///< null: run every chunk on the caller
  int max_concurrency = 1;     ///< cap on threads used (caller included)
};

/// Threads a kernel invocation over `n` elements will actually use: bounded
/// by the context, the pool width, and the chunk count. Engines report this
/// as EngineStats::threads_used.
int EffectiveConcurrency(const ParallelContext& ctx, Index n);

/// Two-way crack of [begin, end) around `pivot`; returns the split. Same
/// contract as CrackInTwo (kernel.h) with the out-of-place layout described
/// above.
Index ParallelCrackInTwo(Value* data, Index begin, Index end, Value pivot,
                         const ParallelContext& ctx,
                         KernelCounters* counters);

/// In-place variant: no column-sized scratch. See the layout note above.
Index ParallelCrackInTwoInPlace(Value* data, Index begin, Index end,
                                Value pivot, const ParallelContext& ctx,
                                KernelCounters* counters);

/// Three-way crack of [begin, end) for [lo, hi); returns (p1, p2).
/// Bit-identical to the sequential dispatched CrackInThree.
std::pair<Index, Index> ParallelCrackInThree(Value* data, Index begin,
                                             Index end, Value lo, Value hi,
                                             const ParallelContext& ctx,
                                             KernelCounters* counters);

/// Filtered materialization, identical output (scan order) to FilterInto.
void ParallelFilterInto(const Value* data, Index begin, Index end, Value qlo,
                        Value qhi, std::vector<Value>* out,
                        const ParallelContext& ctx, KernelCounters* counters);

/// Fold kernels over [begin, end): per-chunk partials computed with the
/// dispatched folds, merged in chunk order. Results equal the sequential
/// folds exactly (int64 wrap-around addition is associative and
/// commutative, min/max merges are order-free).
Index ParallelCountInRange(const Value* data, Index begin, Index end,
                           Value qlo, Value qhi, const ParallelContext& ctx);
RangeSum ParallelSumInRange(const Value* data, Index begin, Index end,
                            Value qlo, Value qhi, const ParallelContext& ctx);
RangeMinMax ParallelMinMaxInRange(const Value* data, Index begin, Index end,
                                  Value qlo, Value qhi,
                                  const ParallelContext& ctx);

}  // namespace scrack
