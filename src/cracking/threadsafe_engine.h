// ThreadSafeEngine: concurrency control for adaptive indexing (paper §6).
//
// "The challenge with concurrent queries is that the physical
// reorganizations they incur have to be synchronized." In cracking, *every
// read is a write*: a select physically reorganizes the column. The
// correct baseline is therefore an exclusive lock around Select — which is
// what this adapter provides over any SelectEngine — with one important
// refinement: results are *materialized under the lock*. A borrowed view
// into the cracker column would be invalidated the moment another thread's
// query re-cracks the column, so the adapter deep-copies qualifying tuples
// before releasing the lock. That cost is the documented price of
// concurrency here, exactly the trade-off the paper defers to future work
// (finer-grained piece locking).
#pragma once

#include <memory>
#include <mutex>

#include "cracking/engine.h"

namespace scrack {

class ThreadSafeEngine : public SelectEngine {
 public:
  explicit ThreadSafeEngine(std::unique_ptr<SelectEngine> inner)
      : inner_(std::move(inner)) {
    SCRACK_CHECK(inner_ != nullptr);
  }

  Status Select(Value low, Value high, QueryResult* result) override {
    std::lock_guard<std::mutex> lock(mutex_);
    QueryResult unsafe;
    SCRACK_RETURN_NOT_OK(inner_->Select(low, high, &unsafe));
    // Deep-copy while still holding the lock: views into the inner
    // engine's column are only valid until the next reorganization.
    result->AddOwned(unsafe.Collect());
    return Status::OK();
  }

  std::string name() const override {
    return "threadsafe(" + inner_->name() + ")";
  }

  Status StageInsert(Value v) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StageInsert(v);
  }

  Status StageDelete(Value v) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StageDelete(v);
  }

  Status Validate() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Validate();
  }

  /// Stats of the wrapped engine (snapshot under the lock).
  EngineStats InnerStats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->stats();
  }

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<SelectEngine> inner_;
};

}  // namespace scrack
