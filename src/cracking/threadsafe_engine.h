// ThreadSafeEngine: concurrency control for adaptive indexing (paper §6).
//
// "The challenge with concurrent queries is that the physical
// reorganizations they incur have to be synchronized." In cracking, *every
// read is a write*: a select physically reorganizes the column. The
// correct baseline is therefore an exclusive lock around Select — which is
// what this adapter provides over any SelectEngine — with one important
// refinement: results are *materialized under the lock*. A borrowed view
// into the cracker column would be invalidated the moment another thread's
// query re-cracks the column, so the adapter deep-copies qualifying tuples
// before releasing the lock. That cost is the documented price of
// concurrency here, exactly the trade-off the paper defers to future work
// (finer-grained piece locking).
#pragma once

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "cracking/engine.h"

namespace scrack {

class ThreadSafeEngine : public SelectEngine {
 public:
  explicit ThreadSafeEngine(std::unique_ptr<SelectEngine> inner)
      : inner_(std::move(inner)) {
    SCRACK_CHECK(inner_ != nullptr);
  }

  Status Select(Value low, Value high, QueryResult* result) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return SelectLocked(low, high, result);
  }

  /// Aggregate outputs carry no pointers into the inner column, so they
  /// pass through without the materialize deep copy — the lock is the only
  /// concurrency cost of an aggregate query here.
  Status Execute(const Query& query, QueryOutput* output) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return ExecuteLocked(query, output);
  }

  /// One lock acquisition for the whole batch. An aggregate-only batch is
  /// forwarded wholesale, so the inner engine's own batch amortizations
  /// (pending-update hull merge) apply too.
  ///
  /// Batches with kMaterialize queries also take the inner batch path when
  /// the inner engine owns a single cracker column (audit_column() !=
  /// nullptr), with every materialize result deep-copied once *after* the
  /// batch. That is sound because of the multiset-stability rule: after
  /// PrepareBatch has merged the batch hull's staged updates (before the
  /// first query), cracks only permute elements *within* pieces — nothing
  /// crosses a crack position and data_ never reallocates mid-batch — so a
  /// view captured by query i still spans exactly its qualifying multiset
  /// when the batch ends, merely in a possibly different order. Engines
  /// without a cracker column (hybrids extract partitions out of the data;
  /// scan/sort are view-stable but report no column) keep the conservative
  /// copy-before-next-crack loop.
  Status ExecuteBatch(const std::vector<Query>& queries,
                      std::vector<QueryOutput>* outputs) override {
    if (outputs == nullptr) {
      return Status::InvalidArgument("null batch outputs");
    }
    SCRACK_RETURN_NOT_OK(CheckBatch(queries));
    std::lock_guard<std::mutex> lock(mutex_);
    bool any_materialize = false;
    for (const Query& query : queries) {
      if (query.mode == OutputMode::kMaterialize) any_materialize = true;
    }
    if (!any_materialize) return inner_->ExecuteBatch(queries, outputs);
    if (inner_->audit_column() != nullptr) {
      SCRACK_RETURN_NOT_OK(inner_->ExecuteBatch(queries, outputs));
      for (size_t i = 0; i < queries.size(); ++i) {
        if (queries[i].mode != OutputMode::kMaterialize) continue;
        QueryResult owned;
        owned.AddOwned((*outputs)[i].result.Collect());
        (*outputs)[i].result = std::move(owned);
      }
      return Status::OK();
    }
    outputs->clear();
    outputs->resize(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCRACK_RETURN_NOT_OK(ExecuteLocked(queries[i], &(*outputs)[i]));
    }
    return Status::OK();
  }

  std::string name() const override {
    return "threadsafe(" + inner_->name() + ")";
  }

  Status StageInsert(Value v) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StageInsert(v);
  }

  Status StageDelete(Value v) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->StageDelete(v);
  }

  Status Validate() const override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->Validate();
  }

  /// Stats of the wrapped engine (snapshot under the lock).
  EngineStats InnerStats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_->stats();
  }

  /// The meaningful counters live on the wrapped engine; the outer stats_
  /// stays untouched (see InnerStats).
  EngineStats CurrentStats() const override { return InnerStats(); }

 private:
  // Bodies of Select/Execute with mutex_ already held (the mutex is not
  // recursive, so ExecuteBatch must not re-enter the public entry points).
  Status SelectLocked(Value low, Value high, QueryResult* result) {
    QueryResult unsafe;
    SCRACK_RETURN_NOT_OK(inner_->Select(low, high, &unsafe));
    // Deep-copy while still holding the lock: views into the inner
    // engine's column are only valid until the next reorganization.
    result->AddOwned(unsafe.Collect());
    return Status::OK();
  }

  Status ExecuteLocked(const Query& query, QueryOutput* output) {
    if (query.mode != OutputMode::kMaterialize) {
      return inner_->Execute(query, output);
    }
    SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
    return SelectLocked(query.low, query.high, &output->result);
  }

  mutable std::mutex mutex_;
  std::unique_ptr<SelectEngine> inner_;
};

}  // namespace scrack
