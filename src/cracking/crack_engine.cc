#include "cracking/crack_engine.h"

namespace scrack {

Status CrackEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  return column_.SelectWithPolicy(
      low, high, [](const Piece&) { return EndPieceMode::kCrack; }, result,
      &stats_);
}

}  // namespace scrack
