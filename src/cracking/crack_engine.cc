#include "cracking/crack_engine.h"

namespace scrack {

Status CrackEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  return column_.SelectWithPolicy(
      low, high, [](const Piece&) { return EndPieceMode::kCrack; }, result,
      &stats_);
}

Status CrackEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  ++stats_.queries;
  Index begin = 0;
  Index end = 0;
  SCRACK_RETURN_NOT_OK(
      column_.CrackRange(query.low, query.high, &begin, &end, &stats_));
  column_.AggregateCrackedRegion(begin, end, query, output, &stats_);
  ++stats_.aggregates_pushed;
  return Status::OK();
}


}  // namespace scrack
