#include "cracking/crack_engine.h"

namespace scrack {

Status CrackEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  // queries counts *served* queries, incremented only once the work is
  // done: an attempt unwound by an injected fault and then retried must
  // advance the counter exactly once, or the auditor's strict query-count
  // law would flag the retry (see src/progressive/chaos_engine.h).
  SCRACK_RETURN_NOT_OK(column_.SelectWithPolicy(
      low, high, [](const Piece&) { return EndPieceMode::kCrack; }, result,
      &stats_));
  ++stats_.queries;
  return Status::OK();
}

Status CrackEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  Index begin = 0;
  Index end = 0;
  SCRACK_RETURN_NOT_OK(
      column_.CrackRange(query.low, query.high, &begin, &end, &stats_));
  column_.AggregateCrackedRegion(begin, end, query, output, &stats_);
  ++stats_.aggregates_pushed;
  ++stats_.queries;
  return Status::OK();
}


}  // namespace scrack
