#include "cracking/stochastic_engine.h"

#include <cstdio>

namespace scrack {

Status DataDrivenEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  column_.EnsureInitialized(&stats_);
  SCRACK_RETURN_NOT_OK(column_.MergePendingIn(low, high, &stats_));
  if (column_.size() == 0 || low >= high) return Status::OK();
  // DDC(C, a, b): one ddc_crack per bound, then a view of [posLow, posHigh)
  // (paper Fig. 4 lines 1-3); identical shape for the R and 1x variants.
  const Index pos_low =
      column_.StochasticCrackBound(low, center_pivot_, recursive_, &stats_);
  const Index pos_high =
      column_.StochasticCrackBound(high, center_pivot_, recursive_, &stats_);
  if (pos_high > pos_low) {
    result->AddView(column_.data() + pos_low, pos_high - pos_low);
  }
  return Status::OK();
}

Status DataDrivenEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  ++stats_.queries;
  column_.EnsureInitialized(&stats_);
  SCRACK_RETURN_NOT_OK(column_.MergePendingIn(query.low, query.high, &stats_));
  if (column_.size() == 0 || query.low >= query.high) {
    // Statically empty answer, still served without materialization — keep
    // the pushdown counter consistent with scan/crack on the same query.
    ++stats_.aggregates_pushed;
    return Status::OK();
  }
  // Identical reorganization to Select (one stochastic crack-bound per
  // bound); only the answer's form differs — piece bounds, not a view.
  const Index pos_low = column_.StochasticCrackBound(query.low, center_pivot_,
                                                     recursive_, &stats_);
  const Index pos_high = column_.StochasticCrackBound(
      query.high, center_pivot_, recursive_, &stats_);
  column_.AggregateCrackedRegion(pos_low, pos_high, query, output, &stats_);
  ++stats_.aggregates_pushed;
  return Status::OK();
}

std::string DataDrivenEngine::name() const {
  if (recursive_) return center_pivot_ ? "ddc" : "ddr";
  return center_pivot_ ? "dd1c" : "dd1r";
}

Status Mdd1rEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  return column_.SelectWithPolicy(
      low, high, [](const Piece&) { return EndPieceMode::kSplitMat; }, result,
      &stats_);
}

Status ProgressiveEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  return column_.SelectWithPolicy(
      low, high, [](const Piece&) { return EndPieceMode::kProgressive; },
      result, &stats_);
}

std::string ProgressiveEngine::name() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "pmdd1r(%g%%)",
                column_.config().progressive_budget * 100.0);
  return buf;
}

}  // namespace scrack
