#include "cracking/scan_engine.h"

namespace scrack {

ScanEngine::ScanEngine(const Column* base, const EngineConfig& config) {
  (void)config;
  SCRACK_CHECK(base != nullptr);
  data_.assign(base->data(), base->data() + base->size());
}

Status ScanEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  std::vector<Value> out;
  // Short-circuiting range test, as the paper notes for its Scan baseline
  // (§3: "short-circuiting in the if statement").
  for (Value v : data_) {
    if (low <= v && v < high) out.push_back(v);
  }
  stats_.tuples_touched += static_cast<int64_t>(data_.size());
  stats_.materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
  return Status::OK();
}

Status ScanEngine::StageInsert(Value v) {
  data_.push_back(v);
  return Status::OK();
}

Status ScanEngine::StageDelete(Value v) {
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] == v) {
      data_[i] = data_.back();
      data_.pop_back();
      return Status::OK();
    }
  }
  return Status::NotFound("delete of absent value " + std::to_string(v));
}

}  // namespace scrack
