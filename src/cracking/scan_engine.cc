#include "cracking/scan_engine.h"

#include <string>

#include "cracking/kernel.h"

namespace scrack {

ScanEngine::ScanEngine(const Column* base, const EngineConfig& config) {
  (void)config;
  SCRACK_CHECK(base != nullptr);
  data_.assign(base->data(), base->data() + base->size());
}

Status ScanEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  // Dispatched filter kernel: counts qualifying tuples first, then
  // materializes into an exactly-sized buffer (no push_back reallocation),
  // vectorized when AVX2 is available.
  std::vector<Value> out;
  KernelCounters counters;
  FilterInto(data_.data(), 0, static_cast<Index>(data_.size()), low, high,
             &out, &counters);
  stats_.tuples_touched += counters.touched;
  stats_.materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
  return Status::OK();
}

Status ScanEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  ++stats_.queries;
  const Value low = query.low;
  const Value high = query.high;
  if (low >= high) {
    // Statically empty range: nothing can qualify, skip the pass.
    ++stats_.aggregates_pushed;
    return Status::OK();
  }
  const Index n = static_cast<Index>(data_.size());
  // One mode-specific fold each, so a query pays only for the fold it asked
  // for. The folds are the dispatched kernels of cracking/kernel.h: SIMD
  // lanes when available, bit-identical predicated loops otherwise.
  switch (query.mode) {
    case OutputMode::kMaterialize:
      SCRACK_CHECK(false);  // handled above
      break;
    case OutputMode::kCount: {
      output->count = CountInRange(data_.data(), 0, n, low, high);
      stats_.tuples_touched += n;
      break;
    }
    case OutputMode::kSum: {
      const RangeSum folded = SumInRange(data_.data(), 0, n, low, high);
      output->count = folded.count;
      output->sum = folded.sum;
      stats_.tuples_touched += n;
      break;
    }
    case OutputMode::kMinMax: {
      const RangeMinMax folded = MinMaxInRange(data_.data(), 0, n, low, high);
      output->count = folded.count;
      if (folded.count > 0) {
        output->min = folded.min;
        output->max = folded.max;
      }
      stats_.tuples_touched += n;
      break;
    }
    case OutputMode::kExists: {
      // LIMIT-k: stop at the limit-th hit; only the examined prefix counts
      // as touched (the early-termination pattern aggregate scans enable).
      // The vectorized fold early-exits per block and re-scans the final
      // block scalar, so `examined` matches the scalar loop exactly.
      const RangePrefixHits folded =
          CountPrefixHits(data_.data(), 0, n, low, high, query.limit);
      output->count = folded.hits;
      output->exists = folded.hits >= query.limit;
      stats_.tuples_touched += folded.examined;
      break;
    }
  }
  ++stats_.aggregates_pushed;
  return Status::OK();
}

Status ScanEngine::StageInsert(Value v) {
  data_.push_back(v);
  return Status::OK();
}

Status ScanEngine::StageDelete(Value v) {
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] == v) {
      data_[i] = data_.back();
      data_.pop_back();
      return Status::OK();
    }
  }
  return Status::NotFound("delete of absent value " + std::to_string(v));
}

}  // namespace scrack
