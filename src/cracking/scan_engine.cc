#include "cracking/scan_engine.h"

#include <algorithm>

namespace scrack {

ScanEngine::ScanEngine(const Column* base, const EngineConfig& config) {
  (void)config;
  SCRACK_CHECK(base != nullptr);
  data_.assign(base->data(), base->data() + base->size());
}

Status ScanEngine::Select(Value low, Value high, QueryResult* result) {
  SCRACK_RETURN_NOT_OK(CheckRange(low, high));
  ++stats_.queries;
  std::vector<Value> out;
  // Short-circuiting range test, as the paper notes for its Scan baseline
  // (§3: "short-circuiting in the if statement").
  for (Value v : data_) {
    if (low <= v && v < high) out.push_back(v);
  }
  stats_.tuples_touched += static_cast<int64_t>(data_.size());
  stats_.materialized += static_cast<int64_t>(out.size());
  result->AddOwned(std::move(out));
  return Status::OK();
}

Status ScanEngine::Execute(const Query& query, QueryOutput* output) {
  if (query.mode == OutputMode::kMaterialize) {
    return SelectEngine::Execute(query, output);
  }
  SCRACK_RETURN_NOT_OK(CheckExecute(query, output));
  ++stats_.queries;
  const Value low = query.low;
  const Value high = query.high;
  if (low >= high) {
    // Statically empty range: nothing can qualify, skip the pass.
    ++stats_.aggregates_pushed;
    return Status::OK();
  }
  // One mode-specific loop each, so a query pays only for the fold it
  // asked for — kCount does no adds or compares beyond the range test.
  switch (query.mode) {
    case OutputMode::kMaterialize:
      SCRACK_CHECK(false);  // handled above
      break;
    case OutputMode::kCount: {
      Index count = 0;
      for (Value v : data_) {
        if (low <= v && v < high) ++count;
      }
      output->count = count;
      stats_.tuples_touched += static_cast<int64_t>(data_.size());
      break;
    }
    case OutputMode::kSum: {
      Index count = 0;
      int64_t sum = 0;
      for (Value v : data_) {
        if (low <= v && v < high) {
          ++count;
          sum += v;
        }
      }
      output->count = count;
      output->sum = sum;
      stats_.tuples_touched += static_cast<int64_t>(data_.size());
      break;
    }
    case OutputMode::kMinMax: {
      Index count = 0;
      Value mn = 0;
      Value mx = 0;
      for (Value v : data_) {
        if (low <= v && v < high) {
          if (count == 0) {
            mn = v;
            mx = v;
          } else {
            mn = std::min(mn, v);
            mx = std::max(mx, v);
          }
          ++count;
        }
      }
      output->count = count;
      if (count > 0) {
        output->min = mn;
        output->max = mx;
      }
      stats_.tuples_touched += static_cast<int64_t>(data_.size());
      break;
    }
    case OutputMode::kExists: {
      // LIMIT-k: stop at the limit-th hit; only the examined prefix counts
      // as touched (the early-termination pattern aggregate scans enable).
      int64_t examined = 0;
      Index hits = 0;
      for (Value v : data_) {
        ++examined;
        if (low <= v && v < high && ++hits == query.limit) break;
      }
      output->count = hits;
      output->exists = hits >= query.limit;
      stats_.tuples_touched += examined;
      break;
    }
  }
  ++stats_.aggregates_pushed;
  return Status::OK();
}

Status ScanEngine::StageInsert(Value v) {
  data_.push_back(v);
  return Status::OK();
}

Status ScanEngine::StageDelete(Value v) {
  for (size_t i = 0; i < data_.size(); ++i) {
    if (data_[i] == v) {
      data_[i] = data_.back();
      data_.pop_back();
      return Status::OK();
    }
  }
  return Status::NotFound("delete of absent value " + std::to_string(v));
}

}  // namespace scrack
